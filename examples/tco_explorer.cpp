/**
 * @file
 * TCO explorer: how the burdened-cost parameters move the bottom line.
 *
 * Sweeps the electricity tariff and the cooling-efficiency gain for a
 * platform given on the command line (default emb1) and prints the
 * resulting 3-year TCO grid — the tool a datacenter architect would
 * use to decide whether better packaging pays for itself at their
 * site's power price.
 *
 * Run: build/examples/tco_explorer [srvr1|srvr2|desk|mobl|emb1|emb2]
 */

#include <iostream>
#include <string>

#include "cost/tco.hh"
#include "platform/catalog.hh"
#include "thermal/cooling_cost.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::platform;

namespace {

SystemClass
parseSystem(const std::string &name)
{
    for (auto cls : allSystemClasses)
        if (to_string(cls) == name)
            return cls;
    fatal("unknown system '" + name +
          "'; expected one of srvr1|srvr2|desk|mobl|emb1|emb2");
}

} // namespace

int
main(int argc, char **argv)
{
    SystemClass cls = SystemClass::Emb1;
    if (argc > 1) {
        try {
            cls = parseSystem(argv[1]);
        } catch (const FatalError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }
    auto server = makeSystem(cls);
    std::cout << "3-year TCO grid for '" << server.name << "' ("
              << fmtF(server.totalWatts(), 0) << " W, "
              << fmtDollars(server.serverDollars()) << " hardware)\n\n";

    Table t({"Tariff \\ cooling gain", "1.0x (conv)", "2.0x (dual)",
             "4.0x (aggr)"});
    for (double tariff : {50.0, 100.0, 170.0}) {
        std::vector<std::string> row{"$" + fmtF(tariff, 0) + "/MWh"};
        for (double gain : {1.0, 2.0, 4.0}) {
            cost::BurdenedPowerParams burden;
            burden.tariffPerMWh = tariff;
            auto adjusted = thermal::applyCoolingGain(burden, gain);
            cost::TcoModel model(cost::RackCostParams{},
                                 power::RackPowerParams{}, adjusted);
            auto r = model.evaluate(server.hardwareCost(),
                                    server.hardwarePower());
            row.push_back(fmtDollars(r.tco()));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nFor reference, the burdened P&C multiplier falls "
                 "from "
              << fmtF(cost::BurdenedPowerParams{}.burdenMultiplier(), 2)
              << " (conventional) to "
              << fmtF(thermal::applyCoolingGain(
                          cost::BurdenedPowerParams{}, 4.0)
                          .burdenMultiplier(),
                      2)
              << " with aggregated cooling.\n";
    return 0;
}
