/**
 * @file
 * Datacenter designer: compose a custom ensemble design and compare it
 * against the paper's baselines and unified designs.
 *
 * Demonstrates the full design space the library exposes: platform
 * class, packaging/cooling, ensemble memory sharing, and storage. The
 * example builds a "what the paper might call N3" — desktop-class
 * CPUs with dual-entry packaging, static memory sharing, and local
 * desktop disks — and reports where it lands.
 *
 * Run: build/examples/datacenter_designer
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "core/report.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    // Compose a custom design: desktop CPUs, dual-entry enclosure,
    // static memory sharing, stock desktop disks.
    DesignConfig custom;
    custom.name = "custom-N3";
    custom.server = platform::makeSystem(platform::SystemClass::Desk);
    custom.packaging = thermal::PackagingDesign::DualEntry;
    custom.memorySharing = memblade::Provisioning::Static;

    DesignEvaluator evaluator;
    auto srvr1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    std::vector<DesignConfig> designs{DesignConfig::n1(),
                                      DesignConfig::n2(), custom};

    std::cout << "Custom design '" << custom.name
              << "': desk platform + dual-entry packaging + static "
                 "memory sharing\n\n";

    std::cout << "Adjusted per-server bill of materials vs stock desk:\n";
    auto adj = evaluator.adjustedServer(custom);
    auto stock = platform::makeSystem(platform::SystemClass::Desk);
    Table bom({"Line item", "Stock desk", "custom-N3"});
    bom.addRow({"Memory $", fmtDollars(stock.memory.dollars),
                fmtDollars(adj.memory.dollars)});
    bom.addRow({"Memory W", fmtF(stock.memory.watts, 1),
                fmtF(adj.memory.watts, 1)});
    bom.addRow({"Power+fans $", fmtDollars(stock.powerFansDollars),
                fmtDollars(adj.powerFansDollars)});
    bom.addRow({"Server W", fmtF(stock.totalWatts(), 1),
                fmtF(adj.totalWatts(), 1)});
    bom.print(std::cout);

    std::cout << "\nPerf/TCO-$ relative to srvr1 (alongside the "
                 "paper's N1/N2):\n";
    relativeTable(evaluator, designs, srvr1, Metric::PerfPerTcoDollar)
        .print(std::cout);

    std::cout << "\nPackaging note: dual-entry fits "
              << thermal::makeEnclosure(
                     thermal::PackagingDesign::DualEntry)
                     .systemsPerRack()
              << " systems per rack (vs 40 conventional 1U).\n";
    return 0;
}
