/**
 * @file
 * Memory-blade walkthrough: the Section 3.4 study step by step.
 *
 * 1. Generate a synthetic page-access trace for websearch.
 * 2. Replay it through the two-level memory simulator at several
 *    local-memory sizes and replacement policies.
 * 3. Convert miss rates into execution slowdowns for the PCIe and
 *    critical-block-first links.
 * 4. Price the static and dynamic provisioning schemes.
 *
 * Run: build/examples/memory_blade_walkthrough
 */

#include <iostream>

#include "memblade/blade.hh"
#include "memblade/latency.hh"
#include "memblade/two_level.hh"
#include "platform/catalog.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::memblade;

int
main()
{
    auto profile = profileFor(workloads::Benchmark::Websearch);
    std::cout << "Workload: " << profile.name << " ("
              << profile.footprintPages << " pages = "
              << fmtF(double(profile.footprintPages) * 4 / (1024 * 1024),
                      1)
              << " GB footprint)\n\n";

    std::cout << "Step 1-2: replay 1M accesses through the two-level "
                 "memory\n";
    Table t({"Local fraction", "Policy", "Miss rate", "Warm miss "
                                                      "rate"});
    for (double f : {0.125, 0.25, 0.5}) {
        for (auto kind : {PolicyKind::Lru, PolicyKind::Random}) {
            auto st = replayProfile(profile, f, kind, 1000000, 7);
            t.addRow({fmtPct(f, 1), to_string(kind),
                      fmtPct(st.missRate(), 2),
                      fmtPct(st.warmMissRate(), 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\nStep 3: slowdowns at 25% local (random "
                 "replacement)\n";
    auto st = replayProfile(profile, 0.25, PolicyKind::Random, 1000000,
                            7);
    Table s({"Link", "Stall per miss", "Slowdown"});
    for (auto link : {RemoteLink::pcieX4(), RemoteLink::cbf(),
                      RemoteLink::cbfWithSetup()}) {
        s.addRow({link.name,
                  fmtF(link.stallSecondsPerMiss * 1e6, 2) + " us",
                  fmtPct(slowdown(st, profile, link), 2)});
    }
    s.print(std::cout);

    std::cout << "\nStep 4: provisioning economics on emb1\n";
    auto emb1 = platform::makeSystem(platform::SystemClass::Emb1);
    Table p({"Scheme", "Memory $ (was " +
                           fmtDollars(emb1.memory.dollars) + ")",
             "Memory W (was " + fmtF(emb1.memory.watts, 0) + ")"});
    for (auto scheme : {Provisioning::Static, Provisioning::Dynamic}) {
        auto out = applyMemorySharing(emb1, BladeParams{}, scheme);
        p.addRow({to_string(scheme), fmtDollars(out.memoryDollars),
                  fmtF(out.memoryWatts, 2)});
    }
    p.print(std::cout);
    std::cout << "\nRemote DRAM is 24% cheaper per GB and idles in "
                 "active power-down (>90% saving); each server adds a "
                 "$10 / 1.45 W PCIe share.\n";
    return 0;
}
