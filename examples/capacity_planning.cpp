/**
 * @file
 * Capacity planning: size a datacenter for a service mix.
 *
 * Brings the cluster planner, workload mixes, and the diurnal energy
 * model together: given a media-heavy service that needs the capacity
 * of 400 srvr1-class machines at peak, compare deploying srvr1 vs the
 * N2 ensemble design — servers, racks, daily energy under a power-off
 * policy, and 3-year money.
 *
 * Run: build/examples/capacity_planning
 */

#include <iostream>

#include "core/cluster.hh"
#include "core/diurnal.hh"
#include "core/mix.hh"
#include "util/table.hh"

using namespace wsc;
using namespace wsc::core;

int
main()
{
    const unsigned baseline_servers = 400;
    std::cout << "Sizing for a media-heavy service needing "
              << baseline_servers << " srvr1-equivalents at peak\n\n";

    ClusterParams cp;
    cp.realEstatePerRackYear = 3000.0;
    ClusterPlanner planner(cp);
    auto &ev = planner.evaluator();

    auto srvr1 = DesignConfig::baseline(platform::SystemClass::Srvr1);
    auto n2 = DesignConfig::n2();
    auto mix = WorkloadMix::mediaHeavy();

    // Mix-weighted per-server capability sets the fleet size.
    auto rel = mixRelative(ev, n2, srvr1, mix);
    std::cout << "N2 per-server capability on this mix: "
              << fmtPct(rel.perf) << " of srvr1 (Perf/TCO-$ "
              << fmtPct(rel.perfPerTcoDollar) << ")\n\n";

    auto base_plan = planner.plan(srvr1, srvr1, baseline_servers,
                                  workloads::Benchmark::Ytube);
    auto n2_plan = planner.plan(n2, srvr1, baseline_servers,
                                workloads::Benchmark::Ytube);

    auto diurnal = DiurnalProfile::internetService();
    auto energy_of = [&](const ClusterPlan &plan) {
        EnsembleEnergyParams p;
        p.servers = unsigned(plan.serversNeeded + 0.5);
        p.wattsPerServer =
            plan.totalPowerKW * 1000.0 / plan.serversNeeded;
        return dailyEnergy(diurnal, PowerPolicy::PowerOff, p);
    };
    auto base_energy = energy_of(base_plan);
    auto n2_energy = energy_of(n2_plan);

    Table t({"Metric", "srvr1 fleet", "N2 fleet"});
    t.addRow({"Servers", fmtF(base_plan.serversNeeded, 0),
              fmtF(n2_plan.serversNeeded, 0)});
    t.addRow({"Racks", std::to_string(base_plan.racks),
              std::to_string(n2_plan.racks)});
    t.addRow({"Peak power (kW)", fmtF(base_plan.totalPowerKW, 1),
              fmtF(n2_plan.totalPowerKW, 1)});
    t.addRow({"Energy/day, power-off policy (kWh)",
              fmtF(base_energy.kWhPerDay, 0),
              fmtF(n2_energy.kWhPerDay, 0)});
    t.addRow({"3-yr hardware $", fmtDollars(base_plan.hardwareDollars),
              fmtDollars(n2_plan.hardwareDollars)});
    t.addRow({"3-yr P&C $",
              fmtDollars(base_plan.powerCoolingDollars),
              fmtDollars(n2_plan.powerCoolingDollars)});
    t.addRow({"3-yr real estate $",
              fmtDollars(base_plan.realEstateDollars),
              fmtDollars(n2_plan.realEstateDollars)});
    t.addRow({"3-yr total $", fmtDollars(base_plan.totalDollars()),
              fmtDollars(n2_plan.totalDollars())});
    t.print(std::cout);

    std::cout << "\nN2 delivers the same peak capacity at "
              << fmtPct(n2_plan.totalDollars() /
                        base_plan.totalDollars())
              << " of the baseline's 3-year cost.\n";
    return 0;
}
