/**
 * @file
 * Workload characterization: where each benchmark spends its demand.
 *
 * Samples each interactive workload's request stream and prints the
 * demand mix (CPU / disk / network), the latency distribution on a
 * mid-range platform at moderate load, and each workload's bottleneck
 * station — the analysis behind the paper's observation that ytube
 * and mapreduce are IO-bound while websearch and webmail are
 * CPU-bound.
 *
 * Run: build/examples/workload_characterization
 */

#include <iostream>

#include "perfsim/perf_eval.hh"
#include "perfsim/throughput.hh"
#include "platform/catalog.hh"
#include "stats/percentile.hh"
#include "util/table.hh"
#include "workloads/suite.hh"

using namespace wsc;
using namespace wsc::perfsim;

int
main()
{
    PerfEvaluator ev;
    auto desk = platform::makeSystem(platform::SystemClass::Desk);

    std::cout << "Demand mix and bottleneck per workload on 'desk':\n\n";
    Table t({"Workload", "CPU s/req", "Disk s/req", "NIC s/req",
             "Bottleneck", "Analytic bound (RPS)"});
    for (auto b :
         {workloads::Benchmark::Websearch, workloads::Benchmark::Webmail,
          workloads::Benchmark::Ytube}) {
        auto w = workloads::makeBenchmark(b);
        auto &iw = dynamic_cast<workloads::InteractiveWorkload &>(*w);
        auto st = ev.stationsFor(desk, iw.traits(), {});
        auto mean = iw.meanDemand();
        double cpu_t = mean.cpuWork / st.cpuCapacityGHz;
        double disk_t =
            (1.0 - st.diskCacheHitRate) *
                (st.diskAccessMs * 1e-3 * mean.diskReadOps +
                 mean.diskReadBytes / (st.diskReadMBs * 1e6)) +
            st.diskAccessMs * 1e-3 * 0.25 * mean.diskWriteOps +
            mean.diskWriteBytes / (st.diskWriteMBs * 1e6);
        double nic_t = mean.netBytes / (st.nicMBs * 1e6);
        std::string bottleneck = "CPU";
        if (disk_t > cpu_t && disk_t > nic_t)
            bottleneck = "disk";
        else if (nic_t > cpu_t && nic_t > disk_t)
            bottleneck = "NIC";
        t.addRow({iw.name(), fmtF(cpu_t * 1e3, 2) + " ms",
                  fmtF(disk_t * 1e3, 2) + " ms",
                  fmtF(nic_t * 1e3, 2) + " ms", bottleneck,
                  fmtF(analyticBound(iw, st), 0)});
    }
    t.print(std::cout);

    std::cout << "\nLatency distribution at 60% of the websearch bound "
                 "on 'desk':\n";
    auto ws = workloads::makeBenchmark(workloads::Benchmark::Websearch);
    auto &iw = dynamic_cast<workloads::InteractiveWorkload &>(*ws);
    auto st = ev.stationsFor(desk, iw.traits(), {});
    Rng rng(2024);
    SimWindow window;
    window.warmupSeconds = 5.0;
    window.measureSeconds = 30.0;
    auto r = simulateInteractive(iw, st, 0.6 * analyticBound(iw, st),
                                 window, rng);
    Table lat({"Statistic", "Value"});
    lat.addRow({"Requests completed", std::to_string(r.completed)});
    lat.addRow({"Mean latency", fmtF(r.meanLatency * 1e3, 1) + " ms"});
    lat.addRow({"p95 latency", fmtF(r.p95Latency * 1e3, 1) + " ms"});
    lat.addRow({"QoS violations", fmtPct(r.qosViolationFraction, 2)});
    lat.addRow({"CPU utilization", fmtPct(r.cpuUtilization)});
    lat.addRow({"Disk utilization", fmtPct(r.diskUtilization)});
    lat.addRow({"NIC utilization", fmtPct(r.nicUtilization)});
    lat.print(std::cout);
    return 0;
}
