/**
 * @file
 * Quickstart: evaluate one server platform on one workload.
 *
 * Builds the low-end server (srvr2) from the catalog, measures its
 * sustainable websearch throughput under the paper's QoS constraint,
 * and prints the full cost picture: hardware, burdened power &
 * cooling, 3-year TCO, and the resulting Perf/TCO-$.
 *
 * Run: build/examples/quickstart
 */

#include <iostream>

#include "core/design.hh"
#include "core/evaluator.hh"
#include "util/table.hh"

using namespace wsc;

int
main()
{
    // 1. Pick a platform from the Table 2 catalog.
    auto design =
        core::DesignConfig::baseline(platform::SystemClass::Srvr2);
    std::cout << "Evaluating '" << design.name << "' ("
              << design.server.cpu.similarTo << ", "
              << design.server.cpu.totalCores() << " cores @ "
              << design.server.cpu.freqGHz << " GHz)\n\n";

    // 2. Measure websearch RPS-with-QoS and the cost/power picture.
    core::DesignEvaluator evaluator;
    auto metrics =
        evaluator.evaluate(design, workloads::Benchmark::Websearch);

    Table t({"Quantity", "Value"});
    t.addRow({"Sustainable websearch RPS (95% < 0.5 s)",
              fmtF(metrics.perf, 0)});
    t.addRow({"Server power incl. switch share (W)",
              fmtF(metrics.watts, 0)});
    t.addRow({"Infrastructure cost", fmtDollars(metrics.infDollars)});
    t.addRow({"3-yr burdened power & cooling",
              fmtDollars(metrics.pcDollars)});
    t.addRow({"3-yr TCO", fmtDollars(metrics.tcoDollars)});
    t.addRow({"Perf/TCO-$ (RPS per dollar)",
              fmtF(metrics.perfPerTcoDollar(), 3)});
    t.print(std::cout);

    // 3. Compare against the embedded platform the paper advocates.
    auto emb1 =
        core::DesignConfig::baseline(platform::SystemClass::Emb1);
    auto rel = evaluator.evaluateRelative(
        emb1, design, workloads::Benchmark::Websearch);
    std::cout << "\nemb1 vs srvr2 on websearch: perf "
              << fmtPct(rel.perf) << ", Perf/TCO-$ "
              << fmtPct(rel.perfPerTcoDollar) << "\n";
    return 0;
}
