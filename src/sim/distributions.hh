/**
 * @file
 * Random distributions used by the workload generators.
 *
 * The benchmark suite leans on a few specific shapes: Zipf for search
 * keywords and video popularity (paper Section 2.1), lognormal for mail
 * and attachment sizes, exponential think times, and empirical tables
 * for measured mixes.
 *
 * Two dispatch paths exist side by side:
 *  - the virtual Distribution::sample interface, kept for generic
 *    consumers and tests, and
 *  - non-virtual sampleImpl methods on the (final) concrete classes,
 *    reachable either directly at concrete call sites or through
 *    sampleByKind(), a DistKind-tag switch that lets pooled hot paths
 *    draw without an indirect call per sample. Both paths share one
 *    implementation per class, so they cannot drift and are
 *    bit-identical.
 */

#ifndef WSC_SIM_DISTRIBUTIONS_HH
#define WSC_SIM_DISTRIBUTIONS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.hh"

namespace wsc {
namespace sim {

/**
 * Concrete-type tag carried by every Distribution. Hot paths that hold
 * a Distribution& switch on it (sampleByKind) instead of paying a
 * virtual call per draw; the switch dispatches to the same final
 * sampleImpl the virtual path lands in.
 */
enum class DistKind : unsigned char {
    Constant,
    Uniform,
    Exponential,
    Lognormal,
    BoundedPareto,
    Zipf,
    Empirical,
};

/** Polymorphic scalar distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample using @p rng. */
    virtual double sample(Rng &rng) = 0;

    /** Expected value (exact where closed-form, else documented approx). */
    virtual double mean() const = 0;

    /** Concrete-type tag for switch dispatch (see sampleByKind). */
    DistKind kind() const { return kind_; }

  protected:
    explicit Distribution(DistKind kind) : kind_(kind) {}

  private:
    DistKind kind_;
};

/** Degenerate point mass: always returns the same value. */
class ConstantDist final : public Distribution
{
  public:
    explicit ConstantDist(double value)
        : Distribution(DistKind::Constant), value(value)
    {
    }
    double sampleImpl(Rng &) { return value; }
    double sample(Rng &rng) override { return sampleImpl(rng); }
    double mean() const override { return value; }

  private:
    double value;
};

/** Uniform over [lo, hi). */
class UniformDist final : public Distribution
{
  public:
    UniformDist(double lo, double hi);
    double sampleImpl(Rng &rng) { return rng.uniform(lo, hi); }
    double sample(Rng &rng) override { return sampleImpl(rng); }
    double mean() const override { return 0.5 * (lo + hi); }

  private:
    double lo, hi;
};

/** Exponential with the given mean. */
class ExponentialDist final : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sampleImpl(Rng &rng) { return rng.exponential(mean_); }
    double sample(Rng &rng) override { return sampleImpl(rng); }
    double mean() const override { return mean_; }

  private:
    double mean_;
};

/**
 * Lognormal parameterized by its own mean and coefficient of variation
 * (more natural for size distributions than mu/sigma).
 */
class LognormalDist final : public Distribution
{
  public:
    /**
     * @param mean Desired distribution mean (> 0).
     * @param cov Coefficient of variation (stddev/mean, > 0).
     */
    LognormalDist(double mean, double cov);
    double sampleImpl(Rng &rng) { return rng.lognormal(mu, sigma); }
    double sample(Rng &rng) override { return sampleImpl(rng); }
    double mean() const override { return mean_; }

    /** Underlying normal's parameters (for same-law batch draws). */
    double muParam() const { return mu; }
    double sigmaParam() const { return sigma; }

  private:
    double mean_, mu, sigma;
};

/** Bounded Pareto over [lo, hi] with shape alpha. */
class BoundedParetoDist final : public Distribution
{
  public:
    BoundedParetoDist(double lo, double hi, double alpha);
    double sampleImpl(Rng &rng);
    double sample(Rng &rng) override { return sampleImpl(rng); }
    double mean() const override;

  private:
    double lo, hi, alpha;
    /** Constants of the inverse CDF, hoisted out of sample(): the
     * seed code recomputed pow(lo, alpha) and pow(hi, alpha) on
     * every draw. pow is deterministic for fixed arguments, so the
     * samples are bit-identical. */
    double loAlpha, hiAlpha, negInvAlpha;
};

/**
 * Guide table (indexed inversion) over a monotone CDF.
 *
 * Precomputes, for each of n equal-width buckets of [0, 1), the first
 * CDF index whose value reaches the bucket's lower edge. A draw then
 * jumps straight to its bucket's start and walks at most the entries
 * that share the bucket — expected O(1) with as many buckets as CDF
 * entries — instead of binary-searching the whole table. The walk
 * reproduces std::lower_bound exactly (first index with cdf[i] >= u)
 * for every u, so samplers built on it are bit-identical to the seed's
 * O(log n) search while dropping its cache-missing probes.
 *
 * The lookup is exposed in pieces — bucketOf / startOf / resolveFrom —
 * so the batched sampler (sim/batch_sampler.hh) can interleave the two
 * dependent memory accesses across a block of draws with software
 * prefetch. indexFor() composes exactly those pieces; scalar and
 * batched paths therefore share one resolution routine and cannot
 * drift.
 */
class GuideTable
{
  public:
    GuideTable() = default;

    /** Build over @p cdf (nondecreasing, back() == 1.0). */
    explicit GuideTable(const std::vector<double> &cdf);

    /** Number of guide buckets (== CDF entries it was built over). */
    std::size_t size() const { return guide.size(); }

    /** Bucket index for @p u in [0, 1). */
    std::size_t
    bucketOf(double u) const
    {
        std::size_t b = std::size_t(u * double(guide.size()));
        if (b >= guide.size()) // FP guard: u*n can round up to n
            b = guide.size() - 1;
        return b;
    }

    /** First CDF index the bucket can resolve to (its scan start). */
    std::uint32_t startOf(std::size_t b) const { return guide[b]; }

    /** Address of a guide cell, for software prefetch. */
    const std::uint32_t *cellPtr(std::size_t b) const { return &guide[b]; }

    /**
     * Finish the lookup from scan start @p k: first index with
     * cdf[i] >= u. The bucket start is a lower bound for the bucket's
     * real edge, but FP rounding of u * n can land u one bucket high;
     * the backward walk restores exactness (it is almost never taken).
     * The forward walk covers the bucket's entries.
     */
    std::size_t
    resolveFrom(const std::vector<double> &cdf, double u,
                std::size_t k) const
    {
        while (k > 0 && cdf[k - 1] >= u)
            --k;
        while (cdf[k] < u)
            ++k;
        return k;
    }

    /** First index with cdf[i] >= u, for u in [0, 1). */
    std::size_t
    indexFor(const std::vector<double> &cdf, double u) const
    {
        return resolveFrom(cdf, u, startOf(bucketOf(u)));
    }

  private:
    /** guide[b] = first index with cdf[index] >= b / guide.size(). */
    std::vector<std::uint32_t> guide;
};

/**
 * Zipf distribution over ranks 1..n with exponent s:
 * P(rank = k) proportional to 1/k^s.
 *
 * Sampling uses an explicit inverse-CDF table accelerated by a guide
 * table (see GuideTable), expected O(1) per draw; both tables are
 * built once at construction. Suitable for the catalog sizes the
 * workloads use (up to a few million items).
 */
class ZipfDist final : public Distribution
{
  public:
    /**
     * @param n Number of ranks (>= 1).
     * @param s Exponent (> 0); s around 0.8-1.0 matches web traces.
     */
    ZipfDist(std::uint64_t n, double s);

    /** Draw a rank in [1, n]; lower ranks are more popular. */
    double sampleImpl(Rng &rng) { return double(sampleRank(rng)); }
    double sample(Rng &rng) override { return sampleImpl(rng); }

    /** Draw as an integer rank. */
    std::uint64_t
    sampleRank(Rng &rng)
    {
        // Same single uniform draw as the seed's lower_bound search;
        // rankForUniform is the shared resolution used by the batched
        // path too, so every rank ever drawn is unchanged.
        return rankForUniform(rng.uniform());
    }

    /** Rank the uniform @p u inverts to (shared scalar/batched). */
    std::uint64_t
    rankForUniform(double u) const
    {
        return std::uint64_t(guide.indexFor(cdf, u)) + 1;
    }

    double mean() const override { return mean_; }

    /** Probability of exactly rank k. */
    double pmf(std::uint64_t k) const;

    std::uint64_t size() const { return n; }

    /** Inversion tables, exposed for the batched sampler. */
    const GuideTable &guideTable() const { return guide; }
    const std::vector<double> &cdfTable() const { return cdf; }

  private:
    std::uint64_t n;
    double s;
    double mean_;
    /** cdf[i] = P(rank <= i+1). */
    std::vector<double> cdf;
    /** O(1) indexed inversion over cdf (see GuideTable). */
    GuideTable guide;
};

/**
 * Empirical discrete distribution over (value, weight) pairs.
 * Used for measured mixes, e.g. the webmail action mix.
 */
class EmpiricalDist final : public Distribution
{
  public:
    /**
     * @param values Outcome values.
     * @param weights Relative weights (>= 0, not all zero), same length.
     */
    EmpiricalDist(std::vector<double> values, std::vector<double> weights);

    double sampleImpl(Rng &rng) { return values[sampleIndex(rng)]; }
    double sample(Rng &rng) override { return sampleImpl(rng); }

    /** Draw the index of the chosen outcome. */
    std::size_t
    sampleIndex(Rng &rng)
    {
        // Single uniform draw; indexForUniform matches lower_bound
        // bit-exactly and is shared with the batched path.
        return indexForUniform(rng.uniform());
    }

    /** Index the uniform @p u inverts to (shared scalar/batched). */
    std::size_t
    indexForUniform(double u) const
    {
        return guide.indexFor(cdf, u);
    }

    double mean() const override { return mean_; }

    /** Outcome value at @p i (for batched index draws). */
    double valueAt(std::size_t i) const { return values[i]; }

    std::size_t size() const { return values.size(); }

    /** Inversion tables, exposed for the batched sampler. */
    const GuideTable &guideTable() const { return guide; }
    const std::vector<double> &cdfTable() const { return cdf; }

  private:
    std::vector<double> values;
    std::vector<double> cdf;
    /** O(1) indexed inversion over cdf (see GuideTable). */
    GuideTable guide;
    double mean_;
};

/**
 * Draw through the DistKind tag instead of the vtable: one predictable
 * switch, then a direct (inlineable) call into the final class's
 * sampleImpl. Bit-identical to d.sample(rng) for every kind — both
 * paths are the same function.
 */
inline double
sampleByKind(Distribution &d, Rng &rng)
{
    switch (d.kind()) {
      case DistKind::Constant:
        return static_cast<ConstantDist &>(d).sampleImpl(rng);
      case DistKind::Uniform:
        return static_cast<UniformDist &>(d).sampleImpl(rng);
      case DistKind::Exponential:
        return static_cast<ExponentialDist &>(d).sampleImpl(rng);
      case DistKind::Lognormal:
        return static_cast<LognormalDist &>(d).sampleImpl(rng);
      case DistKind::BoundedPareto:
        return static_cast<BoundedParetoDist &>(d).sampleImpl(rng);
      case DistKind::Zipf:
        return static_cast<ZipfDist &>(d).sampleImpl(rng);
      case DistKind::Empirical:
        return static_cast<EmpiricalDist &>(d).sampleImpl(rng);
    }
    return d.sample(rng); // unreachable; keeps -Wreturn-type quiet
}

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_DISTRIBUTIONS_HH
