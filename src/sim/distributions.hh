/**
 * @file
 * Random distributions used by the workload generators.
 *
 * The benchmark suite leans on a few specific shapes: Zipf for search
 * keywords and video popularity (paper Section 2.1), lognormal for mail
 * and attachment sizes, exponential think times, and empirical tables
 * for measured mixes.
 */

#ifndef WSC_SIM_DISTRIBUTIONS_HH
#define WSC_SIM_DISTRIBUTIONS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.hh"

namespace wsc {
namespace sim {

/** Polymorphic scalar distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample using @p rng. */
    virtual double sample(Rng &rng) = 0;

    /** Expected value (exact where closed-form, else documented approx). */
    virtual double mean() const = 0;
};

/** Degenerate point mass: always returns the same value. */
class ConstantDist : public Distribution
{
  public:
    explicit ConstantDist(double value) : value(value) {}
    double sample(Rng &) override { return value; }
    double mean() const override { return value; }

  private:
    double value;
};

/** Uniform over [lo, hi). */
class UniformDist : public Distribution
{
  public:
    UniformDist(double lo, double hi);
    double sample(Rng &rng) override { return rng.uniform(lo, hi); }
    double mean() const override { return 0.5 * (lo + hi); }

  private:
    double lo, hi;
};

/** Exponential with the given mean. */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sample(Rng &rng) override { return rng.exponential(mean_); }
    double mean() const override { return mean_; }

  private:
    double mean_;
};

/**
 * Lognormal parameterized by its own mean and coefficient of variation
 * (more natural for size distributions than mu/sigma).
 */
class LognormalDist : public Distribution
{
  public:
    /**
     * @param mean Desired distribution mean (> 0).
     * @param cov Coefficient of variation (stddev/mean, > 0).
     */
    LognormalDist(double mean, double cov);
    double sample(Rng &rng) override { return rng.lognormal(mu, sigma); }
    double mean() const override { return mean_; }

  private:
    double mean_, mu, sigma;
};

/** Bounded Pareto over [lo, hi] with shape alpha. */
class BoundedParetoDist : public Distribution
{
  public:
    BoundedParetoDist(double lo, double hi, double alpha);
    double sample(Rng &rng) override;
    double mean() const override;

  private:
    double lo, hi, alpha;
    /** Constants of the inverse CDF, hoisted out of sample(): the
     * seed code recomputed pow(lo, alpha) and pow(hi, alpha) on
     * every draw. pow is deterministic for fixed arguments, so the
     * samples are bit-identical. */
    double loAlpha, hiAlpha, negInvAlpha;
};

/**
 * Guide table (indexed inversion) over a monotone CDF.
 *
 * Precomputes, for each of n equal-width buckets of [0, 1), the first
 * CDF index whose value reaches the bucket's lower edge. A draw then
 * jumps straight to its bucket's start and walks at most the entries
 * that share the bucket — expected O(1) with as many buckets as CDF
 * entries — instead of binary-searching the whole table. The walk
 * reproduces std::lower_bound exactly (first index with cdf[i] >= u)
 * for every u, so samplers built on it are bit-identical to the seed's
 * O(log n) search while dropping its cache-missing probes.
 */
class GuideTable
{
  public:
    GuideTable() = default;

    /** Build over @p cdf (nondecreasing, back() == 1.0). */
    explicit GuideTable(const std::vector<double> &cdf);

    /** First index with cdf[i] >= u, for u in [0, 1). */
    std::size_t
    indexFor(const std::vector<double> &cdf, double u) const
    {
        std::size_t b = std::size_t(u * double(guide.size()));
        if (b >= guide.size()) // FP guard: u*n can round up to n
            b = guide.size() - 1;
        std::size_t k = guide[b];
        // The bucket start is a lower bound for the bucket's real
        // edge, but FP rounding of u * n can land u one bucket high;
        // the backward walk restores exactness (it is almost never
        // taken). The forward walk covers the bucket's entries.
        while (k > 0 && cdf[k - 1] >= u)
            --k;
        while (cdf[k] < u)
            ++k;
        return k;
    }

  private:
    /** guide[b] = first index with cdf[index] >= b / guide.size(). */
    std::vector<std::uint32_t> guide;
};

/**
 * Zipf distribution over ranks 1..n with exponent s:
 * P(rank = k) proportional to 1/k^s.
 *
 * Sampling uses an explicit inverse-CDF table accelerated by a guide
 * table (see GuideTable), expected O(1) per draw; both tables are
 * built once at construction. Suitable for the catalog sizes the
 * workloads use (up to a few million items).
 */
class ZipfDist : public Distribution
{
  public:
    /**
     * @param n Number of ranks (>= 1).
     * @param s Exponent (> 0); s around 0.8-1.0 matches web traces.
     */
    ZipfDist(std::uint64_t n, double s);

    /** Draw a rank in [1, n]; lower ranks are more popular. */
    double sample(Rng &rng) override;

    /** Draw as an integer rank. */
    std::uint64_t sampleRank(Rng &rng);

    double mean() const override { return mean_; }

    /** Probability of exactly rank k. */
    double pmf(std::uint64_t k) const;

    std::uint64_t size() const { return n; }

  private:
    std::uint64_t n;
    double s;
    double mean_;
    /** cdf[i] = P(rank <= i+1). */
    std::vector<double> cdf;
    /** O(1) indexed inversion over cdf (see GuideTable). */
    GuideTable guide;
};

/**
 * Empirical discrete distribution over (value, weight) pairs.
 * Used for measured mixes, e.g. the webmail action mix.
 */
class EmpiricalDist : public Distribution
{
  public:
    /**
     * @param values Outcome values.
     * @param weights Relative weights (>= 0, not all zero), same length.
     */
    EmpiricalDist(std::vector<double> values, std::vector<double> weights);

    double sample(Rng &rng) override;

    /** Draw the index of the chosen outcome. */
    std::size_t sampleIndex(Rng &rng);

    double mean() const override { return mean_; }

  private:
    std::vector<double> values;
    std::vector<double> cdf;
    /** O(1) indexed inversion over cdf (see GuideTable). */
    GuideTable guide;
    double mean_;
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_DISTRIBUTIONS_HH
