/**
 * @file
 * Closed-form queueing results for validating the discrete-event
 * models.
 *
 * The request-level server simulation and the blade-contention model
 * are exercised against these textbook formulas in the test suite:
 * if the DES disagrees with M/M/1 / M/M/c / M/D/1 under matching
 * assumptions, the simulator is wrong.
 */

#ifndef WSC_SIM_QUEUEING_HH
#define WSC_SIM_QUEUEING_HH

namespace wsc {
namespace sim {
namespace queueing {

/**
 * M/M/1 mean sojourn (wait + service) time.
 * @param lambda Arrival rate.
 * @param mu Service rate (> lambda).
 */
double mm1MeanSojourn(double lambda, double mu);

/** M/M/1 mean number in system. */
double mm1MeanInSystem(double lambda, double mu);

/** M/M/1 sojourn-time p-quantile (sojourn is exponential). */
double mm1SojournQuantile(double lambda, double mu, double p);

/** Erlang-C: probability an M/M/c arrival must wait. */
double erlangC(double lambda, double mu, unsigned servers);

/** M/M/c mean sojourn time. */
double mmcMeanSojourn(double lambda, double mu, unsigned servers);

/**
 * M/D/1 mean waiting time (deterministic service 1/mu), the
 * Pollaczek-Khinchine special case used by the blade-contention
 * model.
 */
double md1MeanWait(double lambda, double mu);

/**
 * Processor-sharing M/M/1: mean sojourn equals FIFO M/M/1 (a classic
 * result), provided for self-documenting call sites.
 */
double mm1PsMeanSojourn(double lambda, double mu);

} // namespace queueing
} // namespace sim
} // namespace wsc

#endif // WSC_SIM_QUEUEING_HH
