/**
 * @file
 * Discrete-event simulation kernel: event queue and simulation clock.
 *
 * The performance model is a request-level discrete-event simulation;
 * this kernel provides deterministic, stable-ordered event dispatch.
 */

#ifndef WSC_SIM_EVENT_QUEUE_HH
#define WSC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/calendar_queue.hh"
#include "sim/inline_action.hh"

namespace wsc {
namespace sim {

/**
 * Event-ordering backend selection for EventQueue (and, per shard,
 * ShardedEventQueue). Both backends dispatch in the identical
 * (time, seq) total order, so the choice is an execution knob: it can
 * never change simulation results, only their cost. The binary heap
 * remains the oracle — O(log n) but simple enough to trust — while
 * the calendar queue (see calendar_queue.hh) is amortized O(1) under
 * the hold-model schedules the ensemble generates.
 */
enum class QueueKind : std::uint8_t {
    Heap,     //!< binary min-heap (oracle; the seed structure)
    Calendar, //!< bucketed calendar with far-future overflow tier
};

/** Parse "heap"/"calendar" (as in --ensemble-queue); returns false on
 * any other spelling, leaving @p out untouched. */
bool parseQueueKind(const std::string &name, QueueKind &out);

/** Canonical spelling of @p kind ("heap"/"calendar"). */
const char *queueKindName(QueueKind kind);

/**
 * Opaque handle identifying a scheduled event (for cancellation).
 *
 * Encodes (slot, generation): slots are pooled and recycled across
 * events, and the generation stamp distinguishes the current tenant
 * from any stale handle to a previous one. 0 is never a valid id.
 */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Events at equal timestamps dispatch in scheduling order (FIFO), which
 * keeps runs reproducible across platforms. Cancellation is lazy — a
 * cancelled event's heap entry is skipped at dispatch — but validity is
 * a generation-stamp comparison rather than a hash lookup, so the
 * cancel-heavy workloads (webmail session timers, ytube QoS deadlines)
 * pay two array reads per dispatch instead of an unordered_set probe.
 * When stale entries pile up past half the heap, a compaction pass
 * rebuilds the heap without them, bounding memory under
 * schedule/cancel churn.
 */
class EventQueue
{
  public:
    /**
     * Lifetime counters of kernel activity, maintained unconditionally
     * (plain integer increments; bench_kernel guards that they stay in
     * the noise). The observability layer snapshots these into run
     * reports.
     */
    struct Counters {
        std::uint64_t scheduled = 0;   //!< schedule() calls
        std::uint64_t dispatched = 0;  //!< events run
        std::uint64_t cancelled = 0;   //!< successful cancel() calls
        std::uint64_t compactions = 0; //!< heap rebuilds (stale purge)
        std::size_t peakHeap = 0;      //!< max heap entries ever held
    };

    /** Per-event trace record delivered to the tracer, if installed. */
    struct TraceRecord {
        enum class Kind { Schedule, Dispatch, Cancel };
        Kind kind;
        Time now;     //!< clock when the record was emitted
        Time when;    //!< event's scheduled firing time
        EventId id;
    };

    /**
     * Trace sink. Null (the default) disables tracing; the hot path
     * then pays only an is-engaged test per operation.
     */
    using Tracer = std::function<void(const TraceRecord &)>;

    /** @param kind Ordering backend; an execution knob only (both
     * backends dispatch the identical (time, seq) order). */
    explicit EventQueue(QueueKind kind = QueueKind::Heap);

    // The queue holds closures that frequently capture `this` of model
    // objects; copying would dangle. Non-copyable, non-movable.
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Time now() const { return now_; }

    /**
     * Schedule @p action at absolute time @p when.
     *
     * The action is an InlineAction: any callable converts implicitly,
     * and callables within InlineAction::kInlineBytes are stored
     * without heap allocation (see inline_action.hh).
     *
     * @param owner Optional bulk-cancellation tag. Events sharing a
     *     non-zero owner can be retired together with cancelAll();
     *     owner 0 (the default) means untagged. The fault injector
     *     tags every event belonging to one simulated server with
     *     that server's id so a crash retires them in one pass.
     * @return id usable with cancel().
     * Scheduling in the past is a caller bug and panics.
     *
     * Takes the action by rvalue reference: callables still convert
     * implicitly (the conversion materializes a temporary that binds
     * here), but the 80-byte InlineAction is moved exactly once, into
     * the slot pool, instead of through a by-value parameter first.
     */
    EventId schedule(Time when, InlineAction &&action,
                     std::uint64_t owner = 0);

    /** Schedule @p action @p delay seconds from now. */
    EventId
    scheduleAfter(Time delay, InlineAction &&action,
                  std::uint64_t owner = 0)
    {
        return schedule(now_ + delay, std::move(action), owner);
    }

    /** Cancel a pending event. Returns false if already run/cancelled. */
    bool cancel(EventId id);

    /**
     * Bulk-cancel every pending event tagged with @p owner (which must
     * be non-zero; untagged events are never bulk-cancelled). One
     * O(heap) sweep instead of an O(n) search per cancelled event.
     * @return number of events cancelled.
     */
    std::size_t cancelAll(std::uint64_t owner);

    /**
     * Bulk-cancel every pending event the predicate selects. The
     * predicate sees (id, firing time, owner tag) and must be pure:
     * it is called once per live entry in unspecified order.
     * @return number of events cancelled.
     */
    std::size_t cancelIf(
        const std::function<bool(EventId, Time, std::uint64_t)> &pred);

    /** True when no runnable events remain. O(1). */
    bool empty() const { return live_ == 0; }

    /** Number of pending (non-cancelled) events. O(1). */
    std::size_t pending() const { return live_; }

    /**
     * Dispatch the next event.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or the clock passes @p until.
     * Events scheduled at exactly @p until still execute; the clock is
     * advanced to @p until if the queue drains earlier.
     * @return number of events dispatched.
     */
    std::uint64_t run(Time until);

    /** Run until the queue drains completely. */
    std::uint64_t runAll();

    /** Total events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return counters_.dispatched; }

    /** Lifetime kernel activity counters. */
    const Counters &counters() const { return counters_; }

    /**
     * Install (or, with an empty function, remove) a per-event trace
     * sink. The tracer sees schedules, dispatches, and successful
     * cancellations. Intended for debugging and the --trace paths;
     * simulation behaviour is unaffected.
     */
    void setTracer(Tracer tracer) { tracer_ = std::move(tracer); }

    /** Pre-size the heap and slot pool for @p events in flight. */
    void reserve(std::size_t events);

    /** Stale (cancelled) entries currently occupying heap storage. */
    std::size_t staleEntries() const { return stale_; }

    /** The ordering backend this queue was constructed with. */
    QueueKind kind() const { return kind_; }

  private:
    /**
     * Ordering entries carry metadata only; the action and the
     * bulk-cancel owner tag live in the slot pool (slotAction and
     * slotOwner, parallel to slotGen). Keeping the 24-byte entry free
     * of the 80-byte InlineAction makes the push/pop-heap sift moves
     * cheap, and lets cancel() destroy the closure immediately instead
     * of holding captures until the stale entry is skipped or
     * compacted away. The owner tag moves out too: it is read only by
     * the bulk-cancel sweeps, never on the sift path, and shaving it
     * fits two entries per cache line during sifts. The same 24-byte
     * record is what CalendarQueue buckets (EventEntry).
     */
    using Entry = EventEntry;

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            // Min-heap on (time, seq); seq breaks ties FIFO.
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Which ordering structure below is engaged. A plain branch on
     * this enum (not a virtual call) keeps the hot loop inlinable;
     * only the engaged structure ever holds entries. */
    QueueKind kind_;
    /** Heap order maintained manually (std::push_heap/pop_heap) so
     * compaction can filter the underlying vector in place. Engaged
     * iff kind_ == QueueKind::Heap. */
    std::vector<Entry> heap;
    /** Engaged iff kind_ == QueueKind::Calendar. */
    CalendarQueue cal_;
    /** Per-slot current generation; a heap entry is live iff its
     * stamp matches. Bumped on dispatch and on cancel. */
    std::vector<std::uint32_t> slotGen;
    /** Per-slot pending action, engaged while the slot's event is
     * live. Indexed in lockstep with slotGen. */
    std::vector<InlineAction> slotAction;
    /** Per-slot bulk-cancel owner tag (see schedule()); 0 = untagged.
     * Indexed in lockstep with slotGen. */
    std::vector<std::uint64_t> slotOwner;
    std::vector<std::uint32_t> freeSlots;
    Time now_ = 0.0;
    std::uint64_t nextSeq = 1;
    Counters counters_;
    Tracer tracer_;
    std::size_t live_ = 0;   //!< scheduled, not yet dispatched/cancelled
    std::size_t stale_ = 0;  //!< cancelled entries still in the heap

    bool liveEntry(const Entry &e) const
    {
        return slotGen[e.slot] == e.gen;
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);

    /** Pop stale entries off the ordering-structure minimum. */
    void skipStale();

    /** Dispatch the heap top, which must be live (post skipStale). */
    void dispatchTop();

    /** Shared dispatch tail: consume @p e (already removed from the
     * ordering structure), advance the clock, run the action. */
    void dispatchEntry(const Entry &e);

    /** Rebuild the ordering structure without stale entries when they
     * dominate. */
    void maybeCompact();

    /** run(until) hot loops, one per backend. */
    std::uint64_t runHeap(Time until);
    std::uint64_t runCalendar(Time until);

    /** Entries currently held by the engaged ordering structure. */
    std::size_t
    entriesHeld() const
    {
        return kind_ == QueueKind::Heap ? heap.size() : cal_.size();
    }
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_EVENT_QUEUE_HH
