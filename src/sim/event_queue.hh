/**
 * @file
 * Discrete-event simulation kernel: event queue and simulation clock.
 *
 * The performance model is a request-level discrete-event simulation;
 * this kernel provides deterministic, stable-ordered event dispatch.
 */

#ifndef WSC_SIM_EVENT_QUEUE_HH
#define WSC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace wsc {
namespace sim {

/** Simulation time, in seconds. */
using Time = double;

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Events at equal timestamps dispatch in scheduling order (FIFO), which
 * keeps runs reproducible across platforms. Cancellation is lazy: a
 * cancelled event stays in the heap but is skipped at dispatch.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    // The queue holds closures that frequently capture `this` of model
    // objects; copying would dangle. Non-copyable, non-movable.
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Time now() const { return now_; }

    /**
     * Schedule @p action at absolute time @p when.
     * @return id usable with cancel().
     * Scheduling in the past is a caller bug and panics.
     */
    EventId schedule(Time when, std::function<void()> action);

    /** Schedule @p action @p delay seconds from now. */
    EventId
    scheduleAfter(Time delay, std::function<void()> action)
    {
        return schedule(now_ + delay, std::move(action));
    }

    /** Cancel a pending event. Returns false if already run/cancelled. */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return pendingIds.empty(); }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return pendingIds.size(); }

    /**
     * Dispatch the next event.
     * @return false if the queue was empty.
     */
    bool step();

    /**
     * Run until the queue drains or the clock passes @p until.
     * Events scheduled at exactly @p until still execute; the clock is
     * advanced to @p until if the queue drains earlier.
     * @return number of events dispatched.
     */
    std::uint64_t run(Time until);

    /** Run until the queue drains completely. */
    std::uint64_t runAll();

    /** Total events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Entry {
        Time when;
        EventId id;
        std::function<void()> action;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            // Min-heap on (time, id); id breaks ties FIFO.
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    /** Ids scheduled but not yet dispatched or cancelled. */
    std::unordered_set<EventId> pendingIds;
    Time now_ = 0.0;
    EventId nextId = 1;
    std::uint64_t dispatched_ = 0;

    /** Pop cancelled entries off the heap top. */
    void skipCancelled();
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_EVENT_QUEUE_HH
