#include "sim/calendar_queue.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace sim {

namespace {

/** Entries sampled off the head to estimate the event-gap width. */
constexpr std::size_t kHeadSample = 32;

/** A serving bucket at least this large (holding more than one
 * distinct timestamp) at sort time means the width is stale. */
constexpr std::size_t kBucketOverload = 128;

/** Descending (when, seq): the serving bucket is sorted with this so
 * the global minimum pops from the back. seq is unique, so the order
 * is total and matches the heap's tie-break exactly. */
struct Greater {
    bool
    operator()(const EventEntry &a, const EventEntry &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

std::size_t
pow2Ceil(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

std::size_t
CalendarQueue::bucketTarget(std::size_t entries)
{
    return std::min(kMaxBuckets,
                    std::max(kMinBuckets, pow2Ceil(entries)));
}

CalendarQueue::CalendarQueue()
{
    buckets_.resize(kMinBuckets);
    yearEnd_ = width_ * double(buckets_.size());
}

void
CalendarQueue::reserve(std::size_t events)
{
    overflow_.reserve(std::min<std::size_t>(events, 1u << 20));
}

void
CalendarQueue::realign(Time when)
{
    Time span = width_ * double(buckets_.size());
    yearStart_ = std::floor(when / span) * span;
    if (yearStart_ > when)
        yearStart_ -= span; // FP: floor*span overshot
    if (when - yearStart_ >= span)
        yearStart_ = when; // FP: span addition undershot
    yearEnd_ = yearStart_ + span;
}

void
CalendarQueue::pushBelowYear(const EventEntry &e)
{
    // The year was anchored past this time (it jumped to a far-future
    // cluster while earlier times were still schedulable). Demote the
    // bucket tier to overflow and re-anchor at the new minimum; the
    // demoted entries migrate back as their years are reached.
    for (auto &b : buckets_) {
        overflow_.insert(overflow_.end(), b.begin(), b.end());
        b.clear();
    }
    inBuckets_ = 0;
    realign(e.when);
}

void
CalendarQueue::advanceYear()
{
    WSC_ASSERT(!overflow_.empty(),
               "advanceYear on an empty overflow tier");
    // Anchor the new year at the overflow minimum (skipping any
    // number of empty years in one step) and migrate everything due
    // within it. Swap-remove keeps the sweep O(|overflow|).
    Time mn = overflow_[0].when;
    for (const EventEntry &e : overflow_)
        mn = std::min(mn, e.when);
    realign(mn);
    for (std::size_t i = 0; i < overflow_.size();) {
        if (overflow_[i].when < yearEnd_) {
            std::size_t b = bucketOf(overflow_[i].when);
            buckets_[b].push_back(overflow_[i]);
            ++inBuckets_;
            overflow_[i] = overflow_.back();
            overflow_.pop_back();
        } else {
            ++i;
        }
    }
    cursor_ = bucketOf(mn);
    sorted_ = false;
    // Thrash guard. The head-sampled width tracks the densest pending
    // cluster; once that transient head drains, a sparse far tail
    // (governor timers, cross-shard lookahead messages) can be left
    // spread over thousands of near-empty years, and serving it by
    // year advances alone costs an O(|overflow|) sweep per handful of
    // events — quadratic in the tail size. A year that migrated
    // almost nothing out of a still-large overflow tier is that
    // signature; rebuild instead, which resamples the width from the
    // surviving population (now exactly the tail) and pulls it back
    // into the bucket tier in one pass.
    if (inBuckets_ * 8 < overflow_.size() &&
        overflow_.size() >= kHeadSample)
        rebuild(bucketTarget(size_));
}

void
CalendarQueue::locateMin()
{
    WSC_ASSERT(size_ > 0, "min() on an empty calendar queue");
    // The overload rebuild is attempted at most once per call: the
    // head-sampled width usually disperses the bucket, but nothing
    // guarantees it (adversarial clustering), and serving an oversized
    // bucket is merely slow where a rebuild loop would be forever.
    bool rebuildTried = false;
    for (;;) {
        if (inBuckets_ == 0)
            advanceYear();
        while (buckets_[cursor_].empty()) {
            ++cursor_;
            sorted_ = false;
            WSC_ASSERT(cursor_ < buckets_.size(),
                       "calendar cursor ran past the year");
        }
        auto &vec = buckets_[cursor_];
        if (sorted_)
            return;
        if (!rebuildTried && vec.size() >= kBucketOverload) {
            // Overloaded serving bucket: the width is stale for the
            // current event-rate regime. Rebuild (resampling the
            // width) only if a finer width can actually subdivide
            // this bucket — pure same-time storms cannot be split
            // and are just sorted and served.
            Time mn = vec[0].when, mx = vec[0].when;
            for (const EventEntry &e : vec) {
                mn = std::min(mn, e.when);
                mx = std::max(mx, e.when);
            }
            if (mx > mn &&
                width_ > 4.0 * (mx - mn) / double(vec.size())) {
                rebuild(bucketTarget(size_));
                rebuildTried = true;
                continue;
            }
        }
        std::sort(vec.begin(), vec.end(), Greater{});
        sorted_ = true;
        return;
    }
}

void
CalendarQueue::grow()
{
    if (buckets_.size() < kMaxBuckets)
        rebuild(bucketTarget(size_));
}

void
CalendarQueue::shrink()
{
    rebuild(bucketTarget(std::max<std::size_t>(size_, 1)));
}

void
CalendarQueue::rebuild(std::size_t nBuckets)
{
    ++rebuilds_;
    std::vector<EventEntry> all;
    all.reserve(size_);
    for (auto &b : buckets_) {
        all.insert(all.end(), b.begin(), b.end());
        b.clear();
    }
    all.insert(all.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    buckets_.resize(nBuckets);
    inBuckets_ = 0;
    cursor_ = 0;
    sorted_ = false;
    if (all.empty()) {
        yearEnd_ = yearStart_ + width_ * double(buckets_.size());
        return;
    }

    // Resample the width: twice the mean gap over the earliest
    // kHeadSample entries (Brown's rule). Head sampling is what makes
    // one far-future outlier harmless — a (max-min)/n rule would
    // stretch the width by the outlier's distance and collapse the
    // dense head into a single serving bucket. Entries past the year
    // this width implies just land in the overflow tier, and a whole
    // sparse gap is skipped in one re-anchor when the buckets drain.
    Time mx = all[0].when;
    for (const EventEntry &e : all)
        mx = std::max(mx, e.when);
    std::size_t k = std::min(all.size(), kHeadSample);
    std::partial_sort(all.begin(), all.begin() + std::ptrdiff_t(k),
                      all.end(),
                      [](const EventEntry &a, const EventEntry &b) {
                          return a.when < b.when;
                      });
    Time mn = all[0].when;
    Time newW = 0.0;
    if (k >= 2 && all[k - 1].when > mn)
        newW = 2.0 * (all[k - 1].when - mn) / double(k - 1);
    else if (mx > mn)
        newW = 2.0 * (mx - mn) / double(all.size());
    if (newW > 0.0) {
        width_ = newW;
        invWidth_ = 1.0 / newW;
    }
    // else: every entry shares one timestamp; keep the old width.

    realign(mn);
    for (const EventEntry &e : all) {
        if (e.when >= yearEnd_) {
            overflow_.push_back(e);
        } else {
            buckets_[bucketOf(e.when)].push_back(e);
            ++inBuckets_;
        }
    }
    cursor_ = bucketOf(mn);
}

} // namespace sim
} // namespace wsc
