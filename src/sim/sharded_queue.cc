#include "sim/sharded_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace sim {

ShardedEventQueue::ShardedEventQueue(unsigned lanes, unsigned shards)
{
    WSC_ASSERT(lanes >= 1, "need at least one lane");
    shards = std::max(1u, std::min(shards, lanes));
    queues_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        queues_.push_back(std::make_unique<EventQueue>());
    laneShard_.resize(lanes);
    for (unsigned l = 0; l < lanes; ++l)
        laneShard_[l] =
            unsigned(std::uint64_t(l) * shards / lanes);
    outbox_.resize(std::size_t(lanes) * lanes);
}

void
ShardedEventQueue::post(unsigned srcLane, unsigned dstLane, Time when,
                        InlineAction &&action)
{
    WSC_ASSERT(srcLane < lanes() && dstLane < lanes(),
               "lane out of range");
    // A message landing inside the current window would arrive at a
    // shard that may already have advanced past it: the send delay
    // must cover the lookahead.
    WSC_ASSERT(when >= windowEnd_,
               "cross-lane post inside the lookahead window");
    outbox_[std::size_t(srcLane) * lanes() + dstLane].push_back(
        {when, std::move(action)});
}

ShardedEventQueue::RunStats
ShardedEventQueue::run(Time until, Time lookahead, ThreadPool *pool,
                       const BarrierFn &onBarrier)
{
    WSC_ASSERT(lookahead > 0.0, "lookahead must be positive");
    RunStats stats;
    const unsigned nShards = shards();
    const unsigned nLanes = lanes();
    std::uint64_t dispatchedBefore = 0;
    for (auto &q : queues_)
        dispatchedBefore += q->dispatched();
    Time t = windowStart_;
    while (t < until) {
        Time end = std::min(t + lookahead, until);
        windowEnd_ = end;

        // Advance every shard to the common horizon. Even one shard
        // runs through this same windowed loop so message-delivery
        // seq numbers interleave identically at every shard count.
        if (nShards == 1 || pool == nullptr) {
            for (unsigned s = 0; s < nShards; ++s)
                queues_[s]->run(end);
        } else {
            // Shards write only their own queue and their own lanes'
            // outbox rows, so the window needs no locking.
            parallelFor(
                nShards,
                [&](std::size_t s) { queues_[s]->run(end); }, pool);
        }

        // Barrier: deliver cross-lane messages in (dst, src, send)
        // order — a function of the lane grid only, so the dst
        // queue's FIFO tie-breaks cannot depend on the shard count.
        for (unsigned dst = 0; dst < nLanes; ++dst) {
            for (unsigned src = 0; src < nLanes; ++src) {
                auto &box =
                    outbox_[std::size_t(src) * nLanes + dst];
                for (Msg &m : box) {
                    laneQueue(dst).schedule(m.when,
                                            std::move(m.action));
                    ++stats.messages;
                }
                box.clear();
            }
        }

        windowStart_ = t = end;
        ++stats.windows;
        if (onBarrier)
            onBarrier(end);
    }
    std::uint64_t dispatchedAfter = 0;
    for (auto &q : queues_)
        dispatchedAfter += q->dispatched();
    stats.dispatched = dispatchedAfter - dispatchedBefore;
    return stats;
}

void
ShardedEventQueue::reserve(std::size_t eventsPerShard)
{
    for (auto &q : queues_)
        q->reserve(eventsPerShard);
}

EventQueue::Counters
ShardedEventQueue::counters() const
{
    EventQueue::Counters sum;
    for (auto &q : queues_) {
        const auto &c = q->counters();
        sum.scheduled += c.scheduled;
        sum.dispatched += c.dispatched;
        sum.cancelled += c.cancelled;
        sum.compactions += c.compactions;
        sum.peakHeap = std::max(sum.peakHeap, c.peakHeap);
    }
    return sum;
}

} // namespace sim
} // namespace wsc
