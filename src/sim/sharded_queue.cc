#include "sim/sharded_queue.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/logging.hh"

namespace wsc {
namespace sim {

namespace {

/** Spin iterations before a worker parks on the condition variable.
 * Ensemble windows are microseconds of work; parking between them
 * would cost a futex round trip per shard per window. The budget is
 * large enough to cover any window the control plane doesn't stall,
 * small enough that a genuinely idle worker yields the core fast. */
constexpr unsigned kSpinBudget = 1u << 14;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

/**
 * A persistent spin-then-park worker team for one run() call.
 *
 * The main thread publishes work by bumping `epoch` (release); the
 * N-1 helper threads spin on it (acquire) and then claim shard
 * indices from a shared cursor. Completion is a done-counter the
 * main thread spins on. Everything a worker wrote before its
 * done-increment (queue mutations, outbox rows, stats slots) is
 * visible to the main thread after it observes the count, and
 * everything the main thread wrote before the epoch bump (window
 * horizon, phase, control-plane effects) is visible to the workers —
 * the two atomics carry all the happens-before edges the windows
 * need, which is what the TSan job checks end to end.
 */
class Team
{
  public:
    using WorkFn = std::function<void(unsigned)>;

    explicit Team(unsigned helpers) : helpers_(helpers)
    {
        threads_.reserve(helpers);
        for (unsigned i = 0; i < helpers; ++i)
            threads_.emplace_back([this] { helperMain(); });
    }

    ~Team()
    {
        {
            std::lock_guard<std::mutex> g(m_);
            stop_.store(true, std::memory_order_relaxed);
            epoch_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    /** Run work(i) for i in [0, tasks) across the helpers and the
     * calling thread; returns when every index completed AND every
     * helper has left the claim loop (quiescence — without it a
     * helper's final failed claim could straddle the next round's
     * cursor reset and steal an index). */
    void
    fanOut(unsigned tasks, const WorkFn &work)
    {
        tasks_ = tasks;
        work_ = &work;
        cursor_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        roundDone_.store(0, std::memory_order_relaxed);
        {
            // The empty critical section orders the epoch bump
            // against any helper that just decided to park: either
            // it saw the new epoch before waiting, or it is already
            // inside wait() and the notify below lands.
            std::lock_guard<std::mutex> g(m_);
            epoch_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
        claimLoop();
        while (done_.load(std::memory_order_acquire) < tasks_ ||
               roundDone_.load(std::memory_order_acquire) < helpers_)
            cpuRelax();
    }

  private:
    void
    claimLoop()
    {
        const WorkFn &work = *work_;
        for (;;) {
            unsigned i =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks_)
                return;
            work(i);
            done_.fetch_add(1, std::memory_order_acq_rel);
        }
    }

    void
    helperMain()
    {
        std::uint64_t seen = 0;
        for (;;) {
            unsigned spins = 0;
            while (epoch_.load(std::memory_order_acquire) == seen) {
                if (++spins >= kSpinBudget) {
                    std::unique_lock<std::mutex> lk(m_);
                    cv_.wait(lk, [&] {
                        return epoch_.load(
                                   std::memory_order_acquire) != seen;
                    });
                    break;
                }
                cpuRelax();
            }
            seen = epoch_.load(std::memory_order_acquire);
            if (stop_.load(std::memory_order_relaxed))
                return;
            claimLoop();
            roundDone_.fetch_add(1, std::memory_order_acq_rel);
        }
    }

    const unsigned helpers_;
    std::vector<std::thread> threads_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> cursor_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<unsigned> roundDone_{0};
    std::atomic<bool> stop_{false};
    unsigned tasks_ = 0;
    const WorkFn *work_ = nullptr;
    std::mutex m_;
    std::condition_variable cv_;
};

} // namespace

ShardedEventQueue::ShardedEventQueue(unsigned lanes, unsigned shards,
                                     QueueKind kind)
    : kind_(kind)
{
    WSC_ASSERT(lanes >= 1, "need at least one lane");
    shards = std::max(1u, std::min(shards, lanes));
    queues_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        queues_.push_back(std::make_unique<EventQueue>(kind));
    laneShard_.resize(lanes);
    for (unsigned l = 0; l < lanes; ++l)
        laneShard_[l] =
            unsigned(std::uint64_t(l) * shards / lanes);
    outbox_.resize(std::size_t(lanes) * lanes);
}

void
ShardedEventQueue::post(unsigned srcLane, unsigned dstLane, Time when,
                        InlineAction &&action)
{
    WSC_ASSERT(srcLane < lanes() && dstLane < lanes(),
               "lane out of range");
    // A message landing inside the current window would arrive at a
    // shard that may already have advanced past it: the send delay
    // must cover the lookahead.
    WSC_ASSERT(when >= windowEnd_,
               "cross-lane post inside the lookahead window");
    outbox_[std::size_t(srcLane) * lanes() + dstLane].push_back(
        {when, std::move(action)});
}

std::uint64_t
ShardedEventQueue::drainShard(unsigned shard)
{
    // (dst asc, src asc, send order) — exactly the slice of the
    // serial drain's order that touches this shard's queue, so the
    // queue's seq assignment is identical however many threads the
    // drain fans over.
    const unsigned nLanes = lanes();
    std::uint64_t moved = 0;
    for (unsigned dst = 0; dst < nLanes; ++dst) {
        if (laneShard_[dst] != shard)
            continue;
        for (unsigned src = 0; src < nLanes; ++src) {
            auto &box = outbox_[std::size_t(src) * nLanes + dst];
            for (Msg &m : box) {
                queues_[shard]->schedule(m.when, std::move(m.action));
                ++moved;
            }
            box.clear();
        }
    }
    return moved;
}

ShardedEventQueue::RunStats
ShardedEventQueue::run(Time until, Time lookahead, unsigned workers,
                       const BarrierFn &onBarrier)
{
    WSC_ASSERT(lookahead > 0.0, "lookahead must be positive");
    RunStats stats;
    const unsigned nShards = shards();
    workers = std::max(1u, std::min(workers, nShards));

    // startDispatched anchors the run totals; mark is the rolling
    // per-window baseline for the imbalance stat.
    std::vector<std::uint64_t> startDispatched(nShards), mark(nShards);
    std::vector<std::uint64_t> drained(nShards, 0);
    for (unsigned s = 0; s < nShards; ++s)
        startDispatched[s] = mark[s] = queues_[s]->dispatched();
    stats.shardDispatched.assign(nShards, 0);
    double imbalanceSum = 0.0;
    std::uint64_t imbalanceWindows = 0;

    // The team exists for the whole run: thread creation and the
    // first page faults are paid once, and each window's two fan-out
    // phases cost an atomic bump plus bounded spinning.
    std::unique_ptr<Team> team;
    if (workers > 1 && nShards > 1)
        team = std::make_unique<Team>(workers - 1);

    Time t = windowStart_;
    while (t < until) {
        Time end = std::min(t + lookahead, until);
        windowEnd_ = end;

        // Phase 1: advance every shard to the common horizon. Even
        // one shard runs through this same windowed loop so
        // message-delivery seq numbers interleave identically at
        // every shard count. Shards write only their own queue and
        // their own lanes' outbox rows, so the phase needs no locks.
        if (team) {
            team->fanOut(nShards, [&](unsigned s) {
                queues_[s]->run(end);
            });
        } else {
            for (unsigned s = 0; s < nShards; ++s)
                queues_[s]->run(end);
        }

        // Per-window imbalance: how much of the window the busiest
        // shard carried.
        std::uint64_t windowTotal = 0, windowMax = 0;
        for (unsigned s = 0; s < nShards; ++s) {
            std::uint64_t d = queues_[s]->dispatched() - mark[s];
            windowTotal += d;
            windowMax = std::max(windowMax, d);
        }
        if (windowTotal > 0) {
            imbalanceSum += double(windowMax) * double(nShards) /
                            double(windowTotal);
            ++imbalanceWindows;
        }

        // Phase 2: deliver cross-lane messages. Each worker owns a
        // whole destination shard, so per-queue schedule order (and
        // therefore seq assignment) matches the serial drain.
        if (team) {
            team->fanOut(nShards, [&](unsigned s) {
                drained[s] = drainShard(s);
            });
            for (unsigned s = 0; s < nShards; ++s)
                stats.messages += drained[s];
        } else {
            for (unsigned s = 0; s < nShards; ++s)
                stats.messages += drainShard(s);
        }

        windowStart_ = t = end;
        ++stats.windows;
        if (onBarrier)
            onBarrier(end);

        // Re-mark after the barrier so the next window's imbalance
        // counts only window work, not barrier deliveries.
        for (unsigned s = 0; s < nShards; ++s)
            mark[s] = queues_[s]->dispatched();
    }

    for (unsigned s = 0; s < nShards; ++s) {
        stats.shardDispatched[s] =
            queues_[s]->dispatched() - startDispatched[s];
        stats.dispatched += stats.shardDispatched[s];
    }
    if (imbalanceWindows > 0)
        stats.meanWindowImbalance =
            imbalanceSum / double(imbalanceWindows);
    return stats;
}

void
ShardedEventQueue::reserve(std::size_t eventsPerShard)
{
    for (auto &q : queues_)
        q->reserve(eventsPerShard);
}

EventQueue::Counters
ShardedEventQueue::counters() const
{
    EventQueue::Counters sum;
    for (auto &q : queues_) {
        const auto &c = q->counters();
        sum.scheduled += c.scheduled;
        sum.dispatched += c.dispatched;
        sum.cancelled += c.cancelled;
        sum.compactions += c.compactions;
        sum.peakHeap = std::max(sum.peakHeap, c.peakHeap);
    }
    return sum;
}

} // namespace sim
} // namespace wsc
