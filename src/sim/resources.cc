#include "sim/resources.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.hh"

namespace wsc {
namespace sim {

namespace {

/** Absolute floor for the finished-work threshold. */
constexpr double workEpsilonFloor = 1e-12;

/**
 * Finished-work threshold relative to accumulated progress. Progress
 * grows monotonically (capacity * time), so an absolute epsilon
 * eventually drops below the representable resolution of both the
 * progress counter and the event clock; scaling with progress keeps
 * "remaining work" distinguishable from FP residue at any sim length.
 */
double
workEpsilon(double progress)
{
    return std::max(workEpsilonFloor, progress * 1e-9);
}

} // namespace

PsResource::PsResource(EventQueue &eq, std::string name, double capacity,
                       unsigned slots, std::uint64_t owner)
    : eq(eq), name_(std::move(name)), cap(capacity), slots(slots),
      owner_(owner), lastUpdate(eq.now()), createdAt(eq.now())
{
    WSC_ASSERT(capacity > 0.0, "PS resource capacity must be positive");
    WSC_ASSERT(slots >= 1, "PS resource needs at least one slot");
    heap.reserve(64);
    doneSlots.reserve(64);
    doneFree.reserve(64);
    finishedScratch.reserve(64);
}

double
PsResource::perJobRate(std::size_t n) const
{
    if (n == 0)
        return 0.0;
    double per_slot = cap / double(slots);
    double share = std::min(1.0, double(slots) / double(n));
    return per_slot * share;
}

void
PsResource::advance()
{
    Time now = eq.now();
    double dt = now - lastUpdate;
    if (dt > 0.0 && !heap.empty()) {
        double rate = perJobRate(heap.size());
        progress += rate * dt;
        double used = rate * double(heap.size());
        busyIntegral += (used / cap) * dt;
        depthIntegral += double(heap.size()) * dt;
    }
    lastUpdate = now;
}

void
PsResource::reschedule()
{
    if (completionEvent) {
        eq.cancel(completionEvent);
        completionEvent = 0;
    }
    if (heap.empty())
        return;
    double remaining = heap.front().finishMark - progress;
    double rate = perJobRate(heap.size());
    double dt =
        (remaining <= workEpsilon(progress)) ? 0.0 : remaining / rate;
    completionEvent =
        eq.scheduleAfter(dt, [this] { onCompletion(); }, owner_);
}

std::size_t
PsResource::purge()
{
    advance();
    std::size_t dropped = heap.size();
    for (const Job &job : heap) {
        doneSlots[job.doneSlot].reset();
        doneFree.push_back(job.doneSlot);
    }
    heap.clear();
    if (completionEvent) {
        eq.cancel(completionEvent);
        completionEvent = 0;
    }
    return dropped;
}

void
PsResource::setCapacity(double capacity)
{
    WSC_ASSERT(capacity > 0.0, "PS resource capacity must be positive");
    // Bank progress at the old rate, then let the remaining work of
    // every active job proceed at the new one.
    advance();
    cap = capacity;
    reschedule();
}

void
PsResource::submit(double work, Completion done)
{
    WSC_ASSERT(work >= 0.0, "negative work submitted to " << name_);
    WSC_ASSERT(done, "null completion for " << name_);
    advance();
    std::uint32_t slot;
    if (!doneFree.empty()) {
        slot = doneFree.back();
        doneFree.pop_back();
        doneSlots[slot] = std::move(done);
    } else {
        slot = std::uint32_t(doneSlots.size());
        doneSlots.push_back(std::move(done));
    }
    heap.push_back(Job{progress + work, nextSeq++, slot});
    std::push_heap(heap.begin(), heap.end(), LaterFinish{});
    if (heap.size() > peakDepth)
        peakDepth = heap.size();
    reschedule();
}

void
PsResource::onCompletion()
{
    completionEvent = 0;
    advance();
    // Collect finished jobs first: their callbacks may resubmit into
    // this resource, so restore invariants before invoking any of
    // them. The scratch buffer is a member (capacity retained) so the
    // steady state performs no allocation; completions cannot re-enter
    // onCompletion synchronously, so it is free for the taking here.
    finishedScratch.clear();
    auto pop_top = [&] {
        std::pop_heap(heap.begin(), heap.end(), LaterFinish{});
        std::uint32_t slot = heap.back().doneSlot;
        finishedScratch.push_back(std::move(doneSlots[slot]));
        doneFree.push_back(slot);
        heap.pop_back();
        ++completed_;
    };
    while (!heap.empty() &&
           heap.front().finishMark - progress <= workEpsilon(progress)) {
        pop_top();
    }
    if (finishedScratch.empty() && !heap.empty()) {
        // Defensive guard against a zero-progress spin: if the head
        // job's remaining service cannot advance the event clock by
        // even one representable tick, it is FP residue - retire it.
        double remaining = heap.front().finishMark - progress;
        double dt = remaining / perJobRate(heap.size());
        if (eq.now() + dt == eq.now())
            pop_top();
    }
    reschedule();
    for (std::size_t i = 0; i < finishedScratch.size(); ++i)
        finishedScratch[i]();
}

double
PsResource::utilization() const
{
    Time now = eq.now();
    double span = now - createdAt;
    if (span <= 0.0)
        return 0.0;
    double integral = busyIntegral;
    // Account for the in-progress interval since the last update.
    double dt = now - lastUpdate;
    if (dt > 0.0 && !heap.empty()) {
        double used = perJobRate(heap.size()) * double(heap.size());
        integral += (used / cap) * dt;
    }
    return integral / span;
}

StationStats
PsResource::stats() const
{
    StationStats s;
    s.name = name_;
    s.utilization = utilization();
    s.completed = completed_;
    s.peakDepth = peakDepth;
    Time now = eq.now();
    double span = now - createdAt;
    if (span > 0.0) {
        double integral = depthIntegral;
        double dt = now - lastUpdate;
        if (dt > 0.0)
            integral += double(heap.size()) * dt;
        s.meanDepth = integral / span;
    }
    return s;
}

FifoResource::FifoResource(EventQueue &eq, std::string name,
                           unsigned servers, std::uint64_t owner)
    : eq(eq), name_(std::move(name)), servers(servers), owner_(owner),
      lastUpdate(eq.now()), createdAt(eq.now())
{
    WSC_ASSERT(servers >= 1, "FIFO resource needs at least one server");
    laneEvent.assign(servers, 0);
    laneDone.resize(servers);
    for (unsigned lane = servers; lane > 0; --lane)
        freeLanes.push_back(lane - 1);
}

void
FifoResource::accumulate()
{
    Time now = eq.now();
    double dt = now - lastUpdate;
    if (dt > 0.0) {
        busyIntegral += dt * double(busy) / double(servers);
        depthIntegral += dt * double(busy + queue.size());
    }
    lastUpdate = now;
}

void
FifoResource::startService(Pending p)
{
    accumulate();
    ++busy;
    WSC_ASSERT(!freeLanes.empty(), "no free lane in " << name_);
    unsigned lane = freeLanes.back();
    freeLanes.pop_back();
    // The completion parks in the lane's slot and the event closure
    // captures only {this, lane}: the seed code's shared_ptr
    // indirection (and its allocation) is gone, and the closure stays
    // far inside InlineAction's inline storage.
    laneDone[lane] = std::move(p.done);
    laneEvent[lane] = eq.scheduleAfter(
        p.serviceTime,
        [this, lane] {
            accumulate();
            --busy;
            ++completed_;
            laneEvent[lane] = 0;
            Completion done = std::move(laneDone[lane]);
            freeLanes.push_back(lane);
            // Start the next queued request before running the callback
            // so a resubmitting callback queues behind existing work.
            if (!queue.empty()) {
                Pending next = std::move(queue.front());
                queue.pop_front();
                startService(std::move(next));
            }
            done();
        },
        owner_);
}

std::size_t
FifoResource::purge()
{
    accumulate();
    std::size_t dropped = queue.size() + busy;
    queue.clear();
    for (unsigned lane = 0; lane < servers; ++lane) {
        if (laneEvent[lane]) {
            eq.cancel(laneEvent[lane]);
            laneEvent[lane] = 0;
            laneDone[lane].reset();
            freeLanes.push_back(lane);
        }
    }
    busy = 0;
    return dropped;
}

void
FifoResource::submit(double service_time, Completion done)
{
    WSC_ASSERT(service_time >= 0.0,
               "negative service time submitted to " << name_);
    WSC_ASSERT(done, "null completion for " << name_);
    if (busy < servers) {
        startService(Pending{service_time, std::move(done)});
    } else {
        queue.push_back(Pending{service_time, std::move(done)});
    }
    if (busy + queue.size() > peakDepth)
        peakDepth = busy + queue.size();
}

double
FifoResource::utilization() const
{
    Time now = eq.now();
    double span = now - createdAt;
    if (span <= 0.0)
        return 0.0;
    double integral =
        busyIntegral + (now - lastUpdate) * double(busy) / double(servers);
    return integral / span;
}

StationStats
FifoResource::stats() const
{
    StationStats s;
    s.name = name_;
    s.utilization = utilization();
    s.completed = completed_;
    s.peakDepth = peakDepth;
    Time now = eq.now();
    double span = now - createdAt;
    if (span > 0.0) {
        double integral = depthIntegral +
                          (now - lastUpdate) * double(busy + queue.size());
        s.meanDepth = integral / span;
    }
    return s;
}

} // namespace sim
} // namespace wsc
