/**
 * @file
 * Batched, cache-resident guide-table sampling.
 *
 * Scalar guide-table inversion (ZipfDist::sampleRank,
 * EmpiricalDist::sampleIndex) pays two *dependent* memory accesses per
 * draw: the guide cell at a uniformly distributed bucket, then the CDF
 * line the cell points at. Over multi-MB tables both miss, and the
 * dependency chain serializes them — EXPERIMENTS.md measured this at
 * ~34% of closed-loop runtime.
 *
 * SampleBatcher restructures a block of draws into structure-of-arrays
 * passes so the misses overlap instead of serializing:
 *
 *   pass 1: draw the block's uniforms, compute bucket indices, and
 *           software-prefetch every guide cell;
 *   pass 2: read the (now cache-resident) guide cells and prefetch the
 *           CDF line each scan starts at;
 *   pass 3: resolve every lookup with GuideTable::resolveFrom — the
 *           exact routine the scalar path uses.
 *
 * Because one uniform is consumed per draw in draw order, a batched
 * block fed from the same Rng state yields the *same sequence* of
 * ranks as scalar draws — the batcher changes memory behavior, not
 * results. The SplitMix64 overloads trade that bit-identity for draw
 * rate: uniforms come from the counter-based fast generator
 * (util/random.hh), same law on the 53-bit grid but different values,
 * which is the relaxation fast mode's statistical-equivalence gate
 * covers. Fast mode's other relaxation is where the drivers *source*
 * the stream (a dedicated split consumed in blocks); see
 * sim/fast_mode.hh.
 *
 * The bucket/index loops are simple enough for the compiler to
 * auto-vectorize; the wins are dominated by the memory-level
 * parallelism the prefetch passes create, not by ALU width.
 */

#ifndef WSC_SIM_BATCH_SAMPLER_HH
#define WSC_SIM_BATCH_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "sim/distributions.hh"

namespace wsc {
namespace sim {

/**
 * Reusable scratch + the two-pass batched lookup. One instance per
 * consumer (workload generator, replication, shard); instances hold no
 * RNG state, so per-consumer stream splits stay the caller's choice.
 */
class SampleBatcher
{
  public:
    /** @param block Draws resolved per internal pass (scratch size). */
    explicit SampleBatcher(std::size_t block = 256);

    /**
     * Draw @p n Zipf ranks into @p out. Consumes exactly n uniforms
     * from @p rng in draw order: the output sequence is bit-identical
     * to n scalar dist.sampleRank(rng) calls from the same Rng state.
     */
    void drawZipfRanks(const ZipfDist &dist, Rng &rng,
                       std::uint64_t *out, std::size_t n);

    /**
     * Draw @p n empirical outcome *indices* into @p out; same
     * bit-identical-sequence guarantee as drawZipfRanks.
     */
    void drawEmpiricalIndices(const EmpiricalDist &dist, Rng &rng,
                              std::uint32_t *out, std::size_t n);

    /**
     * Draw @p n raw guide-table inversions of @p cdf into @p out.
     * Building block for the typed wrappers above.
     */
    void drawIndices(const GuideTable &guide,
                     const std::vector<double> &cdf, Rng &rng,
                     std::uint32_t *out, std::size_t n);

    /**
     * Fast-engine overloads: identical resolution over SplitMix64
     * uniforms. Same per-draw law, NOT bit-identical to the Rng
     * overloads — fast-mode demand streams only.
     */
    void drawZipfRanks(const ZipfDist &dist, SplitMix64 &rng,
                       std::uint64_t *out, std::size_t n);
    void drawEmpiricalIndices(const EmpiricalDist &dist,
                              SplitMix64 &rng, std::uint32_t *out,
                              std::size_t n);
    void drawIndices(const GuideTable &guide,
                     const std::vector<double> &cdf, SplitMix64 &rng,
                     std::uint32_t *out, std::size_t n);

    /**
     * Draw @p n lognormal variates via Box-Muller over SplitMix64
     * uniforms. Exactly @p dist's law (the transform is exact), not
     * bit-identical to LognormalDist::sampleImpl — fast-mode demand
     * streams only.
     */
    void drawLognormal(const LognormalDist &dist, SplitMix64 &rng,
                       double *out, std::size_t n);

    std::size_t blockSize() const { return block; }

  private:
    std::size_t block;
    /** SoA scratch, reused across calls (no steady-state allocation). */
    std::vector<double> u;          //!< uniforms for the block
    std::vector<std::uint32_t> at;  //!< bucket, then scan-start index
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_BATCH_SAMPLER_HH
