#include "sim/distributions.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace sim {

UniformDist::UniformDist(double lo, double hi)
    : Distribution(DistKind::Uniform), lo(lo), hi(hi)
{
    WSC_ASSERT(hi > lo, "uniform range empty");
}

ExponentialDist::ExponentialDist(double mean)
    : Distribution(DistKind::Exponential), mean_(mean)
{
    WSC_ASSERT(mean > 0.0, "exponential mean must be positive");
}

LognormalDist::LognormalDist(double mean, double cov)
    : Distribution(DistKind::Lognormal), mean_(mean)
{
    WSC_ASSERT(mean > 0.0, "lognormal mean must be positive");
    WSC_ASSERT(cov > 0.0, "lognormal cov must be positive");
    // mean = exp(mu + sigma^2/2); cov^2 = exp(sigma^2) - 1.
    double sigma2 = std::log(1.0 + cov * cov);
    sigma = std::sqrt(sigma2);
    mu = std::log(mean) - 0.5 * sigma2;
}

BoundedParetoDist::BoundedParetoDist(double lo, double hi, double alpha)
    : Distribution(DistKind::BoundedPareto), lo(lo), hi(hi),
      alpha(alpha), loAlpha(std::pow(lo, alpha)),
      hiAlpha(std::pow(hi, alpha)), negInvAlpha(-1.0 / alpha)
{
    WSC_ASSERT(lo > 0.0 && hi > lo, "bounded pareto needs 0 < lo < hi");
    WSC_ASSERT(alpha > 0.0, "pareto shape must be positive");
}

double
BoundedParetoDist::sampleImpl(Rng &rng)
{
    // Inverse CDF of the bounded Pareto; the pow(lo, alpha) /
    // pow(hi, alpha) constants are hoisted into the constructor.
    double u = rng.uniform();
    double la = loAlpha;
    double ha = hiAlpha;
    double x = std::pow(-(u * ha - u * la - ha) / (ha * la), negInvAlpha);
    return std::clamp(x, lo, hi);
}

double
BoundedParetoDist::mean() const
{
    if (std::abs(alpha - 1.0) < 1e-12) {
        double la = 1.0 / lo, ha = 1.0 / hi;
        return std::log(hi / lo) / (la - ha);
    }
    double la = std::pow(lo, alpha);
    double num = la * alpha *
                 (std::pow(lo, 1.0 - alpha) - std::pow(hi, 1.0 - alpha));
    double den = (alpha - 1.0) * (1.0 - std::pow(lo / hi, alpha));
    return num / den;
}

GuideTable::GuideTable(const std::vector<double> &cdf)
{
    WSC_ASSERT(!cdf.empty(), "guide table over empty cdf");
    WSC_ASSERT(cdf.size() <= std::uint32_t(-1),
               "cdf too large for guide table");
    // Two-pointer merge: guide[b] = first index with cdf[idx] >= b/n.
    std::size_t n = cdf.size();
    guide.resize(n);
    std::size_t k = 0;
    for (std::size_t b = 0; b < n; ++b) {
        double edge = double(b) / double(n);
        while (k < n && cdf[k] < edge)
            ++k;
        guide[b] = std::uint32_t(k);
    }
}

ZipfDist::ZipfDist(std::uint64_t n, double s)
    : Distribution(DistKind::Zipf), n(n), s(s)
{
    WSC_ASSERT(n >= 1, "zipf needs at least one rank");
    WSC_ASSERT(s > 0.0, "zipf exponent must be positive");
    cdf.resize(n);
    double acc = 0.0;
    double mean_acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
        double p = std::pow(double(k), -s);
        acc += p;
        mean_acc += double(k) * p;
        cdf[k - 1] = acc;
    }
    double norm = acc;
    for (auto &c : cdf)
        c /= norm;
    cdf.back() = 1.0; // guard FP drift
    mean_ = mean_acc / norm;
    guide = GuideTable(cdf);
}

double
ZipfDist::pmf(std::uint64_t k) const
{
    WSC_ASSERT(k >= 1 && k <= n, "zipf pmf rank out of range: " << k);
    double prev = (k == 1) ? 0.0 : cdf[k - 2];
    return cdf[k - 1] - prev;
}

EmpiricalDist::EmpiricalDist(std::vector<double> values_in,
                             std::vector<double> weights)
    : Distribution(DistKind::Empirical), values(std::move(values_in))
{
    WSC_ASSERT(!values.empty(), "empirical distribution needs outcomes");
    WSC_ASSERT(values.size() == weights.size(),
               "values/weights size mismatch");
    double total = 0.0;
    for (double w : weights) {
        WSC_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    WSC_ASSERT(total > 0.0, "weights sum to zero");
    cdf.resize(values.size());
    double acc = 0.0;
    mean_ = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        acc += weights[i] / total;
        cdf[i] = acc;
        mean_ += values[i] * weights[i] / total;
    }
    cdf.back() = 1.0;
    guide = GuideTable(cdf);
}

} // namespace sim
} // namespace wsc
