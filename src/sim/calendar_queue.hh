/**
 * @file
 * Calendar-queue event ordering structure for the DES kernel.
 *
 * The binary heap behind sim::EventQueue costs O(log n) per operation
 * with n cache-hostile sift levels; at warehouse-ensemble depths
 * (~10^5 pending events per shard) the deep levels miss to L3 on
 * every push and pop. A calendar queue (Brown, CACM 1988) makes both
 * operations amortized O(1) for the short-horizon schedules open-loop
 * arrival processes generate: time is divided into BUCKETS of a fixed
 * width, a "year" spans all buckets once, and dequeueing walks the
 * current bucket — which stays L1/L2-resident — in sorted order.
 *
 * This implementation deviates from the classic design in two ways
 * that keep the repo's determinism contract cheap to argue:
 *
 *  - Far-future tier: events beyond the current year land in an
 *    unsorted overflow vector instead of wrapping into buckets. Every
 *    bucket therefore holds current-year events only, so the first
 *    non-empty bucket at or after the cursor always contains the
 *    global minimum — no per-dequeue "is it this year?" test. When
 *    the buckets drain, the year re-anchors directly at the overflow
 *    minimum (skipping any number of empty years) and the overflow
 *    entries due in the new year migrate in one sweep.
 *
 *  - Lazy sorting: buckets accumulate unsorted appends and are sorted
 *    by (time, seq) descending once, when the cursor reaches them;
 *    the minimum is then a pop from the back. Only an insert into the
 *    bucket currently being served pays a sorted insertion, and with
 *    a well-chosen width that bucket holds O(1) entries.
 *
 * Dispatch order is exactly the heap's total order on (time, seq) —
 * same-time events FIFO by sequence number — which is what lets
 * sim::EventQueue swap this structure in behind its interface with
 * every byte-identity contract in the repo intact (the randomized
 * cross-check in test_calendar_queue pins this event by event).
 *
 * Bucket-width policy: the width is resampled on every rebuild as
 * twice the mean gap of the ~32 earliest pending events (Brown's
 * head-sampling rule), so one far-future outlier cannot stretch the
 * width the way a (max-min)/n rule would. Rebuilds trigger when the
 * entry count doubles past or shrinks well below the bucket count,
 * and when the serving bucket is found overloaded at sort time — the
 * symptom of a stale width after the event-rate regime shifts.
 */

#ifndef WSC_SIM_CALENDAR_QUEUE_HH
#define WSC_SIM_CALENDAR_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsc {
namespace sim {

/** Simulation time, in seconds (same alias as event_queue.hh). */
using Time = double;

/**
 * Ordering record of one scheduled event: firing time, global FIFO
 * sequence number (unique; breaks same-time ties), and the slot/gen
 * pair locating the action in EventQueue's slot pool. The total
 * dispatch order is (when, seq) ascending.
 */
struct EventEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
};

/**
 * A multiset of EventEntry ordered by (when, seq), with amortized
 * O(1) push and pop-min under hold-model workloads. Not a drop-in
 * std::priority_queue: min() positions internal state (cursor
 * advance, lazy sort, year migration) and must precede popMin().
 */
class CalendarQueue
{
  public:
    CalendarQueue();

    /** Insert @p e. No ordering precondition: entries earlier than
     * the current serving position are legal (the cursor backs up),
     * as are entries arbitrarily far in the future (overflow tier).
     * Inline: this is the DES hot path (one call per schedule), and
     * the common case is a bounds check plus one append. */
    void
    push(const EventEntry &e)
    {
        if (size_ == 0)
            realign(e.when);
        else if (e.when < yearStart_)
            pushBelowYear(e);

        if (e.when >= yearEnd_) {
            overflow_.push_back(e);
        } else {
            std::size_t b = bucketOf(e.when);
            auto &vec = buckets_[b];
            if (inBuckets_ == 0) {
                // Bucket tier was empty; this entry is its minimum
                // (any overflow entry is >= yearEnd_, i.e. later).
                cursor_ = b;
                sorted_ = false;
                vec.push_back(e);
            } else if (b == cursor_ && sorted_) {
                sortedInsert(vec, e);
            } else {
                if (b < cursor_) {
                    // New minimum candidate behind the cursor: legal
                    // whenever nothing at or past bucket b has been
                    // popped yet (the cursor advanced over empties).
                    cursor_ = b;
                    sorted_ = false;
                }
                vec.push_back(e);
            }
            ++inBuckets_;
        }
        ++size_;
        maybeGrow();
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** The minimum entry by (when, seq). Requires !empty(). Settles
     * the cursor (sorting the serving bucket if needed), so repeated
     * calls between pushes are O(1). */
    const EventEntry &
    min()
    {
        if (inBuckets_ == 0 || !sorted_ || buckets_[cursor_].empty())
            locateMin();
        return buckets_[cursor_].back();
    }

    /** Remove and return the minimum entry. Requires !empty(). */
    EventEntry
    popMin()
    {
        min();
        auto &b = buckets_[cursor_];
        EventEntry e = b.back();
        b.pop_back();
        --inBuckets_;
        --size_;
        maybeShrink();
        return e;
    }

    /** Visit every entry (buckets and overflow) in unspecified
     * order. Used by the bulk-cancel sweeps. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &b : buckets_)
            for (const EventEntry &e : b)
                fn(e);
        for (const EventEntry &e : overflow_)
            fn(e);
    }

    /**
     * Erase every entry the predicate selects, preserving relative
     * order within each bucket (a sorted serving bucket stays
     * sorted). Used for stale-entry compaction.
     * @return number of entries removed.
     */
    template <typename Fn>
    std::size_t
    removeIf(Fn &&pred)
    {
        std::size_t removed = 0;
        for (auto &b : buckets_) {
            std::size_t kept = 0;
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (pred(b[i]))
                    continue;
                b[kept++] = b[i];
            }
            removed += b.size() - kept;
            b.resize(kept);
        }
        std::size_t kept = 0;
        for (std::size_t i = 0; i < overflow_.size(); ++i) {
            if (pred(overflow_[i]))
                continue;
            overflow_[kept++] = overflow_[i];
        }
        removed += overflow_.size() - kept;
        overflow_.resize(kept);
        inBuckets_ = 0;
        for (const auto &b : buckets_)
            inBuckets_ += b.size();
        size_ = inBuckets_ + overflow_.size();
        return removed;
    }

    /** Pre-size internal storage for @p events pending entries. */
    void reserve(std::size_t events);

    // Introspection (tests, bench labels).
    std::size_t bucketCount() const { return buckets_.size(); }
    Time bucketWidth() const { return width_; }
    std::uint64_t rebuilds() const { return rebuilds_; }
    std::size_t overflowSize() const { return overflow_.size(); }

  private:
    /** Bucket-count clamp. The floor keeps the modulo-year
     * arithmetic away from degenerate tiny calendars; the ceiling
     * bounds the per-bucket header memory (a std::vector each) at
     * warehouse scale. */
    static constexpr std::size_t kMinBuckets = 64;
    static constexpr std::size_t kMaxBuckets = std::size_t(1) << 20;

    /** Buckets of the current year; buckets_[i] covers
     * [yearStart_ + i*width_, yearStart_ + (i+1)*width_). */
    std::vector<std::vector<EventEntry>> buckets_;
    /** Far-future tier: entries with when >= yearEnd_, unsorted. */
    std::vector<EventEntry> overflow_;
    Time width_ = 1.0;
    /** 1 / width_, kept in sync by the (rare) width changes: bucketOf
     * runs on every push and a multiply is far cheaper than the
     * divide. */
    Time invWidth_ = 1.0;
    Time yearStart_ = 0.0;
    Time yearEnd_ = 0.0;
    /** Serving bucket: the global minimum lives in the first
     * non-empty bucket at index >= cursor_. */
    std::size_t cursor_ = 0;
    /** Whether buckets_[cursor_] is sorted descending by (when, seq)
     * (only ever the cursor bucket; cleared when the cursor moves). */
    bool sorted_ = false;
    std::size_t size_ = 0;      //!< total entries, both tiers
    std::size_t inBuckets_ = 0; //!< entries in the bucket tier
    std::uint64_t rebuilds_ = 0;

    /** Bucket index of @p when; caller guarantees yearStart_ <= when
     * < yearEnd_. The clamp absorbs FP rounding at the year's upper
     * edge; the mapping is monotonic in `when`, so equal times always
     * share a bucket and bucket order never inverts time order. */
    std::size_t
    bucketOf(Time when) const
    {
        auto idx = std::size_t((when - yearStart_) * invWidth_);
        return idx < buckets_.size() ? idx : buckets_.size() - 1;
    }

    /** Insert @p e into the serving bucket's descending (when, seq)
     * order. With a well-fitted width this bucket holds O(1)
     * entries. */
    static void
    sortedInsert(std::vector<EventEntry> &vec, const EventEntry &e)
    {
        std::size_t i = vec.size();
        vec.push_back(e);
        while (i > 0 && (vec[i - 1].when < e.when ||
                         (vec[i - 1].when == e.when &&
                          vec[i - 1].seq < e.seq))) {
            vec[i] = vec[i - 1];
            --i;
        }
        vec[i] = e;
    }

    void
    maybeGrow()
    {
        if (size_ > 2 * buckets_.size())
            grow();
    }

    void
    maybeShrink()
    {
        if (size_ * 8 < buckets_.size() &&
            buckets_.size() > kMinBuckets)
            shrink();
    }

    /** Re-anchor the year so @p when maps into it; buckets must be
     * empty. */
    void realign(Time when);
    /** Grow / shrink rebuilds, out of line off the push/pop fast
     * paths (the inline wrappers above carry the cheap triggers). */
    void grow();
    void shrink();
    static std::size_t bucketTarget(std::size_t entries);
    /** Advance the cursor to the bucket holding the minimum, sorting
     * it; migrates a new year in from overflow when needed. */
    void locateMin();
    /** Move overflow entries due in the year anchored at the overflow
     * minimum into buckets. Requires empty buckets, non-empty
     * overflow. */
    void advanceYear();
    /** Gather everything, resample the width from head gaps, and
     * redistribute over @p nBuckets buckets. */
    void rebuild(std::size_t nBuckets);
    /** Handle a push below yearStart_: demote the bucket tier to
     * overflow and re-anchor at the new minimum. Rare by
     * construction (only after the year jumped a sparse region). */
    void pushBelowYear(const EventEntry &e);
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_CALENDAR_QUEUE_HH
