/**
 * @file
 * Queueing resources for the request-level server model.
 *
 * Two service disciplines cover the stations the server model needs:
 *
 *  - PsResource: egalitarian processor sharing across a fixed number of
 *    service slots. Models CPUs (slots = cores) and, with one slot,
 *    fair-shared bandwidth links (NIC, PCIe, memory channels).
 *  - FifoResource: first-come-first-served with a fixed number of
 *    servers. Models disks (one outstanding op at a time per spindle).
 */

#ifndef WSC_SIM_RESOURCES_HH
#define WSC_SIM_RESOURCES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_action.hh"

namespace wsc {
namespace sim {

/**
 * Completion callback for resource requests.
 *
 * An InlineAction: move-only, and allocation-free for closures within
 * InlineAction::kInlineBytes — which covers every completion the
 * request-level simulators submit (a context pointer, a pooled-request
 * handle, and a stage tag). See inline_action.hh for the contract.
 */
using Completion = InlineAction;

/**
 * Fixed-capacity-amortized FIFO of move-only elements.
 *
 * std::deque allocates and frees block storage as elements churn
 * through it, which puts a malloc on the steady-state path of a busy
 * FIFO station. This ring buffer doubles its backing vector when full
 * and never gives storage back, so a station's queue is allocation-free
 * once it has seen its peak depth.
 */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    void
    push_back(T v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
        ++count_;
    }

    T &front() { return buf_[head_]; }

    void
    pop_front()
    {
        buf_[head_] = T{};
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    void
    grow()
    {
        std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    /** Power-of-two capacity so the index wrap is a mask. */
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * Point-in-time snapshot of a station's activity, for run reports.
 *
 * Depth counts every request present at the station (in service plus
 * queued); the mean is time-weighted over the station's lifetime, so a
 * station that idles most of the run reports a low mean even if brief
 * bursts drive the peak high.
 */
struct StationStats {
    std::string name;
    double utilization = 0.0;    //!< time-integrated, in [0, 1]
    std::uint64_t completed = 0; //!< requests fully served
    std::size_t peakDepth = 0;   //!< max simultaneous requests present
    double meanDepth = 0.0;      //!< time-weighted average depth
};

/**
 * Processor-sharing resource.
 *
 * Capacity is expressed in work units per second, split evenly over
 * @p slots service slots. With n active jobs each job progresses at
 * (capacity / slots) * min(1, slots / n) work units per second: below
 * saturation each job owns a full slot; above saturation all jobs share
 * the machine equally, which is the standard model for time-shared CPUs.
 *
 * Implementation: since all active jobs progress at the same rate, a
 * global progress counter plus a min-heap of per-job finish marks gives
 * O(log n) submit/complete regardless of the active population.
 */
class PsResource
{
  public:
    /**
     * @param eq Event queue driving this resource.
     * @param name Diagnostic name.
     * @param capacity Aggregate work units per second (> 0).
     * @param slots Number of parallel service slots (>= 1).
     * @param owner Bulk-cancel tag for internally scheduled events
     *     (see EventQueue::cancelAll); 0 = untagged.
     */
    PsResource(EventQueue &eq, std::string name, double capacity,
               unsigned slots, std::uint64_t owner = 0);

    PsResource(const PsResource &) = delete;
    PsResource &operator=(const PsResource &) = delete;

    /**
     * Submit a job requiring @p work units; @p done fires at completion.
     * Zero-work jobs complete via a zero-delay event.
     */
    void submit(double work, Completion done);

    /**
     * Crash semantics: drop every active job without running its
     * completion, and cancel the pending completion event. Utilization
     * history is preserved; the station goes idle immediately. Models
     * losing all in-service requests when the owning server fails.
     * @return number of jobs dropped.
     */
    std::size_t purge();

    /**
     * Change aggregate capacity (> 0) effective immediately; work
     * already accumulated is kept and remaining work proceeds at the
     * new rate. Models thermal throttling (fan failure) and recovery.
     */
    void setCapacity(double capacity);

    /** Jobs currently in service. */
    std::size_t active() const { return heap.size(); }

    /** Total jobs completed. */
    std::uint64_t completed() const { return completed_; }

    /** Time-integrated utilization in [0, 1] since construction. */
    double utilization() const;

    /** Aggregate capacity in work units per second. */
    double capacity() const { return cap; }

    const std::string &name() const { return name_; }

    /** Activity snapshot (utilization, depth statistics) as of now. */
    StationStats stats() const;

  private:
    /**
     * Heap entries carry ordering metadata only; the completion lives
     * in the doneSlots pool. Sifting 24-byte jobs is a plain memmove,
     * where sifting inline-storage completions would move-construct a
     * closure through a function pointer at every heap level.
     */
    struct Job {
        double finishMark; //!< global progress at which the job is done
        std::uint64_t seq; //!< FIFO tie-break
        std::uint32_t doneSlot; //!< index into doneSlots
    };

    struct LaterFinish {
        bool
        operator()(const Job &a, const Job &b) const
        {
            if (a.finishMark != b.finishMark)
                return a.finishMark > b.finishMark;
            return a.seq > b.seq;
        }
    };

    EventQueue &eq;
    std::string name_;
    double cap;
    unsigned slots;
    std::uint64_t owner_;
    /** Min-heap on finishMark, maintained with std::push_heap /
     * std::pop_heap over a plain vector (instead of priority_queue)
     * so storage can be pre-reserved and kept across jobs. */
    std::vector<Job> heap;
    /** Pooled completions, indexed by Job::doneSlot. */
    std::vector<Completion> doneSlots;
    std::vector<std::uint32_t> doneFree;
    /** Scratch for onCompletion's finished batch; member so the
     * per-completion vector allocation of the seed code is gone.
     * Safe as a member: onCompletion only runs from event dispatch
     * and completions cannot re-enter it synchronously. */
    std::vector<Completion> finishedScratch;
    /** Progress every active job has accumulated since time zero. */
    double progress = 0.0;
    EventId completionEvent = 0;
    Time lastUpdate = 0.0;
    std::uint64_t completed_ = 0;
    std::uint64_t nextSeq = 0;
    double busyIntegral = 0.0; //!< integral of (rate in use / capacity)
    double depthIntegral = 0.0; //!< integral of active job count
    std::size_t peakDepth = 0;
    Time createdAt;

    /** Per-job service rate given the current job count. */
    double perJobRate(std::size_t n) const;

    /** Advance global progress to the current time. */
    void advance();

    /** (Re)schedule the next completion event. */
    void reschedule();

    /** Completion event body: retire finished jobs. */
    void onCompletion();
};

/**
 * First-come-first-served multi-server resource.
 *
 * Each request occupies one server for an explicit service time.
 */
class FifoResource
{
  public:
    /**
     * @param eq Event queue driving this resource.
     * @param name Diagnostic name.
     * @param servers Number of parallel servers (>= 1).
     * @param owner Bulk-cancel tag for internally scheduled events
     *     (see EventQueue::cancelAll); 0 = untagged.
     */
    FifoResource(EventQueue &eq, std::string name, unsigned servers,
                 std::uint64_t owner = 0);

    FifoResource(const FifoResource &) = delete;
    FifoResource &operator=(const FifoResource &) = delete;

    /**
     * Submit a request with the given @p service_time seconds; @p done
     * fires when service finishes (after any queueing delay).
     */
    void submit(double service_time, Completion done);

    /**
     * Crash semantics: drop every queued and in-service request
     * without running completions, cancelling the in-service
     * completion events. @return number of requests dropped.
     */
    std::size_t purge();

    /** Requests waiting (not yet in service). */
    std::size_t queued() const { return queue.size(); }

    /** Requests in service. */
    unsigned inService() const { return busy; }

    std::uint64_t completed() const { return completed_; }

    /** Time-integrated utilization in [0, 1] since construction. */
    double utilization() const;

    const std::string &name() const { return name_; }

    /** Activity snapshot (utilization, depth statistics) as of now. */
    StationStats stats() const;

  private:
    struct Pending {
        double serviceTime = 0.0;
        Completion done;
    };

    EventQueue &eq;
    std::string name_;
    unsigned servers;
    std::uint64_t owner_;
    unsigned busy = 0;
    /** Per-server-lane completion event, 0 when the lane is idle;
     * lets purge() cancel in-service completions in O(servers). */
    std::vector<EventId> laneEvent;
    /** Per-lane parked completion: the in-service request's callback
     * lives here so the completion event captures only {this, lane}
     * and stays inline (see Completion). */
    std::vector<Completion> laneDone;
    std::vector<unsigned> freeLanes;
    RingQueue<Pending> queue;
    std::uint64_t completed_ = 0;
    double busyIntegral = 0.0;
    double depthIntegral = 0.0; //!< integral of (busy + queued)
    std::size_t peakDepth = 0;
    Time lastUpdate = 0.0;
    Time createdAt;

    void accumulate();
    void startService(Pending p);
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_RESOURCES_HH
