#include "sim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace sim {

namespace {

/** Compaction is worthwhile only past this many stale entries; below
 * it the rebuild costs more than the skipped pops save. */
constexpr std::size_t kCompactMinStale = 64;

/** Default pre-sizing: matches the typical in-flight event count of
 * the interactive workloads so early runs never reallocate. */
constexpr std::size_t kDefaultReserve = 1024;

constexpr EventId
makeId(std::uint32_t slot, std::uint32_t gen)
{
    return (EventId(slot) << 32) | gen;
}

} // namespace

bool
parseQueueKind(const std::string &name, QueueKind &out)
{
    if (name == "heap") {
        out = QueueKind::Heap;
        return true;
    }
    if (name == "calendar") {
        out = QueueKind::Calendar;
        return true;
    }
    return false;
}

const char *
queueKindName(QueueKind kind)
{
    return kind == QueueKind::Heap ? "heap" : "calendar";
}

EventQueue::EventQueue(QueueKind kind) : kind_(kind)
{
    reserve(kDefaultReserve);
}

void
EventQueue::reserve(std::size_t events)
{
    if (kind_ == QueueKind::Heap)
        heap.reserve(events);
    else
        cal_.reserve(events);
    slotGen.reserve(events);
    slotAction.reserve(events);
    slotOwner.reserve(events);
    freeSlots.reserve(events);
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeSlots.empty()) {
        std::uint32_t slot = freeSlots.back();
        freeSlots.pop_back();
        return slot;
    }
    WSC_ASSERT(slotGen.size() < (std::size_t(1) << 32),
               "event slot space exhausted");
    // Generations start at 1 so id 0 (slot 0, gen 0) is never valid.
    slotGen.push_back(1);
    slotAction.emplace_back();
    slotOwner.push_back(0);
    return std::uint32_t(slotGen.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    // Invalidates every outstanding handle and heap entry stamped with
    // the previous generation. Wrap-around after 2^32 tenancies of one
    // slot is acceptable: a handle that old cannot still be held by a
    // correct caller.
    ++slotGen[slot];
    freeSlots.push_back(slot);
}

EventId
EventQueue::schedule(Time when, InlineAction &&action,
                     std::uint64_t owner)
{
    WSC_ASSERT(when >= now_, "event scheduled in the past: " << when
                                                             << " < "
                                                             << now_);
    WSC_ASSERT(action, "null event action");
    std::uint32_t slot = acquireSlot();
    std::uint32_t gen = slotGen[slot];
    slotAction[slot] = std::move(action);
    slotOwner[slot] = owner;
    Entry e{when, nextSeq++, slot, gen};
    if (kind_ == QueueKind::Heap) {
        heap.push_back(e);
        std::push_heap(heap.begin(), heap.end(), Later{});
    } else {
        cal_.push(e);
    }
    ++live_;
    ++counters_.scheduled;
    if (entriesHeld() > counters_.peakHeap)
        counters_.peakHeap = entriesHeld();
    EventId id = makeId(slot, gen);
    if (tracer_)
        tracer_({TraceRecord::Kind::Schedule, now_, when, id});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    std::uint32_t slot = std::uint32_t(id >> 32);
    std::uint32_t gen = std::uint32_t(id);
    if (slot >= slotGen.size() || slotGen[slot] != gen)
        return false; // already dispatched or cancelled
    releaseSlot(slot);
    // Destroy the closure now; the stale heap entry carries only
    // metadata, so captures are not held hostage until compaction.
    slotAction[slot].reset();
    --live_;
    ++stale_;
    ++counters_.cancelled;
    if (tracer_)
        tracer_({TraceRecord::Kind::Cancel, now_, 0.0, id});
    maybeCompact();
    return true;
}

std::size_t
EventQueue::cancelIf(
    const std::function<bool(EventId, Time, std::uint64_t)> &pred)
{
    WSC_ASSERT(pred, "null bulk-cancel predicate");
    // One sweep over entry storage; ordering-structure invariants are
    // unaffected because cancellation only flips generation stamps.
    // Entries already stale are skipped so the predicate sees each
    // live event exactly once.
    std::size_t n = 0;
    auto visit = [&](const Entry &e) {
        if (!liveEntry(e))
            return;
        EventId id = makeId(e.slot, e.gen);
        if (!pred(id, e.when, slotOwner[e.slot]))
            return;
        releaseSlot(e.slot);
        slotAction[e.slot].reset();
        --live_;
        ++stale_;
        ++counters_.cancelled;
        ++n;
        if (tracer_)
            tracer_({TraceRecord::Kind::Cancel, now_, e.when, id});
    };
    if (kind_ == QueueKind::Heap) {
        for (const Entry &e : heap)
            visit(e);
    } else {
        cal_.forEach(visit);
    }
    if (n)
        maybeCompact();
    return n;
}

std::size_t
EventQueue::cancelAll(std::uint64_t owner)
{
    WSC_ASSERT(owner != 0, "cancelAll needs a non-zero owner tag");
    return cancelIf([owner](EventId, Time, std::uint64_t tag) {
        return tag == owner;
    });
}

void
EventQueue::maybeCompact()
{
    // Rebuild once cancelled entries outnumber half the live pending
    // set (and are numerous enough for the O(n) rebuild to pay off);
    // keeps entry storage proportional to live events under
    // schedule/cancel churn instead of growing with cancel volume.
    if (stale_ < kCompactMinStale || stale_ * 2 <= live_)
        return;
    if (kind_ == QueueKind::Heap) {
        heap.erase(std::remove_if(heap.begin(), heap.end(),
                                  [this](const Entry &e) {
                                      return !liveEntry(e);
                                  }),
                   heap.end());
        std::make_heap(heap.begin(), heap.end(), Later{});
    } else {
        cal_.removeIf(
            [this](const Entry &e) { return !liveEntry(e); });
    }
    stale_ = 0;
    ++counters_.compactions;
}

void
EventQueue::skipStale()
{
    if (kind_ == QueueKind::Heap) {
        while (!heap.empty() && !liveEntry(heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), Later{});
            heap.pop_back();
            --stale_;
        }
    } else {
        while (!cal_.empty() && !liveEntry(cal_.min())) {
            cal_.popMin();
            --stale_;
        }
    }
}

void
EventQueue::dispatchEntry(const Entry &e)
{
    // Move the action out of the slot pool before releasing the slot,
    // so it survives dispatch even if it schedules further events
    // that reuse the slot.
    InlineAction action = std::move(slotAction[e.slot]);
    releaseSlot(e.slot);
    --live_;
    now_ = e.when;
    ++counters_.dispatched;
    if (tracer_)
        tracer_({TraceRecord::Kind::Dispatch, now_, e.when,
                 makeId(e.slot, e.gen)});
    action();
}

void
EventQueue::dispatchTop()
{
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry e = heap.back();
    heap.pop_back();
    dispatchEntry(e);
}

bool
EventQueue::step()
{
    skipStale();
    if (kind_ == QueueKind::Heap) {
        if (heap.empty())
            return false;
        dispatchTop();
    } else {
        if (cal_.empty())
            return false;
        dispatchEntry(cal_.popMin());
    }
    return true;
}

std::uint64_t
EventQueue::runHeap(Time until)
{
    // Hand-fused skipStale + horizon check: one load of the heap top
    // decides stale-pop, past-horizon, or dispatch. This loop is the
    // hottest few instructions in the simulator, and the fused form
    // avoids re-deriving heap.front() once per helper call.
    std::uint64_t n = 0;
    while (!heap.empty()) {
        const Entry &top = heap.front();
        if (!liveEntry(top)) {
            std::pop_heap(heap.begin(), heap.end(), Later{});
            heap.pop_back();
            --stale_;
            continue;
        }
        if (top.when > until)
            break;
        dispatchTop();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runCalendar(Time until)
{
    // Same fused shape as runHeap; min() settles the calendar cursor
    // once and repeated calls between pushes are O(1).
    std::uint64_t n = 0;
    while (!cal_.empty()) {
        const Entry &top = cal_.min();
        if (!liveEntry(top)) {
            cal_.popMin();
            --stale_;
            continue;
        }
        if (top.when > until)
            break;
        dispatchEntry(cal_.popMin());
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::run(Time until)
{
    std::uint64_t n = kind_ == QueueKind::Heap ? runHeap(until)
                                               : runCalendar(until);
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

} // namespace sim
} // namespace wsc
