#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace wsc {
namespace sim {

EventId
EventQueue::schedule(Time when, std::function<void()> action)
{
    WSC_ASSERT(when >= now_, "event scheduled in the past: " << when
                                                             << " < "
                                                             << now_);
    WSC_ASSERT(action, "null event action");
    EventId id = nextId++;
    heap.push(Entry{when, id, std::move(action)});
    pendingIds.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    return pendingIds.erase(id) > 0;
}

void
EventQueue::skipCancelled()
{
    while (!heap.empty() && !pendingIds.count(heap.top().id))
        heap.pop();
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap.empty())
        return false;
    // Move the entry out before popping so the action survives dispatch
    // even if the action schedules further events.
    Entry e = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    pendingIds.erase(e.id);
    now_ = e.when;
    ++dispatched_;
    e.action();
    return true;
}

std::uint64_t
EventQueue::run(Time until)
{
    std::uint64_t n = 0;
    while (true) {
        skipCancelled();
        if (heap.empty() || heap.top().when > until)
            break;
        step();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

} // namespace sim
} // namespace wsc
