#include "sim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace sim {

namespace {

/** Compaction is worthwhile only past this many stale entries; below
 * it the rebuild costs more than the skipped pops save. */
constexpr std::size_t kCompactMinStale = 64;

/** Default pre-sizing: matches the typical in-flight event count of
 * the interactive workloads so early runs never reallocate. */
constexpr std::size_t kDefaultReserve = 1024;

constexpr EventId
makeId(std::uint32_t slot, std::uint32_t gen)
{
    return (EventId(slot) << 32) | gen;
}

} // namespace

EventQueue::EventQueue()
{
    reserve(kDefaultReserve);
}

void
EventQueue::reserve(std::size_t events)
{
    heap.reserve(events);
    slotGen.reserve(events);
    slotAction.reserve(events);
    slotOwner.reserve(events);
    freeSlots.reserve(events);
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeSlots.empty()) {
        std::uint32_t slot = freeSlots.back();
        freeSlots.pop_back();
        return slot;
    }
    WSC_ASSERT(slotGen.size() < (std::size_t(1) << 32),
               "event slot space exhausted");
    // Generations start at 1 so id 0 (slot 0, gen 0) is never valid.
    slotGen.push_back(1);
    slotAction.emplace_back();
    slotOwner.push_back(0);
    return std::uint32_t(slotGen.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    // Invalidates every outstanding handle and heap entry stamped with
    // the previous generation. Wrap-around after 2^32 tenancies of one
    // slot is acceptable: a handle that old cannot still be held by a
    // correct caller.
    ++slotGen[slot];
    freeSlots.push_back(slot);
}

EventId
EventQueue::schedule(Time when, InlineAction &&action,
                     std::uint64_t owner)
{
    WSC_ASSERT(when >= now_, "event scheduled in the past: " << when
                                                             << " < "
                                                             << now_);
    WSC_ASSERT(action, "null event action");
    std::uint32_t slot = acquireSlot();
    std::uint32_t gen = slotGen[slot];
    slotAction[slot] = std::move(action);
    slotOwner[slot] = owner;
    heap.push_back(Entry{when, nextSeq++, slot, gen});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++live_;
    ++counters_.scheduled;
    if (heap.size() > counters_.peakHeap)
        counters_.peakHeap = heap.size();
    EventId id = makeId(slot, gen);
    if (tracer_)
        tracer_({TraceRecord::Kind::Schedule, now_, when, id});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    std::uint32_t slot = std::uint32_t(id >> 32);
    std::uint32_t gen = std::uint32_t(id);
    if (slot >= slotGen.size() || slotGen[slot] != gen)
        return false; // already dispatched or cancelled
    releaseSlot(slot);
    // Destroy the closure now; the stale heap entry carries only
    // metadata, so captures are not held hostage until compaction.
    slotAction[slot].reset();
    --live_;
    ++stale_;
    ++counters_.cancelled;
    if (tracer_)
        tracer_({TraceRecord::Kind::Cancel, now_, 0.0, id});
    maybeCompact();
    return true;
}

std::size_t
EventQueue::cancelIf(
    const std::function<bool(EventId, Time, std::uint64_t)> &pred)
{
    WSC_ASSERT(pred, "null bulk-cancel predicate");
    // One sweep over heap storage; heap order is irrelevant because
    // cancellation only flips generation stamps. Entries already stale
    // are skipped so the predicate sees each live event exactly once.
    std::size_t n = 0;
    for (const Entry &e : heap) {
        if (!liveEntry(e))
            continue;
        EventId id = makeId(e.slot, e.gen);
        if (!pred(id, e.when, slotOwner[e.slot]))
            continue;
        releaseSlot(e.slot);
        slotAction[e.slot].reset();
        --live_;
        ++stale_;
        ++counters_.cancelled;
        ++n;
        if (tracer_)
            tracer_({TraceRecord::Kind::Cancel, now_, e.when, id});
    }
    if (n)
        maybeCompact();
    return n;
}

std::size_t
EventQueue::cancelAll(std::uint64_t owner)
{
    WSC_ASSERT(owner != 0, "cancelAll needs a non-zero owner tag");
    return cancelIf([owner](EventId, Time, std::uint64_t tag) {
        return tag == owner;
    });
}

void
EventQueue::maybeCompact()
{
    // Rebuild once cancelled entries outnumber half the live pending
    // set (and are numerous enough for the O(n) rebuild to pay off);
    // keeps heap storage proportional to live events under
    // schedule/cancel churn instead of growing with cancel volume.
    if (stale_ < kCompactMinStale || stale_ * 2 <= live_)
        return;
    heap.erase(std::remove_if(heap.begin(), heap.end(),
                              [this](const Entry &e) {
                                  return !liveEntry(e);
                              }),
               heap.end());
    std::make_heap(heap.begin(), heap.end(), Later{});
    stale_ = 0;
    ++counters_.compactions;
}

void
EventQueue::skipStale()
{
    while (!heap.empty() && !liveEntry(heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
        --stale_;
    }
}

void
EventQueue::dispatchTop()
{
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry e = heap.back();
    heap.pop_back();
    // Move the action out of the slot pool before releasing the slot,
    // so it survives dispatch even if it schedules further events
    // that reuse the slot.
    InlineAction action = std::move(slotAction[e.slot]);
    releaseSlot(e.slot);
    --live_;
    now_ = e.when;
    ++counters_.dispatched;
    if (tracer_)
        tracer_({TraceRecord::Kind::Dispatch, now_, e.when,
                 makeId(e.slot, e.gen)});
    action();
}

bool
EventQueue::step()
{
    skipStale();
    if (heap.empty())
        return false;
    dispatchTop();
    return true;
}

std::uint64_t
EventQueue::run(Time until)
{
    // Hand-fused skipStale + horizon check: one load of the heap top
    // decides stale-pop, past-horizon, or dispatch. This loop is the
    // hottest few instructions in the simulator, and the fused form
    // avoids re-deriving heap.front() once per helper call.
    std::uint64_t n = 0;
    while (!heap.empty()) {
        const Entry &top = heap.front();
        if (!liveEntry(top)) {
            std::pop_heap(heap.begin(), heap.end(), Later{});
            heap.pop_back();
            --stale_;
            continue;
        }
        if (top.when > until)
            break;
        dispatchTop();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

} // namespace sim
} // namespace wsc
