#include "sim/queueing.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace sim {
namespace queueing {

namespace {

void
checkStable(double lambda, double mu, unsigned servers = 1)
{
    WSC_ASSERT(lambda >= 0.0, "negative arrival rate");
    WSC_ASSERT(mu > 0.0, "non-positive service rate");
    WSC_ASSERT(lambda < mu * double(servers),
               "unstable queue: lambda " << lambda << " >= capacity "
                                         << mu * double(servers));
}

} // namespace

double
mm1MeanSojourn(double lambda, double mu)
{
    checkStable(lambda, mu);
    return 1.0 / (mu - lambda);
}

double
mm1MeanInSystem(double lambda, double mu)
{
    checkStable(lambda, mu);
    double rho = lambda / mu;
    return rho / (1.0 - rho);
}

double
mm1SojournQuantile(double lambda, double mu, double p)
{
    checkStable(lambda, mu);
    WSC_ASSERT(p > 0.0 && p < 1.0, "quantile out of (0, 1)");
    // Sojourn ~ Exp(mu - lambda).
    return -std::log(1.0 - p) / (mu - lambda);
}

double
erlangC(double lambda, double mu, unsigned servers)
{
    checkStable(lambda, mu, servers);
    WSC_ASSERT(servers >= 1, "need at least one server");
    double a = lambda / mu; // offered load in Erlangs
    double c = double(servers);
    // Sum_{k=0}^{c-1} a^k/k! computed iteratively.
    double term = 1.0;
    double sum = 1.0;
    for (unsigned k = 1; k < servers; ++k) {
        term *= a / double(k);
        sum += term;
    }
    double top = term * a / c; // a^c / c!
    double rho = a / c;
    double p_wait = top / ((1.0 - rho) * sum + top);
    return p_wait;
}

double
mmcMeanSojourn(double lambda, double mu, unsigned servers)
{
    checkStable(lambda, mu, servers);
    double c = double(servers);
    double w = erlangC(lambda, mu, servers) /
               (c * mu - lambda);
    return w + 1.0 / mu;
}

double
md1MeanWait(double lambda, double mu)
{
    checkStable(lambda, mu);
    double rho = lambda / mu;
    return rho / (2.0 * mu * (1.0 - rho));
}

double
mm1PsMeanSojourn(double lambda, double mu)
{
    return mm1MeanSojourn(lambda, mu);
}

} // namespace queueing
} // namespace sim
} // namespace wsc
