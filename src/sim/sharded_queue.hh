/**
 * @file
 * Sharded event queue: conservative parallel DES execution.
 *
 * Scales the single-queue kernel (event_queue.hh) to warehouse-size
 * simulations by partitioning the model into LANES — fixed logical
 * shards that own disjoint state — and executing them on SHARDS
 * physical event queues. The two are deliberately distinct: the lane
 * grid is part of the simulation topology (it never changes with the
 * execution width), while the shard count is an execution knob, so a
 * run is bit-identical at 1, 2, or 8 shards.
 *
 * Execution is classic conservative windowing: all shards advance to
 * a common horizon (the window end, one lookahead past the window
 * start), then a barrier delivers the cross-lane messages sent during
 * the window and runs the control-plane callback. Within a window,
 * lanes may not touch each other's state — every cross-lane
 * interaction must be a post() whose delay is at least the lookahead,
 * which is why the windows can run without rollback. The model's
 * lookahead is physical: the network/dispatch latency between servers
 * in different lanes.
 *
 * Worker execution: run() owns a persistent spin-then-park worker
 * team for the whole call (threads are created once, not per
 * window). Each window is two fan-out phases — advance every shard
 * to the horizon, then drain mailboxes in parallel by destination
 * shard — separated by epoch barriers that are a single atomic store
 * plus bounded spinning in the common case; workers park on a
 * condition variable only after the spin budget expires, so
 * microsecond-scale windows never pay a futex round trip. The
 * control-plane callback still runs single-threaded between windows.
 *
 * Determinism argument (the contract the ensemble tests pin):
 *  - A lane's events execute in (time, FIFO-seq) order. Co-locating
 *    several lanes on one shard interleaves their seq numbers, but
 *    since lanes share no state inside a window, each lane observes
 *    only its own order — which is independent of the co-location.
 *  - Cross-lane messages are delivered at the barrier in (dst lane,
 *    src lane, send order) — a function of the lane grid only, never
 *    of the lane-to-shard map — so the dst queue's schedule order
 *    (and thus its FIFO tie-breaks) is shard-count-invariant. The
 *    parallel drain preserves this exactly: each worker owns a whole
 *    destination shard and walks its dst lanes in ascending order,
 *    so every queue sees the same schedule sequence the serial drain
 *    would produce.
 *  - Randomness must come from per-lane streams derived by identity
 *    (Rng::stream), never from a queue- or thread-associated engine.
 */

#ifndef WSC_SIM_SHARDED_QUEUE_HH
#define WSC_SIM_SHARDED_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace wsc {
namespace sim {

/**
 * A set of event queues executing a lane-partitioned model in
 * conservative lookahead windows.
 */
class ShardedEventQueue
{
  public:
    /** Aggregate activity of one run() call. */
    struct RunStats {
        std::uint64_t windows = 0;    //!< barriers executed
        std::uint64_t messages = 0;   //!< cross-lane posts delivered
        std::uint64_t dispatched = 0; //!< events run across shards
        /** Events dispatched per shard over the run, indexed by
         * shard. Depends on the lane-to-shard packing: an execution
         * observable, never an identity one. */
        std::vector<std::uint64_t> shardDispatched;
        /** Mean over non-empty windows of (busiest shard's events x
         * shards / window total). 1.0 = perfectly balanced; shards()
         * = one shard did everything. With one shard, always 1.0.
         * The number a worker-count decision should look at: high
         * imbalance caps parallel speedup regardless of core count. */
        double meanWindowImbalance = 1.0;
    };

    /**
     * Invoked single-threaded after each window's message delivery
     * with the window end time; the control plane (autoscalers,
     * rate reprogramming) lives here and may touch every lane.
     */
    using BarrierFn = std::function<void(Time)>;

    /**
     * @param lanes  logical shard count — part of the model topology
     * @param shards physical queue count, clamped to [1, lanes];
     *     lane l executes on queue l * shards / lanes (blocked map,
     *     so neighbouring lanes share a shard and its cache lines)
     * @param kind   event-ordering backend for every shard queue; an
     *     execution knob (both kinds dispatch the identical order)
     */
    ShardedEventQueue(unsigned lanes, unsigned shards,
                      QueueKind kind = QueueKind::Heap);

    unsigned lanes() const { return unsigned(laneShard_.size()); }
    unsigned shards() const { return unsigned(queues_.size()); }
    unsigned shardOf(unsigned lane) const { return laneShard_[lane]; }
    QueueKind kind() const { return kind_; }

    /** The queue executing @p lane; schedule a lane's own events
     * here. Outside run() (setup, barrier) any lane's queue may be
     * touched; inside a window only the executing lane may. */
    EventQueue &laneQueue(unsigned lane)
    {
        return *queues_[laneShard_[lane]];
    }

    /** Committed global time: the start of the current window. */
    Time now() const { return windowStart_; }

    /**
     * Send a cross-lane interaction: run @p action on @p dstLane's
     * queue at absolute time @p when. Legal from inside lane
     * execution (src = the running lane) and from the barrier.
     * @p when must be at or after the end of the current window —
     * i.e. the send delay must be >= the run's lookahead — which is
     * asserted, since a shorter delay would have to rewind a shard
     * that already advanced past it.
     */
    void post(unsigned srcLane, unsigned dstLane, Time when,
              InlineAction &&action);

    /**
     * Advance every shard to @p until in windows of @p lookahead.
     * @p workers is the thread count executing shard work (clamped
     * to [1, shards]; 1 runs everything in the caller — the workers
     * value is an execution knob and never changes results).
     * @p onBarrier, if set, runs single-threaded after each window.
     * Execution order inside a window is per-shard (time, FIFO)
     * order; see the file comment for why results do not depend on
     * the shard count or worker count.
     */
    RunStats run(Time until, Time lookahead, unsigned workers = 1,
                 const BarrierFn &onBarrier = {});

    /** Pre-size each shard's entry storage and slot pool. */
    void reserve(std::size_t eventsPerShard);

    /**
     * Kernel counters summed over shards. scheduled / dispatched /
     * cancelled are shard-count-invariant totals; compactions and
     * peakHeap depend on how lanes were packed and must not be used
     * in identity comparisons.
     */
    EventQueue::Counters counters() const;

  private:
    struct Msg {
        Time when;
        InlineAction action;
    };

    QueueKind kind_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<unsigned> laneShard_;
    /** Outboxes indexed src * lanes + dst. A row is written only by
     * the thread executing its src lane during a window and drained
     * by the thread owning the dst shard at the barrier (the two
     * phases are separated by a full barrier, so no row is ever
     * touched from two threads concurrently). */
    std::vector<std::vector<Msg>> outbox_;
    Time windowStart_ = 0.0;
    Time windowEnd_ = 0.0;

    /** Deliver every pending message bound for @p shard, in (dst
     * lane asc, src lane asc, send order). @return messages moved. */
    std::uint64_t drainShard(unsigned shard);
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_SHARDED_QUEUE_HH
