/**
 * @file
 * Sharded event queue: conservative parallel DES execution.
 *
 * Scales the single-queue kernel (event_queue.hh) to warehouse-size
 * simulations by partitioning the model into LANES — fixed logical
 * shards that own disjoint state — and executing them on SHARDS
 * physical event queues. The two are deliberately distinct: the lane
 * grid is part of the simulation topology (it never changes with the
 * execution width), while the shard count is an execution knob, so a
 * run is bit-identical at 1, 2, or 8 shards.
 *
 * Execution is classic conservative windowing: all shards advance to
 * a common horizon (the window end, one lookahead past the window
 * start), then a single-threaded barrier delivers the cross-lane
 * messages sent during the window and runs the control-plane
 * callback. Within a window, lanes may not touch each other's state —
 * every cross-lane interaction must be a post() whose delay is at
 * least the lookahead, which is why the windows can run without
 * rollback. The model's lookahead is physical: the network/dispatch
 * latency between servers in different lanes.
 *
 * Determinism argument (the contract the ensemble tests pin):
 *  - A lane's events execute in (time, FIFO-seq) order. Co-locating
 *    several lanes on one shard interleaves their seq numbers, but
 *    since lanes share no state inside a window, each lane observes
 *    only its own order — which is independent of the co-location.
 *  - Cross-lane messages are delivered at the barrier in (dst lane,
 *    src lane, send order) — a function of the lane grid only, never
 *    of the lane-to-shard map — so the dst queue's schedule order
 *    (and thus its FIFO tie-breaks) is shard-count-invariant.
 *  - Randomness must come from per-lane streams derived by identity
 *    (Rng::stream), never from a queue- or thread-associated engine.
 */

#ifndef WSC_SIM_SHARDED_QUEUE_HH
#define WSC_SIM_SHARDED_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "util/thread_pool.hh"

namespace wsc {
namespace sim {

/**
 * A set of event queues executing a lane-partitioned model in
 * conservative lookahead windows.
 */
class ShardedEventQueue
{
  public:
    /** Aggregate activity of one run() call. */
    struct RunStats {
        std::uint64_t windows = 0;    //!< barriers executed
        std::uint64_t messages = 0;   //!< cross-lane posts delivered
        std::uint64_t dispatched = 0; //!< events run across shards
    };

    /**
     * Invoked single-threaded after each window's message delivery
     * with the window end time; the control plane (autoscalers,
     * rate reprogramming) lives here and may touch every lane.
     */
    using BarrierFn = std::function<void(Time)>;

    /**
     * @param lanes  logical shard count — part of the model topology
     * @param shards physical queue count, clamped to [1, lanes];
     *     lane l executes on queue l * shards / lanes (blocked map,
     *     so neighbouring lanes share a shard and its cache lines)
     */
    ShardedEventQueue(unsigned lanes, unsigned shards);

    unsigned lanes() const { return unsigned(laneShard_.size()); }
    unsigned shards() const { return unsigned(queues_.size()); }
    unsigned shardOf(unsigned lane) const { return laneShard_[lane]; }

    /** The queue executing @p lane; schedule a lane's own events
     * here. Outside run() (setup, barrier) any lane's queue may be
     * touched; inside a window only the executing lane may. */
    EventQueue &laneQueue(unsigned lane)
    {
        return *queues_[laneShard_[lane]];
    }

    /** Committed global time: the start of the current window. */
    Time now() const { return windowStart_; }

    /**
     * Send a cross-lane interaction: run @p action on @p dstLane's
     * queue at absolute time @p when. Legal from inside lane
     * execution (src = the running lane) and from the barrier.
     * @p when must be at or after the end of the current window —
     * i.e. the send delay must be >= the run's lookahead — which is
     * asserted, since a shorter delay would have to rewind a shard
     * that already advanced past it.
     */
    void post(unsigned srcLane, unsigned dstLane, Time when,
              InlineAction &&action);

    /**
     * Advance every shard to @p until in windows of @p lookahead.
     * Shards fan out over @p pool (nullptr or a single shard runs
     * them serially in the caller); @p onBarrier, if set, runs after
     * each window. Execution order inside a window is per-shard
     * (time, FIFO) order; see the file comment for why results do
     * not depend on the shard count.
     */
    RunStats run(Time until, Time lookahead, ThreadPool *pool = nullptr,
                 const BarrierFn &onBarrier = {});

    /** Pre-size each shard's heap and slot pool. */
    void reserve(std::size_t eventsPerShard);

    /**
     * Kernel counters summed over shards. scheduled / dispatched /
     * cancelled are shard-count-invariant totals; compactions and
     * peakHeap depend on how lanes were packed and must not be used
     * in identity comparisons.
     */
    EventQueue::Counters counters() const;

  private:
    struct Msg {
        Time when;
        InlineAction action;
    };

    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<unsigned> laneShard_;
    /** Outboxes indexed src * lanes + dst. A row is written only by
     * the thread executing its src lane and drained single-threaded
     * at the barrier. */
    std::vector<std::vector<Msg>> outbox_;
    Time windowStart_ = 0.0;
    Time windowEnd_ = 0.0;
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_SHARDED_QUEUE_HH
