/**
 * @file
 * The versioned fast-mode execution contract.
 *
 * Exact mode (the default, and the only mode CI's bit-identity gates
 * run in) pins everything: the RNG draw sequence, the event schedule,
 * and the floating-point accumulation order. That contract is what
 * made the PR-5 rebuild verifiable — and what caps its speedup, since
 * even reordering two independent draws changes the bits.
 *
 * Fast mode trades that bit-identity for *statistical* equivalence,
 * verified by the stats/equivalence gate (two-sample KS on latency and
 * service-time distributions, CI-overlap on throughput and percentile
 * metrics across seeds). What fast mode is allowed to change and what
 * it must preserve is a declared, versioned contract (DESIGN.md "Fast
 * mode"):
 *
 * Pinned (fast mode MUST preserve):
 *  - every sampled quantity's distribution, exactly (the batched
 *    samplers resolve the same inverse-CDF tables through the same
 *    shared routine as the scalar path);
 *  - the queueing/event model: stations, service demands' semantics,
 *    QoS accounting;
 *  - per-seed determinism: the same seed always reproduces the same
 *    fast-mode run bit for bit.
 *
 * Relaxed (fast mode MAY change):
 *  - the global RNG draw order — demand draws move to a dedicated
 *    stream (Rng::stream) consumed in blocks, so they interleave
 *    differently with think-time/arrival draws;
 *  - draw interleaving across requests — a block of requests' demands
 *    is generated structure-of-arrays (all keyword counts, then all
 *    term ranks, then all work multipliers) instead of per request;
 *  - the uniform generator behind bulk guide-table draws — the batch
 *    path inverts the same tables over SplitMix64 uniforms
 *    (util/random.hh), same law on the 53-bit grid as Rng::uniform
 *    but different bit patterns, several times cheaper per draw;
 *  - FP accumulation order inside demand assembly (sums over batched
 *    draws may associate differently than the scalar chain).
 *
 * Any run that used fast mode stamps contractVersion() into its JSON
 * report; exact-mode reports omit the field entirely and stay
 * byte-identical to pre-fast-mode output. Bump kVersion whenever the
 * set of relaxations changes.
 */

#ifndef WSC_SIM_FAST_MODE_HH
#define WSC_SIM_FAST_MODE_HH

#include <string>

namespace wsc {
namespace sim {

/** Fast-mode switch and knobs, threaded through the simulators. */
struct FastModeConfig {
    /** Off by default: exact mode, bit-identical to the oracle. */
    bool enabled = false;

    /**
     * Requests whose demands are generated per batched refill. Larger
     * blocks amortize the per-block virtual call and deepen the
     * prefetch pipeline; the block must stay small enough that its
     * SoA scratch stays cache-resident (256 requests ~ a few KB).
     */
    unsigned demandBlock = 256;

    /** Contract revision; bump when the relaxation set changes. */
    static constexpr unsigned kVersion = 1;

    /** Version string stamped into JSON reports of fast-mode runs. */
    static std::string
    contractVersion()
    {
        return "fast-mode/" + std::to_string(kVersion);
    }
};

/**
 * The "fast-mode/2" contract: macro-event arrival coalescing for the
 * ensemble DES (perfsim/ensemble_fast.cc). Instead of one DES event
 * per request arrival (~30M for a 100k-server day), each dispatch
 * cell runs one macro-event per conservative lookahead window that
 *
 *  - synthesizes the window's arrivals segment by segment: Poisson
 *    counts drawn in one shot per constant-rate segment
 *    (SplitMix64::poisson, per-cell identity-seeded streams exactly
 *    as the exact engine), placed at sorted uniform order statistics
 *    via exponential spacings — exact for a piecewise-constant
 *    Poisson process. Segment boundaries are the window end, MMPP
 *    phase flips, and incoming cross-cell spill deliveries, so rate
 *    changes land mid-window exactly and spilled jobs interleave
 *    into the destination's FCFS order at their true delivery
 *    times (lookahead == network latency means every delivery into
 *    window W+1 is known when W's spills are staged at the barrier),
 *  - advances each server's queue with the Kiefer–Wolfowitz slot
 *    recursion (exact M/M/c FCFS start/completion times given the
 *    sampled arrivals and services), and
 *  - integrates energy and sleep-state residency lazily over a
 *    per-server timeline (transition → active → idle → sleep
 *    segments), with the idle-to-sleep governor evaluated as a
 *    deadline instead of a timer event.
 *
 * Sleep/wake/boot control, autoscaling and power-cap hour barriers,
 * MMPP phase flips, and cross-cell spill stay *real* DES events, so
 * sim::ShardedEventQueue's conservative windowed execution (and its
 * shard/worker bit-invariance) is untouched.
 *
 * Pinned (fast-mode/2 MUST preserve):
 *  - the arrival law: per-hour Poisson rates, MMPP burst modulation,
 *    exponential service draws — same distributions, same per-cell
 *    identity-seeded streams;
 *  - the energy model: per-state watts, transition energy, hour-bucket
 *    attribution, and the policy/autoscaler control plane at hour
 *    barriers;
 *  - QoS semantics: latency measured arrival→completion against the
 *    same deadline, attainment over the same population;
 *  - per-seed determinism: a seed reproduces the same fast run bit for
 *    bit at any shard/worker count and queue backend.
 *
 * Relaxed (fast-mode/2 MAY change):
 *  - event granularity: per-request arrival/completion/governor events
 *    are replaced by per-(cell, window) macro-events;
 *  - RNG draw order: segment counts then spacings then services, not
 *    the exact engine's per-arrival interleaving (same laws, different
 *    bits — gated statistically, stats/equivalence.hh);
 *  - arrival realizations at MMPP flips: the exact engine cancels the
 *    pending inter-arrival gap and redraws at the new rate
 *    (memoryless, so an exact rate change); fast-mode/2 closes the
 *    old-rate segment and opens a new-rate segment at the flip time —
 *    the same law, but a different realization from the same seed;
 *  - FP accumulation order of energy/latency aggregates.
 *
 * Verified by bench_ensemble's equivalence gate. Because cross-cell
 * spills and shared burst luck correlate every per-cell sample within
 * one seed's run, naive pooled-KS p-values are anti-conservative
 * (exact-vs-exact A/A pools fail them); the gate therefore uses
 * seed-block permutation KS tests (stats::blockPermutationKs — runs
 * are the exchangeable unit, per-run blocks mean-centered) on
 * per-cell day-aggregate utilization/latency at the bench config and
 * on per-cell-hour samples at a dynamics-resolving timescale
 * (secondsPerHour = 60), plus 95% CI overlap on per-seed kWh/day and
 * QoS attainment, and preservation of the policy energy ordering —
 * the gate's verdict is the bench exit code.
 */
struct EnsembleFastConfig {
    /** Off by default: exact per-arrival DES, bit-identical to PR-9. */
    bool enabled = false;

    /** Contract revision; bump when the relaxation set changes. */
    static constexpr unsigned kVersion = 2;

    /** Version string stamped into JSON reports of fast-mode runs. */
    static std::string
    contractVersion()
    {
        return "fast-mode/" + std::to_string(kVersion);
    }
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_FAST_MODE_HH
