/**
 * @file
 * The versioned fast-mode execution contract.
 *
 * Exact mode (the default, and the only mode CI's bit-identity gates
 * run in) pins everything: the RNG draw sequence, the event schedule,
 * and the floating-point accumulation order. That contract is what
 * made the PR-5 rebuild verifiable — and what caps its speedup, since
 * even reordering two independent draws changes the bits.
 *
 * Fast mode trades that bit-identity for *statistical* equivalence,
 * verified by the stats/equivalence gate (two-sample KS on latency and
 * service-time distributions, CI-overlap on throughput and percentile
 * metrics across seeds). What fast mode is allowed to change and what
 * it must preserve is a declared, versioned contract (DESIGN.md "Fast
 * mode"):
 *
 * Pinned (fast mode MUST preserve):
 *  - every sampled quantity's distribution, exactly (the batched
 *    samplers resolve the same inverse-CDF tables through the same
 *    shared routine as the scalar path);
 *  - the queueing/event model: stations, service demands' semantics,
 *    QoS accounting;
 *  - per-seed determinism: the same seed always reproduces the same
 *    fast-mode run bit for bit.
 *
 * Relaxed (fast mode MAY change):
 *  - the global RNG draw order — demand draws move to a dedicated
 *    stream (Rng::stream) consumed in blocks, so they interleave
 *    differently with think-time/arrival draws;
 *  - draw interleaving across requests — a block of requests' demands
 *    is generated structure-of-arrays (all keyword counts, then all
 *    term ranks, then all work multipliers) instead of per request;
 *  - the uniform generator behind bulk guide-table draws — the batch
 *    path inverts the same tables over SplitMix64 uniforms
 *    (util/random.hh), same law on the 53-bit grid as Rng::uniform
 *    but different bit patterns, several times cheaper per draw;
 *  - FP accumulation order inside demand assembly (sums over batched
 *    draws may associate differently than the scalar chain).
 *
 * Any run that used fast mode stamps contractVersion() into its JSON
 * report; exact-mode reports omit the field entirely and stay
 * byte-identical to pre-fast-mode output. Bump kVersion whenever the
 * set of relaxations changes.
 */

#ifndef WSC_SIM_FAST_MODE_HH
#define WSC_SIM_FAST_MODE_HH

#include <string>

namespace wsc {
namespace sim {

/** Fast-mode switch and knobs, threaded through the simulators. */
struct FastModeConfig {
    /** Off by default: exact mode, bit-identical to the oracle. */
    bool enabled = false;

    /**
     * Requests whose demands are generated per batched refill. Larger
     * blocks amortize the per-block virtual call and deepen the
     * prefetch pipeline; the block must stay small enough that its
     * SoA scratch stays cache-resident (256 requests ~ a few KB).
     */
    unsigned demandBlock = 256;

    /** Contract revision; bump when the relaxation set changes. */
    static constexpr unsigned kVersion = 1;

    /** Version string stamped into JSON reports of fast-mode runs. */
    static std::string
    contractVersion()
    {
        return "fast-mode/" + std::to_string(kVersion);
    }
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_FAST_MODE_HH
