/**
 * @file
 * Inline-storage callable for the DES hot path.
 *
 * Every event the kernel dispatches and every completion a resource
 * runs used to be a std::function<void()>; closures capturing more
 * than std::function's tiny SBO (16 bytes on libstdc++) heap-allocate,
 * which made scheduling an event or submitting to a resource cost a
 * malloc. InlineAction stores callables up to kInlineBytes directly in
 * the object, so the simulation drivers — whose continuations are a
 * context pointer plus a pooled-request handle — never allocate.
 *
 * Contract (documented in DESIGN.md "Request arena & inline actions"):
 *
 *  - Callables with sizeof <= kInlineBytes, alignment <= max_align_t,
 *    and a noexcept move constructor are stored inline: construction,
 *    move, invocation, and destruction perform no heap allocation.
 *  - Anything larger (or over-aligned, or with a throwing move) takes
 *    the escape hatch: the callable is moved to the heap once and a
 *    small owning thunk is stored inline. Semantics are identical;
 *    only that one allocation differs. Cold control paths (fault
 *    injection, batch scheduling) use this freely.
 *  - InlineAction is move-only, so it can hold move-only closures —
 *    e.g. a lambda that captured another InlineAction. std::function
 *    could not, which is why FifoResource used to shared_ptr-wrap its
 *    completions.
 *  - Constructing from an empty std::function yields an empty
 *    InlineAction (preserving the kernel's null-action panic).
 */

#ifndef WSC_SIM_INLINE_ACTION_HH
#define WSC_SIM_INLINE_ACTION_HH

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wsc {
namespace sim {

class InlineAction
{
  public:
    /** Inline storage size; fits every hot-path closure with room to
     * spare (they capture a context pointer, a 64-bit handle, and a
     * few scalars). */
    static constexpr std::size_t kInlineBytes = 64;

    /** True when F will be stored inline (no allocation, ever). */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineBytes &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    InlineAction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineAction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineAction(F &&f) // NOLINT: implicit by design (callable sink)
    {
        construct(std::forward<F>(f));
    }

    InlineAction(InlineAction &&other) noexcept { moveFrom(other); }

    InlineAction &
    operator=(InlineAction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineAction(const InlineAction &) = delete;
    InlineAction &operator=(const InlineAction &) = delete;

    ~InlineAction() { reset(); }

    /** Destroy the held callable, leaving the action empty. */
    void
    reset()
    {
        // manage_ == nullptr while engaged marks a trivially
        // relocatable payload: nothing to destroy.
        if (manage_)
            manage_(&storage_, nullptr);
        manage_ = nullptr;
        invoke_ = nullptr;
    }

    /** True when a callable is held. */
    explicit operator bool() const { return invoke_ != nullptr; }

    /** Invoke the held callable. Caller guarantees engagement. */
    void
    operator()()
    {
        invoke_(&storage_);
    }

  private:
    /** Move-construct the payload from src into dst, destroying src;
     * with dst == nullptr, just destroy src. */
    using Manage = void (*)(void *src, void *dst);
    using Invoke = void (*)(void *payload);

    template <typename F>
    void
    construct(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (std::is_same_v<D, std::function<void()>>) {
            if (!f)
                return; // empty function -> empty action
        }
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(&storage_))
                D(std::forward<F>(f));
            invoke_ = [](void *p) { (*static_cast<D *>(p))(); };
            // The DES hot-path closures (a context pointer, a handle,
            // a few scalars) are trivially copyable and destructible;
            // for those, moves are a plain storage copy and reset() a
            // pointer clear, with no indirect manage_ call. Encoded as
            // manage_ == nullptr while invoke_ is set.
            if constexpr (std::is_trivially_copyable_v<D> &&
                          std::is_trivially_destructible_v<D>) {
                manage_ = nullptr;
            } else {
                manage_ = [](void *src, void *dst) {
                    D *s = static_cast<D *>(src);
                    if (dst)
                        ::new (dst) D(std::move(*s));
                    s->~D();
                };
            }
        } else {
            // Escape hatch: one heap allocation, thunk stored inline.
            construct([owned = std::make_unique<D>(
                           std::forward<F>(f))]() { (*owned)(); });
        }
    }

    void
    moveFrom(InlineAction &other) noexcept
    {
        if (!other.invoke_)
            return;
        if (other.manage_)
            other.manage_(&other.storage_, &storage_);
        else
            // Trivially relocatable payload: size is unknown here, so
            // copy the whole (aligned, fixed-size) storage block.
            std::memcpy(&storage_, &other.storage_, kInlineBytes);
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

} // namespace sim
} // namespace wsc

#endif // WSC_SIM_INLINE_ACTION_HH
