#include "sim/batch_sampler.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace sim {

namespace {

inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
    (void)p;
#endif
}

/**
 * The three-pass block over any uniform source with a `uniform()`
 * member. Instantiated for Rng (bit-identical to scalar draws) and
 * SplitMix64 (fast-mode, same-law); the passes themselves are
 * engine-agnostic — only pass 1's uniform draw touches the engine.
 */
template <typename Engine>
void
drawIndicesWith(const GuideTable &guide, const std::vector<double> &cdf,
                Engine &rng, std::uint32_t *out, std::size_t n,
                std::size_t block, std::vector<double> &u,
                std::vector<std::uint32_t> &at)
{
    u.resize(block);
    at.resize(block);
    while (n > 0) {
        std::size_t m = n < block ? n : block;

        // Pass 1: uniforms in draw order; prefetch every guide cell.
        // The bucket is uniformly distributed over the table, so this
        // is the access that misses — issuing all m prefetches before
        // any use turns m dependent misses into overlapped ones.
        for (std::size_t i = 0; i < m; ++i) {
            u[i] = rng.uniform();
            std::size_t b = guide.bucketOf(u[i]);
            at[i] = std::uint32_t(b);
            prefetchRead(guide.cellPtr(b));
        }

        // Pass 2: read the guide cells (now resident) and prefetch the
        // CDF line each resolution starts at — the second dependent
        // access of the scalar path, also overlapped across the block.
        for (std::size_t i = 0; i < m; ++i) {
            std::uint32_t k = guide.startOf(at[i]);
            at[i] = k;
            prefetchRead(&cdf[k]);
        }

        // Pass 3: resolve with the exact scalar routine.
        for (std::size_t i = 0; i < m; ++i)
            out[i] =
                std::uint32_t(guide.resolveFrom(cdf, u[i], at[i]));

        out += m;
        n -= m;
    }
}

template <typename Engine>
void
drawZipfRanksWith(const ZipfDist &dist, Engine &rng, std::uint64_t *out,
                  std::size_t n, std::size_t block,
                  std::vector<double> &u, std::vector<std::uint32_t> &at)
{
    const GuideTable &guide = dist.guideTable();
    const std::vector<double> &cdf = dist.cdfTable();
    u.resize(block);
    at.resize(block);
    while (n > 0) {
        std::size_t m = n < block ? n : block;
        for (std::size_t i = 0; i < m; ++i) {
            u[i] = rng.uniform();
            std::size_t b = guide.bucketOf(u[i]);
            at[i] = std::uint32_t(b);
            prefetchRead(guide.cellPtr(b));
        }
        for (std::size_t i = 0; i < m; ++i) {
            std::uint32_t k = guide.startOf(at[i]);
            at[i] = k;
            prefetchRead(&cdf[k]);
        }
        // Rank = index + 1, exactly as ZipfDist::rankForUniform.
        for (std::size_t i = 0; i < m; ++i)
            out[i] = std::uint64_t(
                         guide.resolveFrom(cdf, u[i], at[i])) +
                     1;
        out += m;
        n -= m;
    }
}

} // namespace

SampleBatcher::SampleBatcher(std::size_t block) : block(block)
{
    WSC_ASSERT(block >= 1, "batch block must be at least 1");
    u.reserve(block);
    at.reserve(block);
}

void
SampleBatcher::drawIndices(const GuideTable &guide,
                           const std::vector<double> &cdf, Rng &rng,
                           std::uint32_t *out, std::size_t n)
{
    drawIndicesWith(guide, cdf, rng, out, n, block, u, at);
}

void
SampleBatcher::drawZipfRanks(const ZipfDist &dist, Rng &rng,
                             std::uint64_t *out, std::size_t n)
{
    drawZipfRanksWith(dist, rng, out, n, block, u, at);
}

void
SampleBatcher::drawEmpiricalIndices(const EmpiricalDist &dist, Rng &rng,
                                    std::uint32_t *out, std::size_t n)
{
    drawIndicesWith(dist.guideTable(), dist.cdfTable(), rng, out, n,
                    block, u, at);
}

void
SampleBatcher::drawIndices(const GuideTable &guide,
                           const std::vector<double> &cdf,
                           SplitMix64 &rng, std::uint32_t *out,
                           std::size_t n)
{
    drawIndicesWith(guide, cdf, rng, out, n, block, u, at);
}

void
SampleBatcher::drawZipfRanks(const ZipfDist &dist, SplitMix64 &rng,
                             std::uint64_t *out, std::size_t n)
{
    drawZipfRanksWith(dist, rng, out, n, block, u, at);
}

void
SampleBatcher::drawEmpiricalIndices(const EmpiricalDist &dist,
                                    SplitMix64 &rng, std::uint32_t *out,
                                    std::size_t n)
{
    drawIndicesWith(dist.guideTable(), dist.cdfTable(), rng, out, n,
                    block, u, at);
}

void
SampleBatcher::drawLognormal(const LognormalDist &dist, SplitMix64 &rng,
                             double *out, std::size_t n)
{
    const double mu = dist.muParam();
    const double sigma = dist.sigmaParam();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    // Box-Muller pairs: both variates of a pair are used, so the draw
    // cost is one log/sqrt and one sin+cos per two outputs. The
    // transform maps exact uniforms to an exact normal, so the output
    // law is exactly lognormal(mu, sigma) — only the bits differ from
    // the std::lognormal_distribution path.
    std::size_t pairs = n / 2;
    for (std::size_t i = 0; i < pairs; ++i) {
        // 1 - u keeps the log argument in (0, 1]: SplitMix64::uniform
        // can return exactly 0, and log(0) is -inf.
        double r = std::sqrt(-2.0 * std::log(1.0 - rng.uniform()));
        double theta = kTwoPi * rng.uniform();
        out[2 * i] = std::exp(mu + sigma * (r * std::cos(theta)));
        out[2 * i + 1] = std::exp(mu + sigma * (r * std::sin(theta)));
    }
    if (n % 2) {
        double r = std::sqrt(-2.0 * std::log(1.0 - rng.uniform()));
        double theta = kTwoPi * rng.uniform();
        out[n - 1] = std::exp(mu + sigma * (r * std::cos(theta)));
    }
}

} // namespace sim
} // namespace wsc
