#include "platform/server_config.hh"

#include "util/logging.hh"

namespace wsc {
namespace platform {

std::string
to_string(SystemClass c)
{
    switch (c) {
      case SystemClass::Srvr1:
        return "srvr1";
      case SystemClass::Srvr2:
        return "srvr2";
      case SystemClass::Desk:
        return "desk";
      case SystemClass::Mobl:
        return "mobl";
      case SystemClass::Emb1:
        return "emb1";
      case SystemClass::Emb2:
        return "emb2";
    }
    panic("unknown system class");
}

cost::ComponentCost
ServerConfig::hardwareCost() const
{
    cost::ComponentCost c;
    c.cpu = cpu.dollars;
    c.memory = memory.dollars;
    c.disk = disk.dollars;
    c.boardMgmt = boardMgmtDollars;
    c.powerFans = powerFansDollars;
    return c;
}

power::ComponentPower
ServerConfig::hardwarePower() const
{
    power::ComponentPower p;
    p.cpu = cpu.watts;
    p.memory = memory.watts;
    p.disk = disk.watts;
    p.boardMgmt = boardMgmtWatts;
    p.powerFans = powerFansWatts;
    return p;
}

} // namespace platform
} // namespace wsc
