#include "platform/catalog.hh"

#include "util/logging.hh"

namespace wsc {
namespace platform {

namespace {

DiskModel
serverDisk15k()
{
    // srvr1: 15k RPM enterprise drive (Section 3.2). Sequential
    // bandwidth is close to the desktop drive's (similar areal
    // density); the enterprise advantages are access time and write
    // caching.
    DiskModel d;
    d.cls = DiskClass::Server15k;
    d.capacityGB = 300.0;
    d.bandwidthMBs = 75.0;
    d.writeBandwidthMBs = 65.0;
    d.avgAccessMs = 2.5;
    d.watts = 15.0;
    d.dollars = 275.0;
    return d;
}

DiskModel
desktopDisk()
{
    // Table 3(a) desktop disk: 500 GB, 70 MB/s, 4 ms, 10 W, $120.
    DiskModel d;
    d.cls = DiskClass::Desktop72k;
    d.capacityGB = 500.0;
    d.bandwidthMBs = 70.0;
    d.writeBandwidthMBs = 47.0;
    d.avgAccessMs = 4.0;
    d.watts = 10.0;
    d.dollars = 120.0;
    return d;
}

ServerConfig
srvr1()
{
    ServerConfig s;
    s.name = "srvr1";
    s.cls = SystemClass::Srvr1;
    s.cpu = {"Xeon MP / Opteron MP", 2, 4, 2.6, true, 64, 8192, 210.0,
             1700.0};
    s.memory = {MemTech::FBDIMM, 4.0, 25.0, 350.0, 0.9};
    s.disk = serverDisk15k();
    s.nic = {10.0};
    s.boardMgmtWatts = 50.0;
    s.boardMgmtDollars = 400.0;
    s.powerFansWatts = 40.0;
    s.powerFansDollars = 500.0;
    return s;
}

ServerConfig
srvr2()
{
    ServerConfig s;
    s.name = "srvr2";
    s.cls = SystemClass::Srvr2;
    s.cpu = {"Xeon / Opteron", 1, 4, 2.6, true, 64, 8192, 105.0, 650.0};
    s.memory = {MemTech::FBDIMM, 4.0, 25.0, 350.0, 0.9};
    // Figure 1(a) lists srvr2's disk at $120/10 W: the desktop drive.
    s.disk = desktopDisk();
    s.nic = {1.0};
    s.boardMgmtWatts = 40.0;
    s.boardMgmtDollars = 250.0;
    s.powerFansWatts = 35.0;
    s.powerFansDollars = 250.0;
    return s;
}

ServerConfig
desk()
{
    ServerConfig s;
    s.name = "desk";
    s.cls = SystemClass::Desk;
    s.cpu = {"Core 2 / Athlon 64", 1, 2, 2.2, true, 32, 2048, 65.0,
             170.0};
    s.memory = {MemTech::DDR2, 4.0, 20.0, 200.0, 0.9};
    s.disk = desktopDisk();
    s.nic = {1.0};
    s.boardMgmtWatts = 25.0;
    s.boardMgmtDollars = 150.0;
    s.powerFansWatts = 15.0;
    s.powerFansDollars = 140.0;
    return s;
}

ServerConfig
mobl()
{
    ServerConfig s;
    s.name = "mobl";
    s.cls = SystemClass::Mobl;
    s.cpu = {"Core 2 Mobile / Turion", 1, 2, 2.0, true, 32, 2048, 25.0,
             300.0};
    // Low-power SODIMMs carry a small premium over desktop DDR2.
    s.memory = {MemTech::DDR2, 4.0, 18.0, 220.0, 0.9};
    s.disk = desktopDisk();
    s.nic = {1.0};
    s.boardMgmtWatts = 15.0;
    s.boardMgmtDollars = 160.0;
    s.powerFansWatts = 10.0;
    s.powerFansDollars = 120.0;
    return s;
}

ServerConfig
emb1()
{
    ServerConfig s;
    s.name = "emb1";
    s.cls = SystemClass::Emb1;
    s.cpu = {"PA Semi / Embedded Athlon 64", 1, 2, 1.2, true, 32, 1024,
             13.0, 80.0};
    s.memory = {MemTech::DDR2, 4.0, 12.0, 180.0, 0.9};
    s.disk = desktopDisk();
    s.nic = {1.0};
    s.boardMgmtWatts = 10.0;
    s.boardMgmtDollars = 30.0;
    s.powerFansWatts = 7.0;
    s.powerFansDollars = 20.0;
    return s;
}

ServerConfig
emb2()
{
    ServerConfig s;
    s.name = "emb2";
    s.cls = SystemClass::Emb2;
    s.cpu = {"AMD Geode / VIA Eden-N", 1, 1, 0.6, false, 32, 128, 5.0,
             40.0};
    s.memory = {MemTech::DDR1, 4.0, 8.0, 120.0, 0.85};
    s.disk = desktopDisk();
    s.nic = {1.0};
    s.boardMgmtWatts = 7.0;
    s.boardMgmtDollars = 20.0;
    s.powerFansWatts = 5.0;
    s.powerFansDollars = 10.0;
    return s;
}

} // namespace

ServerConfig
makeSystem(SystemClass cls)
{
    switch (cls) {
      case SystemClass::Srvr1:
        return srvr1();
      case SystemClass::Srvr2:
        return srvr2();
      case SystemClass::Desk:
        return desk();
      case SystemClass::Mobl:
        return mobl();
      case SystemClass::Emb1:
        return emb1();
      case SystemClass::Emb2:
        return emb2();
    }
    panic("unknown system class");
}

std::vector<ServerConfig>
allSystems()
{
    std::vector<ServerConfig> out;
    for (auto cls : allSystemClasses)
        out.push_back(makeSystem(cls));
    return out;
}

} // namespace platform
} // namespace wsc
