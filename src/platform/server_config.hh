/**
 * @file
 * Complete server platform description.
 *
 * A ServerConfig bundles the component models with the board-level cost
 * and power line items, and converts to the cost/power models' component
 * vectors. The six Table 2 systems are provided by the catalog.
 */

#ifndef WSC_PLATFORM_SERVER_CONFIG_HH
#define WSC_PLATFORM_SERVER_CONFIG_HH

#include <string>

#include "cost/component_cost.hh"
#include "platform/components.hh"
#include "power/component_power.hh"

namespace wsc {
namespace platform {

/** Identifier for the six Table 2 systems. */
enum class SystemClass {
    Srvr1, //!< mid-range server (Xeon MP / Opteron MP class)
    Srvr2, //!< low-end server (Xeon / Opteron class)
    Desk,  //!< desktop (Core 2 / Athlon 64 class)
    Mobl,  //!< mobile (Core 2 Mobile / Turion class)
    Emb1,  //!< mid-range embedded (PA Semi / embedded Athlon class)
    Emb2   //!< low-end embedded (Geode / VIA Eden class)
};

/** All six classes in catalog order. */
inline constexpr SystemClass allSystemClasses[] = {
    SystemClass::Srvr1, SystemClass::Srvr2, SystemClass::Desk,
    SystemClass::Mobl,  SystemClass::Emb1,  SystemClass::Emb2,
};

std::string to_string(SystemClass c);

/** A complete per-server platform description. */
struct ServerConfig {
    std::string name;
    SystemClass cls = SystemClass::Srvr2;

    CpuModel cpu;
    MemoryModel memory;
    DiskModel disk;
    NicModel nic;

    // Board-level line items not owned by a specific component model.
    double boardMgmtWatts = 0.0;
    double boardMgmtDollars = 0.0;
    double powerFansWatts = 0.0;
    double powerFansDollars = 0.0;

    /** Component hardware cost vector for the cost model. */
    cost::ComponentCost hardwareCost() const;

    /** Component max-operational power vector for the power model. */
    power::ComponentPower hardwarePower() const;

    /** Max operational watts, server only (Table 2 "Watt" column). */
    double totalWatts() const { return hardwarePower().total(); }

    /** Per-server hardware dollars (no rack share). */
    double serverDollars() const { return hardwareCost().total(); }
};

} // namespace platform
} // namespace wsc

#endif // WSC_PLATFORM_SERVER_CONFIG_HH
