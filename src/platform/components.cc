#include "platform/components.hh"

#include "util/logging.hh"

namespace wsc {
namespace platform {

std::string
to_string(MemTech t)
{
    switch (t) {
      case MemTech::FBDIMM:
        return "FB-DIMM";
      case MemTech::DDR2:
        return "DDR2";
      case MemTech::DDR1:
        return "DDR1";
    }
    panic("unknown memory technology");
}

std::string
to_string(DiskClass c)
{
    switch (c) {
      case DiskClass::Server15k:
        return "15k-server";
      case DiskClass::Desktop72k:
        return "7.2k-desktop";
      case DiskClass::Laptop:
        return "laptop";
      case DiskClass::Laptop2:
        return "laptop-2";
    }
    panic("unknown disk class");
}

} // namespace platform
} // namespace wsc
