/**
 * @file
 * Hardware component descriptions for the platform catalog.
 *
 * These capture the attributes of Table 2 (CPU microarchitecture,
 * memory technology, disk and NIC class) that the performance, power,
 * and cost models consume.
 */

#ifndef WSC_PLATFORM_COMPONENTS_HH
#define WSC_PLATFORM_COMPONENTS_HH

#include <string>

namespace wsc {
namespace platform {

/** CPU description (Table 2 columns). */
struct CpuModel {
    std::string similarTo;  //!< e.g. "Xeon MP / Opteron MP"
    unsigned sockets = 1;
    unsigned coresPerSocket = 1;
    double freqGHz = 1.0;
    bool outOfOrder = true;
    unsigned l1KB = 32;      //!< per-core L1 (each of I and D)
    unsigned l2KB = 1024;    //!< shared last-level cache
    double watts = 0.0;      //!< package max operational power
    double dollars = 0.0;    //!< all sockets

    unsigned totalCores() const { return sockets * coresPerSocket; }
};

/** DRAM generations in the study. */
enum class MemTech {
    FBDIMM, //!< server fully-buffered DIMMs
    DDR2,   //!< desktop/mobile commodity
    DDR1    //!< low-end embedded
};

/** Memory subsystem description. */
struct MemoryModel {
    MemTech tech = MemTech::DDR2;
    double capacityGB = 4.0;
    double watts = 0.0;
    double dollars = 0.0;
    /** Active power-down saves >90% on DDR2 (paper Section 3.4). */
    double powerDownFraction = 0.9;
};

/** Disk classes used across the study (Table 3a adds the laptop tiers). */
enum class DiskClass {
    Server15k,  //!< 15k RPM SAS (srvr1)
    Desktop72k, //!< 7.2k RPM desktop SATA
    Laptop,     //!< 2.5" 5.4k RPM laptop drive
    Laptop2     //!< cheaper laptop drive tier
};

/** Disk description. */
struct DiskModel {
    DiskClass cls = DiskClass::Desktop72k;
    double capacityGB = 500.0;
    double bandwidthMBs = 70.0;      //!< sustained sequential read
    double writeBandwidthMBs = 47.0; //!< sustained sequential write
    double avgAccessMs = 4.0;    //!< average seek + rotational latency
    double watts = 0.0;
    double dollars = 0.0;
    bool remote = false;         //!< attached via SAN rather than local
};

/** NIC description. */
struct NicModel {
    double gbps = 1.0;
};

/** Printable names. */
std::string to_string(MemTech t);
std::string to_string(DiskClass c);

} // namespace platform
} // namespace wsc

#endif // WSC_PLATFORM_COMPONENTS_HH
