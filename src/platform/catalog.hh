/**
 * @file
 * The platform catalog: the six systems of Table 2.
 *
 * Aggregate dollars and watts follow the paper exactly (Figure 1(a) for
 * srvr1/srvr2 line items; Table 2 totals for the rest). Where the paper
 * publishes only per-system totals (desk, mobl, emb1, emb2), the
 * per-component split is reconstructed to be consistent with those
 * totals and with the narrative (CPU dominates the reduction; DDR2 is
 * cheaper than FB-DIMM; every non-srvr1 system uses the $120/10 W
 * desktop disk of Table 3(a); mobile parts carry a low-power premium).
 */

#ifndef WSC_PLATFORM_CATALOG_HH
#define WSC_PLATFORM_CATALOG_HH

#include <vector>

#include "platform/server_config.hh"

namespace wsc {
namespace platform {

/** Get the catalog entry for one system class. */
ServerConfig makeSystem(SystemClass cls);

/** All six Table 2 systems, in catalog order. */
std::vector<ServerConfig> allSystems();

} // namespace platform
} // namespace wsc

#endif // WSC_PLATFORM_CATALOG_HH
