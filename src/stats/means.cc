#include "stats/means.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace stats {

double
harmonicMean(const std::vector<double> &values)
{
    WSC_ASSERT(!values.empty(), "harmonic mean of empty set");
    double inv_sum = 0.0;
    for (double v : values) {
        WSC_ASSERT(v > 0.0, "harmonic mean requires positive values, got "
                                << v);
        inv_sum += 1.0 / v;
    }
    return double(values.size()) / inv_sum;
}

double
geometricMean(const std::vector<double> &values)
{
    WSC_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        WSC_ASSERT(v > 0.0, "geometric mean requires positive values, got "
                                << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    WSC_ASSERT(!values.empty(), "arithmetic mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

double
weightedHarmonicMean(const std::vector<double> &values,
                     const std::vector<double> &weights)
{
    WSC_ASSERT(values.size() == weights.size(),
               "values/weights size mismatch");
    WSC_ASSERT(!values.empty(), "weighted harmonic mean of empty set");
    double wsum = 0.0, inv = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        WSC_ASSERT(values[i] > 0.0, "requires positive values");
        WSC_ASSERT(weights[i] >= 0.0, "requires non-negative weights");
        wsum += weights[i];
        inv += weights[i] / values[i];
    }
    WSC_ASSERT(wsum > 0.0, "weights sum to zero");
    return wsum / inv;
}

} // namespace stats
} // namespace wsc
