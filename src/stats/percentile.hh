/**
 * @file
 * Exact percentile tracking over retained samples.
 *
 * The QoS definitions in the benchmark suite are expressed as "95% of
 * requests complete within X seconds"; this tracker retains all samples
 * from a (bounded) measurement window and answers exact quantile
 * queries, which keeps the QoS checks free of approximation artifacts.
 */

#ifndef WSC_STATS_PERCENTILE_HH
#define WSC_STATS_PERCENTILE_HH

#include <cstddef>
#include <vector>

namespace wsc {
namespace stats {

/**
 * Retains samples and computes exact quantiles on demand.
 *
 * Queries sort lazily; repeated queries without intervening inserts are
 * O(1) after the first.
 */
class PercentileTracker
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples retained. */
    std::size_t count() const { return samples.size(); }

    /**
     * Exact quantile using nearest-rank on the sorted samples.
     * @param q Quantile in [0, 1]; q=0.95 is the 95th percentile.
     */
    double quantile(double q) const;

    /**
     * Fraction of samples strictly above @p threshold.
     *
     * Not suitable for the paper's strict QoS checks ("95% of requests
     * complete in < X seconds"): a sample exactly at the threshold
     * does NOT satisfy `latency < X` and must count as a violation —
     * use fractionAtLeast() for those.
     */
    double fractionAbove(double threshold) const;

    /**
     * Fraction of samples at or above @p threshold (inclusive). This
     * is the violation fraction for a strict "latency < threshold"
     * QoS definition.
     */
    double fractionAtLeast(double threshold) const;

    /**
     * Remove all samples. Capacity is retained, so a tracker reused
     * across measurement epochs stops allocating once it has seen its
     * largest epoch.
     */
    void clear();

    /**
     * Pre-size sample storage for @p n samples. A no-op when capacity
     * already suffices; lets epoch drivers (perfsim::runClosedLoop)
     * keep steady-state accounting allocation-free.
     */
    void reserve(std::size_t n);

  private:
    mutable std::vector<double> samples;
    /**
     * Sortedness is tracked across inserts, not just queries: add()
     * only clears the flag when the new sample actually breaks the
     * order, so nondecreasing streams (and repeated queries on
     * unchanged data, via the mutable flag) never pay a re-sort.
     */
    mutable bool sorted = true;
    void ensureSorted() const;
};

} // namespace stats
} // namespace wsc

#endif // WSC_STATS_PERCENTILE_HH
