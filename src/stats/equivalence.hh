/**
 * @file
 * Statistical-equivalence testing between exact and fast-mode runs.
 *
 * Fast mode (sim/fast_mode.hh) gives up the bit-identity oracle; this
 * module is what replaces it. Two families of checks:
 *
 *  - Two-sample Kolmogorov-Smirnov tests on retained sample sets
 *    (request latencies, service-time/demand draws): are the two
 *    empirical distributions consistent with one underlying law?
 *  - Confidence-interval overlap on per-seed scalar metrics
 *    (sustained throughput, p95 at best): across N independent seeds,
 *    do the exact and fast estimates agree within their own noise?
 *
 * equivalenceGate() aggregates the individual checks into one verdict
 * that bench_closed_loop turns into its exit code — the same role the
 * bit-identity comparison plays for exact mode.
 */

#ifndef WSC_STATS_EQUIVALENCE_HH
#define WSC_STATS_EQUIVALENCE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace wsc {
namespace stats {

/** Two-sample Kolmogorov-Smirnov test result. */
struct KsResult {
    double statistic = 0.0; //!< sup |F1(x) - F2(x)|
    double pValue = 1.0;    //!< asymptotic (Stephens' correction)
    std::size_t n1 = 0, n2 = 0;

    /** Equivalent at level @p alpha: fail to reject the same-law H0. */
    bool passes(double alpha) const { return pValue > alpha; }
};

/**
 * Two-sample KS test. Copies and sorts both samples; each must hold at
 * least 2 points. The p-value uses the asymptotic Kolmogorov
 * distribution with Stephens' finite-sample correction, accurate for
 * effective sizes >= ~4.
 */
KsResult ksTwoSample(std::vector<double> a, std::vector<double> b);

/** Result of a seed-block permutation KS test. */
struct PermKsResult {
    double statistic = 0.0; //!< pooled KS D under the observed labels
    double pValue = 1.0;    //!< exact permutation p-value
    std::size_t permutations = 0; //!< balanced relabelings enumerated

    /** Equivalent at level @p alpha: fail to reject exchangeability. */
    bool passes(double alpha) const { return pValue > alpha; }
};

/**
 * Seed-block permutation KS test.
 *
 * A pooled two-sample KS p-value assumes iid samples, but ensemble
 * per-cell-hour metrics are correlated within a run: cross-cell spills
 * and shared MMPP burst luck shift every sample from one seed
 * together. Exact-vs-exact A/A pools at disjoint seeds show null D up
 * to ~0.3 where the iid critical value is ~0.08 — the plain p-value is
 * wildly anti-conservative. The fix is to treat the *run* (one seed on
 * one engine) as the exchangeable unit: enumerate every balanced
 * relabeling of the 2N blocks, recompute the pooled D for each, and
 * report the rank of the observed D in that null. Valid under
 * arbitrary within-block correlation.
 *
 * Each block is optionally mean-centered first (@p centerBlocks),
 * removing per-seed common shifts; this tightens the null from
 * D ~ 0.1-0.3 to ~0.02-0.04 so genuine within-run shape changes
 * (queueing-tail distortions) stand out. Pure location biases removed
 * by centering are the CI-overlap checks' job.
 *
 * Requires equal block counts per side, 2..8 blocks per side. D is
 * symmetric in the two pools, so the enumeration counts each balanced
 * *partition* once — C(2N-1, N-1) <= 6435 of them. The identity
 * partition is included, so pValue >= 1/permutations; with N = 5
 * there are 126 partitions and the smallest attainable p is
 * 1/126 ~ 0.0079.
 */
PermKsResult
blockPermutationKs(std::vector<std::vector<double>> blocksA,
                   std::vector<std::vector<double>> blocksB,
                   bool centerBlocks = true);

/** Mean with a symmetric Student-t confidence interval. */
struct MeanCi {
    double mean = 0.0;
    double halfWidth = 0.0; //!< t_{df,conf} * s / sqrt(n)
    std::size_t n = 0;
    double lo() const { return mean - halfWidth; }
    double hi() const { return mean + halfWidth; }
};

/**
 * Two-sided Student-t confidence interval for the mean of @p xs.
 * @p confidence must be 0.95 or 0.99 (tabulated critical values).
 * Needs at least 2 samples.
 */
MeanCi meanCi(const std::vector<double> &xs, double confidence = 0.95);

/** CI-overlap check between two per-seed metric sets. */
struct OverlapResult {
    MeanCi a, b;
    bool overlap = false; //!< [a.lo,a.hi] and [b.lo,b.hi] intersect
    /** |mean gap| as a fraction of the pooled mean (diagnostic). */
    double relGap = 0.0;
};

OverlapResult ciOverlap(const std::vector<double> &a,
                        const std::vector<double> &b,
                        double confidence = 0.95);

/** Gate thresholds. */
struct EquivalenceSpec {
    /**
     * KS rejection level. Small on purpose: the gate runs on fixed
     * seeds, so this is a margin against realization noise, not a
     * per-run false-positive rate; genuine distribution changes drive
     * the p-value to ~0 at the gate's sample sizes.
     */
    double ksAlpha = 1e-3;
    /**
     * Rejection level for blockPermutationKs checks. With 5 blocks a
     * side (126 balanced partitions) this fails only when the
     * observed D is the strict maximum of the permutation null —
     * false-positive rate ~1/126 per check under exchangeability.
     */
    double permAlpha = 0.008;
    /** Confidence for the per-seed metric intervals (0.95 or 0.99). */
    double ciConfidence = 0.95;
};

/** One named check inside a gate verdict. */
struct GateCheck {
    std::string name;
    std::string kind; //!< "ks" or "ci-overlap"
    bool passed = false;
    double statistic = 0.0; //!< KS D, or relative mean gap
    double pValue = 1.0;    //!< KS only; 1.0 for CI checks
};

/** Aggregated verdict: passes iff every check passes. */
struct GateVerdict {
    bool passed = true;
    std::vector<GateCheck> checks;
};

/** Named sample sets / per-seed metrics to compare exact vs fast. */
struct NamedSamples {
    std::string name;
    std::vector<double> exact;
    std::vector<double> fast;
};

/**
 * Run the full gate: a KS test per entry of @p distributions and a
 * CI-overlap check per entry of @p metrics.
 */
GateVerdict equivalenceGate(const std::vector<NamedSamples> &distributions,
                            const std::vector<NamedSamples> &metrics,
                            const EquivalenceSpec &spec = {});

} // namespace stats
} // namespace wsc

#endif // WSC_STATS_EQUIVALENCE_HH
