/**
 * @file
 * Streaming summary statistics (count/mean/variance/min/max).
 */

#ifndef WSC_STATS_SUMMARY_HH
#define WSC_STATS_SUMMARY_HH

#include <cstdint>
#include <limits>

namespace wsc {
namespace stats {

/**
 * Welford-style streaming accumulator for scalar samples.
 *
 * Numerically stable single-pass mean/variance; O(1) memory.
 */
class Summary
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n;
        double delta = x - mean_;
        mean_ += delta / double(n);
        m2 += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        sum_ += x;
    }

    /** Merge another accumulator into this one (parallel Welford). */
    void
    merge(const Summary &other)
    {
        if (other.n == 0)
            return;
        if (n == 0) {
            *this = other;
            return;
        }
        std::uint64_t total = n + other.n;
        double delta = other.mean_ - mean_;
        double new_mean = mean_ + delta * double(other.n) / double(total);
        m2 += other.m2 +
              delta * delta * double(n) * double(other.n) / double(total);
        mean_ = new_mean;
        n = total;
        sum_ += other.sum_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    std::uint64_t count() const { return n; }
    double sum() const { return sum_; }
    double mean() const { return n ? mean_ : 0.0; }

    /** Population variance; 0 for fewer than two samples. */
    double variance() const { return n > 1 ? m2 / double(n) : 0.0; }

    /** Sample (Bessel-corrected) variance. */
    double
    sampleVariance() const
    {
        return n > 1 ? m2 / double(n - 1) : 0.0;
    }

    double min() const { return n ? min_ : 0.0; }
    double max() const { return n ? max_ : 0.0; }

    /** Reset to the empty state. */
    void reset() { *this = Summary(); }

  private:
    std::uint64_t n = 0;
    double mean_ = 0.0;
    double m2 = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace stats
} // namespace wsc

#endif // WSC_STATS_SUMMARY_HH
