#include "stats/histogram.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace wsc {
namespace stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo(lo), hi(hi), width(0.0)
{
    // Validate before deriving width: computing (hi - lo) / bins in
    // the member-init list divided by zero on the bins == 0 path
    // before the assert could fire, yielding an inf-width histogram.
    WSC_ASSERT(hi > lo, "histogram range empty: [" << lo << ", " << hi
                                                   << ")");
    WSC_ASSERT(bins > 0, "histogram needs at least one bin");
    width = (hi - lo) / double(bins);
    counts.assign(bins, 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    auto idx = std::size_t((x - lo) / width);
    if (idx >= counts.size())
        idx = counts.size() - 1; // guard against FP edge rounding
    ++counts[idx];
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    WSC_ASSERT(i < counts.size(), "bin index " << i << " out of range");
    return counts[i];
}

double
Histogram::binLow(std::size_t i) const
{
    return lo + width * double(i);
}

double
Histogram::binHigh(std::size_t i) const
{
    return lo + width * double(i + 1);
}

std::string
Histogram::str() const
{
    std::ostringstream ss;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (!counts[i])
            continue;
        ss << "[" << binLow(i) << ", " << binHigh(i) << "): " << counts[i]
           << "\n";
    }
    if (under)
        ss << "underflow: " << under << "\n";
    if (over)
        ss << "overflow: " << over << "\n";
    return ss.str();
}

} // namespace stats
} // namespace wsc
