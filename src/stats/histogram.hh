/**
 * @file
 * Fixed-bin histogram for distribution inspection.
 */

#ifndef WSC_STATS_HISTOGRAM_HH
#define WSC_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wsc {
namespace stats {

/**
 * Uniform-width histogram over [lo, hi) with underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed @p lo.
     * @param bins Number of uniform bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in bin @p i (0-based). */
    std::uint64_t binCount(std::size_t i) const;

    /** Samples below the range. */
    std::uint64_t underflow() const { return under; }

    /** Samples at or above the upper edge. */
    std::uint64_t overflow() const { return over; }

    /** Total samples including under/overflow. */
    std::uint64_t total() const { return total_; }

    std::size_t binCountTotal() const { return counts.size(); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;

    /** Render a compact text sketch (one line per non-empty bin). */
    std::string str() const;

  private:
    double lo, hi, width;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0, over = 0, total_ = 0;
};

} // namespace stats
} // namespace wsc

#endif // WSC_STATS_HISTOGRAM_HH
