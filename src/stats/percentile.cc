#include "stats/percentile.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace stats {

void
PercentileTracker::add(double x)
{
    if (sorted && !samples.empty() && x < samples.back())
        sorted = false;
    samples.push_back(x);
}

void
PercentileTracker::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
PercentileTracker::quantile(double q) const
{
    WSC_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
    WSC_ASSERT(!samples.empty(), "quantile of empty tracker");
    ensureSorted();
    if (q <= 0.0)
        return samples.front();
    // Nearest-rank: ceil(q * n) converted to a zero-based index.
    std::size_t rank = std::size_t(std::ceil(q * double(samples.size())));
    if (rank == 0)
        rank = 1;
    if (rank > samples.size())
        rank = samples.size();
    return samples[rank - 1];
}

double
PercentileTracker::fractionAbove(double threshold) const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    // upper_bound: strictly greater than the threshold.
    auto it = std::upper_bound(samples.begin(), samples.end(), threshold);
    return double(samples.end() - it) / double(samples.size());
}

double
PercentileTracker::fractionAtLeast(double threshold) const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    // lower_bound: greater than or equal, so samples exactly at the
    // threshold count (they fail a strict "< threshold" QoS).
    auto it = std::lower_bound(samples.begin(), samples.end(), threshold);
    return double(samples.end() - it) / double(samples.size());
}

void
PercentileTracker::clear()
{
    samples.clear();
    sorted = true;
}

void
PercentileTracker::reserve(std::size_t n)
{
    samples.reserve(n);
}

} // namespace stats
} // namespace wsc
