#include "stats/equivalence.hh"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/logging.hh"

namespace wsc {
namespace stats {

namespace {

/**
 * Asymptotic Kolmogorov survival function
 * Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
 * The series alternates and collapses in a handful of terms for any
 * lambda of interest; 100 is a safe hard cap.
 */
double
kolmogorovQ(double lambda)
{
    if (lambda < 1e-9)
        return 1.0;
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 100; ++j) {
        double term = std::exp(-2.0 * double(j) * double(j) *
                               lambda * lambda);
        sum += sign * term;
        sign = -sign;
        if (term < 1e-12)
            break;
    }
    double q = 2.0 * sum;
    return std::clamp(q, 0.0, 1.0);
}

/**
 * Two-sided Student-t critical values at 95% / 99% confidence for
 * df = 1..30; beyond 30 the normal limit (last entry) is close enough
 * for gate purposes. Indexed by df - 1.
 */
constexpr double kT95[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042};
constexpr double kT99[] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169,  3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
    2.861,  2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
    2.763,  2.756, 2.750};
constexpr double kZ95 = 1.960;
constexpr double kZ99 = 2.576;

double
tCritical(std::size_t df, double confidence)
{
    bool is95 = std::abs(confidence - 0.95) < 1e-9;
    bool is99 = std::abs(confidence - 0.99) < 1e-9;
    WSC_ASSERT(is95 || is99,
               "confidence must be 0.95 or 0.99 (tabulated)");
    WSC_ASSERT(df >= 1, "need at least 2 samples for a CI");
    if (df > 30)
        return is95 ? kZ95 : kZ99;
    return is95 ? kT95[df - 1] : kT99[df - 1];
}

} // namespace

KsResult
ksTwoSample(std::vector<double> a, std::vector<double> b)
{
    WSC_ASSERT(a.size() >= 2 && b.size() >= 2,
               "KS needs at least 2 samples per side");
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    KsResult r;
    r.n1 = a.size();
    r.n2 = b.size();

    // Merge walk over both sorted samples tracking |F1 - F2|. Ties are
    // drained on both sides before the gap is examined, so the
    // statistic is the sup over x of the right-continuous EDFs.
    std::size_t i = 0, j = 0;
    double d = 0.0;
    const double inv1 = 1.0 / double(r.n1);
    const double inv2 = 1.0 / double(r.n2);
    while (i < r.n1 && j < r.n2) {
        double x = std::min(a[i], b[j]);
        while (i < r.n1 && a[i] == x)
            ++i;
        while (j < r.n2 && b[j] == x)
            ++j;
        double gap = std::abs(double(i) * inv1 - double(j) * inv2);
        if (gap > d)
            d = gap;
    }
    r.statistic = d;

    double ne = double(r.n1) * double(r.n2) / double(r.n1 + r.n2);
    double sq = std::sqrt(ne);
    double lambda = (sq + 0.12 + 0.11 / sq) * d;
    r.pValue = kolmogorovQ(lambda);
    return r;
}

PermKsResult
blockPermutationKs(std::vector<std::vector<double>> blocksA,
                   std::vector<std::vector<double>> blocksB,
                   bool centerBlocks)
{
    const std::size_t half = blocksA.size();
    WSC_ASSERT(half == blocksB.size(),
               "permutation KS needs equal block counts per side");
    WSC_ASSERT(half >= 2 && half <= 8,
               "permutation KS supports 2..8 blocks per side");

    std::vector<std::vector<double>> blocks = std::move(blocksA);
    blocks.insert(blocks.end(),
                  std::make_move_iterator(blocksB.begin()),
                  std::make_move_iterator(blocksB.end()));
    if (centerBlocks)
        for (auto &b : blocks) {
            if (b.empty())
                continue;
            double m = 0.0;
            for (double x : b)
                m += x;
            m /= double(b.size());
            for (double &x : b)
                x -= m;
        }

    const std::size_t n = blocks.size();
    auto pooledD = [&](const std::vector<char> &inA) {
        std::vector<double> a, b;
        for (std::size_t i = 0; i < n; ++i) {
            auto &dst = inA[i] ? a : b;
            dst.insert(dst.end(), blocks[i].begin(), blocks[i].end());
        }
        return ksTwoSample(std::move(a), std::move(b)).statistic;
    };

    std::vector<char> identity(n, 0);
    for (std::size_t i = 0; i < half; ++i)
        identity[i] = 1;
    PermKsResult r;
    r.statistic = pooledD(identity);

    // Enumerate every balanced partition of the n blocks exactly
    // once: D is symmetric in the two pools, so a label set and its
    // complement are the same partition — pin block 0 to side A and
    // choose the remaining half-1 of its companions from blocks
    // 1..n-1. The identity partition is one of them, so geCount >= 1.
    std::vector<std::size_t> comb(half - 1);
    for (std::size_t i = 0; i + 1 < half; ++i)
        comb[i] = i + 1;
    std::size_t geCount = 0, total = 0;
    for (;;) {
        std::vector<char> inA(n, 0);
        inA[0] = 1;
        for (std::size_t i : comb)
            inA[i] = 1;
        ++total;
        if (pooledD(inA) >= r.statistic - 1e-12)
            ++geCount;
        std::size_t k = half - 1;
        while (k > 0 && comb[k - 1] == n - half + k)
            --k;
        if (k == 0)
            break;
        ++comb[k - 1];
        for (std::size_t j = k; j + 1 < half; ++j)
            comb[j] = comb[j - 1] + 1;
    }
    r.permutations = total;
    r.pValue = double(geCount) / double(total);
    return r;
}

MeanCi
meanCi(const std::vector<double> &xs, double confidence)
{
    WSC_ASSERT(xs.size() >= 2, "CI needs at least 2 samples");
    MeanCi ci;
    ci.n = xs.size();
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    ci.mean = sum / double(ci.n);
    double ss = 0.0;
    for (double x : xs) {
        double d = x - ci.mean;
        ss += d * d;
    }
    double var = ss / double(ci.n - 1);
    double se = std::sqrt(var / double(ci.n));
    ci.halfWidth = tCritical(ci.n - 1, confidence) * se;
    return ci;
}

OverlapResult
ciOverlap(const std::vector<double> &a, const std::vector<double> &b,
          double confidence)
{
    OverlapResult r;
    r.a = meanCi(a, confidence);
    r.b = meanCi(b, confidence);
    r.overlap = r.a.lo() <= r.b.hi() && r.b.lo() <= r.a.hi();
    double pooled = 0.5 * (std::abs(r.a.mean) + std::abs(r.b.mean));
    r.relGap =
        pooled > 0.0 ? std::abs(r.a.mean - r.b.mean) / pooled : 0.0;
    return r;
}

GateVerdict
equivalenceGate(const std::vector<NamedSamples> &distributions,
                const std::vector<NamedSamples> &metrics,
                const EquivalenceSpec &spec)
{
    GateVerdict v;
    for (const auto &d : distributions) {
        auto ks = ksTwoSample(d.exact, d.fast);
        GateCheck c;
        c.name = d.name;
        c.kind = "ks";
        c.statistic = ks.statistic;
        c.pValue = ks.pValue;
        c.passed = ks.passes(spec.ksAlpha);
        v.passed = v.passed && c.passed;
        v.checks.push_back(std::move(c));
    }
    for (const auto &m : metrics) {
        auto ov = ciOverlap(m.exact, m.fast, spec.ciConfidence);
        GateCheck c;
        c.name = m.name;
        c.kind = "ci-overlap";
        c.statistic = ov.relGap;
        c.pValue = 1.0;
        c.passed = ov.overlap;
        v.passed = v.passed && c.passed;
        v.checks.push_back(std::move(c));
    }
    return v;
}

} // namespace stats
} // namespace wsc
