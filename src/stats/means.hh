/**
 * @file
 * Cross-workload aggregation helpers.
 *
 * The paper aggregates per-workload ratios (throughput, or reciprocal
 * execution time) across the suite with the harmonic mean (Section 3.2).
 */

#ifndef WSC_STATS_MEANS_HH
#define WSC_STATS_MEANS_HH

#include <vector>

namespace wsc {
namespace stats {

/** Harmonic mean of strictly positive values. */
double harmonicMean(const std::vector<double> &values);

/** Geometric mean of strictly positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean. */
double arithmeticMean(const std::vector<double> &values);

/** Weighted harmonic mean; weights need not be normalized. */
double weightedHarmonicMean(const std::vector<double> &values,
                            const std::vector<double> &weights);

} // namespace stats
} // namespace wsc

#endif // WSC_STATS_MEANS_HH
