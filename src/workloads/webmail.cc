#include "workloads/webmail.hh"

#include "util/logging.hh"

namespace wsc {
namespace workloads {

namespace {

// Heavy-usage action mix modeled after the MS Exchange 2003 LoadSim
// heavy-user profile: reads dominate, with regular folder listings and
// a steady stream of composed/replied messages.
const double actionValues[] = {0, 1, 2, 3, 4, 5, 6, 7};
const double actionWeights[] = {
    0.04, // Login
    0.22, // ListFolder
    0.34, // ReadMessage
    0.08, // ReadAttachment
    0.12, // Reply
    0.10, // Compose
    0.06, // Delete
    0.04, // MoveMessage
};

} // namespace

Webmail::Webmail(WebmailParams params)
    : p(params),
      actionDist(std::vector<double>(std::begin(actionValues),
                                     std::end(actionValues)),
                 std::vector<double>(std::begin(actionWeights),
                                     std::end(actionWeights))),
      messageSize(p.meanMessageKB, p.covMessage),
      attachmentSize(p.attachmentMeanKB, p.covAttachment),
      cpuShape(1.0, p.covCpu)
{
}

MailAction
Webmail::sampleAction(Rng &rng)
{
    return MailAction(actionDist.sampleIndex(rng));
}

ServiceDemand
Webmail::demandFor(MailAction a, Rng &rng)
{
    ServiceDemand d;
    double body_kb = 0.0;
    double disk_read = 0.0, disk_write = 0.0;
    switch (a) {
      case MailAction::Login:
        body_kb = 4.0;
        disk_read = p.mailboxReadBytes;
        break;
      case MailAction::ListFolder:
        body_kb = 12.0;
        disk_read = p.mailboxReadBytes;
        break;
      case MailAction::ReadMessage:
        body_kb = messageSize.sampleImpl(rng);
        disk_read = body_kb * 1024.0;
        break;
      case MailAction::ReadAttachment:
        body_kb = attachmentSize.sampleImpl(rng);
        disk_read = body_kb * 1024.0;
        break;
      case MailAction::Reply:
        body_kb = messageSize.sampleImpl(rng);
        disk_write = body_kb * 1024.0;
        break;
      case MailAction::Compose:
        body_kb = messageSize.sampleImpl(rng);
        disk_write = body_kb * 1024.0;
        break;
      case MailAction::Delete:
        body_kb = 2.0;
        disk_write = 4096.0;
        break;
      case MailAction::MoveMessage:
        body_kb = 2.0;
        disk_write = 8192.0;
        break;
    }
    d.cpuWork =
        (p.cpuWorkBase + p.cpuWorkPerKB * body_kb) * cpuShape.sampleImpl(rng);
    d.diskReadBytes = disk_read;
    d.diskWriteBytes = disk_write;
    // Frontend response plus IMAP/SMTP backend chatter.
    d.netBytes = body_kb * 1024.0 * (1.0 + p.backendFactor) + 6144.0;
    return d;
}

ServiceDemand
Webmail::nextRequest(Rng &rng)
{
    return demandFor(sampleAction(rng), rng);
}

ServiceDemand
Webmail::meanDemand() const
{
    // Expected body KB over the action mix.
    double mean_body = 0.0;
    double mean_read = 0.0, mean_write = 0.0;
    auto body_of = [&](MailAction a) -> double {
        switch (a) {
          case MailAction::Login:
            return 4.0;
          case MailAction::ListFolder:
            return 12.0;
          case MailAction::ReadMessage:
          case MailAction::Reply:
          case MailAction::Compose:
            return p.meanMessageKB;
          case MailAction::ReadAttachment:
            return p.attachmentMeanKB;
          case MailAction::Delete:
          case MailAction::MoveMessage:
            return 2.0;
        }
        return 0.0;
    };
    for (int i = 0; i < 8; ++i) {
        auto a = MailAction(i);
        double w = actionWeights[i];
        double body = body_of(a);
        mean_body += w * body;
        switch (a) {
          case MailAction::Login:
          case MailAction::ListFolder:
            mean_read += w * p.mailboxReadBytes;
            break;
          case MailAction::ReadMessage:
          case MailAction::ReadAttachment:
            mean_read += w * body * 1024.0;
            break;
          case MailAction::Reply:
          case MailAction::Compose:
            mean_write += w * body * 1024.0;
            break;
          case MailAction::Delete:
            mean_write += w * 4096.0;
            break;
          case MailAction::MoveMessage:
            mean_write += w * 8192.0;
            break;
        }
    }
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerKB * mean_body;
    d.diskReadBytes = mean_read;
    d.diskWriteBytes = mean_write;
    // Actions with any read (login/list/read/attach) and any write
    // (reply/compose/delete/move), from the mix weights.
    d.diskReadOps = 0.04 + 0.22 + 0.34 + 0.08;
    d.diskWriteOps = 0.12 + 0.10 + 0.06 + 0.04;
    d.netBytes = mean_body * 1024.0 * (1.0 + p.backendFactor) + 6144.0;
    return d;
}

} // namespace workloads
} // namespace wsc
