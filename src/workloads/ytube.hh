/**
 * @file
 * The ytube benchmark: rich-media streaming.
 *
 * Models the paper's modified SPECweb2005 Support workload driven with
 * YouTube traffic characteristics from Gill et al.'s edge-server study:
 * video popularity follows a Zipf distribution, transfer sizes follow a
 * heavy-tailed distribution, and delivery is paced per connection to
 * model streaming behavior. Popular videos are served from the page
 * cache; the tail goes to disk. The workload is predominantly
 * IO-bounded (paper Section 2.1).
 *
 * QoS: requests per second while keeping QoS violations comparable; we
 * realize this as a 95th-percentile bound on in-server latency.
 */

#ifndef WSC_WORKLOADS_YTUBE_HH
#define WSC_WORKLOADS_YTUBE_HH

#include "sim/batch_sampler.hh"
#include "sim/distributions.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace workloads {

/** Configuration knobs for the ytube generator. */
struct YtubeParams {
    std::uint64_t catalogSize = 100000; //!< distinct videos served
    double popularityZipf = 0.9;        //!< Gill et al. skew
    double meanTransferMB = 1.5;        //!< mean bytes per request
    double covTransfer = 1.5;           //!< heavy-tailed sizes
    /** CPU work per MB delivered (copy, TCP, container parsing). */
    double cpuWorkPerMB = 9.0e-3;
    /** Fixed per-request CPU work (HTTP, session, index lookup). */
    double cpuWorkBase = 1.0e-3;
};

/**
 * Ytube request generator.
 */
class Ytube : public InteractiveWorkload
{
  public:
    explicit Ytube(YtubeParams params = {});

    std::string name() const override { return "ytube"; }

    WorkloadTraits
    traits() const override
    {
        WorkloadTraits t;
        // IO-bound: minimal cache/CPU-scaling sensitivity. The paced
        // delivery cap models streaming QoS limiting aggregate NIC
        // delivery even on 10 GbE (see perfsim/calibration.hh).
        t.cacheBeta = 0.02;
        t.cpuScalingGamma = 1.0;
        t.diskCacheHitRate = 0.85; // Zipf head resident in page cache
        t.streamPacingCapMBs = 135.0;
        return t;
    }

    QosSpec
    qos() const override
    {
        return QosSpec{0.95, 1.0};
    }

    ServiceDemand nextRequest(Rng &rng) override;

    /**
     * Structure-of-arrays batch generation: all popularity ranks in
     * one batched guide-table sweep over the stream's fast engine,
     * then all transfer sizes. Same joint distribution as the scalar
     * path, different draws — fast-mode demand streams only.
     */
    void nextRequestBatch(BatchStream &s, ServiceDemand *out,
                          std::size_t n) override;

    ServiceDemand meanDemand() const override;

    /** Popularity rank of the next requested video. */
    std::uint64_t sampleVideoRank(Rng &rng);

    const YtubeParams &params() const { return p; }

  private:
    YtubeParams p;
    sim::ZipfDist popularity;
    sim::LognormalDist transferSize;
    // Batch-path scratch (sized on demand; reused across calls).
    sim::SampleBatcher batcher;
    std::vector<std::uint64_t> rankBuf;
    std::vector<double> sizeBuf;
};

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_YTUBE_HH
