/**
 * @file
 * The websearch benchmark: unstructured-data query serving.
 *
 * Models the paper's Nutch/Tomcat/Apache stack: a 1.3 GB index over
 * 1.3 million documents with 25% of index terms cached in memory.
 * Query keywords follow a Zipf distribution over the indexed
 * vocabulary; the number of keywords per query follows the observed
 * real-world mix of Xie & O'Hallaron (1-4 terms dominate). Queries
 * touching uncached (cold) terms read posting lists from disk.
 *
 * QoS (Table 1): >95% of queries complete within 0.5 seconds.
 */

#ifndef WSC_WORKLOADS_WEBSEARCH_HH
#define WSC_WORKLOADS_WEBSEARCH_HH

#include "sim/batch_sampler.hh"
#include "sim/distributions.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace workloads {

/** Configuration knobs for the websearch generator. */
struct WebsearchParams {
    std::uint64_t vocabularyTerms = 200000; //!< distinct indexed terms
    double termZipfExponent = 0.95;  //!< keyword popularity skew [40]
    double cachedTermFraction = 0.25; //!< index terms cached in memory
    /** CPU work per query term scored, GHz-seconds. */
    double cpuWorkPerTerm = 8.0e-3;
    /** CPU work floor per query (parse, rank, render). */
    double cpuWorkBase = 10.0e-3;
    double covCpu = 0.6;             //!< lognormal shaping of work
    double postingListBytes = 64.0 * 1024; //!< cold-term read size
    double responseBytes = 24.0 * 1024;     //!< result page size
};

/**
 * Websearch request generator.
 */
class Websearch : public InteractiveWorkload
{
  public:
    explicit Websearch(WebsearchParams params = {});

    std::string name() const override { return "websearch"; }

    WorkloadTraits
    traits() const override
    {
        WorkloadTraits t;
        // Fitted against Figure 2(c) websearch row; see
        // perfsim/calibration.hh for the derivation.
        t.cacheBeta = 0.08;
        t.cpuScalingGamma = 0.55;
        t.diskCacheHitRate = 0.0; // cold terms always hit disk
        return t;
    }

    QosSpec
    qos() const override
    {
        return QosSpec{0.95, 0.5};
    }

    ServiceDemand nextRequest(Rng &rng) override;

    /**
     * Structure-of-arrays batch generation: all keyword counts, then
     * all term ranks (batched through sim::SampleBatcher over the
     * stream's fast engine so the Zipf guide-table misses overlap and
     * the uniforms are cheap), then all CPU shaping multipliers. Same
     * joint demand distribution as the scalar path; different draws,
     * so only fast-mode demand streams may use it.
     */
    void nextRequestBatch(BatchStream &s, ServiceDemand *out,
                          std::size_t n) override;

    ServiceDemand meanDemand() const override;

    /** Number of keywords in the next query (1..4 observed mix). */
    unsigned sampleKeywordCount(Rng &rng);

    /** Whether a sampled term's postings are memory-resident. */
    bool termIsCached(std::uint64_t rank) const;

    const WebsearchParams &params() const { return p; }

  private:
    WebsearchParams p;
    sim::ZipfDist termDist;
    sim::EmpiricalDist keywordCountDist;
    /** Per-query lognormal work multiplier around 1 (mean 1, covCpu). */
    sim::LognormalDist cpuShape;
    /** Ranks at or below this are cached (popular terms are cached). */
    std::uint64_t cachedRankLimit;
    double meanKeywords;
    double coldTermProb; //!< probability one sampled term is uncached
    // Batch-path scratch (sized on demand; reused across calls).
    sim::SampleBatcher batcher;
    std::vector<std::uint32_t> countIdx;
    std::vector<std::uint64_t> rankBuf;
    std::vector<double> shapeBuf;
};

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_WEBSEARCH_HH
