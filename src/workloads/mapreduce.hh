/**
 * @file
 * The mapreduce benchmark: web-as-a-platform batch processing.
 *
 * Models the paper's Hadoop v0.14 setup (4 worker threads per CPU,
 * 1.5 GB heap) running two applications:
 *
 *  - mapred-wc: word count over a 5 GB corpus. Map tasks stream 64 MB
 *    splits from disk and are CPU-heavy (tokenize + combine); a small
 *    reduce phase writes the counts.
 *  - mapred-wr: distributed file write populating the filesystem with
 *    randomly generated words; map tasks generate data on the CPU and
 *    write 64 MB outputs.
 *
 * Performance is execution time (Table 1).
 */

#ifndef WSC_WORKLOADS_MAPREDUCE_HH
#define WSC_WORKLOADS_MAPREDUCE_HH

#include "workloads/workload.hh"

namespace wsc {
namespace workloads {

/** Which of the two paper applications to run. */
enum class MapReduceApp {
    WordCount, //!< mapred-wc
    FileWrite  //!< mapred-wr
};

/** Configuration knobs for the mapreduce job generator. */
struct MapReduceParams {
    double splitMB = 64.0;       //!< HDFS split / map input size
    // Word count: 5 GB corpus (paper Section 2.1).
    double wcCorpusGB = 5.0;
    double wcCpuPerTask = 6.1;   //!< GHz-seconds per map task
    unsigned wcReduceTasks = 8;
    double wcReduceCpu = 2.0;    //!< GHz-seconds per reduce task
    double wcReduceWriteMB = 12.5;
    // File write: 2 GB generated output.
    double wrOutputGB = 2.0;
    double wrCpuPerTask = 6.8;   //!< GHz-seconds per map task
    /** Relative jitter applied to per-task work (stragglers). */
    double taskJitterCov = 0.12;
};

/**
 * MapReduce batch job description.
 */
class MapReduce : public BatchWorkload
{
  public:
    explicit MapReduce(MapReduceApp app, MapReduceParams params = {});

    std::string
    name() const override
    {
        return app_ == MapReduceApp::WordCount ? "mapred-wc"
                                               : "mapred-wr";
    }

    WorkloadTraits
    traits() const override
    {
        WorkloadTraits t;
        // Fitted against Figure 2(c) mapreduce rows; see
        // perfsim/calibration.hh.
        t.cacheBeta = 0.05;
        t.cpuScalingGamma = 0.8;
        t.diskCacheHitRate = 0.0; // streaming IO defeats the cache
        return t;
    }

    std::vector<BatchTask> tasks(Rng &rng) const override;

    MapReduceApp app() const { return app_; }
    const MapReduceParams &params() const { return p; }

    /** Number of map tasks the job materializes. */
    unsigned mapTaskCount() const;

  private:
    MapReduceApp app_;
    MapReduceParams p;
};

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_MAPREDUCE_HH
