/**
 * @file
 * The complete benchmark suite (paper Table 1).
 */

#ifndef WSC_WORKLOADS_SUITE_HH
#define WSC_WORKLOADS_SUITE_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace wsc {
namespace workloads {

/** Identifiers for the five benchmark instances. */
enum class Benchmark {
    Websearch,
    Webmail,
    Ytube,
    MapredWc,
    MapredWr
};

/** All five, in the paper's reporting order. */
inline constexpr Benchmark allBenchmarks[] = {
    Benchmark::Websearch, Benchmark::Webmail, Benchmark::Ytube,
    Benchmark::MapredWc,  Benchmark::MapredWr,
};

/** Instantiate one benchmark workload. */
std::unique_ptr<Workload> makeBenchmark(Benchmark b);

/** Printable benchmark name (matches the paper's labels). */
std::string to_string(Benchmark b);

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_SUITE_HH
