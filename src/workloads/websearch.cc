#include "workloads/websearch.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace workloads {

Websearch::Websearch(WebsearchParams params)
    : p(params), termDist(p.vocabularyTerms, p.termZipfExponent),
      // Keyword-count mix after Xie & O'Hallaron: short queries
      // dominate web search traffic.
      keywordCountDist({1.0, 2.0, 3.0, 4.0, 5.0},
                       {0.28, 0.36, 0.22, 0.10, 0.04}),
      cpuShape(1.0, p.covCpu)
{
    WSC_ASSERT(p.cachedTermFraction >= 0.0 && p.cachedTermFraction <= 1.0,
               "cached fraction out of range");
    cachedRankLimit =
        std::uint64_t(double(p.vocabularyTerms) * p.cachedTermFraction);
    meanKeywords = keywordCountDist.mean();
    // P(term cached) = CDF of the Zipf at the cached-rank limit.
    double cached_mass = 0.0;
    for (std::uint64_t k = 1; k <= cachedRankLimit; ++k)
        cached_mass += termDist.pmf(k);
    coldTermProb = 1.0 - cached_mass;
}

unsigned
Websearch::sampleKeywordCount(Rng &rng)
{
    return unsigned(keywordCountDist.sampleImpl(rng));
}

bool
Websearch::termIsCached(std::uint64_t rank) const
{
    return rank <= cachedRankLimit;
}

ServiceDemand
Websearch::nextRequest(Rng &rng)
{
    unsigned keywords = sampleKeywordCount(rng);
    ServiceDemand d;
    double work = p.cpuWorkBase + p.cpuWorkPerTerm * double(keywords);
    // Shape per-query variability with a lognormal multiplier around 1.
    d.cpuWork = work * cpuShape.sampleImpl(rng);
    for (unsigned i = 0; i < keywords; ++i) {
        std::uint64_t rank = termDist.sampleRank(rng);
        if (!termIsCached(rank))
            d.diskReadBytes += p.postingListBytes;
    }
    d.netBytes = p.responseBytes;
    return d;
}

void
Websearch::nextRequestBatch(BatchStream &s, ServiceDemand *out,
                            std::size_t n)
{
    // Pass 1: every query's keyword count (batched empirical draw from
    // the fast engine — the table is tiny but the draw law matches).
    countIdx.resize(n);
    batcher.drawEmpiricalIndices(keywordCountDist, s.fast,
                                 countIdx.data(), n);
    std::size_t totalTerms = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned kw = unsigned(keywordCountDist.valueAt(countIdx[i]));
        countIdx[i] = kw;
        totalTerms += kw;
    }

    // Pass 2: every term rank of every query in one batched sweep —
    // this is the draw whose guide-table misses and uniform cost
    // dominate the scalar path; the batch overlaps the misses and the
    // fast engine removes most of the per-uniform cost.
    rankBuf.resize(totalTerms);
    batcher.drawZipfRanks(termDist, s.fast, rankBuf.data(), totalTerms);

    // Pass 3: CPU shaping multipliers (batched Box-Muller over the
    // fast engine — exact lognormal law) and demand assembly.
    shapeBuf.resize(n);
    batcher.drawLognormal(cpuShape, s.fast, shapeBuf.data(), n);
    std::size_t term = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned keywords = countIdx[i];
        ServiceDemand d;
        double work =
            p.cpuWorkBase + p.cpuWorkPerTerm * double(keywords);
        d.cpuWork = work * shapeBuf[i];
        for (unsigned k = 0; k < keywords; ++k)
            if (!termIsCached(rankBuf[term++]))
                d.diskReadBytes += p.postingListBytes;
        d.netBytes = p.responseBytes;
        out[i] = d;
    }
}

ServiceDemand
Websearch::meanDemand() const
{
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerTerm * meanKeywords;
    d.diskReadBytes = meanKeywords * coldTermProb * p.postingListBytes;
    // One access per query that has at least one cold term.
    d.diskReadOps = 1.0 - std::pow(1.0 - coldTermProb, meanKeywords);
    d.netBytes = p.responseBytes;
    return d;
}

} // namespace workloads
} // namespace wsc
