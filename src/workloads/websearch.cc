#include "workloads/websearch.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace workloads {

Websearch::Websearch(WebsearchParams params)
    : p(params), termDist(p.vocabularyTerms, p.termZipfExponent),
      // Keyword-count mix after Xie & O'Hallaron: short queries
      // dominate web search traffic.
      keywordCountDist({1.0, 2.0, 3.0, 4.0, 5.0},
                       {0.28, 0.36, 0.22, 0.10, 0.04})
{
    WSC_ASSERT(p.cachedTermFraction >= 0.0 && p.cachedTermFraction <= 1.0,
               "cached fraction out of range");
    cachedRankLimit =
        std::uint64_t(double(p.vocabularyTerms) * p.cachedTermFraction);
    meanKeywords = keywordCountDist.mean();
    // P(term cached) = CDF of the Zipf at the cached-rank limit.
    double cached_mass = 0.0;
    for (std::uint64_t k = 1; k <= cachedRankLimit; ++k)
        cached_mass += termDist.pmf(k);
    coldTermProb = 1.0 - cached_mass;
}

unsigned
Websearch::sampleKeywordCount(Rng &rng)
{
    return unsigned(keywordCountDist.sample(rng));
}

bool
Websearch::termIsCached(std::uint64_t rank) const
{
    return rank <= cachedRankLimit;
}

ServiceDemand
Websearch::nextRequest(Rng &rng)
{
    unsigned keywords = sampleKeywordCount(rng);
    ServiceDemand d;
    double work = p.cpuWorkBase + p.cpuWorkPerTerm * double(keywords);
    // Shape per-query variability with a lognormal multiplier around 1.
    sim::LognormalDist shape(1.0, p.covCpu);
    d.cpuWork = work * shape.sample(rng);
    for (unsigned i = 0; i < keywords; ++i) {
        std::uint64_t rank = termDist.sampleRank(rng);
        if (!termIsCached(rank))
            d.diskReadBytes += p.postingListBytes;
    }
    d.netBytes = p.responseBytes;
    return d;
}

ServiceDemand
Websearch::meanDemand() const
{
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerTerm * meanKeywords;
    d.diskReadBytes = meanKeywords * coldTermProb * p.postingListBytes;
    // One access per query that has at least one cold term.
    d.diskReadOps = 1.0 - std::pow(1.0 - coldTermProb, meanKeywords);
    d.netBytes = p.responseBytes;
    return d;
}

} // namespace workloads
} // namespace wsc
