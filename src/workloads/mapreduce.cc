#include "workloads/mapreduce.hh"

#include <cmath>

#include "sim/distributions.hh"
#include "util/logging.hh"

namespace wsc {
namespace workloads {

MapReduce::MapReduce(MapReduceApp app, MapReduceParams params)
    : app_(app), p(params)
{
    WSC_ASSERT(p.splitMB > 0.0, "split size must be positive");
}

unsigned
MapReduce::mapTaskCount() const
{
    double total_mb = (app_ == MapReduceApp::WordCount)
                          ? p.wcCorpusGB * 1024.0
                          : p.wrOutputGB * 1024.0;
    return unsigned(std::ceil(total_mb / p.splitMB));
}

std::vector<BatchTask>
MapReduce::tasks(Rng &rng) const
{
    std::vector<BatchTask> out;
    sim::LognormalDist jitter(1.0, p.taskJitterCov);
    unsigned maps = mapTaskCount();
    double split_bytes = p.splitMB * 1.0e6;
    for (unsigned i = 0; i < maps; ++i) {
        BatchTask t;
        if (app_ == MapReduceApp::WordCount) {
            t.cpuWork = p.wcCpuPerTask * jitter.sample(rng);
            t.diskReadBytes = split_bytes;
        } else {
            t.cpuWork = p.wrCpuPerTask * jitter.sample(rng);
            t.diskWriteBytes = split_bytes;
        }
        out.push_back(t);
    }
    if (app_ == MapReduceApp::WordCount) {
        for (unsigned i = 0; i < p.wcReduceTasks; ++i) {
            BatchTask t;
            t.isReduce = true;
            t.cpuWork = p.wcReduceCpu * jitter.sample(rng);
            t.diskWriteBytes = p.wcReduceWriteMB * 1.0e6;
            out.push_back(t);
        }
    }
    return out;
}

} // namespace workloads
} // namespace wsc
