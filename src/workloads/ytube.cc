#include "workloads/ytube.hh"

namespace wsc {
namespace workloads {

Ytube::Ytube(YtubeParams params)
    : p(params), popularity(p.catalogSize, p.popularityZipf),
      transferSize(p.meanTransferMB, p.covTransfer)
{
}

std::uint64_t
Ytube::sampleVideoRank(Rng &rng)
{
    return popularity.sampleRank(rng);
}

ServiceDemand
Ytube::nextRequest(Rng &rng)
{
    (void)sampleVideoRank(rng); // popularity drives cache behavior via
                                // the trait-level hit rate
    double mb = transferSize.sample(rng);
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerMB * mb;
    d.diskReadBytes = mb * 1.0e6;
    d.netBytes = mb * 1.0e6;
    return d;
}

ServiceDemand
Ytube::meanDemand() const
{
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerMB * p.meanTransferMB;
    d.diskReadBytes = p.meanTransferMB * 1.0e6;
    d.diskReadOps = 1.0;
    d.netBytes = p.meanTransferMB * 1.0e6;
    return d;
}

} // namespace workloads
} // namespace wsc
