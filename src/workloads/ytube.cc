#include "workloads/ytube.hh"

namespace wsc {
namespace workloads {

Ytube::Ytube(YtubeParams params)
    : p(params), popularity(p.catalogSize, p.popularityZipf),
      transferSize(p.meanTransferMB, p.covTransfer)
{
}

std::uint64_t
Ytube::sampleVideoRank(Rng &rng)
{
    return popularity.sampleRank(rng);
}

ServiceDemand
Ytube::nextRequest(Rng &rng)
{
    (void)sampleVideoRank(rng); // popularity drives cache behavior via
                                // the trait-level hit rate
    double mb = transferSize.sampleImpl(rng);
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerMB * mb;
    d.diskReadBytes = mb * 1.0e6;
    d.netBytes = mb * 1.0e6;
    return d;
}

void
Ytube::nextRequestBatch(BatchStream &s, ServiceDemand *out,
                        std::size_t n)
{
    // The popularity draw is the expensive one (catalog-sized Zipf
    // guide table); batch it over the fast engine so its misses
    // overlap and the uniforms are cheap, then assemble demands from
    // batched Box-Muller transfer-size draws (exact lognormal law).
    rankBuf.resize(n);
    batcher.drawZipfRanks(popularity, s.fast, rankBuf.data(), n);
    sizeBuf.resize(n);
    batcher.drawLognormal(transferSize, s.fast, sizeBuf.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        double mb = sizeBuf[i];
        ServiceDemand d;
        d.cpuWork = p.cpuWorkBase + p.cpuWorkPerMB * mb;
        d.diskReadBytes = mb * 1.0e6;
        d.netBytes = mb * 1.0e6;
        out[i] = d;
    }
}

ServiceDemand
Ytube::meanDemand() const
{
    ServiceDemand d;
    d.cpuWork = p.cpuWorkBase + p.cpuWorkPerMB * p.meanTransferMB;
    d.diskReadBytes = p.meanTransferMB * 1.0e6;
    d.diskReadOps = 1.0;
    d.netBytes = p.meanTransferMB * 1.0e6;
    return d;
}

} // namespace workloads
} // namespace wsc
