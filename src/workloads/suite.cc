#include "workloads/suite.hh"

#include "util/logging.hh"
#include "workloads/mapreduce.hh"
#include "workloads/webmail.hh"
#include "workloads/websearch.hh"
#include "workloads/ytube.hh"

namespace wsc {
namespace workloads {

std::unique_ptr<Workload>
makeBenchmark(Benchmark b)
{
    switch (b) {
      case Benchmark::Websearch:
        return std::make_unique<Websearch>();
      case Benchmark::Webmail:
        return std::make_unique<Webmail>();
      case Benchmark::Ytube:
        return std::make_unique<Ytube>();
      case Benchmark::MapredWc:
        return std::make_unique<MapReduce>(MapReduceApp::WordCount);
      case Benchmark::MapredWr:
        return std::make_unique<MapReduce>(MapReduceApp::FileWrite);
    }
    panic("unknown benchmark");
}

std::string
to_string(Benchmark b)
{
    switch (b) {
      case Benchmark::Websearch:
        return "websearch";
      case Benchmark::Webmail:
        return "webmail";
      case Benchmark::Ytube:
        return "ytube";
      case Benchmark::MapredWc:
        return "mapred-wc";
      case Benchmark::MapredWr:
        return "mapred-wr";
    }
    panic("unknown benchmark");
}

} // namespace workloads
} // namespace wsc
