/**
 * @file
 * The webmail benchmark: interactive web2.0 mail serving.
 *
 * Models the paper's SquirrelMail/Apache/PHP stack with courier-imap
 * and exim backends. Clients run sessions of actions (login, read,
 * reply, compose, ...) following the MS Exchange LoadSim "heavy user"
 * profile; message and attachment sizes follow lognormal distributions
 * fitted to the University of Michigan statistics the paper cites.
 * Requests generate substantial backend network traffic (IMAP/SMTP on
 * a separate machine).
 *
 * QoS (Table 1): >95% of requests complete within 0.8 seconds.
 */

#ifndef WSC_WORKLOADS_WEBMAIL_HH
#define WSC_WORKLOADS_WEBMAIL_HH

#include "sim/distributions.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace workloads {

/** Session actions in the LoadSim-style heavy-usage mix. */
enum class MailAction {
    Login,
    ListFolder,
    ReadMessage,
    ReadAttachment,
    Reply,
    Compose,
    Delete,
    MoveMessage
};

/** Configuration knobs for the webmail generator. */
struct WebmailParams {
    /** CPU work for PHP templating per action, GHz-seconds. */
    double cpuWorkBase = 22.0e-3;
    /** Extra CPU work per KB of message body processed. */
    double cpuWorkPerKB = 0.35e-3;
    double covCpu = 0.9;
    double meanMessageKB = 24.0;     //!< lognormal mean body size
    double covMessage = 2.0;
    double attachmentMeanKB = 380.0; //!< lognormal mean attachment
    double covAttachment = 1.6;
    double mailboxReadBytes = 8.0 * 1024; //!< maildir metadata read
    double backendFactor = 1.6; //!< backend bytes per frontend byte
};

/**
 * Webmail request generator. Each request is one session action drawn
 * from the heavy-usage mix.
 */
class Webmail : public InteractiveWorkload
{
  public:
    explicit Webmail(WebmailParams params = {});

    std::string name() const override { return "webmail"; }

    WorkloadTraits
    traits() const override
    {
        WorkloadTraits t;
        // Fitted against Figure 2(c) webmail row (the suite's most
        // CPU-sensitive workload); see perfsim/calibration.hh.
        t.cacheBeta = 0.05;
        t.cpuScalingGamma = 1.06;
        t.diskCacheHitRate = 0.7; // hot mailboxes largely cached
        return t;
    }

    QosSpec
    qos() const override
    {
        return QosSpec{0.95, 0.8};
    }

    ServiceDemand nextRequest(Rng &rng) override;
    ServiceDemand meanDemand() const override;

    /** Draw the next session action from the heavy-usage mix. */
    MailAction sampleAction(Rng &rng);

    const WebmailParams &params() const { return p; }

  private:
    WebmailParams p;
    sim::EmpiricalDist actionDist;
    sim::LognormalDist messageSize;
    sim::LognormalDist attachmentSize;
    /** Per-action lognormal work multiplier around 1 (mean 1, covCpu). */
    sim::LognormalDist cpuShape;

    /** Demand construction for one concrete action. */
    ServiceDemand demandFor(MailAction a, Rng &rng);
};

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_WEBMAIL_HH
