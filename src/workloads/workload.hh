/**
 * @file
 * Workload abstractions for the warehouse-computing benchmark suite.
 *
 * The suite (paper Table 1) contains three interactive services
 * measured in sustainable requests-per-second under a QoS constraint
 * (websearch, webmail, ytube) and one batch workload measured in
 * execution time (mapreduce, in -wc and -wr flavors).
 *
 * A request is described by its resource demands; the server simulator
 * turns demands into latency through queueing at the platform's CPU,
 * disk, and NIC stations.
 */

#ifndef WSC_WORKLOADS_WORKLOAD_HH
#define WSC_WORKLOADS_WORKLOAD_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"

namespace wsc {
namespace workloads {

/**
 * Resource demands of a single request.
 *
 * CPU work is in GHz-seconds (cycles / 1e9) of a reference
 * out-of-order core; the platform calibration converts a platform's
 * cores into an aggregate GHz-equivalent capacity.
 */
struct ServiceDemand {
    double cpuWork = 0.0;       //!< GHz-seconds
    double diskReadBytes = 0.0; //!< bytes read if the page cache misses
    double diskWriteBytes = 0.0;
    double netBytes = 0.0;      //!< response + backend traffic bytes
    /**
     * Expected number of disk read/write operations (access charges).
     * Only meaningful on meanDemand() results, where ops can be
     * fractional; per-request demands encode ops implicitly (an op
     * happens iff the corresponding byte count is positive).
     */
    double diskReadOps = 0.0;
    double diskWriteOps = 0.0;
};

/** QoS specification: a latency bound at a quantile. */
struct QosSpec {
    double quantile = 0.95;    //!< fraction of requests bounded
    double latencyLimit = 0.5; //!< seconds
};

/**
 * Uniform sources for batched demand generation (fast-mode only).
 *
 * Batch overrides split their draws by cost profile: bulk guide-table
 * uniforms come from the counter-based `fast` engine (same law as
 * Rng::uniform on the 53-bit grid, several times cheaper, not
 * bit-identical), while shaping draws that go through std::
 * distributions (lognormal multipliers) stay on the mt19937-backed
 * `rng`. Both children hang off the parent's construction seed via
 * Rng::stream, so a fast-mode run is fully determined by its seed
 * even though its draws differ from the exact path's — the relaxation
 * sim/fast_mode.hh's statistical-equivalence gate covers.
 */
struct BatchStream {
    Rng rng;         //!< shaping draws (std:: distributions)
    SplitMix64 fast; //!< bulk guide-table uniforms

    explicit BatchStream(const Rng &parent)
        : rng(parent.stream("fast-mode", "demand")),
          fast(parent.stream("fast-mode", "uniforms").seed())
    {
    }
};

/**
 * Per-workload calibration traits consumed by the performance model.
 *
 * cacheBeta and cpuScalingGamma encode how the workload's throughput
 * responds to last-level cache capacity and to raw CPU capability;
 * they are fitted against the paper's published relative performance
 * (Figure 2c) and documented in perfsim/calibration.hh.
 */
struct WorkloadTraits {
    /** Sensitivity of per-core perf to L2 size: (l2/8MB)^beta. */
    double cacheBeta = 0.05;
    /**
     * Software-scaling exponent: effective capability is
     * srvr1_cap * (raw/raw_srvr1)^gamma. gamma < 1 models software
     * bottlenecks that flatten hardware differences; gamma > 1 models
     * workloads that punish weak platforms super-linearly.
     */
    double cpuScalingGamma = 1.0;
    /** In-order cores deliver this fraction of an OoO core's IPC. */
    double inorderIpcFactor = 0.6;
    /** Fraction of disk reads absorbed by the page cache. */
    double diskCacheHitRate = 0.0;
    /**
     * Streaming workloads pace delivery per connection; aggregate NIC
     * delivery is capped at this many MB/s regardless of link speed
     * (0 = uncapped). Models the paper's ytube streaming QoS.
     */
    double streamPacingCapMBs = 0.0;
};

/** Kind discriminator for the two measurement styles. */
enum class WorkloadKind {
    Interactive, //!< sustainable RPS under QoS
    Batch        //!< fixed job, execution time
};

/** Base class: common identity and calibration traits. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual WorkloadKind kind() const = 0;
    virtual WorkloadTraits traits() const = 0;
};

/** Interactive service: a stream of requests with a QoS target. */
class InteractiveWorkload : public Workload
{
  public:
    WorkloadKind kind() const override { return WorkloadKind::Interactive; }

    /** The QoS constraint from Table 1. */
    virtual QosSpec qos() const = 0;

    /** Draw the demands of the next request. */
    virtual ServiceDemand nextRequest(Rng &rng) = 0;

    /**
     * Draw @p n requests' demands into @p out in one call.
     *
     * The default is the scalar loop over the stream's Rng, so every
     * workload supports the batch interface with unchanged per-request
     * semantics. Generators with guide-table draws override this with
     * structure-of-arrays generation (all counts, then all table
     * lookups, then all shaping multipliers) so sim::SampleBatcher can
     * overlap the lookups' cache misses across requests, sourcing the
     * bulk uniforms from the stream's fast engine. Overrides must
     * preserve the per-request joint demand distribution; they need
     * not preserve the exact path's draw order or bit patterns, which
     * is why only fast mode (sim/fast_mode.hh) calls this.
     */
    virtual void
    nextRequestBatch(BatchStream &s, ServiceDemand *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = nextRequest(s.rng);
    }

    /** Mean demands (for capacity estimation; exact where possible). */
    virtual ServiceDemand meanDemand() const = 0;
};

/** One task of a batch job. */
struct BatchTask {
    double cpuWork = 0.0;       //!< GHz-seconds
    double diskReadBytes = 0.0;
    double diskWriteBytes = 0.0;
    bool isReduce = false;      //!< reduce tasks wait for all maps
};

/** Batch job: a MapReduce-style task graph. */
class BatchWorkload : public Workload
{
  public:
    WorkloadKind kind() const override { return WorkloadKind::Batch; }

    /** Materialize the job's tasks (maps first, then reduces). */
    virtual std::vector<BatchTask> tasks(Rng &rng) const = 0;

    /** Worker threads Hadoop runs per core (paper: 4 per CPU). */
    virtual unsigned threadsPerCore() const { return 4; }
};

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_WORKLOAD_HH
