/**
 * @file
 * Workload abstractions for the warehouse-computing benchmark suite.
 *
 * The suite (paper Table 1) contains three interactive services
 * measured in sustainable requests-per-second under a QoS constraint
 * (websearch, webmail, ytube) and one batch workload measured in
 * execution time (mapreduce, in -wc and -wr flavors).
 *
 * A request is described by its resource demands; the server simulator
 * turns demands into latency through queueing at the platform's CPU,
 * disk, and NIC stations.
 */

#ifndef WSC_WORKLOADS_WORKLOAD_HH
#define WSC_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "util/random.hh"

namespace wsc {
namespace workloads {

/**
 * Resource demands of a single request.
 *
 * CPU work is in GHz-seconds (cycles / 1e9) of a reference
 * out-of-order core; the platform calibration converts a platform's
 * cores into an aggregate GHz-equivalent capacity.
 */
struct ServiceDemand {
    double cpuWork = 0.0;       //!< GHz-seconds
    double diskReadBytes = 0.0; //!< bytes read if the page cache misses
    double diskWriteBytes = 0.0;
    double netBytes = 0.0;      //!< response + backend traffic bytes
    /**
     * Expected number of disk read/write operations (access charges).
     * Only meaningful on meanDemand() results, where ops can be
     * fractional; per-request demands encode ops implicitly (an op
     * happens iff the corresponding byte count is positive).
     */
    double diskReadOps = 0.0;
    double diskWriteOps = 0.0;
};

/** QoS specification: a latency bound at a quantile. */
struct QosSpec {
    double quantile = 0.95;    //!< fraction of requests bounded
    double latencyLimit = 0.5; //!< seconds
};

/**
 * Per-workload calibration traits consumed by the performance model.
 *
 * cacheBeta and cpuScalingGamma encode how the workload's throughput
 * responds to last-level cache capacity and to raw CPU capability;
 * they are fitted against the paper's published relative performance
 * (Figure 2c) and documented in perfsim/calibration.hh.
 */
struct WorkloadTraits {
    /** Sensitivity of per-core perf to L2 size: (l2/8MB)^beta. */
    double cacheBeta = 0.05;
    /**
     * Software-scaling exponent: effective capability is
     * srvr1_cap * (raw/raw_srvr1)^gamma. gamma < 1 models software
     * bottlenecks that flatten hardware differences; gamma > 1 models
     * workloads that punish weak platforms super-linearly.
     */
    double cpuScalingGamma = 1.0;
    /** In-order cores deliver this fraction of an OoO core's IPC. */
    double inorderIpcFactor = 0.6;
    /** Fraction of disk reads absorbed by the page cache. */
    double diskCacheHitRate = 0.0;
    /**
     * Streaming workloads pace delivery per connection; aggregate NIC
     * delivery is capped at this many MB/s regardless of link speed
     * (0 = uncapped). Models the paper's ytube streaming QoS.
     */
    double streamPacingCapMBs = 0.0;
};

/** Kind discriminator for the two measurement styles. */
enum class WorkloadKind {
    Interactive, //!< sustainable RPS under QoS
    Batch        //!< fixed job, execution time
};

/** Base class: common identity and calibration traits. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual WorkloadKind kind() const = 0;
    virtual WorkloadTraits traits() const = 0;
};

/** Interactive service: a stream of requests with a QoS target. */
class InteractiveWorkload : public Workload
{
  public:
    WorkloadKind kind() const override { return WorkloadKind::Interactive; }

    /** The QoS constraint from Table 1. */
    virtual QosSpec qos() const = 0;

    /** Draw the demands of the next request. */
    virtual ServiceDemand nextRequest(Rng &rng) = 0;

    /** Mean demands (for capacity estimation; exact where possible). */
    virtual ServiceDemand meanDemand() const = 0;
};

/** One task of a batch job. */
struct BatchTask {
    double cpuWork = 0.0;       //!< GHz-seconds
    double diskReadBytes = 0.0;
    double diskWriteBytes = 0.0;
    bool isReduce = false;      //!< reduce tasks wait for all maps
};

/** Batch job: a MapReduce-style task graph. */
class BatchWorkload : public Workload
{
  public:
    WorkloadKind kind() const override { return WorkloadKind::Batch; }

    /** Materialize the job's tasks (maps first, then reduces). */
    virtual std::vector<BatchTask> tasks(Rng &rng) const = 0;

    /** Worker threads Hadoop runs per core (paper: 4 per CPU). */
    virtual unsigned threadsPerCore() const { return 4; }
};

} // namespace workloads
} // namespace wsc

#endif // WSC_WORKLOADS_WORKLOAD_HH
