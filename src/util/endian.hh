/**
 * @file
 * Byte-order helpers for on-disk binary formats.
 *
 * Every binary trace format in the repo is declared little-endian so
 * files written on one host replay on any other. On little-endian
 * hosts (every machine we actually run on) the conversions compile to
 * nothing; big-endian hosts byte-swap on the way in and out.
 */

#ifndef WSC_UTIL_ENDIAN_HH
#define WSC_UTIL_ENDIAN_HH

#include <cstdint>
#include <cstring>

namespace wsc {

namespace detail {

constexpr bool kHostIsLittleEndian =
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
    true; // MSVC targets are all little-endian
#endif

inline std::uint64_t
bswap64(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap64(v);
#else
    return ((v & 0x00000000000000FFULL) << 56) |
           ((v & 0x000000000000FF00ULL) << 40) |
           ((v & 0x0000000000FF0000ULL) << 24) |
           ((v & 0x00000000FF000000ULL) << 8) |
           ((v & 0x000000FF00000000ULL) >> 8) |
           ((v & 0x0000FF0000000000ULL) >> 24) |
           ((v & 0x00FF000000000000ULL) >> 40) |
           ((v & 0xFF00000000000000ULL) >> 56);
#endif
}

} // namespace detail

/** Host u64 -> little-endian on-disk representation. */
inline std::uint64_t
toLittle64(std::uint64_t v)
{
    return detail::kHostIsLittleEndian ? v : detail::bswap64(v);
}

/** Little-endian on-disk u64 -> host representation. */
inline std::uint64_t
fromLittle64(std::uint64_t v)
{
    return detail::kHostIsLittleEndian ? v : detail::bswap64(v);
}

} // namespace wsc

#endif // WSC_UTIL_ENDIAN_HH
