/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 convention in spirit: panic() for internal invariant
 * violations (library bugs), fatal() for user errors that make
 * continuing impossible, warn()/inform() for advisory output. Because
 * this is a library rather than a standalone simulator binary, panic()
 * and fatal() throw typed exceptions instead of calling abort()/exit(),
 * so embedding applications and tests can intercept them.
 */

#ifndef WSC_UTIL_LOGGING_HH
#define WSC_UTIL_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace wsc {

/** Thrown by panic(): an internal library invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Thrown by fatal(): user input or configuration makes progress impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Silent,   //!< suppress everything
    Warn,     //!< warnings only
    Inform,   //!< warnings and informational messages
    Debug     //!< everything, including debug trace output
};

/**
 * Process-wide logging configuration.
 *
 * The evaluator is single-threaded per simulation; the logger keeps a
 * plain global level with no synchronization.
 */
class Logger
{
  public:
    /** Current verbosity. Defaults to LogLevel::Warn. */
    static LogLevel level();

    /** Set the verbosity for the whole process. */
    static void setLevel(LogLevel level);

    /** Count of warnings emitted so far (useful in tests). */
    static std::uint64_t warnCount();

    /** Reset warning counter (tests only). */
    static void resetWarnCount();

  private:
    friend void warn(const std::string &);
    static std::uint64_t _warnCount;
    static LogLevel _level;
};

/**
 * Report an internal invariant violation. Throws PanicError; never
 * returns normally.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user/configuration error. Throws FatalError;
 * never returns normally.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Emit a warning to stderr (subject to the global log level). */
void warn(const std::string &msg);

/** Emit an informational message to stderr. */
void inform(const std::string &msg);

/** Emit a debug message to stderr. */
void debugLog(const std::string &msg);

/**
 * Assert a library invariant; calls panic() with location info when the
 * condition is false. Enabled in all build types.
 */
#define WSC_ASSERT(cond, msg)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            std::ostringstream wsc_assert_ss;                            \
            wsc_assert_ss << "assertion '" #cond "' failed at "          \
                          << __FILE__ << ":" << __LINE__ << ": " << msg; \
            ::wsc::panic(wsc_assert_ss.str());                           \
        }                                                                \
    } while (0)

} // namespace wsc

#endif // WSC_UTIL_LOGGING_HH
