/**
 * @file
 * Unit conventions and conversion helpers used throughout the library.
 *
 * Quantities are plain doubles with the unit encoded in the name
 * (wattage, dollars, seconds, bytes). The helpers here centralize the
 * handful of conversions the cost and performance models need, so the
 * magic numbers (hours per year, bytes per GB, ...) live in one place.
 */

#ifndef WSC_UTIL_UNITS_HH
#define WSC_UTIL_UNITS_HH

#include <cstdint>

namespace wsc {
namespace units {

/** Hours in one (average Julian-calendar) year. */
constexpr double hoursPerYear = 365.0 * 24.0;

/** Seconds in one hour. */
constexpr double secondsPerHour = 3600.0;

/** Watt-hours per megawatt-hour. */
constexpr double whPerMWh = 1.0e6;

constexpr double kiB = 1024.0;
constexpr double MiB = 1024.0 * kiB;
constexpr double GiB = 1024.0 * MiB;

/** Disk-vendor (decimal) units, used for capacities quoted in GB. */
constexpr double kB = 1000.0;
constexpr double MB = 1000.0 * kB;
constexpr double GB = 1000.0 * MB;

constexpr double microseconds = 1.0e-6;
constexpr double milliseconds = 1.0e-3;

/** Convert a sustained wattage over a duration in hours to MWh. */
constexpr double
wattHoursToMWh(double watts, double hours)
{
    return watts * hours / whPerMWh;
}

/** Energy (MWh) drawn by @p watts sustained for @p years years. */
constexpr double
energyMWh(double watts, double years)
{
    return wattHoursToMWh(watts, years * hoursPerYear);
}

} // namespace units
} // namespace wsc

#endif // WSC_UTIL_UNITS_HH
