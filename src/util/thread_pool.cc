#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "util/logging.hh"

namespace wsc {

namespace {

/** True on threads owned by some ThreadPool; guards against nested
 * parallelFor deadlocking on its own pool. */
thread_local bool insideWorker = false;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = threads ? threads : defaultThreads();
    // A four-digit pool is already oversubscription on any current
    // machine; beyond that it is a caller bug (e.g. a negative count
    // wrapped through unsigned) that would exhaust process limits.
    WSC_ASSERT(n <= 4096, "implausible thread count: " << n);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cvJob.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::post(std::function<void()> job)
{
    WSC_ASSERT(job, "null pool job");
    {
        std::lock_guard<std::mutex> lock(mtx);
        WSC_ASSERT(!stopping, "post() on a stopping pool");
        queue.push_back(std::move(job));
    }
    cvJob.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cvIdle.wait(lock, [this] { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    insideWorker = true;
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvJob.wait(lock,
                       [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --active;
            if (queue.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("WSC_THREADS")) {
        long n = std::atol(env);
        if (n > 0)
            return unsigned(n);
        warn("ignoring non-positive WSC_THREADS value");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace {

std::unique_ptr<ThreadPool> globalPool;
/**
 * Pools replaced by setGlobalThreads(). global() returns a reference,
 * so a concurrent caller may still hold (and post to) the previous
 * pool when it is swapped out; destroying it would dangle that
 * reference. Retired pools stay alive — idle, workers parked on the
 * condition variable — until process exit, when their destructors
 * drain and join. Resizes are rare (a --threads flag at startup), so
 * the retained memory is bounded in practice.
 */
std::vector<std::unique_ptr<ThreadPool>> retiredPools;
std::mutex globalPoolMtx;

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalPoolMtx);
    if (!globalPool)
        globalPool = std::make_unique<ThreadPool>();
    return *globalPool;
}

void
ThreadPool::setGlobalThreads(unsigned threads)
{
    // Build the replacement before taking the lock so a failing
    // construction (implausible thread count) leaves the global
    // untouched.
    auto replacement = std::make_unique<ThreadPool>(threads);
    std::lock_guard<std::mutex> lock(globalPoolMtx);
    if (globalPool)
        retiredPools.push_back(std::move(globalPool));
    globalPool = std::move(replacement);
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &body,
            ThreadPool *pool)
{
    WSC_ASSERT(body, "null parallelFor body");
    if (n == 0)
        return;

    if (!pool)
        pool = &ThreadPool::global();

    // Serial fast path: trivial trip counts, single-threaded pools,
    // and nested calls from inside a worker (which would otherwise
    // wait on jobs the occupied pool cannot schedule).
    if (n == 1 || pool->threads() <= 1 || insideWorker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    struct Shared {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMtx;
        std::mutex doneMtx;
        std::condition_variable doneCv;
    };
    auto shared = std::make_shared<Shared>();

    std::size_t jobs = std::min<std::size_t>(pool->threads(), n);
    auto drain = [shared, n, &body] {
        for (std::size_t i = shared->next.fetch_add(1); i < n;
             i = shared->next.fetch_add(1)) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared->errorMtx);
                if (!shared->error)
                    shared->error = std::current_exception();
            }
        }
    };
    for (std::size_t j = 0; j < jobs; ++j) {
        pool->post([shared, drain] {
            drain();
            std::lock_guard<std::mutex> lock(shared->doneMtx);
            ++shared->done;
            shared->doneCv.notify_all();
        });
    }
    // The caller participates instead of idling: it claims iterations
    // from the same cursor, then waits for the pool's share.
    drain();
    {
        std::unique_lock<std::mutex> lock(shared->doneMtx);
        shared->doneCv.wait(
            lock, [&] { return shared->done.load() == jobs; });
    }
    if (shared->error)
        std::rethrow_exception(shared->error);
}

} // namespace wsc
