/**
 * @file
 * Work-sharing thread pool and deterministic parallelFor.
 *
 * The design-space sweeps are embarrassingly parallel: every
 * (design, workload) cell is an independent simulation. This pool
 * fans those cells out across hardware threads while preserving the
 * repo's determinism contract: tasks are identified by index, write
 * only to their own output slot, and derive RNG seeds from their
 * identity (see util/hash.hh), so results are bit-identical to the
 * serial order for any thread count.
 *
 * Thread count resolution, highest priority first:
 *  1. an explicit count passed by the caller,
 *  2. the WSC_THREADS environment variable,
 *  3. std::thread::hardware_concurrency().
 */

#ifndef WSC_UTIL_THREAD_POOL_HH
#define WSC_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsc {

/**
 * A fixed-size pool of worker threads executing queued jobs.
 *
 * Jobs may not block on other jobs in the same pool (no futures
 * between jobs); parallelFor() is the intended high-level interface.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threads() const { return unsigned(workers.size()); }

    /** Enqueue a job for asynchronous execution. */
    void post(std::function<void()> job);

    /** Block until every queued and running job has finished. */
    void wait();

    /** WSC_THREADS if set and positive, else hardware concurrency. */
    static unsigned defaultThreads();

    /**
     * The process-wide pool used by parallelFor() when no pool is
     * passed. Created on first use with defaultThreads() workers.
     */
    static ThreadPool &global();

    /**
     * Resize the global pool (e.g. from a --threads flag). Safe to
     * call while other threads hold references from global(): the
     * previous pool is retired, not destroyed — outstanding
     * references stay valid and already-posted jobs still run on it —
     * and is reclaimed at process exit. Callers that want subsequent
     * work on the new width must re-fetch global().
     */
    static void setGlobalThreads(unsigned threads);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cvJob;   //!< signals workers: job or stop
    std::condition_variable cvIdle;  //!< signals wait(): all drained
    std::size_t active = 0;          //!< jobs currently executing
    bool stopping = false;
};

/**
 * Run body(i) for i in [0, n) across the pool's workers.
 *
 * Iterations are claimed dynamically (an atomic cursor), so skew
 * between task costs is balanced automatically; determinism is the
 * task's responsibility (slot-indexed output, identity-derived seeds).
 * The first exception thrown by any iteration is rethrown in the
 * caller after all workers drain. Runs inline without touching the
 * pool when n <= 1, when the pool has a single thread, or when called
 * from inside a pool worker (nested parallelism degrades to serial
 * rather than deadlocking).
 *
 * @param n iteration count
 * @param body callable invoked with each index exactly once
 * @param pool pool to use; nullptr selects ThreadPool::global()
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 ThreadPool *pool = nullptr);

} // namespace wsc

#endif // WSC_UTIL_THREAD_POOL_HH
