/**
 * @file
 * Minimal command-line argument parser for the tools.
 *
 * Supports `--name value` and `--name=value` options with defaults,
 * `--flag` / `--flag=true|false` booleans, and `--help`. Unknown
 * arguments raise FatalError with a usage message, keeping the tools
 * honest about their surface.
 */

#ifndef WSC_UTIL_ARGS_HH
#define WSC_UTIL_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace wsc {

/** Declarative option/flag parser. */
class ArgParser
{
  public:
    ArgParser(std::string program, std::string description);

    /** Register a value option with a default. */
    ArgParser &addOption(const std::string &name,
                         const std::string &help,
                         const std::string &defaultValue);

    /** Register a boolean flag (defaults to false). */
    ArgParser &addFlag(const std::string &name, const std::string &help);

    /**
     * Parse the command line. Both `--name value` and `--name=value`
     * forms are accepted. Each call starts from a clean slate: values
     * and set-flags from a previous parse() are reset to the
     * registered defaults first, so a parser can be reused.
     * @return false when --help was requested (usage printed).
     * @throws FatalError on unknown options or missing values.
     */
    bool parse(int argc, const char *const *argv);

    /** Value of an option (its default if unset). */
    const std::string &get(const std::string &name) const;

    /** Option parsed as double. */
    double getDouble(const std::string &name) const;

    /** Flag state. */
    bool flag(const std::string &name) const;

    /** True when the option was given explicitly in the last parse. */
    bool given(const std::string &name) const;

    /** Render the usage text. */
    std::string usage() const;

    /**
     * Closest registered option name to @p name, or "" when nothing is
     * near enough to plausibly be a typo. Used for the
     * "did you mean" hint on unknown options; exposed for tests.
     */
    std::string suggest(const std::string &name) const;

  private:
    struct Option {
        std::string help;
        std::string value;
        std::string defaultValue;
        bool isFlag = false;
        bool set = false;
    };

    std::string program;
    std::string description;
    std::vector<std::string> order; //!< declaration order for usage
    std::map<std::string, Option> options;

    Option &find(const std::string &name);
    const Option &find(const std::string &name) const;
};

} // namespace wsc

#endif // WSC_UTIL_ARGS_HH
