#include "util/args.hh"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/logging.hh"

namespace wsc {

namespace {

/** Plain Levenshtein distance; option names are short, so the O(nm)
 * table is fine. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

ArgParser::ArgParser(std::string program_in, std::string description_in)
    : program(std::move(program_in)),
      description(std::move(description_in))
{
}

ArgParser &
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &defaultValue)
{
    WSC_ASSERT(!options.count(name), "duplicate option --" << name);
    options[name] = Option{help, defaultValue, defaultValue, false,
                           false};
    order.push_back(name);
    return *this;
}

ArgParser &
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    WSC_ASSERT(!options.count(name), "duplicate flag --" << name);
    options[name] = Option{help, "false", "false", true, false};
    order.push_back(name);
    return *this;
}

ArgParser::Option &
ArgParser::find(const std::string &name)
{
    auto it = options.find(name);
    WSC_ASSERT(it != options.end(), "unregistered option --" << name);
    return it->second;
}

const ArgParser::Option &
ArgParser::find(const std::string &name) const
{
    auto it = options.find(name);
    WSC_ASSERT(it != options.end(), "unregistered option --" << name);
    return it->second;
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    // Reset to defaults so a reused parser does not inherit values or
    // set-flags from a previous parse.
    for (auto &entry : options) {
        entry.second.value = entry.second.defaultValue;
        entry.second.set = false;
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '" + arg + "'\n" + usage());

        // Split the --name=value form.
        std::string name = arg.substr(2);
        bool has_inline = false;
        std::string inline_value;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            has_inline = true;
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
        }

        auto it = options.find(name);
        if (it == options.end()) {
            std::string hint = suggest(name);
            fatal("unknown option '--" + name + "'" +
                  (hint.empty() ? ""
                                : " (did you mean '--" + hint + "'?)") +
                  "\n" + usage());
        }
        if (it->second.isFlag) {
            if (has_inline) {
                if (inline_value != "true" && inline_value != "false")
                    fatal("flag '--" + name +
                          "' accepts only true or false, got '" +
                          inline_value + "'");
                it->second.value = inline_value;
            } else {
                it->second.value = "true";
            }
            it->second.set = true;
        } else {
            if (has_inline) {
                it->second.value = inline_value;
            } else {
                if (i + 1 >= argc)
                    fatal("option '" + arg + "' needs a value\n" +
                          usage());
                it->second.value = argv[++i];
            }
            it->second.set = true;
        }
    }
    return true;
}

const std::string &
ArgParser::get(const std::string &name) const
{
    return find(name).value;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const auto &v = get(name);
    try {
        std::size_t consumed = 0;
        double d = std::stod(v, &consumed);
        if (consumed != v.size())
            throw std::invalid_argument("trailing characters");
        return d;
    } catch (const std::exception &) {
        fatal("option --" + name + " expects a number, got '" + v +
              "'");
    }
}

bool
ArgParser::flag(const std::string &name) const
{
    return find(name).value == "true";
}

bool
ArgParser::given(const std::string &name) const
{
    return find(name).set;
}

std::string
ArgParser::suggest(const std::string &name) const
{
    // Closest registered name within an edit distance small enough to
    // look like a typo rather than a different word. Declaration order
    // breaks distance ties deterministically.
    std::string best;
    std::size_t bestDist = 0;
    for (const auto &candidate : order) {
        std::size_t d = editDistance(name, candidate);
        if (best.empty() || d < bestDist) {
            best = candidate;
            bestDist = d;
        }
    }
    std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
    return bestDist <= budget ? best : std::string();
}

std::string
ArgParser::usage() const
{
    std::ostringstream ss;
    ss << program << " - " << description << "\n\nOptions:\n";
    for (const auto &name : order) {
        const auto &opt = options.at(name);
        ss << "  --" << name;
        if (!opt.isFlag)
            ss << " <value>";
        ss << "\n        " << opt.help;
        if (!opt.isFlag)
            ss << " (default: " << opt.defaultValue << ")";
        ss << "\n";
    }
    ss << "  --help\n        Show this message.\n";
    return ss.str();
}

} // namespace wsc
