#include "util/logging.hh"

#include <iostream>

namespace wsc {

LogLevel Logger::_level = LogLevel::Warn;
std::uint64_t Logger::_warnCount = 0;

LogLevel
Logger::level()
{
    return _level;
}

void
Logger::setLevel(LogLevel level)
{
    _level = level;
}

std::uint64_t
Logger::warnCount()
{
    return _warnCount;
}

void
Logger::resetWarnCount()
{
    _warnCount = 0;
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    ++Logger::_warnCount;
    if (Logger::level() >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (Logger::level() >= LogLevel::Inform)
        std::cerr << "info: " << msg << "\n";
}

void
debugLog(const std::string &msg)
{
    if (Logger::level() >= LogLevel::Debug)
        std::cerr << "debug: " << msg << "\n";
}

} // namespace wsc
