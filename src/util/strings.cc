#include "util/strings.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace wsc {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string field;
    std::istringstream ss(s);
    while (std::getline(ss, field, delim))
        out.push_back(field);
    // getline drops a trailing empty field; restore it for symmetry.
    if (!s.empty() && s.back() == delim)
        out.emplace_back();
    if (s.empty())
        out.emplace_back();
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &delim)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += delim;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto b = std::find_if_not(s.begin(), s.end(), is_space);
    auto e = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
    return (b < e) ? std::string(b, e) : std::string();
}

std::string
toLower(const std::string &s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return char(std::tolower(c)); });
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           std::equal(prefix.begin(), prefix.end(), s.begin());
}

} // namespace wsc
