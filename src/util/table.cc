#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace wsc {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    WSC_ASSERT(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    WSC_ASSERT(row.size() == header_.size(),
               "row has " << row.size() << " cells, header has "
                          << header_.size());
    rows.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows.emplace_back();
}

std::size_t
Table::rowCount() const
{
    std::size_t n = 0;
    for (const auto &r : rows)
        if (!r.empty())
            ++n;
    return n;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            // Left-align the first column, right-align the numeric rest.
            if (c == 0)
                os << std::left << std::setw(int(widths[c])) << r[c];
            else
                os << std::right << std::setw(int(widths[c])) << r[c];
        }
        os << " |\n";
    };

    auto print_sep = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    print_row(header_);
    print_sep();
    for (const auto &r : rows) {
        if (r.empty())
            print_sep();
        else
            print_row(r);
    }
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas.
            if (r[c].find(',') != std::string::npos)
                os << '"' << r[c] << '"';
            else
                os << r[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &r : rows)
        if (!r.empty())
            emit(r);
}

std::string
Table::str() const
{
    std::ostringstream ss;
    print(ss);
    return ss.str();
}

std::string
fmtF(double v, int decimals)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << v;
    return ss.str();
}

std::string
fmtPct(double ratio, int decimals)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << (ratio * 100.0)
       << "%";
    return ss.str();
}

std::string
fmtDollars(double v)
{
    bool neg = v < 0;
    long long cents = llround(std::abs(v));
    std::string digits = std::to_string(cents);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return (neg ? "-$" : "$") + out;
}

} // namespace wsc
