/**
 * @file
 * Deterministic hashing for per-task RNG seed derivation.
 *
 * Parallel sweeps must produce bit-identical results to the serial
 * order regardless of thread count or scheduling. That holds only when
 * every independent task derives its RNG seed from *what* it computes
 * (base seed, design name, workload, ...) and never from *when* or
 * *where* it runs. These helpers build such seeds: a splitmix64
 * finalizer over an FNV-1a accumulation of the task's identity.
 *
 * Unlike std::hash, the result is specified and stable across
 * platforms and standard-library implementations, so published
 * BENCH_*.json numbers reproduce anywhere.
 */

#ifndef WSC_UTIL_HASH_HH
#define WSC_UTIL_HASH_HH

#include <cstdint>
#include <string_view>

namespace wsc {

/** splitmix64 finalizer: diffuses all input bits into the output. */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Fold @p value into accumulator @p h (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t value)
{
    return hashMix(h ^ hashMix(value));
}

/** Fold a string into accumulator @p h, FNV-1a style. */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::string_view s)
{
    std::uint64_t fnv = 0xCBF29CE484222325ULL;
    for (char c : s) {
        fnv ^= static_cast<unsigned char>(c);
        fnv *= 0x100000001B3ULL;
    }
    return hashCombine(h, fnv);
}

/**
 * Derive a task seed from a base seed plus any mix of integral and
 * string identity components, e.g.
 * @code
 *   seedFor(base, design.name, std::uint64_t(benchmark));
 * @endcode
 */
template <typename... Parts>
constexpr std::uint64_t
seedFor(std::uint64_t base, Parts &&...parts)
{
    std::uint64_t h = hashMix(base);
    ((h = hashCombine(h, parts)), ...);
    return h;
}

} // namespace wsc

#endif // WSC_UTIL_HASH_HH
