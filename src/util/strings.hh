/**
 * @file
 * Small string helpers shared across modules.
 */

#ifndef WSC_UTIL_STRINGS_HH
#define WSC_UTIL_STRINGS_HH

#include <string>
#include <vector>

namespace wsc {

/** Split @p s on @p delim; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Join @p parts with @p delim between fields. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &delim);

/** Strip leading/trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

} // namespace wsc

#endif // WSC_UTIL_STRINGS_HH
