/**
 * @file
 * Deterministic random-number generation for simulations.
 *
 * All stochastic components take an explicit Rng so experiments are
 * reproducible and independent streams can be split per subsystem.
 */

#ifndef WSC_UTIL_RANDOM_HH
#define WSC_UTIL_RANDOM_HH

#include <math.h>

#include <cmath>
#include <cstdint>
#include <random>

#include "util/hash.hh"

namespace wsc {

/**
 * A seedable pseudo-random source wrapping std::mt19937_64 with the
 * convenience draws the simulators need.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for reproducibility). */
    explicit Rng(std::uint64_t seed = 0x5DEECE66DULL)
        : engine(seed), seed_(seed)
    {
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine);
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine);
    }

    /** Normally distributed double. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Lognormal draw parameterized by the underlying normal's mu/sigma. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine);
    }

    /** Bernoulli draw. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child stream. Splitting from a parent keeps
     * experiment-level determinism while decorrelating subsystems.
     *
     * NOTE: split() consumes one draw from the parent engine, so the
     * child's seed depends on how many draws preceded the split. That
     * is fine inside one strictly sequential simulation, but any code
     * whose draw order can vary (parallel fan-outs, optional model
     * features, fault/repair processes interleaving with load) must
     * use stream() instead, which hangs the child off the construction
     * seed plus an explicit identity and never touches the engine.
     */
    Rng
    split()
    {
        return Rng(engine() ^ 0x9E3779B97F4A7C15ULL);
    }

    /**
     * Derive an independent child stream from this Rng's construction
     * seed plus an identity (integers and/or strings), without
     * consuming parent state. Two streams with different identities
     * are decorrelated; the same identity always yields the same
     * stream no matter how many draws the parent has made. This is
     * the required derivation for logically concurrent processes
     * (per-component fault clocks, per-task sweeps).
     */
    template <typename... Parts>
    Rng
    stream(Parts &&...parts) const
    {
        return Rng(seedFor(seed_, std::forward<Parts>(parts)...));
    }

    /** The seed this Rng was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Access the raw engine (for std:: distributions). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
    std::uint64_t seed_;
};

/**
 * Counter-based splitmix64 generator for bulk uniform draws on
 * fast-mode paths (sim/fast_mode.hh): one add plus three shift-xor-
 * multiply rounds per draw, several times cheaper than the
 * mt19937_64-backed Rng, and statistically solid (it is the standard
 * mixer used to seed xoshiro-family generators). State is a single
 * 64-bit counter, so a stream derived from a seed is trivially
 * reproducible and never aliases a differently-seeded stream.
 *
 * Not a drop-in for Rng: uniforms land on the 53-bit grid via
 * multiplication, so draws are same-law but not bit-identical to
 * Rng::uniform. That is exactly the relaxation fast mode's
 * statistical-equivalence gate (stats/equivalence.hh) covers; exact
 * paths must keep using Rng.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : x(seed) {}

    std::uint64_t
    nextU64()
    {
        std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1) on the 53-bit grid. */
    double
    uniform()
    {
        return double(nextU64() >> 11) * 0x1.0p-53;
    }

    /**
     * Uniform integer in [0, n), n >= 1, via Lemire's multiply-shift
     * reduction: one 64x64->128 multiply instead of the division (or
     * rejection loop) std::uniform_int_distribution performs. The
     * modulo bias is bounded by n / 2^64 -- immaterial against the
     * list sizes simulations index with -- which is the same
     * same-law-not-bit-identical trade the class contract states.
     */
    std::uint64_t
    pick(std::uint64_t n)
    {
        using u128 = unsigned __int128;
        return std::uint64_t((u128(nextU64()) * u128(n)) >> 64);
    }

    /** Exponentially distributed double with the given mean, by
     * inversion. log1p(-u) keeps precision for small draws and never
     * sees log(0) since uniform() < 1. */
    double
    exponential(double mean)
    {
        return -std::log1p(-uniform()) * mean;
    }

    /**
     * Exact Poisson(mean) draw. Small means use Knuth's product-of-
     * uniforms loop (O(mean) uniforms); large means use Hormann's PTRS
     * transformed-rejection sampler (O(1) expected uniforms, exact for
     * mean >= 10). Both are exact samplers — the macro-event fast path
     * (fast-mode/2) leans on this so window arrival *counts* follow
     * the pinned Poisson law with zero distributional error; only the
     * draw order relative to exact mode changes.
     */
    std::uint64_t
    poisson(double mean)
    {
        if (!(mean > 0.0))
            return 0;
        if (mean < 10.0) {
            double limit = std::exp(-mean);
            double prod = 1.0;
            std::uint64_t k = 0;
            for (;;) {
                prod *= uniform();
                if (prod <= limit)
                    return k;
                ++k;
            }
        }
        // PTRS (Hormann 1993): transformed rejection with squeeze.
        double b = 0.931 + 2.53 * std::sqrt(mean);
        double a = -0.059 + 0.02483 * b;
        double invAlpha = 1.1239 + 1.1328 / (b - 3.4);
        double vr = 0.9277 - 3.6224 / (b - 2.0);
        double logMean = std::log(mean);
        for (;;) {
            double u = uniform() - 0.5;
            double v = uniform();
            double us = 0.5 - std::abs(u);
            double kf = std::floor((2.0 * a / us + b) * u + mean + 0.43);
            if (us >= 0.07 && v <= vr)
                return std::uint64_t(kf);
            if (kf < 0.0 || (us < 0.013 && v > us))
                continue;
            if (std::log(v) + std::log(invAlpha) -
                    std::log(a / (us * us) + b) <=
                kf * logMean - mean - logGamma(kf + 1.0))
                return std::uint64_t(kf);
        }
    }

  private:
    /**
     * ln Γ(x) for x > 0. std::lgamma writes the process-global
     * `signgam`, a write-write data race when worker threads draw
     * Poisson counts concurrently; lgamma_r computes the identical
     * value into a local sign instead.
     */
    static double
    logGamma(double v)
    {
#if defined(__unix__) || defined(__APPLE__)
        int sign = 0;
        return ::lgamma_r(v, &sign);
#else
        return std::lgamma(v);
#endif
    }

    std::uint64_t x;
};

} // namespace wsc

#endif // WSC_UTIL_RANDOM_HH
