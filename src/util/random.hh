/**
 * @file
 * Deterministic random-number generation for simulations.
 *
 * All stochastic components take an explicit Rng so experiments are
 * reproducible and independent streams can be split per subsystem.
 */

#ifndef WSC_UTIL_RANDOM_HH
#define WSC_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <random>

#include "util/hash.hh"

namespace wsc {

/**
 * A seedable pseudo-random source wrapping std::mt19937_64 with the
 * convenience draws the simulators need.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for reproducibility). */
    explicit Rng(std::uint64_t seed = 0x5DEECE66DULL)
        : engine(seed), seed_(seed)
    {
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine);
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine);
    }

    /** Normally distributed double. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Lognormal draw parameterized by the underlying normal's mu/sigma. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine);
    }

    /** Bernoulli draw. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child stream. Splitting from a parent keeps
     * experiment-level determinism while decorrelating subsystems.
     *
     * NOTE: split() consumes one draw from the parent engine, so the
     * child's seed depends on how many draws preceded the split. That
     * is fine inside one strictly sequential simulation, but any code
     * whose draw order can vary (parallel fan-outs, optional model
     * features, fault/repair processes interleaving with load) must
     * use stream() instead, which hangs the child off the construction
     * seed plus an explicit identity and never touches the engine.
     */
    Rng
    split()
    {
        return Rng(engine() ^ 0x9E3779B97F4A7C15ULL);
    }

    /**
     * Derive an independent child stream from this Rng's construction
     * seed plus an identity (integers and/or strings), without
     * consuming parent state. Two streams with different identities
     * are decorrelated; the same identity always yields the same
     * stream no matter how many draws the parent has made. This is
     * the required derivation for logically concurrent processes
     * (per-component fault clocks, per-task sweeps).
     */
    template <typename... Parts>
    Rng
    stream(Parts &&...parts) const
    {
        return Rng(seedFor(seed_, std::forward<Parts>(parts)...));
    }

    /** The seed this Rng was constructed with. */
    std::uint64_t seed() const { return seed_; }

    /** Access the raw engine (for std:: distributions). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
    std::uint64_t seed_;
};

/**
 * Counter-based splitmix64 generator for bulk uniform draws on
 * fast-mode paths (sim/fast_mode.hh): one add plus three shift-xor-
 * multiply rounds per draw, several times cheaper than the
 * mt19937_64-backed Rng, and statistically solid (it is the standard
 * mixer used to seed xoshiro-family generators). State is a single
 * 64-bit counter, so a stream derived from a seed is trivially
 * reproducible and never aliases a differently-seeded stream.
 *
 * Not a drop-in for Rng: uniforms land on the 53-bit grid via
 * multiplication, so draws are same-law but not bit-identical to
 * Rng::uniform. That is exactly the relaxation fast mode's
 * statistical-equivalence gate (stats/equivalence.hh) covers; exact
 * paths must keep using Rng.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : x(seed) {}

    std::uint64_t
    nextU64()
    {
        std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1) on the 53-bit grid. */
    double
    uniform()
    {
        return double(nextU64() >> 11) * 0x1.0p-53;
    }

    /**
     * Uniform integer in [0, n), n >= 1, via Lemire's multiply-shift
     * reduction: one 64x64->128 multiply instead of the division (or
     * rejection loop) std::uniform_int_distribution performs. The
     * modulo bias is bounded by n / 2^64 -- immaterial against the
     * list sizes simulations index with -- which is the same
     * same-law-not-bit-identical trade the class contract states.
     */
    std::uint64_t
    pick(std::uint64_t n)
    {
        using u128 = unsigned __int128;
        return std::uint64_t((u128(nextU64()) * u128(n)) >> 64);
    }

    /** Exponentially distributed double with the given mean, by
     * inversion. log1p(-u) keeps precision for small draws and never
     * sees log(0) since uniform() < 1. */
    double
    exponential(double mean)
    {
        return -std::log1p(-uniform()) * mean;
    }

  private:
    std::uint64_t x;
};

} // namespace wsc

#endif // WSC_UTIL_RANDOM_HH
