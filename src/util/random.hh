/**
 * @file
 * Deterministic random-number generation for simulations.
 *
 * All stochastic components take an explicit Rng so experiments are
 * reproducible and independent streams can be split per subsystem.
 */

#ifndef WSC_UTIL_RANDOM_HH
#define WSC_UTIL_RANDOM_HH

#include <cstdint>
#include <random>

namespace wsc {

/**
 * A seedable pseudo-random source wrapping std::mt19937_64 with the
 * convenience draws the simulators need.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for reproducibility). */
    explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine);
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine);
    }

    /** Normally distributed double. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Lognormal draw parameterized by the underlying normal's mu/sigma. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine);
    }

    /** Bernoulli draw. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child stream. Splitting from a parent keeps
     * experiment-level determinism while decorrelating subsystems.
     */
    Rng
    split()
    {
        return Rng(engine() ^ 0x9E3779B97F4A7C15ULL);
    }

    /** Access the raw engine (for std:: distributions). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace wsc

#endif // WSC_UTIL_RANDOM_HH
