/**
 * @file
 * ASCII table formatting for bench harness output.
 *
 * The bench binaries regenerate the paper's tables; this writer renders
 * rows with aligned columns so the output reads like the published
 * tables. It also supports CSV emission for downstream plotting.
 */

#ifndef WSC_UTIL_TABLE_HH
#define WSC_UTIL_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace wsc {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"System", "Watt", "Inf-$"});
 *   t.addRow({"srvr1", "340", "3294"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const;

    /** Render with aligned columns to the given stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (separators omitted). */
    void printCsv(std::ostream &os) const;

    /** Render to a string (aligned form). */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    /** Rows; an empty vector encodes a separator. */
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with the given number of decimals. */
std::string fmtF(double v, int decimals = 1);

/** Format a ratio as a percentage string, e.g. 1.33 -> "133%". */
std::string fmtPct(double ratio, int decimals = 0);

/** Format a dollar amount, e.g. 5758.4 -> "$5,758". */
std::string fmtDollars(double v);

} // namespace wsc

#endif // WSC_UTIL_TABLE_HH
