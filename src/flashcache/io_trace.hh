/**
 * @file
 * Block-level disk I/O traces for the flash-cache study.
 *
 * Only page-cache misses reach the disk, so these traces model the
 * post-page-cache reference stream: a skewed hot region (documents,
 * mailboxes, and videos that cycle in and out of DRAM) plus sequential
 * runs. Profiles reuse the memblade trace generator with block-space
 * parameters; per-workload flash hit rates come from replaying these
 * traces through the FlashCache simulator.
 */

#ifndef WSC_FLASHCACHE_IO_TRACE_HH
#define WSC_FLASHCACHE_IO_TRACE_HH

#include <vector>

#include "flashcache/flash_cache.hh"
#include "memblade/replacement.hh"
#include "memblade/trace.hh"
#include "workloads/suite.hh"

namespace wsc {
namespace flashcache {

/**
 * Disk-block reference profile of one benchmark (4 KB blocks over the
 * workload's on-disk dataset).
 */
memblade::TraceProfile ioProfileFor(workloads::Benchmark b);

/** Result of replaying a benchmark's I/O trace through a flash cache. */
struct FlashCacheOutcome {
    double hitRate = 0.0;
    double wearCyclesPerBlock = 0.0;
    /** Projected device lifetime at the observed write rate, years. */
    double lifetimeYears = 0.0;
};

/**
 * Replay @p accesses post-page-cache disk reads of benchmark @p b
 * through a flash cache of the given spec and report the steady-state
 * hit rate (the cold warm-up fraction is excluded by measuring only
 * the second half of the replay).
 *
 * @param diskReadBytesPerSecond Sustained disk-read traffic used for
 *        the wear/lifetime projection.
 */
FlashCacheOutcome evaluateFlashCache(workloads::Benchmark b,
                                     const FlashSpec &spec,
                                     std::uint64_t accesses,
                                     double diskReadBytesPerSecond,
                                     std::uint64_t seed);

/**
 * evaluateFlashCache generalized over the replacement-policy zoo: the
 * flash front runs @p kind instead of the device's native LRU.
 * PolicyKind::Lru reproduces evaluateFlashCache bit for bit.
 */
FlashCacheOutcome evaluateFlashCachePolicy(
    workloads::Benchmark b, const FlashSpec &spec,
    std::uint64_t accesses, double diskReadBytesPerSecond,
    memblade::PolicyKind kind, std::uint64_t seed);

/**
 * Evaluate one benchmark at every flash capacity in @p specs from a
 * single stack-distance pass over the trace (the cache is LRU, so
 * each spec's outcome is exactly what evaluateFlashCache would
 * report, bit for bit, at one-pass cost instead of specs.size()
 * replays).
 */
std::vector<FlashCacheOutcome> evaluateFlashCacheSweep(
    workloads::Benchmark b, const std::vector<FlashSpec> &specs,
    std::uint64_t accesses, double diskReadBytesPerSecond,
    std::uint64_t seed);

} // namespace flashcache
} // namespace wsc

#endif // WSC_FLASHCACHE_IO_TRACE_HH
