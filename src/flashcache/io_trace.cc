#include "flashcache/io_trace.hh"

#include "memblade/replay.hh"
#include "memblade/stack_distance.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace wsc {
namespace flashcache {

memblade::TraceProfile
ioProfileFor(workloads::Benchmark b)
{
    using workloads::Benchmark;
    memblade::TraceProfile p;
    // Footprints are on-disk datasets in 4 KB blocks; a 1 GB flash
    // holds 262144 blocks.
    switch (b) {
      case Benchmark::Websearch:
        // 1.3 GB index + cold postings; strong skew toward hot terms.
        p.name = "websearch-io";
        p.footprintPages = 500000; // ~2 GB
        p.hotSetFraction = 0.3;
        p.hotProb = 0.82;
        p.zipfS = 0.9;
        p.seqRunMean = 8.0;
        break;
      case Benchmark::Webmail:
        // 7 GB of stored mail; recent messages dominate accesses.
        p.name = "webmail-io";
        p.footprintPages = 1750000;
        p.hotSetFraction = 0.08;
        p.hotProb = 0.75;
        p.zipfS = 1.0;
        p.seqRunMean = 4.0;
        break;
      case Benchmark::Ytube:
        // 20 GB media set; Zipf popularity with long sequential reads.
        p.name = "ytube-io";
        p.footprintPages = 5000000;
        p.hotSetFraction = 0.04;
        p.hotProb = 0.7;
        p.zipfS = 0.9;
        p.seqRunMean = 128.0;
        break;
      case Benchmark::MapredWc:
        // Streaming scan of the 5 GB corpus: almost no block reuse.
        p.name = "mapred-wc-io";
        p.footprintPages = 1250000;
        p.hotSetFraction = 0.01;
        p.hotProb = 0.02;
        p.zipfS = 0.5;
        p.seqRunMean = 512.0;
        break;
      case Benchmark::MapredWr:
        // Write stream; reads are negligible.
        p.name = "mapred-wr-io";
        p.footprintPages = 500000;
        p.hotSetFraction = 0.01;
        p.hotProb = 0.02;
        p.zipfS = 0.5;
        p.seqRunMean = 512.0;
        break;
    }
    return p;
}

namespace {

/** 4 KB-block frame count of a flash device (FlashCache's sizing). */
std::size_t
flashFrames(const FlashSpec &spec)
{
    WSC_ASSERT(spec.capacityGB > 0.0, "flash capacity must be positive");
    auto frames = std::size_t(spec.capacityGB * units::GiB / 4096.0);
    WSC_ASSERT(frames > 0, "flash too small for one block");
    return frames;
}

/**
 * Assemble an outcome from replay counts: the same arithmetic
 * FlashCache's own stats produce (every miss is a read-allocate
 * insertion of one 4 KB block, so wear = misses * blockBytes spread
 * over the device).
 */
FlashCacheOutcome
outcomeFrom(const FlashSpec &spec, std::uint64_t totalMisses,
            std::uint64_t measuredHits, std::uint64_t measuredAccesses,
            double diskReadBytesPerSecond)
{
    FlashCacheOutcome out;
    out.hitRate = measuredAccesses
                      ? double(measuredHits) / double(measuredAccesses)
                      : 0.0;
    double capacity_bytes = spec.capacityGB * units::GiB;
    out.wearCyclesPerBlock =
        double(totalMisses * std::uint64_t(4096)) / capacity_bytes;
    // Flash absorbs one write per miss (read-allocate): the write rate
    // is the miss fraction of the disk-read byte rate.
    double write_rate = diskReadBytesPerSecond * (1.0 - out.hitRate);
    if (write_rate > 0.0) {
        double seconds = capacity_bytes / write_rate *
                         spec.enduranceCycles;
        out.lifetimeYears =
            seconds / (units::hoursPerYear * units::secondsPerHour);
    } else {
        out.lifetimeYears = 1e9;
    }
    return out;
}

} // namespace

FlashCacheOutcome
evaluateFlashCache(workloads::Benchmark b, const FlashSpec &spec,
                   std::uint64_t accesses,
                   double diskReadBytesPerSecond, std::uint64_t seed)
{
    return evaluateFlashCachePolicy(b, spec, accesses,
                                    diskReadBytesPerSecond,
                                    memblade::PolicyKind::Lru, seed);
}

FlashCacheOutcome
evaluateFlashCachePolicy(workloads::Benchmark b, const FlashSpec &spec,
                         std::uint64_t accesses,
                         double diskReadBytesPerSecond,
                         memblade::PolicyKind kind, std::uint64_t seed)
{
    WSC_ASSERT(accesses >= 2, "need at least two accesses");
    auto profile = ioProfileFor(b);
    memblade::TraceGenerator gen(profile, Rng(seed));

    // Warm up on the first half; measure the second half. FlashCache's
    // native policy is LRU with read-allocate, which the batched LRU
    // kernel replays exactly; the zoo policies model replacing the
    // device's front-end policy wholesale.
    auto w = memblade::replayWindowed(gen, kind, flashFrames(spec),
                                      profile.footprintPages, accesses,
                                      accesses / 2, Rng(seed));
    return outcomeFrom(spec, w.total.misses, w.measured.hits,
                       w.measured.accesses, diskReadBytesPerSecond);
}

std::vector<FlashCacheOutcome>
evaluateFlashCacheSweep(workloads::Benchmark b,
                        const std::vector<FlashSpec> &specs,
                        std::uint64_t accesses,
                        double diskReadBytesPerSecond,
                        std::uint64_t seed)
{
    WSC_ASSERT(accesses >= 2, "need at least two accesses");
    auto profile = ioProfileFor(b);
    memblade::TraceGenerator gen(profile, Rng(seed));
    auto curve = memblade::lruCurve(gen, profile.footprintPages,
                                    accesses, accesses / 2);

    std::vector<FlashCacheOutcome> out;
    out.reserve(specs.size());
    for (const FlashSpec &spec : specs) {
        auto frames = flashFrames(spec);
        out.push_back(outcomeFrom(
            spec, curve.accesses - curve.hitsAt(frames),
            curve.measuredHitsAt(frames), curve.measuredAccesses,
            diskReadBytesPerSecond));
    }
    return out;
}

} // namespace flashcache
} // namespace wsc
