#include "flashcache/io_trace.hh"

#include "util/logging.hh"

namespace wsc {
namespace flashcache {

memblade::TraceProfile
ioProfileFor(workloads::Benchmark b)
{
    using workloads::Benchmark;
    memblade::TraceProfile p;
    // Footprints are on-disk datasets in 4 KB blocks; a 1 GB flash
    // holds 262144 blocks.
    switch (b) {
      case Benchmark::Websearch:
        // 1.3 GB index + cold postings; strong skew toward hot terms.
        p.name = "websearch-io";
        p.footprintPages = 500000; // ~2 GB
        p.hotSetFraction = 0.3;
        p.hotProb = 0.82;
        p.zipfS = 0.9;
        p.seqRunMean = 8.0;
        break;
      case Benchmark::Webmail:
        // 7 GB of stored mail; recent messages dominate accesses.
        p.name = "webmail-io";
        p.footprintPages = 1750000;
        p.hotSetFraction = 0.08;
        p.hotProb = 0.75;
        p.zipfS = 1.0;
        p.seqRunMean = 4.0;
        break;
      case Benchmark::Ytube:
        // 20 GB media set; Zipf popularity with long sequential reads.
        p.name = "ytube-io";
        p.footprintPages = 5000000;
        p.hotSetFraction = 0.04;
        p.hotProb = 0.7;
        p.zipfS = 0.9;
        p.seqRunMean = 128.0;
        break;
      case Benchmark::MapredWc:
        // Streaming scan of the 5 GB corpus: almost no block reuse.
        p.name = "mapred-wc-io";
        p.footprintPages = 1250000;
        p.hotSetFraction = 0.01;
        p.hotProb = 0.02;
        p.zipfS = 0.5;
        p.seqRunMean = 512.0;
        break;
      case Benchmark::MapredWr:
        // Write stream; reads are negligible.
        p.name = "mapred-wr-io";
        p.footprintPages = 500000;
        p.hotSetFraction = 0.01;
        p.hotProb = 0.02;
        p.zipfS = 0.5;
        p.seqRunMean = 512.0;
        break;
    }
    return p;
}

FlashCacheOutcome
evaluateFlashCache(workloads::Benchmark b, const FlashSpec &spec,
                   std::uint64_t accesses,
                   double diskReadBytesPerSecond, std::uint64_t seed)
{
    WSC_ASSERT(accesses >= 2, "need at least two accesses");
    auto profile = ioProfileFor(b);
    Rng rng(seed);
    memblade::TraceGenerator gen(profile, rng);
    FlashCache cache(spec);

    // Warm up on the first half; measure the second half.
    std::uint64_t warm = accesses / 2;
    for (std::uint64_t i = 0; i < warm; ++i)
        cache.lookup(gen.next());
    std::uint64_t hits = 0, lookups = 0;
    for (std::uint64_t i = warm; i < accesses; ++i) {
        if (cache.lookup(gen.next()))
            ++hits;
        ++lookups;
    }

    FlashCacheOutcome out;
    out.hitRate = lookups ? double(hits) / double(lookups) : 0.0;
    out.wearCyclesPerBlock = cache.wearCyclesPerBlock();
    // Flash absorbs one write per miss (read-allocate): the write rate
    // is the miss fraction of the disk-read byte rate.
    double write_rate = diskReadBytesPerSecond * (1.0 - out.hitRate);
    out.lifetimeYears = write_rate > 0.0
                            ? cache.lifetimeYears(write_rate)
                            : 1e9;
    return out;
}

} // namespace flashcache
} // namespace wsc
