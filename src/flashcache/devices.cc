#include "flashcache/devices.hh"

namespace wsc {
namespace flashcache {

platform::DiskModel
laptopDisk()
{
    platform::DiskModel d;
    d.cls = platform::DiskClass::Laptop;
    d.capacityGB = 200.0;
    d.bandwidthMBs = 20.0;      // paper's "very conservative" value
    d.writeBandwidthMBs = 18.0;
    d.avgAccessMs = 15.0;
    d.watts = 2.0;
    d.dollars = 80.0;
    d.remote = true;
    return d;
}

platform::DiskModel
laptop2Disk()
{
    platform::DiskModel d = laptopDisk();
    d.cls = platform::DiskClass::Laptop2;
    d.dollars = 40.0;
    return d;
}

platform::DiskModel
desktopDisk()
{
    platform::DiskModel d;
    d.cls = platform::DiskClass::Desktop72k;
    d.capacityGB = 500.0;
    d.bandwidthMBs = 70.0;
    d.writeBandwidthMBs = 47.0;
    d.avgAccessMs = 4.0;
    d.watts = 10.0;
    d.dollars = 120.0;
    d.remote = false;
    return d;
}

} // namespace flashcache
} // namespace wsc
