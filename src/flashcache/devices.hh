/**
 * @file
 * Storage device models for the flash disk-cache study (Table 3a).
 *
 *                Flash      Laptop      Laptop-2    Desktop
 *   Bandwidth    50 MB/s    20 MB/s     20 MB/s     70 MB/s
 *   Access       20 us rd   15 ms       15 ms       4 ms
 *                200 us wr  (remote)    (remote)    (local)
 *                1.2 ms er
 *   Capacity     1 GB       200 GB      200 GB      500 GB
 *   Power        0.5 W      2 W         2 W         10 W
 *   Price        $14        $80         $40         $120
 */

#ifndef WSC_FLASHCACHE_DEVICES_HH
#define WSC_FLASHCACHE_DEVICES_HH

#include "platform/components.hh"

namespace wsc {
namespace flashcache {

/** NAND flash device parameters (Table 3a column 1). */
struct FlashSpec {
    double capacityGB = 1.0;
    double bandwidthMBs = 50.0;
    double readLatencyUs = 20.0;
    double writeLatencyUs = 200.0;
    double eraseLatencyMs = 1.2;
    double watts = 0.5;
    double dollars = 14.0;
    /** Erase-block size; wear is tracked per block. */
    double eraseBlockKB = 128.0;
    /** Program/erase cycles before wear-out (current technology). */
    double enduranceCycles = 100000.0;
};

/** Laptop disk moved to a basic SAN (Table 3a column 2). */
platform::DiskModel laptopDisk();

/** Cheaper laptop disk tier (Table 3a column 3). */
platform::DiskModel laptop2Disk();

/** Local desktop disk baseline (Table 3a column 4). */
platform::DiskModel desktopDisk();

/** SAN round-trip added to each remote disk access, milliseconds. */
constexpr double sanAccessOverheadMs = 0.5;

} // namespace flashcache
} // namespace wsc

#endif // WSC_FLASHCACHE_DEVICES_HH
