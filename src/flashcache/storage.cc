#include "flashcache/storage.hh"

#include <map>
#include <mutex>

#include "util/logging.hh"

namespace wsc {
namespace flashcache {

StorageOption
StorageOption::localDesktop()
{
    StorageOption o;
    o.name = "Local Desktop";
    o.disk = desktopDisk();
    return o;
}

StorageOption
StorageOption::remoteLaptop()
{
    StorageOption o;
    o.name = "Remote Laptop";
    o.disk = laptopDisk();
    return o;
}

StorageOption
StorageOption::remoteLaptopFlash()
{
    StorageOption o;
    o.name = "Remote Laptop + Flash";
    o.disk = laptopDisk();
    o.hasFlashCache = true;
    return o;
}

StorageOption
StorageOption::remoteLaptop2Flash()
{
    StorageOption o;
    o.name = "Remote Laptop-2 + Flash";
    o.disk = laptop2Disk();
    o.hasFlashCache = true;
    return o;
}

std::vector<StorageOption>
StorageOption::all()
{
    return {localDesktop(), remoteLaptop(), remoteLaptopFlash(),
            remoteLaptop2Flash()};
}

namespace {

/** Steady-state flash hit rate per benchmark (replayed once, cached). */
double
flashHitRateFor(workloads::Benchmark b, const FlashSpec &spec)
{
    // Called from DesignEvaluator's pool workers: the cache needs a
    // lock, and keying on capacity keeps distinct specs distinct.
    static std::mutex mutex;
    static std::map<std::pair<workloads::Benchmark, double>, double>
        cache;
    auto key = std::make_pair(b, spec.capacityGB);

    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    // 2M post-page-cache accesses: enough to warm a 262144-block
    // cache and measure a stable second-half hit rate. Replayed
    // outside the lock; a racing duplicate replay computes the same
    // deterministic value.
    auto outcome = evaluateFlashCache(b, spec, 2000000,
                                      /* bytes/s */ 5.0e6, 777);
    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, outcome.hitRate);
    return outcome.hitRate;
}

} // namespace

perfsim::PerfOptions
perfOptionsFor(const StorageOption &option, workloads::Benchmark b)
{
    perfsim::PerfOptions opts;
    opts.diskOverride = option.disk;
    if (option.disk.remote)
        opts.extraDiskAccessMs = sanAccessOverheadMs;
    if (option.hasFlashCache) {
        opts.flashCacheHitRate = flashHitRateFor(b, option.flash);
        opts.flashAccessMs = option.flash.readLatencyUs * 1e-3;
        opts.flashReadMBs = option.flash.bandwidthMBs;
    }
    return opts;
}

platform::ServerConfig
withStorage(const platform::ServerConfig &server,
            const StorageOption &option)
{
    platform::ServerConfig cfg = server;
    cfg.disk = option.disk;
    if (option.hasFlashCache) {
        // The flash lives on the server board (Section 3.5).
        cfg.boardMgmtDollars += option.flash.dollars;
        cfg.boardMgmtWatts += option.flash.watts;
    }
    return cfg;
}

} // namespace flashcache
} // namespace wsc
