/**
 * @file
 * Storage configuration options for the Section 3.5 study (Table 3).
 *
 * Four configurations are compared on the emb1 platform:
 *   - local desktop disk (baseline),
 *   - remote laptop disk over a basic SAN,
 *   - remote laptop disk + 1 GB on-board flash disk cache,
 *   - remote laptop-2 (cheaper) disk + flash cache.
 *
 * Each option yields (a) performance-model overrides (disk parameters,
 * SAN latency, flash hit rate) and (b) cost/power deltas for the TCO
 * model.
 */

#ifndef WSC_FLASHCACHE_STORAGE_HH
#define WSC_FLASHCACHE_STORAGE_HH

#include <string>
#include <vector>

#include "flashcache/devices.hh"
#include "flashcache/io_trace.hh"
#include "perfsim/perf_eval.hh"
#include "platform/server_config.hh"

namespace wsc {
namespace flashcache {

/** One storage configuration under study. */
struct StorageOption {
    std::string name;
    platform::DiskModel disk;
    bool hasFlashCache = false;
    FlashSpec flash;

    /** The baseline: local desktop disk, no flash. */
    static StorageOption localDesktop();
    /** Remote laptop disk on the SAN. */
    static StorageOption remoteLaptop();
    /** Remote laptop disk + flash disk cache. */
    static StorageOption remoteLaptopFlash();
    /** Remote cheaper laptop-2 disk + flash disk cache. */
    static StorageOption remoteLaptop2Flash();

    /** All four, in Table 3(b) order (baseline first). */
    static std::vector<StorageOption> all();
};

/**
 * Performance-model overrides for @p option when running benchmark
 * @p b. Flash hit rates come from replaying the benchmark's I/O trace
 * (cached internally per benchmark).
 */
perfsim::PerfOptions perfOptionsFor(const StorageOption &option,
                                    workloads::Benchmark b);

/**
 * Apply the option's storage cost/power to a server configuration:
 * the disk line item is replaced, and flash cost/power is added to the
 * board category.
 */
platform::ServerConfig withStorage(const platform::ServerConfig &server,
                                   const StorageOption &option);

} // namespace flashcache
} // namespace wsc

#endif // WSC_FLASHCACHE_STORAGE_HH
