#include "flashcache/flash_cache.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace wsc {
namespace flashcache {

FlashCache::FlashCache(FlashSpec spec, double blockKB)
    : spec_(spec), blockBytes(blockKB * 1024.0)
{
    WSC_ASSERT(blockKB > 0.0, "block size must be positive");
    WSC_ASSERT(spec_.capacityGB > 0.0, "flash capacity must be positive");
    frames = std::size_t(spec_.capacityGB * units::GiB / blockBytes);
    WSC_ASSERT(frames > 0, "flash too small for one block");
}

void
FlashCache::insert(BlockId block)
{
    // Idempotent on an already-resident block: refresh recency and
    // stop. The old path evicted a victim, pushed a duplicate list
    // node, and overwrote the map iterator, orphaning the original
    // node — a later eviction of that stale node then erased the map
    // entry out from under the live MRU copy.
    auto it = map.find(block);
    if (it != map.end()) {
        order.splice(order.begin(), order, it->second);
        return;
    }
    if (map.size() >= frames) {
        BlockId victim = order.back();
        order.pop_back();
        map.erase(victim);
        ++stats_.evictions;
    }
    order.push_front(block);
    map[block] = order.begin();
    ++stats_.insertions;
    stats_.bytesWrittenToFlash += std::uint64_t(blockBytes);
}

void
FlashCache::admit(BlockId block)
{
    insert(block);
}

bool
FlashCache::lookup(BlockId block)
{
    ++stats_.lookups;
    auto it = map.find(block);
    if (it != map.end()) {
        order.splice(order.begin(), order, it->second);
        ++stats_.hits;
        return true;
    }
    insert(block);
    return false;
}

void
FlashCache::writeBlock(BlockId block)
{
    auto it = map.find(block);
    if (it != map.end()) {
        order.splice(order.begin(), order, it->second);
        stats_.bytesWrittenToFlash += std::uint64_t(blockBytes);
    } else {
        insert(block);
    }
}

double
FlashCache::wearCyclesPerBlock() const
{
    double capacity_bytes = spec_.capacityGB * units::GiB;
    return double(stats_.bytesWrittenToFlash) / capacity_bytes;
}

double
FlashCache::lifetimeYears(double bytesPerSecond) const
{
    WSC_ASSERT(bytesPerSecond > 0.0, "write rate must be positive");
    double capacity_bytes = spec_.capacityGB * units::GiB;
    double seconds_per_full_cycle = capacity_bytes / bytesPerSecond;
    double seconds = seconds_per_full_cycle * spec_.enduranceCycles;
    return seconds / (units::hoursPerYear * units::secondsPerHour);
}

} // namespace flashcache
} // namespace wsc
