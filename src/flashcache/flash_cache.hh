/**
 * @file
 * Flash-based disk-cache simulator (after Kgil & Mudge's FlashCache,
 * applied to internet-sector workloads per paper Section 3.5).
 *
 * The flash sits on the server board and holds recently accessed disk
 * pages; a software hash table is consulted whenever the OS page cache
 * misses. We simulate the cache at 4 KB block granularity with LRU
 * eviction and track wear (program/erase cycles per erase block) to
 * check the 3-year depreciation window against the 100k-cycle
 * endurance limit the paper discusses.
 */

#ifndef WSC_FLASHCACHE_FLASH_CACHE_HH
#define WSC_FLASHCACHE_FLASH_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "flashcache/devices.hh"

namespace wsc {
namespace flashcache {

/** A disk block address (4 KB granularity). */
using BlockId = std::uint64_t;

/** Cache statistics. */
struct CacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytesWrittenToFlash = 0;

    double
    hitRate() const
    {
        return lookups ? double(hits) / double(lookups) : 0.0;
    }
};

/**
 * Block-granularity flash disk cache with LRU eviction.
 */
class FlashCache
{
  public:
    /**
     * @param spec Flash device parameters (capacity sets block count).
     * @param blockKB Cache block size (default 4 KB pages).
     */
    explicit FlashCache(FlashSpec spec, double blockKB = 4.0);

    /**
     * Look up a block on page-cache miss. On a miss the block is
     * fetched from disk and inserted (read-allocate).
     * @return true on flash hit.
     */
    bool lookup(BlockId block);

    /** Write-through of a dirty block (buffered into flash). */
    void writeBlock(BlockId block);

    /**
     * Admit a block without lookup accounting (e.g. prefetch or cache
     * pre-population). Idempotent: admitting a resident block only
     * refreshes its recency, never evicts or duplicates.
     */
    void admit(BlockId block);

    const CacheStats &stats() const { return stats_; }

    std::size_t capacityBlocks() const { return frames; }
    std::size_t residentBlocks() const { return map.size(); }

    /**
     * Length of the LRU recency list. Class invariant: always equal
     * to residentBlocks(); exposed so tests can detect duplicate or
     * orphaned list nodes.
     */
    std::size_t lruChainLength() const { return order.size(); }

    /**
     * Average program/erase cycles consumed per erase block.
     * Assumes ideal wear leveling (writes spread uniformly).
     */
    double wearCyclesPerBlock() const;

    /**
     * Years until wear-out at @p bytesPerSecond sustained flash write
     * traffic, under ideal wear leveling.
     */
    double lifetimeYears(double bytesPerSecond) const;

    const FlashSpec &spec() const { return spec_; }

  private:
    FlashSpec spec_;
    double blockBytes;
    std::size_t frames;
    std::list<BlockId> order; //!< front = most recent
    std::unordered_map<BlockId, std::list<BlockId>::iterator> map;
    CacheStats stats_;

    void insert(BlockId block);
};

} // namespace flashcache
} // namespace wsc

#endif // WSC_FLASHCACHE_FLASH_CACHE_HH
