#include "core/mix.hh"

#include "stats/means.hh"
#include "util/logging.hh"

namespace wsc {
namespace core {

WorkloadMix::WorkloadMix(std::map<workloads::Benchmark, double> weights)
    : weights_(std::move(weights))
{
    double total = 0.0;
    for (const auto &[b, w] : weights_) {
        (void)b;
        WSC_ASSERT(w >= 0.0, "negative mix weight");
        total += w;
    }
    WSC_ASSERT(total > 0.0, "mix has no positive weight");
    for (auto &[b, w] : weights_) {
        (void)b;
        w /= total;
    }
}

double
WorkloadMix::weight(workloads::Benchmark b) const
{
    auto it = weights_.find(b);
    return it == weights_.end() ? 0.0 : it->second;
}

std::vector<workloads::Benchmark>
WorkloadMix::active() const
{
    std::vector<workloads::Benchmark> out;
    for (auto b : workloads::allBenchmarks)
        if (weight(b) > 0.0)
            out.push_back(b);
    return out;
}

WorkloadMix
WorkloadMix::uniform()
{
    std::map<workloads::Benchmark, double> w;
    for (auto b : workloads::allBenchmarks)
        w[b] = 1.0;
    return WorkloadMix(std::move(w));
}

namespace {

WorkloadMix
heavy(workloads::Benchmark dominant)
{
    std::map<workloads::Benchmark, double> w;
    for (auto b : workloads::allBenchmarks)
        w[b] = 0.1;
    w[dominant] = 0.6;
    return WorkloadMix(std::move(w));
}

} // namespace

WorkloadMix
WorkloadMix::searchHeavy()
{
    return heavy(workloads::Benchmark::Websearch);
}

WorkloadMix
WorkloadMix::mailHeavy()
{
    return heavy(workloads::Benchmark::Webmail);
}

WorkloadMix
WorkloadMix::mediaHeavy()
{
    return heavy(workloads::Benchmark::Ytube);
}

WorkloadMix
WorkloadMix::batchHeavy()
{
    std::map<workloads::Benchmark, double> w;
    for (auto b : workloads::allBenchmarks)
        w[b] = 0.4 / 3.0;
    w[workloads::Benchmark::MapredWc] = 0.3;
    w[workloads::Benchmark::MapredWr] = 0.3;
    return WorkloadMix(std::move(w));
}

RelativeMetrics
mixRelative(DesignEvaluator &evaluator, const DesignConfig &design,
            const DesignConfig &baseline, const WorkloadMix &mix)
{
    std::vector<double> weights;
    std::vector<RelativeMetrics> per;
    for (auto b : mix.active()) {
        weights.push_back(mix.weight(b));
        per.push_back(evaluator.evaluateRelative(design, baseline, b));
    }
    auto collect = [&](auto member) {
        std::vector<double> v;
        v.reserve(per.size());
        for (const auto &m : per)
            v.push_back(m.*member);
        return stats::weightedHarmonicMean(v, weights);
    };
    RelativeMetrics out;
    out.perf = collect(&RelativeMetrics::perf);
    out.perfPerWatt = collect(&RelativeMetrics::perfPerWatt);
    out.perfPerInfDollar = collect(&RelativeMetrics::perfPerInfDollar);
    out.perfPerPcDollar = collect(&RelativeMetrics::perfPerPcDollar);
    out.perfPerTcoDollar = collect(&RelativeMetrics::perfPerTcoDollar);
    return out;
}

MixChoice
bestDesignFor(DesignEvaluator &evaluator,
              const std::vector<DesignConfig> &candidates,
              const DesignConfig &baseline, const WorkloadMix &mix,
              Metric metric)
{
    WSC_ASSERT(!candidates.empty(), "no candidate designs");
    MixChoice choice;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        auto rel = mixRelative(evaluator, candidates[i], baseline, mix);
        double value = metricValue(rel, metric);
        if (i == 0 || value > choice.bestValue) {
            choice.bestIndex = i;
            choice.bestName = candidates[i].name;
            choice.bestValue = value;
        }
    }
    return choice;
}

} // namespace core
} // namespace wsc
