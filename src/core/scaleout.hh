/**
 * @file
 * Scale-out efficiency limits (paper Section 4, "Amdahl's law limits
 * on scale-out").
 *
 * The paper's evaluation assumes workloads partition perfectly onto
 * more, smaller nodes and flags that assumption as an open caveat:
 * "decreased efficiency of software algorithms, increased sizes of
 * software data structures, increased latency variabilities, greater
 * networking overheads". This module quantifies the caveat with the
 * Universal Scalability Law,
 *
 *   throughput(n) = n * p / (1 + sigma*(n-1) + kappa*n*(n-1)),
 *
 * where sigma captures contention/serialization (Amdahl) and kappa
 * crosstalk/coherency (networking chatter, data-structure growth).
 * Applied to a design that needs k-times more nodes than the
 * baseline, it answers: at what sigma/kappa does the ensemble
 * advantage disappear?
 */

#ifndef WSC_CORE_SCALEOUT_HH
#define WSC_CORE_SCALEOUT_HH

namespace wsc {
namespace core {

/** Per-workload scale-out friction parameters. */
struct ScaleOutParams {
    double sigma = 0.0; //!< contention / serial fraction
    double kappa = 0.0; //!< coherency / crosstalk coefficient
};

/**
 * Aggregate throughput of @p nodes nodes of per-node performance
 * @p per_node under the USL.
 */
double uslThroughput(double per_node, double nodes,
                     const ScaleOutParams &params);

/** Scale-out efficiency: uslThroughput / (nodes * per_node). */
double uslEfficiency(double nodes, const ScaleOutParams &params);

/**
 * Effective perf ratio of a design vs a baseline when the design
 * needs @p node_ratio times more nodes to reach the same nominal
 * aggregate: its USL efficiency is evaluated at node_ratio-times the
 * baseline cluster size.
 *
 * @param per_node_ratio Nominal single-node perf ratio (< 1 for the
 *        smaller design).
 * @param baseline_nodes Baseline cluster size.
 * @param params Friction parameters of the workload.
 * @return The penalized perf ratio; equals per_node_ratio when
 *         sigma = kappa = 0.
 */
double penalizedPerfRatio(double per_node_ratio, double baseline_nodes,
                          const ScaleOutParams &params);

/**
 * Smallest sigma (with kappa = 0) at which the design's cost-
 * efficiency advantage @p advantage (e.g. 2.0 for 2x Perf/TCO-$)
 * is fully erased at the given cluster sizes, found by bisection.
 */
double breakEvenSigma(double per_node_ratio, double baseline_nodes,
                      double advantage);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_SCALEOUT_HH
