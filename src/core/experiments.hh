/**
 * @file
 * Machine-readable experiment registry.
 *
 * One entry per paper table/figure (and per extension study), mapping
 * the experiment to the bench binary that regenerates it and to the
 * paper's reference values. DESIGN.md and EXPERIMENTS.md narrate this
 * registry; the tests assert it stays complete, so documentation and
 * code cannot silently drift apart.
 */

#ifndef WSC_CORE_EXPERIMENTS_HH
#define WSC_CORE_EXPERIMENTS_HH

#include <string>
#include <vector>

namespace wsc {
namespace core {

/** Provenance of an experiment. */
enum class ExperimentKind {
    PaperTable,   //!< reproduces a numbered paper table
    PaperFigure,  //!< reproduces a numbered paper figure
    PaperClaim,   //!< reproduces an in-text quantitative claim
    Extension     //!< builds out the paper's stated future work
};

std::string to_string(ExperimentKind k);

/** One experiment in the reproduction. */
struct ExperimentInfo {
    std::string id;          //!< e.g. "fig2c", "table3b", "sec36"
    ExperimentKind kind;
    std::string title;       //!< what the paper shows
    std::string benchTarget; //!< binary under build/bench/
    /** One-line summary of the paper's reference values ("" for
     * extensions with no paper counterpart). */
    std::string paperReference;
};

/** The full registry, in paper order then extensions. */
const std::vector<ExperimentInfo> &allExperiments();

/** Look up by id; null when absent. */
const ExperimentInfo *findExperiment(const std::string &id);

/** Distinct bench targets the registry references. */
std::vector<std::string> registeredBenchTargets();

} // namespace core
} // namespace wsc

#endif // WSC_CORE_EXPERIMENTS_HH
