#include "core/sweep_report.hh"

namespace wsc {
namespace core {

obs::CellReport
cellReport(const DesignConfig &design, workloads::Benchmark benchmark,
           const CellObservation &observation)
{
    const perfsim::PerfMeasurement &m = observation.measurement;
    obs::CellReport c;
    c.design = design.name;
    c.benchmark = workloads::to_string(benchmark);
    c.interactive = m.interactive;
    c.perf = m.perf;
    c.sustainableRps = m.sustainableRps;
    c.makespanSeconds = m.makespanSeconds;
    c.latency = {m.meanLatency, m.p50Latency, m.p95Latency,
                 m.p99Latency};
    c.qosViolationFraction = m.qosViolationFraction;
    c.qosLatencyLimit = m.qosLatencyLimit;
    c.bottleneck = m.bottleneck;
    for (const auto &s : m.stations)
        c.stations.push_back({s.name, s.utilization, s.completed,
                              std::uint64_t(s.peakDepth), s.meanDepth});
    c.kernel = {m.kernel.scheduled, m.kernel.dispatched,
                m.kernel.cancelled, m.kernel.compactions,
                std::uint64_t(m.kernel.peakHeap)};
    c.searchProbes = m.searchProbes;
    c.wallSeconds = observation.wallSeconds;
    return c;
}

obs::SweepReport
buildSweepReport(DesignEvaluator &evaluator,
                 const std::vector<EvalCell> &cells,
                 const std::string &tool, std::uint64_t threads)
{
    obs::SweepReport report;
    report.tool = tool;
    report.baseSeed = evaluator.params().seed;
    report.threads = threads;
    report.cells.reserve(cells.size());
    for (const auto &cell : cells)
        report.cells.push_back(cellReport(
            cell.design, cell.benchmark,
            evaluator.observationFor(cell.design, cell.benchmark)));
    report.captureMetrics(evaluator.metrics());
    return report;
}

} // namespace core
} // namespace wsc
