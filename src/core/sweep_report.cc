#include "core/sweep_report.hh"

namespace wsc {
namespace core {

obs::CellReport
cellReport(const DesignConfig &design, workloads::Benchmark benchmark,
           const CellObservation &observation)
{
    const perfsim::PerfMeasurement &m = observation.measurement;
    obs::CellReport c;
    c.design = design.name;
    c.benchmark = workloads::to_string(benchmark);
    c.interactive = m.interactive;
    c.perf = m.perf;
    c.sustainableRps = m.sustainableRps;
    c.makespanSeconds = m.makespanSeconds;
    c.latency = {m.meanLatency, m.p50Latency, m.p95Latency,
                 m.p99Latency};
    c.qosViolationFraction = m.qosViolationFraction;
    c.qosLatencyLimit = m.qosLatencyLimit;
    c.bottleneck = m.bottleneck;
    for (const auto &s : m.stations)
        c.stations.push_back({s.name, s.utilization, s.completed,
                              std::uint64_t(s.peakDepth), s.meanDepth});
    c.kernel = {m.kernel.scheduled, m.kernel.dispatched,
                m.kernel.cancelled, m.kernel.compactions,
                std::uint64_t(m.kernel.peakHeap)};
    c.searchProbes = m.searchProbes;
    c.wallSeconds = observation.wallSeconds;
    return c;
}

obs::AvailReport
availReport(const DesignConfig &design,
            const AvailabilityEvalParams &params,
            const faults::AvailabilityResult &result)
{
    obs::AvailReport a;
    a.design = design.name;
    a.benchmark = workloads::to_string(params.benchmark);
    a.spec = params.spec.summary();
    a.mttfScale = params.spec.mttfScale;
    a.servers = params.servers;
    a.offeredRps = result.offeredRps;
    a.horizonSeconds = result.horizonSeconds;

    a.availability = result.availability;
    a.epochsTotal = result.epochsTotal;
    a.epochsPassed = result.epochsPassed;
    a.goodputRps = result.goodputRps;
    a.goodputFraction = result.goodputFraction;
    a.meanTimeToQosViolationSeconds =
        result.meanTimeToQosViolationSeconds;

    a.offered = result.offered;
    a.completions = result.completions;
    a.qosViolations = result.qosViolations;
    a.timeouts = result.timeouts;
    a.retries = result.retries;
    a.giveups = result.giveups;
    a.lateCompletions = result.lateCompletions;

    for (auto c : faults::allComponents) {
        auto i = std::size_t(c);
        if (result.faults.failures[i] == 0 &&
            result.faults.repairs[i] == 0)
            continue;
        a.faults.push_back({faults::to_string(c),
                            result.faults.failures[i],
                            result.faults.repairs[i]});
    }
    a.serverCrashes = result.faults.serverCrashes;
    a.thermalThrottles = result.faults.thermalThrottles;
    a.thermalShutdowns = result.faults.thermalShutdowns;
    a.serverDownFraction = result.serverDownFraction;
    a.serverDegradedFraction = result.serverDegradedFraction;
    a.blastRadiusMean = result.faults.blastMean();
    a.blastRadiusMax = result.faults.blastMax;

    a.kernel = {result.kernel.scheduled, result.kernel.dispatched,
                result.kernel.cancelled, result.kernel.compactions,
                std::uint64_t(result.kernel.peakHeap)};
    return a;
}

obs::SweepReport
buildSweepReport(DesignEvaluator &evaluator,
                 const std::vector<EvalCell> &cells,
                 const std::string &tool, std::uint64_t threads)
{
    obs::SweepReport report;
    report.tool = tool;
    report.baseSeed = evaluator.params().seed;
    report.threads = threads;
    report.cells.reserve(cells.size());
    for (const auto &cell : cells)
        report.cells.push_back(cellReport(
            cell.design, cell.benchmark,
            evaluator.observationFor(cell.design, cell.benchmark)));
    report.captureMetrics(evaluator.metrics());
    return report;
}

} // namespace core
} // namespace wsc
