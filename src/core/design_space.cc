#include "core/design_space.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace wsc {
namespace core {

std::vector<DesignConfig>
enumerateDesigns(const DesignSpaceOptions &options)
{
    std::vector<platform::SystemClass> platforms;
    if (options.allPlatforms) {
        platforms.assign(std::begin(platform::allSystemClasses),
                         std::end(platform::allSystemClasses));
    } else {
        platforms = {platform::SystemClass::Srvr2,
                     platform::SystemClass::Emb1};
    }

    std::vector<thermal::PackagingDesign> packagings{
        thermal::PackagingDesign::Conventional1U};
    if (options.allPackaging) {
        packagings.push_back(thermal::PackagingDesign::DualEntry);
        packagings.push_back(
            thermal::PackagingDesign::AggregatedMicroblade);
    }

    struct SharingChoice {
        std::string tag;
        std::optional<memblade::Provisioning> scheme;
    };
    std::vector<SharingChoice> sharings{{"", std::nullopt}};
    if (options.allMemorySharing) {
        sharings.push_back(
            {"mem-static", memblade::Provisioning::Static});
        sharings.push_back(
            {"mem-dynamic", memblade::Provisioning::Dynamic});
    }

    struct StorageChoice {
        std::string tag;
        std::optional<flashcache::StorageOption> option;
    };
    std::vector<StorageChoice> storages{{"", std::nullopt}};
    if (options.allStorage) {
        storages.push_back(
            {"laptop", flashcache::StorageOption::remoteLaptop()});
        storages.push_back(
            {"laptop-flash",
             flashcache::StorageOption::remoteLaptopFlash()});
        storages.push_back(
            {"laptop2-flash",
             flashcache::StorageOption::remoteLaptop2Flash()});
    }

    std::vector<DesignConfig> out;
    for (auto cls : platforms) {
        for (auto pack : packagings) {
            for (const auto &sharing : sharings) {
                for (const auto &storage : storages) {
                    auto d = DesignConfig::baseline(cls);
                    d.packaging = pack;
                    d.memorySharing = sharing.scheme;
                    d.storage = storage.option;
                    d.name = platform::to_string(cls) + "/" +
                             thermal::to_string(pack);
                    if (!sharing.tag.empty())
                        d.name += "/" + sharing.tag;
                    if (!storage.tag.empty())
                        d.name += "/" + storage.tag;
                    out.push_back(std::move(d));
                }
            }
        }
    }
    return out;
}

SweepResult
evaluateSweep(DesignEvaluator &evaluator,
              const std::vector<DesignConfig> &designs,
              workloads::Benchmark benchmark, ThreadPool *pool)
{
    std::vector<EvalCell> cells;
    cells.reserve(designs.size());
    for (const auto &d : designs)
        cells.push_back({d, benchmark});

    SweepResult r;
    r.metrics = evaluator.evaluateBatch(cells, pool);
    r.perf.reserve(r.metrics.size());
    r.tco.reserve(r.metrics.size());
    for (const auto &m : r.metrics) {
        r.perf.push_back(m.perf);
        r.tco.push_back(m.tcoDollars);
    }
    return r;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<double> &objective,
               const std::vector<double> &cost)
{
    WSC_ASSERT(objective.size() == cost.size(),
               "objective/cost size mismatch");
    WSC_ASSERT(!objective.empty(), "empty design space");

    std::vector<std::size_t> order(objective.size());
    std::iota(order.begin(), order.end(), 0);
    // Sort by cost ascending, objective descending within ties.
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cost[a] != cost[b])
                      return cost[a] < cost[b];
                  return objective[a] > objective[b];
              });

    std::vector<std::size_t> frontier;
    double best = -std::numeric_limits<double>::infinity();
    for (auto idx : order) {
        if (objective[idx] > best) {
            frontier.push_back(idx);
            best = objective[idx];
        }
    }
    return frontier;
}

} // namespace core
} // namespace wsc
