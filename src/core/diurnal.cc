#include "core/diurnal.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace core {

double
DiurnalProfile::meanLoad() const
{
    double sum = 0.0;
    for (double h : hourly)
        sum += h;
    return sum / 24.0;
}

DiurnalProfile
DiurnalProfile::internetService()
{
    // Trough around 04:00-06:00 at ~35% of peak, ramp through the
    // working day, evening peak 19:00-22:00; shaped after published
    // datacenter time-of-day curves.
    DiurnalProfile p;
    p.hourly = {0.50, 0.45, 0.40, 0.37, 0.35, 0.35, 0.40, 0.50,
                0.62, 0.72, 0.78, 0.82, 0.85, 0.85, 0.84, 0.83,
                0.84, 0.87, 0.92, 0.97, 1.00, 0.95, 0.80, 0.62};
    return p;
}

DiurnalProfile
DiurnalProfile::flat()
{
    DiurnalProfile p;
    p.hourly.fill(1.0);
    return p;
}

std::string
to_string(PowerPolicy p)
{
    switch (p) {
      case PowerPolicy::AlwaysOn:
        return "always-on";
      case PowerPolicy::ConsolidateIdle:
        return "consolidate-idle";
      case PowerPolicy::PowerOff:
        return "power-off";
    }
    panic("unknown power policy");
}

DiurnalEnergy
dailyEnergy(const DiurnalProfile &profile, PowerPolicy policy,
            const EnsembleEnergyParams &params)
{
    WSC_ASSERT(params.servers >= 1, "empty ensemble");
    WSC_ASSERT(params.idlePowerFraction >= 0.0 &&
                   params.idlePowerFraction <= 1.0,
               "idle power fraction out of [0, 1]");
    WSC_ASSERT(params.reserveMargin >= 0.0, "negative reserve margin");

    double busy_watts = params.wattsPerServer * params.activityFactor;
    double idle_watts = busy_watts * params.idlePowerFraction;

    double wh = 0.0;
    double active_sum = 0.0;
    for (double load : profile.hourly) {
        // Zero is a legitimate dead-of-night trough: nothing is busy,
        // and the policies below must degrade to their idle floor
        // rather than abort.
        WSC_ASSERT(load >= 0.0 && load <= 1.0,
                   "hourly load out of [0, 1]");
        double busy = std::ceil(load * double(params.servers));
        busy = std::min(busy, double(params.servers));
        double n = double(params.servers);
        double watts = 0.0;
        switch (policy) {
          case PowerPolicy::AlwaysOn:
            // Load spreads over every server; per Fan et al., a
            // lightly loaded 2008-era server still draws most of its
            // peak power: power(u) = idle + (peak - idle) * u.
            watts = n * (idle_watts +
                         (busy_watts - idle_watts) * load);
            busy = n;
            break;
          case PowerPolicy::ConsolidateIdle:
            // Pack load onto the fewest servers; the rest idle. With
            // a linear power curve this matches AlwaysOn to within
            // the packing rounding - consolidation alone buys nothing
            // without power-off (a finding the bench demonstrates).
            watts = busy * busy_watts + (n - busy) * idle_watts;
            break;
          case PowerPolicy::PowerOff: {
            // At zero load nothing is busy, but the reserve margin
            // stays on (idling) so a load spike has headroom; the
            // busy-hours formula would shut the whole fleet off.
            double on;
            if (busy > 0.0)
                on = std::min(
                    n, std::ceil(busy * (1.0 + params.reserveMargin)));
            else
                on = std::min(n,
                              std::ceil(params.reserveMargin * n));
            watts = busy * busy_watts + (on - busy) * idle_watts;
            busy = on;
            break;
          }
        }
        wh += watts; // one hour at this wattage
        active_sum += busy;
    }

    DiurnalEnergy out;
    out.kWhPerDay = wh / 1000.0;
    out.meanActiveServers = active_sum / 24.0;

    // AlwaysOn reference for the savings figure.
    if (policy == PowerPolicy::AlwaysOn) {
        out.savingsVsAlwaysOn = 0.0;
    } else {
        auto ref = dailyEnergy(profile, PowerPolicy::AlwaysOn, params);
        out.savingsVsAlwaysOn =
            1.0 - out.kWhPerDay / ref.kWhPerDay;
    }
    return out;
}

} // namespace core
} // namespace wsc
