/**
 * @file
 * Workload mixes: choosing a design for a heterogeneous datacenter.
 *
 * The paper aggregates its suite with an unweighted harmonic mean; a
 * real deployment runs a weighted mix of services (a mail provider is
 * webmail-heavy, a video site ytube-heavy). This module evaluates
 * designs against explicit mixes — weighted harmonic aggregation of
 * the per-workload ratios — and selects the best design per mix,
 * which is where the paper's "webmail degrades on N1/N2" caveat
 * becomes an actionable boundary.
 */

#ifndef WSC_CORE_MIX_HH
#define WSC_CORE_MIX_HH

#include <map>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "core/report.hh"

namespace wsc {
namespace core {

/** A normalized weighting over the benchmark suite. */
class WorkloadMix
{
  public:
    /**
     * @param weights Non-negative weights per benchmark; normalized
     * internally. Benchmarks absent from the map get weight zero; at
     * least one weight must be positive.
     */
    explicit WorkloadMix(
        std::map<workloads::Benchmark, double> weights);

    /** Normalized weight of one benchmark (0 if absent). */
    double weight(workloads::Benchmark b) const;

    /** Benchmarks with positive weight, in suite order. */
    std::vector<workloads::Benchmark> active() const;

    /** Uniform mix over the full suite (the paper's HMean). */
    static WorkloadMix uniform();

    /** Named presets for common deployment shapes. */
    static WorkloadMix searchHeavy(); //!< 60% websearch
    static WorkloadMix mailHeavy();   //!< 60% webmail
    static WorkloadMix mediaHeavy();  //!< 60% ytube
    static WorkloadMix batchHeavy();  //!< 60% mapreduce

  private:
    std::map<workloads::Benchmark, double> weights_;
};

/**
 * Weighted-harmonic aggregate of a design against a baseline under a
 * mix.
 */
RelativeMetrics mixRelative(DesignEvaluator &evaluator,
                            const DesignConfig &design,
                            const DesignConfig &baseline,
                            const WorkloadMix &mix);

/** Outcome of a best-design selection. */
struct MixChoice {
    std::size_t bestIndex = 0;
    std::string bestName;
    double bestValue = 0.0; //!< of the chosen metric
};

/**
 * Pick the candidate with the highest metric under the mix.
 */
MixChoice bestDesignFor(DesignEvaluator &evaluator,
                        const std::vector<DesignConfig> &candidates,
                        const DesignConfig &baseline,
                        const WorkloadMix &mix, Metric metric);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_MIX_HH
