/**
 * @file
 * Paper-style report formatting for the bench harnesses.
 *
 * Renders the Figure 2(c)/4(c)/5-style tables: one row per workload,
 * one column per design, cells as percentages of the baseline, with a
 * harmonic-mean footer row.
 */

#ifndef WSC_CORE_REPORT_HH
#define WSC_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "util/table.hh"

namespace wsc {
namespace core {

/** Which metric a table reports. */
enum class Metric {
    Perf,
    PerfPerWatt,
    PerfPerInfDollar,
    PerfPerPcDollar,
    PerfPerTcoDollar
};

std::string to_string(Metric m);

/** Extract one metric from a RelativeMetrics record. */
double metricValue(const RelativeMetrics &m, Metric metric);

/**
 * Build the paper-style relative table: rows = workloads (+ HMean),
 * columns = designs, all relative to @p baseline.
 */
Table relativeTable(DesignEvaluator &evaluator,
                    const std::vector<DesignConfig> &designs,
                    const DesignConfig &baseline, Metric metric);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_REPORT_HH
