#include "core/report.hh"

#include "util/logging.hh"

namespace wsc {
namespace core {

std::string
to_string(Metric m)
{
    switch (m) {
      case Metric::Perf:
        return "Perf";
      case Metric::PerfPerWatt:
        return "Perf/W";
      case Metric::PerfPerInfDollar:
        return "Perf/Inf-$";
      case Metric::PerfPerPcDollar:
        return "Perf/P&C-$";
      case Metric::PerfPerTcoDollar:
        return "Perf/TCO-$";
    }
    panic("unknown metric");
}

double
metricValue(const RelativeMetrics &m, Metric metric)
{
    switch (metric) {
      case Metric::Perf:
        return m.perf;
      case Metric::PerfPerWatt:
        return m.perfPerWatt;
      case Metric::PerfPerInfDollar:
        return m.perfPerInfDollar;
      case Metric::PerfPerPcDollar:
        return m.perfPerPcDollar;
      case Metric::PerfPerTcoDollar:
        return m.perfPerTcoDollar;
    }
    panic("unknown metric");
}

Table
relativeTable(DesignEvaluator &evaluator,
              const std::vector<DesignConfig> &designs,
              const DesignConfig &baseline, Metric metric)
{
    std::vector<std::string> header{to_string(metric)};
    for (const auto &d : designs)
        header.push_back(d.name);
    Table table(std::move(header));

    std::vector<std::vector<RelativeMetrics>> columns(designs.size());
    for (std::size_t c = 0; c < designs.size(); ++c)
        for (auto b : workloads::allBenchmarks)
            columns[c].push_back(
                evaluator.evaluateRelative(designs[c], baseline, b));

    std::size_t row = 0;
    for (auto b : workloads::allBenchmarks) {
        std::vector<std::string> cells{workloads::to_string(b)};
        for (std::size_t c = 0; c < designs.size(); ++c)
            cells.push_back(fmtPct(metricValue(columns[c][row], metric)));
        table.addRow(std::move(cells));
        ++row;
    }
    table.addSeparator();
    std::vector<std::string> hmean{"HMean"};
    for (std::size_t c = 0; c < designs.size(); ++c) {
        auto agg = harmonicAggregate(columns[c]);
        hmean.push_back(fmtPct(metricValue(agg, metric)));
    }
    table.addRow(std::move(hmean));
    return table;
}

} // namespace core
} // namespace wsc
