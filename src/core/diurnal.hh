/**
 * @file
 * Time-of-day load and ensemble power management.
 *
 * The paper studies only sustained peak load and flags diurnal
 * request patterns as future work (Section 4, citing Fan et al.).
 * This module adds an hourly load profile and three ensemble power
 * policies, quantifying how much of the day's energy the sustained-
 * peak methodology overstates and how the designs compare once
 * consolidation is allowed.
 *
 * Policies:
 *  - AlwaysOn: every server runs all day at its activity-factor power
 *    (the paper's implicit assumption).
 *  - ConsolidateIdle: load is packed onto the fewest servers; idle
 *    servers drop to an idle-power fraction.
 *  - PowerOff: idle servers are switched off entirely (modulo a
 *    reserve margin kept on for load spikes).
 */

#ifndef WSC_CORE_DIURNAL_HH
#define WSC_CORE_DIURNAL_HH

#include <array>
#include <string>

namespace wsc {
namespace core {

/** Hourly load profile, each entry in [0, 1] relative to peak (0 is
 * a legitimate dead-of-night trough with nothing busy). */
struct DiurnalProfile {
    std::array<double, 24> hourly;

    /** Mean load over the day. */
    double meanLoad() const;

    /** Interactive-service shape: deep night trough, evening peak
     * (after the time-of-day curves in Fan et al.). */
    static DiurnalProfile internetService();

    /** Flat profile (the paper's sustained-load assumption). */
    static DiurnalProfile flat();
};

/** Ensemble power policy. */
enum class PowerPolicy {
    AlwaysOn,
    ConsolidateIdle,
    PowerOff
};

std::string to_string(PowerPolicy p);

/** Parameters of the ensemble energy model. */
struct EnsembleEnergyParams {
    unsigned servers = 1000;       //!< sized for peak load
    double wattsPerServer = 52.0;  //!< max operational (with switch)
    double activityFactor = 0.75;  //!< busy-server de-rating
    double idlePowerFraction = 0.6; //!< idle power / busy power
    double reserveMargin = 0.1;    //!< extra servers kept on (PowerOff)
};

/** One day of ensemble energy under a policy. */
struct DiurnalEnergy {
    double kWhPerDay = 0.0;
    double meanActiveServers = 0.0;
    /** Savings vs the AlwaysOn policy, as a fraction. */
    double savingsVsAlwaysOn = 0.0;
};

/**
 * Energy for one day under @p profile and @p policy.
 *
 * Load at hour h requires ceil(load * servers) busy servers; the
 * policy decides what the rest consume.
 */
DiurnalEnergy dailyEnergy(const DiurnalProfile &profile,
                          PowerPolicy policy,
                          const EnsembleEnergyParams &params);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_DIURNAL_HH
