#include "core/experiments.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace core {

std::string
to_string(ExperimentKind k)
{
    switch (k) {
      case ExperimentKind::PaperTable:
        return "paper-table";
      case ExperimentKind::PaperFigure:
        return "paper-figure";
      case ExperimentKind::PaperClaim:
        return "paper-claim";
      case ExperimentKind::Extension:
        return "extension";
    }
    panic("unknown experiment kind");
}

const std::vector<ExperimentInfo> &
allExperiments()
{
    static const std::vector<ExperimentInfo> registry = {
        {"table1", ExperimentKind::PaperTable,
         "Benchmark suite for the internet sector", "bench_table1",
         "websearch/webmail/ytube (RPS w/ QoS), mapreduce (exec time)"},
        {"fig1a", ExperimentKind::PaperFigure,
         "Cost model line items for srvr1/srvr2", "bench_fig1",
         "totals $5,758 / $3,249; P&C $2,464 / $1,561"},
        {"fig1b", ExperimentKind::PaperFigure,
         "srvr2 TCO breakdown pie", "bench_fig1",
         "CPU HW 20%, CPU P&C 22%, Mem HW 11%, ..."},
        {"table2", ExperimentKind::PaperTable,
         "The six systems considered", "bench_table2",
         "340W/$3,294 down to 35W/$379"},
        {"fig2ab", ExperimentKind::PaperFigure,
         "Inf-$ and P&C-$ breakdowns across systems", "bench_fig2",
         "stacked per-component bars"},
        {"fig2c", ExperimentKind::PaperFigure,
         "Perf and efficiency matrix vs srvr1", "bench_fig2",
         "Perf/TCO-$ HMean 126/132/140/192/95%"},
        {"fig3", ExperimentKind::PaperFigure,
         "Dual-entry and aggregated cooling designs", "bench_fig3",
         "~2X and ~4X gains; 40/320/~1250 systems per rack"},
        {"fig4b", ExperimentKind::PaperFigure,
         "Two-level memory slowdowns", "bench_fig4",
         "PCIe x4 at 25% local: 4.7/0.2/1.4/0.7/0.7%"},
        {"fig4c", ExperimentKind::PaperFigure,
         "Memory-sharing provisioning economics", "bench_fig4",
         "static 102/116/108%; dynamic 106/116/111%"},
        {"table3a", ExperimentKind::PaperTable,
         "Flash and disk parameters", "bench_table3",
         "flash 1GB/$14/0.5W; laptop 20MB/s/$80; desktop 70MB/s/$120"},
        {"table3b", ExperimentKind::PaperTable,
         "Storage-option efficiencies on emb1", "bench_table3",
         "laptop 93/100/96%; +flash 99/109/104%; laptop-2 110/109/110%"},
        {"fig5", ExperimentKind::PaperFigure,
         "Unified designs N1/N2 vs srvr1", "bench_fig5",
         "HMean Perf/TCO-$ ~1.5X (N1) and ~2X (N2)"},
        {"sec36", ExperimentKind::PaperClaim,
         "Equal-performance restatement of N2", "bench_sec36",
         "~60% less power, ~55% lower cost, fewer racks"},
        {"rackpower", ExperimentKind::PaperClaim,
         "Rack power comparison", "bench_fig3",
         "srvr1 13.6 kW/rack vs emb1 ~2.7 kW/rack"},
        // Sensitivity studies the paper describes.
        {"activity", ExperimentKind::PaperClaim,
         "Activity-factor sensitivity", "bench_ablation_activity",
         "0.5-1.0 'qualitatively similar'"},
        {"tariff", ExperimentKind::PaperClaim,
         "Electricity-tariff range", "bench_ablation_tariff",
         "$50-$170/MWh"},
        // Extensions (paper future work / stated caveats).
        {"localmem", ExperimentKind::Extension,
         "Local-fraction x replacement-policy sweep",
         "bench_ablation_localmem", ""},
        {"flash-sweep", ExperimentKind::Extension,
         "Flash capacity and wear sweep", "bench_ablation_flash", ""},
        {"driver", ExperimentKind::Extension,
         "Open-loop vs adaptive closed-loop measurement",
         "bench_ablation_driver", ""},
        {"contention", ExperimentKind::Extension,
         "Blade PCIe link contention (M/D/1)",
         "bench_ablation_contention", ""},
        {"content", ExperimentKind::Extension,
         "Page sharing + compression on the blade",
         "bench_ablation_content", ""},
        {"scaleout", ExperimentKind::Extension,
         "USL scale-out limits", "bench_ablation_scaleout", ""},
        {"diurnal", ExperimentKind::Extension,
         "Time-of-day load and power policies",
         "bench_ablation_diurnal", ""},
        {"dispatch", ExperimentKind::Extension,
         "Cluster dispatch scaling", "bench_ablation_dispatch", ""},
        {"calibration", ExperimentKind::Extension,
         "Calibration robustness", "bench_ablation_calibration", ""},
        {"facility", ExperimentKind::Extension,
         "Facility-derived K1/L1/K2", "bench_ablation_facility", ""},
        {"mix", ExperimentKind::Extension,
         "Workload-mix recommendations + hybrid blade", "bench_mix",
         ""},
        {"design-space", ExperimentKind::Extension,
         "216-design Pareto frontier", "bench_design_space", ""},
        {"kernel", ExperimentKind::Extension,
         "Simulation-kernel microbenchmarks", "bench_kernel", ""},
        {"parallel-sweep", ExperimentKind::Extension,
         "Serial vs N-thread sweep wall-clock + DES fast path",
         "bench_parallel_sweep", ""},
    };
    return registry;
}

const ExperimentInfo *
findExperiment(const std::string &id)
{
    for (const auto &e : allExperiments())
        if (e.id == id)
            return &e;
    return nullptr;
}

std::vector<std::string>
registeredBenchTargets()
{
    std::vector<std::string> out;
    for (const auto &e : allExperiments())
        out.push_back(e.benchTarget);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace core
} // namespace wsc
