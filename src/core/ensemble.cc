#include "core/ensemble.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace core {

perfsim::EnsemblePolicy
ensemblePolicy(PowerPolicy p)
{
    switch (p) {
    case PowerPolicy::AlwaysOn:
        return perfsim::EnsemblePolicy::AlwaysOn;
    case PowerPolicy::ConsolidateIdle:
        return perfsim::EnsemblePolicy::ConsolidateIdle;
    case PowerPolicy::PowerOff:
        return perfsim::EnsemblePolicy::PowerOff;
    }
    panic("unreachable power policy");
}

perfsim::EnsembleConfig
ensembleConfig(const DiurnalProfile &profile, PowerPolicy policy,
               const EnsembleEvalParams &params)
{
    perfsim::EnsembleConfig cfg;
    cfg.servers = params.energy.servers;
    cfg.cells = params.cells;
    cfg.shards = params.shards;
    cfg.workers = params.workers;
    cfg.queue = params.queue;
    cfg.hours = params.hours;
    cfg.secondsPerHour = params.secondsPerHour;
    cfg.profile = profile.hourly;
    cfg.peakUtilization = params.peakUtilization;

    // Design coupling: a platform with relative performance p serves
    // each request in 1/p of the reference service demand. Arrival
    // rates are sized off peakUtilization x capacity, and capacity
    // scales with 1/meanService, so a faster design also faces
    // proportionally more offered load — utilization stays at the
    // design point while latency slack against the fixed QoS deadline
    // widens, which is exactly the effect worth ranking designs by.
    WSC_ASSERT(params.serviceDemandScale > 0.0,
               "service demand scale must be positive");
    cfg.meanServiceSeconds /= params.serviceDemandScale;

    // Same power envelope the closed-form model prices: busy power is
    // the activity-factor de-rated max, idle its configured fraction.
    // forServerWatts scales the sleep/off floors; busy and idle are
    // overridden so a non-default activity factor carries through.
    cfg.power = power::SleepStateCatalog::forServerWatts(
        params.energy.wattsPerServer);
    cfg.power.busyWatts =
        params.energy.wattsPerServer * params.energy.activityFactor;
    cfg.power.transitionWatts = cfg.power.busyWatts;
    cfg.power.idleWatts =
        cfg.power.busyWatts * params.energy.idlePowerFraction;
    cfg.power.sleepWakeSeconds = params.sleepWakeSeconds;
    cfg.power.bootSeconds = params.bootSeconds;
    cfg.power.idleToSleepSeconds = params.idleToSleepSeconds;

    cfg.policy = ensemblePolicy(policy);
    cfg.reserveMargin = params.energy.reserveMargin;
    cfg.powerCapWatts = params.powerCapWatts;
    cfg.mmpp = params.mmpp;
    cfg.fast = params.fast;
    cfg.seed = params.seed;
    return cfg;
}

std::vector<EnsemblePolicyOutcome>
rankEnsemblePolicies(const DiurnalProfile &profile,
                     const EnsembleEvalParams &params)
{
    std::vector<PowerPolicy> policies = params.policies;
    if (policies.empty())
        policies = {PowerPolicy::AlwaysOn, PowerPolicy::ConsolidateIdle,
                    PowerPolicy::PowerOff};
    std::vector<EnsemblePolicyOutcome> out;
    for (auto policy : policies) {
        EnsemblePolicyOutcome o;
        o.policy = policy;
        o.design = params.designName;
        o.measured =
            perfsim::runEnsemble(ensembleConfig(profile, policy, params));
        o.analytical = dailyEnergy(profile, policy, params.energy);
        out.push_back(std::move(o));
    }
    // Rank by the measured energy x QoS score; the policy enum breaks
    // ties deterministically.
    std::stable_sort(out.begin(), out.end(),
                     [](const EnsemblePolicyOutcome &a,
                        const EnsemblePolicyOutcome &b) {
                         return a.measured.score < b.measured.score;
                     });
    return out;
}

obs::EnsembleReport
ensembleReport(const EnsemblePolicyOutcome &outcome)
{
    const auto &m = outcome.measured;
    obs::EnsembleReport r;
    r.policy = to_string(outcome.policy);
    r.design = outcome.design;
    r.servers = m.servers;
    r.cells = m.cells;
    r.hours = m.hours;
    r.secondsPerHour = m.secondsPerHour;
    r.offered = m.offered;
    r.completed = m.completed;
    r.violations = m.violations;
    r.spilled = m.spilled;
    r.wakes = m.wakes;
    r.boots = m.boots;
    r.sleeps = m.sleeps;
    r.offs = m.offs;
    r.capClamps = m.capClamps;
    r.kWhPerDay = m.kWhPerDay;
    r.analyticalKWhPerDay = outcome.analytical.kWhPerDay;
    r.meanActiveServers = m.meanActiveServers;
    r.meanAwakeServers = m.meanAwakeServers;
    using S = perfsim::ServerState;
    r.activeFraction = m.stateFractions[std::size_t(S::Active)];
    r.idleFraction = m.stateFractions[std::size_t(S::Idle)];
    r.sleepFraction = m.stateFractions[std::size_t(S::Sleep)];
    r.wakingFraction = m.stateFractions[std::size_t(S::Waking)];
    r.offFraction = m.stateFractions[std::size_t(S::Off)];
    r.bootingFraction = m.stateFractions[std::size_t(S::Booting)];
    r.latency.mean = m.meanLatency;
    r.latency.p50 = m.p50;
    r.latency.p95 = m.p95;
    r.latency.p99 = m.p99;
    r.qosViolationFraction = m.qosViolationFraction;
    r.qosAttainment = m.qosAttainment;
    r.score = m.score;
    r.hourKWh = m.hourKWh;
    r.hourViolationFraction = m.hourViolationFraction;
    r.eventsScheduled = m.eventsScheduled;
    r.eventsDispatched = m.eventsDispatched;
    r.crossCellMessages = m.crossCellMessages;
    r.windows = m.windows;
    // Stamped only for fast-mode runs; exact reports omit the key and
    // stay byte-identical to pre-fast-mode output.
    r.fastMode =
        m.fastMode ? sim::EnsembleFastConfig::contractVersion() : "";
    r.wallSeconds = m.wallSeconds;
    return r;
}

} // namespace core
} // namespace wsc
