#include "core/cluster.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace core {

ClusterPlanner::ClusterPlanner(ClusterParams params, EvaluatorParams e)
    : params_(params), eval(std::move(e))
{
}

ClusterPlan
ClusterPlanner::planWithRatio(const DesignConfig &design,
                              double perf_ratio,
                              unsigned baseline_servers)
{
    WSC_ASSERT(perf_ratio > 0.0, "non-positive performance ratio");
    WSC_ASSERT(baseline_servers >= 1, "empty baseline cluster");

    ClusterPlan plan;
    plan.perfPerServer = perf_ratio;
    plan.serversNeeded = double(baseline_servers) / perf_ratio;

    auto enclosure = thermal::makeEnclosure(design.packaging);
    unsigned per_rack = enclosure.systemsPerRack();
    plan.racks =
        unsigned(std::ceil(plan.serversNeeded / double(per_rack)));

    // Cost/power of one server of this design (uses a batch benchmark
    // only for the cached cost path; perf is not consulted here).
    auto server = eval.adjustedServer(design);
    cost::TcoModel tco(eval.params().rackCost, eval.params().rackPower,
                       eval.burdenFor(design));
    auto r = tco.evaluate(server.hardwareCost(), server.hardwarePower());

    plan.totalPowerKW = plan.serversNeeded * r.wattsWithSwitch / 1000.0;
    plan.hardwareDollars = plan.serversNeeded * r.infrastructure();
    plan.powerCoolingDollars = plan.serversNeeded * r.powerCooling();
    plan.realEstateDollars = double(plan.racks) *
                             params_.realEstatePerRackYear *
                             params_.years;
    return plan;
}

ClusterPlan
ClusterPlanner::plan(const DesignConfig &design,
                     const DesignConfig &baseline,
                     unsigned baseline_servers, workloads::Benchmark b)
{
    auto rel = eval.evaluateRelative(design, baseline, b);
    return planWithRatio(design, rel.perf, baseline_servers);
}

ClusterPlan
ClusterPlanner::planSuite(const DesignConfig &design,
                          const DesignConfig &baseline,
                          unsigned baseline_servers)
{
    auto agg = eval.aggregateRelative(design, baseline);
    return planWithRatio(design, agg.perf, baseline_servers);
}

} // namespace core
} // namespace wsc
