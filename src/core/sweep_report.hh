/**
 * @file
 * Bridges design-space evaluation to the observability report format.
 *
 * Converts the evaluator's cached per-cell observations into
 * obs::CellReport entries and assembles a SweepReport carrying the
 * evaluator's own metrics (cells simulated, cache hits, wall-clock).
 * Conversion never re-simulates: cells the evaluator has already
 * computed are read straight from its cache.
 */

#ifndef WSC_CORE_SWEEP_REPORT_HH
#define WSC_CORE_SWEEP_REPORT_HH

#include <vector>

#include "core/evaluator.hh"
#include "obs/run_report.hh"

namespace wsc {
namespace core {

/** Convert one cached observation into its report form. */
obs::CellReport cellReport(const DesignConfig &design,
                           workloads::Benchmark benchmark,
                           const CellObservation &observation);

/**
 * Convert one availability run into its report form. Component classes
 * with zero activity are omitted from the per-component list so
 * disabled classes leave no trace in the JSON.
 */
obs::AvailReport availReport(const DesignConfig &design,
                             const AvailabilityEvalParams &params,
                             const faults::AvailabilityResult &result);

/**
 * Build the full sweep report for @p cells: per-cell reports (from
 * the evaluator's cache, simulating any cell not yet touched) plus the
 * evaluator's metric registry snapshots.
 *
 * @param tool Name recorded in the report header.
 * @param threads Worker threads the sweep ran with (0 = unspecified).
 */
obs::SweepReport buildSweepReport(DesignEvaluator &evaluator,
                                  const std::vector<EvalCell> &cells,
                                  const std::string &tool,
                                  std::uint64_t threads = 0);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_SWEEP_REPORT_HH
