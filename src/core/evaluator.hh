/**
 * @file
 * End-to-end design evaluation: performance + cost + power + cooling.
 *
 * Composes the subsystem models into the paper's evaluation flow: a
 * design's server configuration is adjusted for memory sharing,
 * storage, and packaging hardware; the burdened-cost parameters are
 * adjusted for the packaging's cooling-efficiency gain; performance is
 * simulated with the matching overrides (disk model, SAN latency,
 * flash hit rate, memory-sharing slowdown).
 */

#ifndef WSC_CORE_EVALUATOR_HH
#define WSC_CORE_EVALUATOR_HH

#include <map>

#include "core/design.hh"
#include "core/metrics.hh"
#include "cost/tco.hh"
#include "faults/availability_sim.hh"
#include "obs/metrics.hh"
#include "perfsim/perf_eval.hh"
#include "thermal/cooling_cost.hh"
#include "util/thread_pool.hh"
#include "workloads/suite.hh"

namespace wsc {
namespace core {

/** Evaluation controls. */
struct EvaluatorParams {
    cost::RackCostParams rackCost;
    power::RackPowerParams rackPower;
    cost::BurdenedPowerParams burden;
    perfsim::SearchParams search;
    std::uint64_t seed = 12345;
};

/** One (design, benchmark) cell of a sweep. */
struct EvalCell {
    DesignConfig design;
    workloads::Benchmark benchmark;
};

/**
 * Controls for dependability-aware evaluation: the fault population
 * and the availability run each design is subjected to. The fault
 * hardware description (fan count, DIMM count, storage fanout, memory
 * blade) is derived from the design itself — see
 * DesignEvaluator::injectorConfigFor.
 */
struct AvailabilityEvalParams {
    faults::FaultSpec spec;
    unsigned servers = 8;
    double horizonSeconds = 600.0;
    double epochSeconds = 10.0;
    /** Offered load as a fraction of servers x single-server RPS. */
    double loadFactor = 0.7;
    double timeoutFactor = 4.0;
    unsigned maxRetries = 2;
    double backoffSeconds = 0.1;
    /** Servers sharing one remote disk target (correlated blast). */
    unsigned remoteStorageFanout = 4;
    workloads::Benchmark benchmark = workloads::Benchmark::Websearch;
};

/**
 * Everything one cell's simulation produced: the full measurement
 * (latency percentiles, stations, kernel counters) plus the wall-clock
 * cost of producing it. Cached so report generation never re-simulates.
 */
struct CellObservation {
    perfsim::PerfMeasurement measurement;
    double wallSeconds = 0.0; //!< nondeterministic; reports can omit
};

/**
 * Evaluates design points across the benchmark suite.
 *
 * Performance measurements are cached per (design name, benchmark), so
 * repeated metric queries do not re-run the simulation.
 *
 * Threading model: a DesignEvaluator instance is not thread-safe;
 * parallelism goes through evaluateBatch(), which fans independent
 * cells out over a ThreadPool and merges results (and the perf cache)
 * back on the calling thread. Each cell's simulation seed is derived
 * from (base seed, design name, benchmark) — never from execution
 * order — so batch results are bit-identical to evaluating the same
 * cells serially, for any thread count.
 */
class DesignEvaluator
{
  public:
    explicit DesignEvaluator(EvaluatorParams params = {});

    /** Full metrics of one (design, benchmark) cell. */
    EfficiencyMetrics evaluate(const DesignConfig &design,
                               workloads::Benchmark benchmark);

    /**
     * Evaluate many independent cells, in parallel when @p pool has
     * more than one thread (nullptr selects the global pool). Cells
     * already in the perf cache are not re-simulated; duplicate cells
     * within the batch are simulated once. Results are returned in
     * cell order and are bit-identical to serial evaluation.
     */
    std::vector<EfficiencyMetrics> evaluateBatch(
        const std::vector<EvalCell> &cells, ThreadPool *pool = nullptr);

    /** Relative metrics against a baseline design. */
    RelativeMetrics evaluateRelative(const DesignConfig &design,
                                     const DesignConfig &baseline,
                                     workloads::Benchmark benchmark);

    /**
     * Harmonic-mean aggregate of a design against a baseline across
     * the full suite.
     */
    RelativeMetrics aggregateRelative(const DesignConfig &design,
                                      const DesignConfig &baseline);

    /**
     * The server configuration with all the design's cost/power
     * adjustments applied (exposed for the bench harnesses).
     */
    platform::ServerConfig adjustedServer(
        const DesignConfig &design) const;

    /** The burdened-cost parameters after cooling adjustment. */
    cost::BurdenedPowerParams burdenFor(const DesignConfig &design) const;

    const EvaluatorParams &params() const { return params_; }

    /**
     * Full observation for one cell, simulating on first touch. The
     * reference stays valid for the evaluator's lifetime (cells are
     * never evicted).
     */
    const CellObservation &observationFor(const DesignConfig &design,
                                          workloads::Benchmark benchmark);

    /**
     * Availability of @p design under fault injection: a cluster of
     * identical servers is driven at @p p.loadFactor of its aggregate
     * sustainable throughput (from the cached perf measurement) while
     * the FaultInjector exercises the spec's component failures.
     * Results are seeded from (base seed, design name, benchmark) and
     * bit-identical for any thread count.
     */
    faults::AvailabilityResult evaluateAvailability(
        const DesignConfig &design, const AvailabilityEvalParams &p);

    /**
     * Availability of many designs, in parallel when @p pool has more
     * than one thread (nullptr selects the global pool). Results in
     * design order, bit-identical to serial evaluation.
     */
    std::vector<faults::AvailabilityResult> evaluateAvailabilityBatch(
        const std::vector<DesignConfig> &designs,
        const AvailabilityEvalParams &p, ThreadPool *pool = nullptr);

    /**
     * Fault hardware description a design implies: fan count from its
     * packaging, DIMM count from its memory capacity, the memory blade
     * when it shares ensemble memory, and correlated storage fanout
     * when its disks are remote.
     */
    faults::InjectorConfig injectorConfigFor(
        const DesignConfig &design,
        const AvailabilityEvalParams &p) const;

    /** Performance-model overrides a design implies (storage, memory
     * sharing); the perf side of computeCell, exposed so availability
     * runs use identical station derivation. */
    perfsim::PerfOptions perfOptionsFor(const DesignConfig &design) const;

    /**
     * Evaluator-level metrics: cells simulated, cache hits, wall-clock
     * spent simulating. Thread-safe; fed from batch workers too.
     */
    const obs::MetricRegistry &metrics() const { return metrics_; }

  private:
    EvaluatorParams params_;
    perfsim::PerfEvaluator perf;
    std::map<std::pair<std::string, workloads::Benchmark>,
             CellObservation>
        perfCache;
    mutable obs::MetricRegistry metrics_;

    double measurePerf(const DesignConfig &design,
                       workloads::Benchmark benchmark);

    /** Cache-free simulation of one cell; const and reentrant, so
     * evaluateBatch can run it from pool workers. */
    CellObservation computeCell(const DesignConfig &design,
                                workloads::Benchmark benchmark) const;

    /** Cache-free availability run; const and reentrant for pool
     * workers. @p singleRps is the design's cached single-server
     * sustainable throughput. */
    faults::AvailabilityResult computeAvailability(
        const DesignConfig &design, const AvailabilityEvalParams &p,
        double singleRps) const;

    /** Cost/power/thermal side of evaluate(), given measured perf. */
    EfficiencyMetrics metricsWithPerf(const DesignConfig &design,
                                      double perfValue) const;
};

} // namespace core
} // namespace wsc

#endif // WSC_CORE_EVALUATOR_HH
