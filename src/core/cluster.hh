/**
 * @file
 * Cluster-level planning: equal-performance ensemble comparisons.
 *
 * Section 3.6 restates the N2 result at the ensemble level: "for the
 * same performance as the baseline, N2 gets a 60% reduction in power,
 * 55% reduction in overall costs, and consumes 30% less racks". This
 * module sizes a cluster of one design to match the aggregate
 * performance of a baseline cluster and prices it, including rack
 * count (via the packaging density model) and optional real-estate
 * cost — the component the paper's metric definition mentions but its
 * per-server tables omit.
 */

#ifndef WSC_CORE_CLUSTER_HH
#define WSC_CORE_CLUSTER_HH

#include "core/evaluator.hh"
#include "thermal/enclosure.hh"

namespace wsc {
namespace core {

/** Cluster-level cost parameters. */
struct ClusterParams {
    /** Real-estate cost per rack per year (0 = excluded, as in the
     * paper's per-server tables). */
    double realEstatePerRackYear = 0.0;
    double years = 3.0;
};

/** Sizing and cost of one design at a target aggregate performance. */
struct ClusterPlan {
    double perfPerServer = 0.0;   //!< relative to the baseline server
    double serversNeeded = 0.0;   //!< fractional, before rack rounding
    unsigned racks = 0;
    double totalPowerKW = 0.0;    //!< max operational, incl. switches
    double hardwareDollars = 0.0; //!< servers + rack shares
    double powerCoolingDollars = 0.0;
    double realEstateDollars = 0.0;

    double
    totalDollars() const
    {
        return hardwareDollars + powerCoolingDollars +
               realEstateDollars;
    }
};

/**
 * Plans clusters at equal aggregate performance.
 */
class ClusterPlanner
{
  public:
    explicit ClusterPlanner(ClusterParams params = {},
                            EvaluatorParams eval = {});

    /**
     * Size a cluster of @p design to match @p baseline_servers servers
     * of @p baseline on benchmark @p b, and price it.
     */
    ClusterPlan plan(const DesignConfig &design,
                     const DesignConfig &baseline,
                     unsigned baseline_servers, workloads::Benchmark b);

    /**
     * Same, matching the harmonic-mean performance across the whole
     * suite (the paper's aggregate view).
     */
    ClusterPlan planSuite(const DesignConfig &design,
                          const DesignConfig &baseline,
                          unsigned baseline_servers);

    DesignEvaluator &evaluator() { return eval; }

  private:
    ClusterParams params_;
    DesignEvaluator eval;

    ClusterPlan planWithRatio(const DesignConfig &design,
                              double perf_ratio,
                              unsigned baseline_servers);
};

} // namespace core
} // namespace wsc

#endif // WSC_CORE_CLUSTER_HH
