#include "core/metrics.hh"

#include "stats/means.hh"
#include "util/logging.hh"

namespace wsc {
namespace core {

namespace {

double
ratio(double num, double den)
{
    WSC_ASSERT(den > 0.0, "metric denominator must be positive");
    return num / den;
}

} // namespace

double
EfficiencyMetrics::perfPerWatt() const
{
    return ratio(perf, watts);
}

double
EfficiencyMetrics::perfPerInfDollar() const
{
    return ratio(perf, infDollars);
}

double
EfficiencyMetrics::perfPerPcDollar() const
{
    return ratio(perf, pcDollars);
}

double
EfficiencyMetrics::perfPerTcoDollar() const
{
    return ratio(perf, tcoDollars);
}

RelativeMetrics
relativeTo(const EfficiencyMetrics &target,
           const EfficiencyMetrics &baseline)
{
    RelativeMetrics r;
    r.perf = ratio(target.perf, baseline.perf);
    r.perfPerWatt = ratio(target.perfPerWatt(), baseline.perfPerWatt());
    r.perfPerInfDollar =
        ratio(target.perfPerInfDollar(), baseline.perfPerInfDollar());
    r.perfPerPcDollar =
        ratio(target.perfPerPcDollar(), baseline.perfPerPcDollar());
    r.perfPerTcoDollar =
        ratio(target.perfPerTcoDollar(), baseline.perfPerTcoDollar());
    return r;
}

RelativeMetrics
harmonicAggregate(const std::vector<RelativeMetrics> &perWorkload)
{
    WSC_ASSERT(!perWorkload.empty(), "nothing to aggregate");
    auto collect = [&](auto member) {
        std::vector<double> v;
        v.reserve(perWorkload.size());
        for (const auto &m : perWorkload)
            v.push_back(m.*member);
        return stats::harmonicMean(v);
    };
    RelativeMetrics out;
    out.perf = collect(&RelativeMetrics::perf);
    out.perfPerWatt = collect(&RelativeMetrics::perfPerWatt);
    out.perfPerInfDollar = collect(&RelativeMetrics::perfPerInfDollar);
    out.perfPerPcDollar = collect(&RelativeMetrics::perfPerPcDollar);
    out.perfPerTcoDollar = collect(&RelativeMetrics::perfPerTcoDollar);
    return out;
}

} // namespace core
} // namespace wsc
