/**
 * @file
 * Efficiency metrics of the study (paper Section 2.2).
 *
 * The headline metric is sustainable performance per total cost of
 * ownership (Perf/TCO-$); Perf/W, Perf/Inf-$ (infrastructure only) and
 * Perf/P&C-$ (power and cooling only) decompose it. Cross-workload
 * aggregation uses the harmonic mean of per-workload ratios against a
 * baseline (Section 3.2).
 */

#ifndef WSC_CORE_METRICS_HH
#define WSC_CORE_METRICS_HH

#include <vector>

namespace wsc {
namespace core {

/** Absolute measurements of one (design, workload) cell. */
struct EfficiencyMetrics {
    double perf = 0.0;       //!< RPS w/ QoS, or 1/exec-time
    double watts = 0.0;      //!< sustained per-server watts (w/ switch)
    double infDollars = 0.0; //!< hardware incl. amortized rack share
    double pcDollars = 0.0;  //!< 3-yr burdened power & cooling
    double tcoDollars = 0.0; //!< infDollars + pcDollars

    double perfPerWatt() const;
    double perfPerInfDollar() const;
    double perfPerPcDollar() const;
    double perfPerTcoDollar() const;
};

/** Ratios of one cell against a baseline cell. */
struct RelativeMetrics {
    double perf = 0.0;
    double perfPerWatt = 0.0;
    double perfPerInfDollar = 0.0;
    double perfPerPcDollar = 0.0;
    double perfPerTcoDollar = 0.0;
};

/** Component-wise ratio target / baseline. */
RelativeMetrics relativeTo(const EfficiencyMetrics &target,
                           const EfficiencyMetrics &baseline);

/**
 * Harmonic-mean aggregation of per-workload relative metrics
 * (the paper's "HMean" rows).
 */
RelativeMetrics harmonicAggregate(
    const std::vector<RelativeMetrics> &perWorkload);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_METRICS_HH
