/**
 * @file
 * Couples the closed-form diurnal model to the measured ensemble DES.
 *
 * core/diurnal.hh prices the three ensemble power policies by the
 * hour — a queueing-free, latency-free account. perfsim/ensemble_sim
 * simulates the same fleet server by server, where consolidation pays
 * for its energy win in wake-up latency and flash-crowd exposure. This
 * module runs both for every policy on the same DiurnalProfile and the
 * same per-server power envelope, ranks the policies by the measured
 * energy x QoS score, and converts results to the observability
 * report schema.
 */

#ifndef WSC_CORE_ENSEMBLE_HH
#define WSC_CORE_ENSEMBLE_HH

#include <string>
#include <vector>

#include "core/diurnal.hh"
#include "obs/run_report.hh"
#include "perfsim/ensemble_sim.hh"

namespace wsc {
namespace core {

/** Ensemble-DES evaluation knobs shared across the policy runs. */
struct EnsembleEvalParams {
    /** Closed-form model parameters; wattsPerServer scales the sleep
     * catalog, reserveMargin feeds the PowerOff autoscaler, and
     * servers sizes both fleets. */
    EnsembleEnergyParams energy;

    unsigned cells = 16;   //!< dispatch domains (model topology)
    unsigned shards = 1;   //!< physical event queues (execution knob)
    unsigned workers = 1;  //!< threads (0 = min(shards, hardware))
    /** Event-ordering backend (execution knob; heap is the oracle,
     * calendar the fast path — results are byte-identical). */
    sim::QueueKind queue = sim::QueueKind::Heap;
    unsigned hours = 24;
    /** Duty-cycle compression: simulated seconds per modeled hour. */
    double secondsPerHour = 5.0;
    /** Transition latencies on the compressed timescale. The catalog's
     * real-world values (30 s boot) would span whole compressed hours,
     * so the CLI path overrides them to compressed equivalents. */
    double sleepWakeSeconds = 0.5;
    double bootSeconds = 3.0;
    double idleToSleepSeconds = 1.0;

    double peakUtilization = 0.6;
    double powerCapWatts = 0.0; //!< 0 disables the ensemble cap
    perfsim::MmppConfig mmpp;   //!< flash-crowd bursts
    /** fast-mode/2 macro-event coalescing (sim/fast_mode.hh); off =
     * the exact engine, byte-identical reports. */
    sim::EnsembleFastConfig fast;
    /** Policies to evaluate; empty = all three (the default ranking).
     * A single entry turns rankEnsemblePolicies into a single-policy
     * run (wsc_eval --ensemble-policy). */
    std::vector<PowerPolicy> policies;
    std::uint64_t seed = 1;

    /** Platform-design coupling. A faster design serves each request
     * in less time: the mean service demand is divided by this
     * relative-performance factor (the design-space aggregate's perf
     * score), so --ensemble ranks policies on the fleet actually
     * being evaluated rather than a fixed reference server. 1.0 and
     * an empty name reproduce the uncoupled runs byte for byte. */
    double serviceDemandScale = 1.0;
    std::string designName; //!< report key `ensemble.design`
};

/** Measured + analytical evaluation of one policy. */
struct EnsemblePolicyOutcome {
    PowerPolicy policy = PowerPolicy::AlwaysOn;
    std::string design; //!< design the run was coupled to; may be ""
    perfsim::EnsembleResult measured;
    DiurnalEnergy analytical;
};

/** Map the analytical policy enum onto the simulator's. */
perfsim::EnsemblePolicy ensemblePolicy(PowerPolicy p);

/** Build the simulator configuration for one policy run. */
perfsim::EnsembleConfig ensembleConfig(const DiurnalProfile &profile,
                                       PowerPolicy policy,
                                       const EnsembleEvalParams &params);

/**
 * Run all three policies against @p profile (each also priced by the
 * closed-form model) and return them ranked by measured score —
 * kWh / QoS attainment, lower first. Every policy faces the
 * bit-identical arrival process, so offered counts match across rows.
 */
std::vector<EnsemblePolicyOutcome>
rankEnsemblePolicies(const DiurnalProfile &profile,
                     const EnsembleEvalParams &params);

/** Convert one outcome into its report form. */
obs::EnsembleReport ensembleReport(const EnsemblePolicyOutcome &outcome);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_ENSEMBLE_HH
