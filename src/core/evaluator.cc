#include "core/evaluator.hh"

#include <chrono>
#include <cmath>

#include "util/hash.hh"
#include "util/logging.hh"

namespace wsc {
namespace core {

DesignEvaluator::DesignEvaluator(EvaluatorParams params)
    : params_(std::move(params))
{
}

platform::ServerConfig
DesignEvaluator::adjustedServer(const DesignConfig &design) const
{
    platform::ServerConfig server = design.server;
    if (design.memorySharing) {
        server = memblade::withMemorySharing(server, design.bladeParams,
                                             *design.memorySharing);
    }
    if (design.storage)
        server = flashcache::withStorage(server, *design.storage);
    auto hw = thermal::packagingHardware(design.packaging);
    server.powerFansDollars *= hw.fanCostFactor;
    server.powerFansWatts *= hw.fanPowerFactor;
    return server;
}

cost::BurdenedPowerParams
DesignEvaluator::burdenFor(const DesignConfig &design) const
{
    return thermal::applyCooling(params_.burden, design.packaging);
}

perfsim::PerfOptions
DesignEvaluator::perfOptionsFor(const DesignConfig &design) const
{
    perfsim::PerfOptions opts;
    opts.search = params_.search;
    if (design.storage) {
        // Benchmark-independent overrides only; the flash hit rate is
        // filled per benchmark by the caller.
        auto storage_opts = flashcache::perfOptionsFor(
            *design.storage, workloads::Benchmark::Websearch);
        opts.diskOverride = storage_opts.diskOverride;
        opts.extraDiskAccessMs = storage_opts.extraDiskAccessMs;
        opts.flashAccessMs = storage_opts.flashAccessMs;
        opts.flashReadMBs = storage_opts.flashReadMBs;
    }
    if (design.memorySharing)
        opts.serviceSlowdown =
            1.0 + design.bladeParams.assumedSlowdown;
    return opts;
}

CellObservation
DesignEvaluator::computeCell(const DesignConfig &design,
                             workloads::Benchmark benchmark) const
{
    perfsim::PerfOptions opts = perfOptionsFor(design);
    // The seed hangs off the cell's identity, not the evaluation
    // order, so parallel and serial sweeps agree bit-for-bit.
    opts.seed = seedFor(params_.seed, design.name,
                        std::uint64_t(benchmark));
    if (design.storage)
        opts.flashCacheHitRate =
            flashcache::perfOptionsFor(*design.storage, benchmark)
                .flashCacheHitRate;

    CellObservation obs;
    auto start = std::chrono::steady_clock::now();
    obs.measurement = perf.measure(design.server, benchmark, opts);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    obs.wallSeconds = dt.count();
    metrics_.counter("eval.cells_simulated").add();
    metrics_.counter("eval.search_probes")
        .add(obs.measurement.searchProbes);
    metrics_.counter("eval.events_dispatched")
        .add(obs.measurement.kernel.dispatched);
    metrics_.timer("eval.simulate").record(obs.wallSeconds);
    return obs;
}

const CellObservation &
DesignEvaluator::observationFor(const DesignConfig &design,
                                workloads::Benchmark benchmark)
{
    auto key = std::make_pair(design.name, benchmark);
    auto it = perfCache.find(key);
    if (it != perfCache.end()) {
        metrics_.counter("eval.cache_hits").add();
        return it->second;
    }
    return perfCache.emplace(key, computeCell(design, benchmark))
        .first->second;
}

double
DesignEvaluator::measurePerf(const DesignConfig &design,
                             workloads::Benchmark benchmark)
{
    return observationFor(design, benchmark).measurement.perf;
}

EfficiencyMetrics
DesignEvaluator::metricsWithPerf(const DesignConfig &design,
                                 double perfValue) const
{
    auto server = adjustedServer(design);
    cost::TcoModel tco(params_.rackCost, params_.rackPower,
                       burdenFor(design));
    auto result = tco.evaluate(server.hardwareCost(),
                               server.hardwarePower());

    EfficiencyMetrics m;
    m.perf = perfValue;
    m.watts = result.wattsWithSwitch;
    m.infDollars = result.infrastructure();
    m.pcDollars = result.powerCooling();
    m.tcoDollars = result.tco();
    return m;
}

EfficiencyMetrics
DesignEvaluator::evaluate(const DesignConfig &design,
                          workloads::Benchmark benchmark)
{
    return metricsWithPerf(design, measurePerf(design, benchmark));
}

std::vector<EfficiencyMetrics>
DesignEvaluator::evaluateBatch(const std::vector<EvalCell> &cells,
                               ThreadPool *pool)
{
    // Resolve cache hits and dedupe repeated cells on the calling
    // thread; only genuinely new simulations fan out.
    std::vector<std::size_t> missCell; //!< cell index per simulation
    std::map<std::pair<std::string, workloads::Benchmark>, std::size_t>
        missFor; //!< cell key -> index into missCell/missPerf
    for (std::size_t i = 0; i < cells.size(); ++i) {
        auto key = std::make_pair(cells[i].design.name,
                                  cells[i].benchmark);
        if (perfCache.count(key) || missFor.count(key))
            continue;
        missFor[key] = missCell.size();
        missCell.push_back(i);
    }

    std::vector<CellObservation> missObs(missCell.size());
    parallelFor(
        missCell.size(),
        [&](std::size_t j) {
            const auto &cell = cells[missCell[j]];
            missObs[j] = computeCell(cell.design, cell.benchmark);
        },
        pool);

    for (std::size_t j = 0; j < missCell.size(); ++j) {
        const auto &cell = cells[missCell[j]];
        perfCache[{cell.design.name, cell.benchmark}] =
            std::move(missObs[j]);
    }

    std::vector<EfficiencyMetrics> out;
    out.reserve(cells.size());
    for (const auto &cell : cells)
        out.push_back(metricsWithPerf(
            cell.design, measurePerf(cell.design, cell.benchmark)));
    return out;
}

faults::InjectorConfig
DesignEvaluator::injectorConfigFor(const DesignConfig &design,
                                   const AvailabilityEvalParams &p) const
{
    faults::InjectorConfig cfg;
    cfg.spec = p.spec;
    cfg.seed = seedFor(params_.seed, "avail", design.name,
                       std::uint64_t(p.benchmark));

    auto server = adjustedServer(design);
    cfg.serverWatts = server.totalWatts();
    // One DIMM per 2 GB of the era's module capacity; ensemble memory
    // sharing moves capacity off the server onto the blade.
    cfg.dimmsPerServer = std::max(
        1u, unsigned(std::lround(server.memory.capacityGB / 2.0)));
    cfg.disksPerServer = 1;
    // Remote disks are shared SAN targets: one target serves a
    // fanout-sized group, and its failure takes the whole group down.
    cfg.storageFanout =
        server.disk.remote ? p.remoteStorageFanout : 1;
    cfg.memoryBlade = design.memorySharing.has_value();
    cfg.packaging = design.packaging;
    cfg.fansPerServer = faults::defaultFansPerServer(design.packaging);
    return cfg;
}

faults::AvailabilityResult
DesignEvaluator::computeAvailability(const DesignConfig &design,
                                     const AvailabilityEvalParams &p,
                                     double singleRps) const
{
    WSC_ASSERT(singleRps > 0.0,
               "availability needs a positive sustainable RPS for "
                   << design.name);
    auto workload = workloads::makeBenchmark(p.benchmark);
    auto *iw =
        dynamic_cast<workloads::InteractiveWorkload *>(workload.get());
    WSC_ASSERT(iw, "availability evaluation needs an interactive "
                   "benchmark: "
                       << workloads::to_string(p.benchmark));

    perfsim::PerfOptions opts = perfOptionsFor(design);
    if (design.storage)
        opts.flashCacheHitRate =
            flashcache::perfOptionsFor(*design.storage, p.benchmark)
                .flashCacheHitRate;
    auto stations =
        perf.stationsFor(design.server, iw->traits(), opts);

    faults::AvailabilityParams ap;
    ap.servers = p.servers;
    ap.horizonSeconds = p.horizonSeconds;
    ap.epochSeconds = p.epochSeconds;
    ap.offeredRps = p.loadFactor * singleRps * double(p.servers);
    ap.timeoutFactor = p.timeoutFactor;
    ap.maxRetries = p.maxRetries;
    ap.backoffSeconds = p.backoffSeconds;
    // Seeded by identity so batch evaluation decomposes bit-identically
    // for any thread count.
    ap.seed = seedFor(params_.seed, "avail", design.name,
                      std::uint64_t(p.benchmark));
    ap.injector = injectorConfigFor(design, p);

    auto start = std::chrono::steady_clock::now();
    auto result = faults::simulateAvailability(*iw, stations, ap);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    metrics_.counter("eval.avail_runs").add();
    metrics_.counter("eval.avail_events")
        .add(result.kernel.dispatched);
    metrics_.timer("eval.availability").record(dt.count());
    return result;
}

faults::AvailabilityResult
DesignEvaluator::evaluateAvailability(const DesignConfig &design,
                                      const AvailabilityEvalParams &p)
{
    double singleRps =
        observationFor(design, p.benchmark).measurement.sustainableRps;
    return computeAvailability(design, p, singleRps);
}

std::vector<faults::AvailabilityResult>
DesignEvaluator::evaluateAvailabilityBatch(
    const std::vector<DesignConfig> &designs,
    const AvailabilityEvalParams &p, ThreadPool *pool)
{
    // Populate the perf cache (parallel on first touch) so the
    // availability fan-out reads sustainable RPS without touching
    // shared state from workers.
    std::vector<EvalCell> cells;
    cells.reserve(designs.size());
    for (const auto &d : designs)
        cells.push_back({d, p.benchmark});
    evaluateBatch(cells, pool);

    std::vector<double> singleRps(designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i)
        singleRps[i] = observationFor(designs[i], p.benchmark)
                           .measurement.sustainableRps;

    std::vector<faults::AvailabilityResult> out(designs.size());
    parallelFor(
        designs.size(),
        [&](std::size_t i) {
            out[i] = computeAvailability(designs[i], p, singleRps[i]);
        },
        pool);
    return out;
}

RelativeMetrics
DesignEvaluator::evaluateRelative(const DesignConfig &design,
                                  const DesignConfig &baseline,
                                  workloads::Benchmark benchmark)
{
    return relativeTo(evaluate(design, benchmark),
                      evaluate(baseline, benchmark));
}

RelativeMetrics
DesignEvaluator::aggregateRelative(const DesignConfig &design,
                                   const DesignConfig &baseline)
{
    // One batch covering both designs across the suite, so the
    // underlying simulations run in parallel on first touch.
    std::vector<EvalCell> cells;
    for (auto b : workloads::allBenchmarks) {
        cells.push_back({design, b});
        cells.push_back({baseline, b});
    }
    auto metrics = evaluateBatch(cells);

    std::vector<RelativeMetrics> per_workload;
    for (std::size_t i = 0; i < cells.size(); i += 2)
        per_workload.push_back(
            relativeTo(metrics[i], metrics[i + 1]));
    return harmonicAggregate(per_workload);
}

} // namespace core
} // namespace wsc
