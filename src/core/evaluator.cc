#include "core/evaluator.hh"

#include "util/logging.hh"

namespace wsc {
namespace core {

DesignEvaluator::DesignEvaluator(EvaluatorParams params)
    : params_(std::move(params))
{
}

platform::ServerConfig
DesignEvaluator::adjustedServer(const DesignConfig &design) const
{
    platform::ServerConfig server = design.server;
    if (design.memorySharing) {
        server = memblade::withMemorySharing(server, design.bladeParams,
                                             *design.memorySharing);
    }
    if (design.storage)
        server = flashcache::withStorage(server, *design.storage);
    auto hw = thermal::packagingHardware(design.packaging);
    server.powerFansDollars *= hw.fanCostFactor;
    server.powerFansWatts *= hw.fanPowerFactor;
    return server;
}

cost::BurdenedPowerParams
DesignEvaluator::burdenFor(const DesignConfig &design) const
{
    return thermal::applyCooling(params_.burden, design.packaging);
}

double
DesignEvaluator::measurePerf(const DesignConfig &design,
                             workloads::Benchmark benchmark)
{
    auto key = std::make_pair(design.name, benchmark);
    auto it = perfCache.find(key);
    if (it != perfCache.end())
        return it->second;

    perfsim::PerfOptions opts;
    opts.seed = params_.seed;
    opts.search = params_.search;
    if (design.storage) {
        auto storage_opts =
            flashcache::perfOptionsFor(*design.storage, benchmark);
        opts.diskOverride = storage_opts.diskOverride;
        opts.extraDiskAccessMs = storage_opts.extraDiskAccessMs;
        opts.flashCacheHitRate = storage_opts.flashCacheHitRate;
        opts.flashAccessMs = storage_opts.flashAccessMs;
        opts.flashReadMBs = storage_opts.flashReadMBs;
    }
    if (design.memorySharing)
        opts.serviceSlowdown =
            1.0 + design.bladeParams.assumedSlowdown;

    double value = perf.measure(design.server, benchmark, opts).perf;
    perfCache[key] = value;
    return value;
}

EfficiencyMetrics
DesignEvaluator::evaluate(const DesignConfig &design,
                          workloads::Benchmark benchmark)
{
    auto server = adjustedServer(design);
    cost::TcoModel tco(params_.rackCost, params_.rackPower,
                       burdenFor(design));
    auto result = tco.evaluate(server.hardwareCost(),
                               server.hardwarePower());

    EfficiencyMetrics m;
    m.perf = measurePerf(design, benchmark);
    m.watts = result.wattsWithSwitch;
    m.infDollars = result.infrastructure();
    m.pcDollars = result.powerCooling();
    m.tcoDollars = result.tco();
    return m;
}

RelativeMetrics
DesignEvaluator::evaluateRelative(const DesignConfig &design,
                                  const DesignConfig &baseline,
                                  workloads::Benchmark benchmark)
{
    return relativeTo(evaluate(design, benchmark),
                      evaluate(baseline, benchmark));
}

RelativeMetrics
DesignEvaluator::aggregateRelative(const DesignConfig &design,
                                   const DesignConfig &baseline)
{
    std::vector<RelativeMetrics> per_workload;
    for (auto b : workloads::allBenchmarks)
        per_workload.push_back(
            evaluateRelative(design, baseline, b));
    return harmonicAggregate(per_workload);
}

} // namespace core
} // namespace wsc
