#include "core/evaluator.hh"

#include <chrono>

#include "util/hash.hh"
#include "util/logging.hh"

namespace wsc {
namespace core {

DesignEvaluator::DesignEvaluator(EvaluatorParams params)
    : params_(std::move(params))
{
}

platform::ServerConfig
DesignEvaluator::adjustedServer(const DesignConfig &design) const
{
    platform::ServerConfig server = design.server;
    if (design.memorySharing) {
        server = memblade::withMemorySharing(server, design.bladeParams,
                                             *design.memorySharing);
    }
    if (design.storage)
        server = flashcache::withStorage(server, *design.storage);
    auto hw = thermal::packagingHardware(design.packaging);
    server.powerFansDollars *= hw.fanCostFactor;
    server.powerFansWatts *= hw.fanPowerFactor;
    return server;
}

cost::BurdenedPowerParams
DesignEvaluator::burdenFor(const DesignConfig &design) const
{
    return thermal::applyCooling(params_.burden, design.packaging);
}

CellObservation
DesignEvaluator::computeCell(const DesignConfig &design,
                             workloads::Benchmark benchmark) const
{
    perfsim::PerfOptions opts;
    // The seed hangs off the cell's identity, not the evaluation
    // order, so parallel and serial sweeps agree bit-for-bit.
    opts.seed = seedFor(params_.seed, design.name,
                        std::uint64_t(benchmark));
    opts.search = params_.search;
    if (design.storage) {
        auto storage_opts =
            flashcache::perfOptionsFor(*design.storage, benchmark);
        opts.diskOverride = storage_opts.diskOverride;
        opts.extraDiskAccessMs = storage_opts.extraDiskAccessMs;
        opts.flashCacheHitRate = storage_opts.flashCacheHitRate;
        opts.flashAccessMs = storage_opts.flashAccessMs;
        opts.flashReadMBs = storage_opts.flashReadMBs;
    }
    if (design.memorySharing)
        opts.serviceSlowdown =
            1.0 + design.bladeParams.assumedSlowdown;

    CellObservation obs;
    auto start = std::chrono::steady_clock::now();
    obs.measurement = perf.measure(design.server, benchmark, opts);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    obs.wallSeconds = dt.count();
    metrics_.counter("eval.cells_simulated").add();
    metrics_.counter("eval.search_probes")
        .add(obs.measurement.searchProbes);
    metrics_.counter("eval.events_dispatched")
        .add(obs.measurement.kernel.dispatched);
    metrics_.timer("eval.simulate").record(obs.wallSeconds);
    return obs;
}

const CellObservation &
DesignEvaluator::observationFor(const DesignConfig &design,
                                workloads::Benchmark benchmark)
{
    auto key = std::make_pair(design.name, benchmark);
    auto it = perfCache.find(key);
    if (it != perfCache.end()) {
        metrics_.counter("eval.cache_hits").add();
        return it->second;
    }
    return perfCache.emplace(key, computeCell(design, benchmark))
        .first->second;
}

double
DesignEvaluator::measurePerf(const DesignConfig &design,
                             workloads::Benchmark benchmark)
{
    return observationFor(design, benchmark).measurement.perf;
}

EfficiencyMetrics
DesignEvaluator::metricsWithPerf(const DesignConfig &design,
                                 double perfValue) const
{
    auto server = adjustedServer(design);
    cost::TcoModel tco(params_.rackCost, params_.rackPower,
                       burdenFor(design));
    auto result = tco.evaluate(server.hardwareCost(),
                               server.hardwarePower());

    EfficiencyMetrics m;
    m.perf = perfValue;
    m.watts = result.wattsWithSwitch;
    m.infDollars = result.infrastructure();
    m.pcDollars = result.powerCooling();
    m.tcoDollars = result.tco();
    return m;
}

EfficiencyMetrics
DesignEvaluator::evaluate(const DesignConfig &design,
                          workloads::Benchmark benchmark)
{
    return metricsWithPerf(design, measurePerf(design, benchmark));
}

std::vector<EfficiencyMetrics>
DesignEvaluator::evaluateBatch(const std::vector<EvalCell> &cells,
                               ThreadPool *pool)
{
    // Resolve cache hits and dedupe repeated cells on the calling
    // thread; only genuinely new simulations fan out.
    std::vector<std::size_t> missCell; //!< cell index per simulation
    std::map<std::pair<std::string, workloads::Benchmark>, std::size_t>
        missFor; //!< cell key -> index into missCell/missPerf
    for (std::size_t i = 0; i < cells.size(); ++i) {
        auto key = std::make_pair(cells[i].design.name,
                                  cells[i].benchmark);
        if (perfCache.count(key) || missFor.count(key))
            continue;
        missFor[key] = missCell.size();
        missCell.push_back(i);
    }

    std::vector<CellObservation> missObs(missCell.size());
    parallelFor(
        missCell.size(),
        [&](std::size_t j) {
            const auto &cell = cells[missCell[j]];
            missObs[j] = computeCell(cell.design, cell.benchmark);
        },
        pool);

    for (std::size_t j = 0; j < missCell.size(); ++j) {
        const auto &cell = cells[missCell[j]];
        perfCache[{cell.design.name, cell.benchmark}] =
            std::move(missObs[j]);
    }

    std::vector<EfficiencyMetrics> out;
    out.reserve(cells.size());
    for (const auto &cell : cells)
        out.push_back(metricsWithPerf(
            cell.design, measurePerf(cell.design, cell.benchmark)));
    return out;
}

RelativeMetrics
DesignEvaluator::evaluateRelative(const DesignConfig &design,
                                  const DesignConfig &baseline,
                                  workloads::Benchmark benchmark)
{
    return relativeTo(evaluate(design, benchmark),
                      evaluate(baseline, benchmark));
}

RelativeMetrics
DesignEvaluator::aggregateRelative(const DesignConfig &design,
                                   const DesignConfig &baseline)
{
    // One batch covering both designs across the suite, so the
    // underlying simulations run in parallel on first touch.
    std::vector<EvalCell> cells;
    for (auto b : workloads::allBenchmarks) {
        cells.push_back({design, b});
        cells.push_back({baseline, b});
    }
    auto metrics = evaluateBatch(cells);

    std::vector<RelativeMetrics> per_workload;
    for (std::size_t i = 0; i < cells.size(); i += 2)
        per_workload.push_back(
            relativeTo(metrics[i], metrics[i + 1]));
    return harmonicAggregate(per_workload);
}

} // namespace core
} // namespace wsc
