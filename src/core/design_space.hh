/**
 * @file
 * Design-space enumeration and Pareto analysis.
 *
 * The paper evaluates six hand-picked platforms and two hand-composed
 * unified designs. The library makes the whole space enumerable:
 * platform x packaging x memory sharing x storage. This module
 * enumerates it, and computes Pareto frontiers (no other design both
 * performs better and costs less), which is how an architect would
 * actually consume the model.
 */

#ifndef WSC_CORE_DESIGN_SPACE_HH
#define WSC_CORE_DESIGN_SPACE_HH

#include <functional>
#include <vector>

#include "core/design.hh"
#include "core/evaluator.hh"

namespace wsc {
namespace core {

/** Axes to include in the enumeration. */
struct DesignSpaceOptions {
    bool allPlatforms = true;      //!< all six Table 2 systems
    bool allPackaging = true;      //!< conventional/dual-entry/aggregated
    bool allMemorySharing = true;  //!< none/static/dynamic
    bool allStorage = true;        //!< platform/laptop/laptop+flash/l2+flash
};

/**
 * Enumerate the cross product of the selected axes. Names are unique
 * and descriptive (e.g. "emb1/dual-entry/mem-dynamic/laptop-flash").
 */
std::vector<DesignConfig> enumerateDesigns(
    const DesignSpaceOptions &options = {});

/** Screening results of a one-benchmark design-space sweep. */
struct SweepResult {
    std::vector<EfficiencyMetrics> metrics; //!< per design, in order
    std::vector<double> perf;               //!< metrics[i].perf
    std::vector<double> tco;                //!< metrics[i].tcoDollars
};

/**
 * Evaluate every design on one benchmark, fanning the independent
 * simulations out over @p pool (nullptr selects the global pool).
 * Results are in design order and bit-identical to evaluating each
 * design serially with the same evaluator seed.
 */
SweepResult evaluateSweep(DesignEvaluator &evaluator,
                          const std::vector<DesignConfig> &designs,
                          workloads::Benchmark benchmark,
                          ThreadPool *pool = nullptr);

/**
 * Indices of the Pareto-optimal points when maximizing @p objective
 * and minimizing @p cost simultaneously: a point survives unless some
 * other point has objective >= and cost <= with at least one strict.
 * Returned in increasing-cost order.
 */
std::vector<std::size_t> paretoFrontier(
    const std::vector<double> &objective,
    const std::vector<double> &cost);

} // namespace core
} // namespace wsc

#endif // WSC_CORE_DESIGN_SPACE_HH
