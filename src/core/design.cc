#include "core/design.hh"

namespace wsc {
namespace core {

DesignConfig
DesignConfig::baseline(platform::SystemClass cls)
{
    DesignConfig d;
    d.server = platform::makeSystem(cls);
    d.name = d.server.name;
    return d;
}

DesignConfig
DesignConfig::n1()
{
    DesignConfig d;
    d.name = "N1";
    d.server = platform::makeSystem(platform::SystemClass::Mobl);
    d.packaging = thermal::PackagingDesign::DualEntry;
    return d;
}

DesignConfig
DesignConfig::n2()
{
    DesignConfig d;
    d.name = "N2";
    d.server = platform::makeSystem(platform::SystemClass::Emb1);
    d.packaging = thermal::PackagingDesign::AggregatedMicroblade;
    d.memorySharing = memblade::Provisioning::Dynamic;
    d.storage = flashcache::StorageOption::remoteLaptopFlash();
    return d;
}

} // namespace core
} // namespace wsc
