/**
 * @file
 * Deployable server-architecture designs.
 *
 * A design composes a platform with the paper's four optimization
 * axes: packaging/cooling, ensemble memory sharing, and the storage
 * configuration. The two unified designs of Section 3.6:
 *
 *  - N1 (near-term): mobile-class blades in dual-entry enclosures with
 *    directed airflow; conventional local disks and per-server memory.
 *  - N2 (longer-term): embedded-class micro-blades with aggregated
 *    cooling, ensemble memory sharing (dynamic provisioning), and
 *    remote low-power laptop disks behind a flash disk cache.
 */

#ifndef WSC_CORE_DESIGN_HH
#define WSC_CORE_DESIGN_HH

#include <optional>
#include <string>

#include "flashcache/storage.hh"
#include "memblade/blade.hh"
#include "platform/catalog.hh"
#include "thermal/enclosure.hh"

namespace wsc {
namespace core {

/** A complete design point. */
struct DesignConfig {
    std::string name;
    platform::ServerConfig server;
    thermal::PackagingDesign packaging =
        thermal::PackagingDesign::Conventional1U;
    /** Ensemble memory sharing (absent = per-server memory). */
    std::optional<memblade::Provisioning> memorySharing;
    memblade::BladeParams bladeParams;
    /** Storage override (absent = the platform's own disk). */
    std::optional<flashcache::StorageOption> storage;

    /** Baseline design around one catalog platform. */
    static DesignConfig baseline(platform::SystemClass cls);

    /** The paper's near-term unified design. */
    static DesignConfig n1();

    /** The paper's longer-term unified design. */
    static DesignConfig n2();
};

} // namespace core
} // namespace wsc

#endif // WSC_CORE_DESIGN_HH
