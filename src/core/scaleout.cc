#include "core/scaleout.hh"

#include "util/logging.hh"

namespace wsc {
namespace core {

double
uslThroughput(double per_node, double nodes, const ScaleOutParams &p)
{
    WSC_ASSERT(per_node > 0.0, "per-node performance must be positive");
    WSC_ASSERT(nodes >= 1.0, "need at least one node");
    WSC_ASSERT(p.sigma >= 0.0 && p.kappa >= 0.0,
               "USL parameters must be non-negative");
    double denom =
        1.0 + p.sigma * (nodes - 1.0) + p.kappa * nodes * (nodes - 1.0);
    return nodes * per_node / denom;
}

double
uslEfficiency(double nodes, const ScaleOutParams &p)
{
    return uslThroughput(1.0, nodes, p) / nodes;
}

double
penalizedPerfRatio(double per_node_ratio, double baseline_nodes,
                   const ScaleOutParams &p)
{
    WSC_ASSERT(per_node_ratio > 0.0, "non-positive perf ratio");
    WSC_ASSERT(baseline_nodes >= 1.0, "empty baseline cluster");
    double design_nodes = baseline_nodes / per_node_ratio;
    double eff_design = uslEfficiency(design_nodes, p);
    double eff_base = uslEfficiency(baseline_nodes, p);
    WSC_ASSERT(eff_base > 0.0, "baseline efficiency degenerate");
    return per_node_ratio * eff_design / eff_base;
}

double
breakEvenSigma(double per_node_ratio, double baseline_nodes,
               double advantage)
{
    WSC_ASSERT(advantage > 1.0, "advantage must exceed 1x");
    // The advantage is erased when the penalized/nominal ratio drops
    // to 1/advantage. Monotone decreasing in sigma: bisect.
    auto surviving = [&](double sigma) {
        ScaleOutParams p{sigma, 0.0};
        return penalizedPerfRatio(per_node_ratio, baseline_nodes, p) /
               per_node_ratio;
    };
    double lo = 0.0, hi = 1.0;
    if (surviving(hi) > 1.0 / advantage)
        return 1.0; // even full serialization does not erase it
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (surviving(mid) > 1.0 / advantage)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace core
} // namespace wsc
