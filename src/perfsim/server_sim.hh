/**
 * @file
 * Request-level discrete-event model of one server.
 *
 * A request visits three stations in series:
 *
 *   CPU (processor sharing over the cores)
 *     -> disk (FIFO; only on page-cache miss for reads)
 *     -> NIC (fair-shared link bandwidth)
 *
 * Station capacities come from the platform description and the
 * per-workload calibration (perfsim/calibration.hh). Latency is
 * arrival-to-response; sustainable throughput is determined by the
 * ThroughputFinder against the workload's QoS constraint.
 */

#ifndef WSC_PERFSIM_SERVER_SIM_HH
#define WSC_PERFSIM_SERVER_SIM_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platform/server_config.hh"
#include "sim/event_queue.hh"
#include "sim/fast_mode.hh"
#include "sim/resources.hh"
#include "stats/percentile.hh"
#include "stats/summary.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace perfsim {

/** Concrete station capacities for one (platform, workload) pair. */
struct StationConfig {
    double cpuCapacityGHz = 1.0; //!< effective aggregate capability
    unsigned cpuSlots = 1;       //!< cores (PS service slots)
    double nicMBs = 125.0;       //!< effective NIC delivery rate
    double diskReadMBs = 70.0;
    double diskWriteMBs = 47.0;
    double diskAccessMs = 4.0;
    double diskCacheHitRate = 0.0;
    /**
     * Uniform service-time stretch applied to CPU occupancy; used to
     * model two-level-memory slowdowns (memblade) without re-running
     * trace simulation inside the request model.
     */
    double serviceSlowdown = 1.0;
};

/**
 * Derive station capacities for a platform/workload pair using the
 * calibration model. @p ref is the reference CPU (srvr1).
 */
StationConfig makeStations(const platform::ServerConfig &server,
                           const platform::CpuModel &ref,
                           const workloads::WorkloadTraits &traits);

/** Result of one fixed-rate simulation run. */
struct SimResult {
    double offeredRps = 0.0;
    std::uint64_t offered = 0;    //!< requests injected in measurement
    std::uint64_t completed = 0;  //!< completions in measurement window
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    double meanLatency = 0.0;
    double qosViolationFraction = 0.0; //!< at or above the QoS limit
    double cpuUtilization = 0.0;
    double diskUtilization = 0.0;
    double nicUtilization = 0.0;
    bool saturated = false; //!< run aborted: unbounded queue growth

    /** Peak requests simultaneously in the system. */
    std::size_t peakInFlight = 0;
    /** Per-station activity snapshots (cpu, disk, nic). */
    std::vector<sim::StationStats> stations;
    /** DES kernel activity for this run. */
    sim::EventQueue::Counters kernel;

    /** Station with the highest utilization; empty if none. */
    std::string bottleneck() const;

    /** QoS pass under @p qos, including stability. */
    bool passes(const workloads::QosSpec &qos) const;
};

/** Measurement window parameters. */
struct SimWindow {
    double warmupSeconds = 10.0;
    double measureSeconds = 40.0;
    /** Abort threshold: in-flight requests signalling saturation. */
    std::size_t maxInFlight = 2000;
    /**
     * Optional kernel trace sink installed on each run's event queue
     * (wsc_eval --trace). Must be thread-safe when simulations fan out
     * over a pool. Null — the default — leaves tracing off and the
     * kernel hot path unaffected.
     */
    sim::EventQueue::Tracer tracer;
    /**
     * Versioned fast mode (sim/fast_mode.hh). Off by default, leaving
     * every run bit-identical to the seed behaviour. When enabled,
     * simulateInteractive and simulateCluster source demands from a
     * dedicated batched stream; results are statistically equivalent
     * (gated by stats/equivalence.hh) but not bit-identical. Rides
     * inside SearchParams, so it reaches the throughput search and
     * the wsc_eval sweeps without further plumbing.
     */
    sim::FastModeConfig fastMode;
};

/**
 * Run one open-loop (Poisson arrivals) simulation of an interactive
 * workload at @p rps on the given stations.
 */
SimResult simulateInteractive(workloads::InteractiveWorkload &workload,
                              const StationConfig &stations,
                              double rps, const SimWindow &window,
                              Rng &rng);

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_SERVER_SIM_HH
