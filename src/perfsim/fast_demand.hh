/**
 * @file
 * Block-refilled service-demand source for fast mode.
 *
 * All three request engines (closed_loop, server_sim, cluster_sim)
 * draw one ServiceDemand per request from the run's Rng. In fast mode
 * demands instead come from this source: a workloads::BatchStream of
 * dedicated child streams (derived via Rng::stream from the run seed,
 * so the seed still fully determines every draw) consumed a block at
 * a time through InteractiveWorkload::nextRequestBatch, which lets
 * the workload generate structure-of-arrays, overlap its guide-table
 * cache misses via sim::SampleBatcher, and source bulk uniforms from
 * the cheap SplitMix64 engine.
 *
 * These are exactly the relaxations the fast-mode contract
 * (sim/fast_mode.hh) declares: the per-request demand law is
 * unchanged, but demands no longer interleave with think-time /
 * arrival / cache-hit draws on one global sequence and the bulk
 * uniforms come from a different (same-law) generator, so results
 * are statistically — not bit- — equivalent to exact mode.
 */

#ifndef WSC_PERFSIM_FAST_DEMAND_HH
#define WSC_PERFSIM_FAST_DEMAND_HH

#include <cstddef>
#include <vector>

#include "sim/fast_mode.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace perfsim {

/** Pre-drawn demand buffer; inert until configured with fast mode on. */
class FastDemandSource
{
  public:
    /** Arm (or leave disabled) from the run's config and parent Rng. */
    void
    configure(const sim::FastModeConfig &cfg, const Rng &parent)
    {
        on = cfg.enabled;
        if (!on)
            return;
        WSC_ASSERT(cfg.demandBlock >= 1,
                   "fast-mode demand block must be at least 1");
        stream = workloads::BatchStream(parent);
        buf.resize(cfg.demandBlock);
        next = buf.size(); // force a refill on the first draw
    }

    bool enabled() const { return on; }

    /** Next pre-drawn demand; refills a whole block when empty. */
    const workloads::ServiceDemand &
    draw(workloads::InteractiveWorkload &workload)
    {
        if (next == buf.size()) {
            workload.nextRequestBatch(stream, buf.data(), buf.size());
            next = 0;
        }
        return buf[next++];
    }

  private:
    bool on = false;
    workloads::BatchStream stream{Rng(0)};
    std::vector<workloads::ServiceDemand> buf;
    std::size_t next = 0;
};

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_FAST_DEMAND_HH
