#include "perfsim/perf_eval.hh"

#include "platform/catalog.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

PerfEvaluator::PerfEvaluator()
    : ref(platform::makeSystem(platform::SystemClass::Srvr1).cpu)
{
}

PerfEvaluator::PerfEvaluator(platform::CpuModel reference)
    : ref(std::move(reference))
{
}

StationConfig
PerfEvaluator::stationsFor(const platform::ServerConfig &server,
                           const workloads::WorkloadTraits &traits,
                           const PerfOptions &options) const
{
    platform::ServerConfig cfg = server;
    if (options.diskOverride)
        cfg.disk = *options.diskOverride;
    StationConfig st = makeStations(cfg, ref, traits);
    st.diskAccessMs += options.extraDiskAccessMs;
    st.serviceSlowdown = options.serviceSlowdown;
    if (options.flashCacheHitRate > 0.0) {
        // Blend the flash tier into the effective disk service: a
        // fraction f of page-cache misses is served by flash instead
        // of the (possibly remote) disk.
        double f = options.flashCacheHitRate;
        WSC_ASSERT(f <= 1.0, "flash hit rate above 1");
        st.diskAccessMs =
            f * options.flashAccessMs + (1.0 - f) * st.diskAccessMs;
        st.diskReadMBs = 1.0 / (f / options.flashReadMBs +
                                (1.0 - f) / st.diskReadMBs);
    }
    return st;
}

PerfMeasurement
PerfEvaluator::measure(const platform::ServerConfig &server,
                       workloads::Benchmark benchmark,
                       const PerfOptions &options) const
{
    auto workload = workloads::makeBenchmark(benchmark);
    StationConfig st = stationsFor(server, workload->traits(), options);
    // Seed depends on platform and benchmark so runs are independent
    // but reproducible.
    std::uint64_t seed = options.seed ^
                         (std::uint64_t(server.cls) << 8) ^
                         (std::uint64_t(benchmark) << 16);
    Rng rng(seed);

    PerfMeasurement m;
    if (workload->kind() == workloads::WorkloadKind::Interactive) {
        auto &iw = dynamic_cast<workloads::InteractiveWorkload &>(
            *workload);
        auto r = findSustainableRps(iw, st, options.search, rng);
        m.interactive = true;
        m.sustainableRps = r.sustainableRps;
        m.perf = r.sustainableRps;
        const SimResult &at = r.atSustainable;
        m.cpuUtilization = at.cpuUtilization;
        m.diskUtilization = at.diskUtilization;
        m.nicUtilization = at.nicUtilization;
        m.meanLatency = at.meanLatency;
        m.p50Latency = at.p50Latency;
        m.p95Latency = at.p95Latency;
        m.p99Latency = at.p99Latency;
        m.qosViolationFraction = at.qosViolationFraction;
        m.qosLatencyLimit = iw.qos().latencyLimit;
        m.bottleneck = at.bottleneck();
        m.stations = at.stations;
        m.kernel = r.kernelTotals;
        m.searchProbes = r.probes;
    } else {
        auto &bw = dynamic_cast<workloads::BatchWorkload &>(*workload);
        auto r = runBatch(bw, st, rng, options.search.window.tracer);
        m.interactive = false;
        m.makespanSeconds = r.makespanSeconds;
        WSC_ASSERT(r.makespanSeconds > 0.0, "zero makespan");
        m.perf = 1.0 / r.makespanSeconds;
        m.cpuUtilization = r.cpuUtilization;
        m.diskUtilization = r.diskUtilization;
        m.stations = r.stations;
        m.bottleneck =
            m.cpuUtilization >= m.diskUtilization ? "cpu" : "disk";
        m.kernel = r.kernel;
        m.searchProbes = 1;
    }
    return m;
}

} // namespace perfsim
} // namespace wsc
