#include "perfsim/calibration.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace perfsim {

double
rawCapability(const platform::CpuModel &cpu,
              const workloads::WorkloadTraits &traits)
{
    WSC_ASSERT(cpu.freqGHz > 0.0, "CPU frequency must be positive");
    WSC_ASSERT(cpu.totalCores() >= 1, "CPU needs at least one core");
    double ipc = cpu.outOfOrder ? 1.0 : traits.inorderIpcFactor;
    double cache = std::pow(double(cpu.l2KB) / referenceL2KB,
                            traits.cacheBeta);
    return double(cpu.totalCores()) * cpu.freqGHz * ipc * cache;
}

double
effectiveCapability(const platform::CpuModel &cpu,
                    const platform::CpuModel &ref,
                    const workloads::WorkloadTraits &traits)
{
    double raw = rawCapability(cpu, traits);
    double raw_ref = rawCapability(ref, traits);
    WSC_ASSERT(raw_ref > 0.0, "reference capability must be positive");
    return raw_ref * std::pow(raw / raw_ref, traits.cpuScalingGamma);
}

} // namespace perfsim
} // namespace wsc
