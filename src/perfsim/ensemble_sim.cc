#include "perfsim/ensemble_sim.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "perfsim/request_arena.hh"
#include "sim/sharded_queue.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace wsc {
namespace perfsim {

std::string
to_string(ServerState s)
{
    switch (s) {
      case ServerState::Active:
        return "active";
      case ServerState::Idle:
        return "idle";
      case ServerState::Sleep:
        return "sleep";
      case ServerState::Waking:
        return "waking";
      case ServerState::Off:
        return "off";
      case ServerState::Booting:
        return "booting";
    }
    panic("unknown server state");
}

std::string
to_string(EnsemblePolicy p)
{
    switch (p) {
      case EnsemblePolicy::AlwaysOn:
        return "always-on";
      case EnsemblePolicy::ConsolidateIdle:
        return "consolidate-idle";
      case EnsemblePolicy::PowerOff:
        return "power-off";
    }
    panic("unknown ensemble policy");
}

namespace {

constexpr unsigned kLatencyBins = 1024;

/**
 * Batched unit-exponential pregeneration. The hot path draws one
 * inter-arrival gap and one service time per job, and every
 * hour-barrier reprogram cancels and redraws each cell's pending
 * arrival; refilling in blocks keeps the SplitMix64 mixing and the
 * log1p calls in a tight loop the compiler can schedule instead of a
 * call per event. Storing UNIT exponentials and scaling at use makes
 * the buffer reprogram-safe — a rate change rescales future draws
 * without discarding anything (exponentials are memoryless) — and
 * exact: exponential(mean) computes -log1p(-u) * mean, and
 * (-log1p(-u) * 1.0) * mean is the same double, so batched results
 * are bit-identical to unbatched ones, draw for draw.
 */
struct ExpBatch {
    std::array<double, 256> buf{};
    std::uint32_t idx = std::uint32_t(buf.size());

    double
    next(SplitMix64 &g)
    {
        if (idx == buf.size()) {
            for (double &v : buf)
                v = g.exponential(1.0);
            idx = 0;
        }
        return buf[idx++];
    }
};

/** Pooled per-job state; queued jobs chain through `next`. */
struct Job {
    double arrival = 0.0;
    double service = 0.0;
    RequestHandle next = 0;
};

/**
 * One dispatch domain: a contiguous block of servers with its own
 * RNG stream, job arena, arrival process, and accumulators. A cell
 * is a lane of the sharded queue; within a window only the thread
 * executing the cell's shard touches it, and every accumulator is
 * merged in cell-index order, which is what makes the run's
 * observables shard-count-invariant.
 */
struct Cell {
    std::uint32_t idx = 0;
    std::uint32_t n = 0;
    /** Dispatch-side draws: p2c picks, wake picks, spill targets.
     * Split from the arrival stream so every policy faces the
     * bit-identical arrival process (policies differ only in how
     * many dispatch draws they burn). SplitMix64 (the sanctioned
     * fast generator, util/random.hh) rather than Rng: these streams
     * draw once or twice per event, and the counter-based generator
     * is several times cheaper than mt19937_64 + std distributions
     * while keeping the identity-seeded determinism contract. */
    SplitMix64 rng{0};
    /** Arrival-side draws: inter-arrival delays, service times, MMPP
     * dwells. All of them are exponential, so they share one batch of
     * pregenerated unit draws scaled at use. */
    SplitMix64 arr{0};
    ExpBatch unitExp;

    // Per-server state, SoA.
    std::vector<ServerState> state;
    std::vector<std::uint8_t> busy;    //!< slots in service
    std::vector<std::uint32_t> queued; //!< jobs waiting
    std::vector<RequestHandle> qHead, qTail;
    std::vector<sim::EventId> timer;   //!< pending idle->sleep timer
    std::vector<double> lastChange;    //!< energy-integration mark

    /** Dense membership lists (swap-remove, O(1) moves): awake =
     * Active/Idle/Waking/Booting, asleep = Sleep, off = Off. pos[s]
     * is s's index within its current list. */
    std::vector<std::uint32_t> awake, asleep, off, pos;

    RequestArena<Job> arena;

    double baseRate = 0.0; //!< this hour's arrival rate, calm
    double rate = 0.0;     //!< with the burst multiplier applied
    double meanGap = 0.0;  //!< 1 / rate, cached off the arrival path
    sim::EventId arrivalEvent = 0;
    bool inBurst = false;

    // Accumulators, merged in cell order.
    std::array<double, kServerStates> stateSeconds{};
    double energyWs = 0.0; //!< watt-seconds since the last sweep
    std::vector<double> hourEnergyWs;
    std::uint64_t offered = 0, completed = 0, violations = 0,
                  spilled = 0, wakes = 0, boots = 0, sleeps = 0,
                  offs = 0;
    std::vector<std::uint64_t> hourCompleted, hourViolations;
    double latencySum = 0.0;
    std::vector<std::uint64_t> latBins;
    std::uint64_t latOverflow = 0;

    /** Equivalence-gate samples (never serialized): per-hour latency
     * mass and active-server-seconds, swept alongside hourEnergyWs. */
    std::vector<double> hourLatencySum;
    std::vector<double> hourActiveSeconds;
    double sweptActiveSeconds = 0.0;
};

struct EnsembleSim {
    const EnsembleConfig &cfg;
    sim::ShardedEventQueue sq;
    std::vector<Cell> cells;
    double hourSeconds;
    double horizon;
    double binWidth;
    /** Reciprocals of hourSeconds/binWidth: hourOf and the latency
     * histogram run once per completion, and the two divides were
     * measurable there. */
    double invHourSeconds;
    double invBinWidth;
    double peakRate;
    /** watts() as a flat table indexed by ServerState. */
    std::array<double, kServerStates> wattsTable{};
    unsigned nextBoundary = 1;
    std::uint64_t capClamps = 0;

    explicit EnsembleSim(const EnsembleConfig &cfg)
        : cfg(cfg), sq(cfg.cells, cfg.shards, cfg.queue),
          hourSeconds(cfg.secondsPerHour),
          horizon(double(cfg.hours) * cfg.secondsPerHour),
          binWidth(4.0 * cfg.qosLatencySeconds / kLatencyBins),
          invHourSeconds(1.0 / hourSeconds),
          invBinWidth(1.0 / binWidth),
          peakRate(cfg.peakUtilization * double(cfg.servers) *
                   double(cfg.serverSlots) / cfg.meanServiceSeconds)
    {
        wattsTable[unsigned(ServerState::Active)] =
            cfg.power.busyWatts;
        wattsTable[unsigned(ServerState::Idle)] = cfg.power.idleWatts;
        wattsTable[unsigned(ServerState::Sleep)] =
            cfg.power.sleepWatts;
        wattsTable[unsigned(ServerState::Off)] = cfg.power.offWatts;
        wattsTable[unsigned(ServerState::Waking)] =
            cfg.power.transitionWatts;
        wattsTable[unsigned(ServerState::Booting)] =
            cfg.power.transitionWatts;
    }

    double
    watts(ServerState s) const
    {
        return wattsTable[unsigned(s)];
    }

    std::vector<std::uint32_t> &
    listFor(Cell &c, ServerState s)
    {
        switch (s) {
          case ServerState::Sleep:
            return c.asleep;
          case ServerState::Off:
            return c.off;
          default:
            return c.awake;
        }
    }

    /** Close the energy/state-time integral for @p s at @p now and
     * transition to @p ns (same-state calls just close the integral). */
    void
    setState(Cell &c, std::uint32_t s, ServerState ns, double now)
    {
        ServerState os = c.state[s];
        double dt = now - c.lastChange[s];
        c.energyWs += dt * watts(os);
        c.stateSeconds[unsigned(os)] += dt;
        c.lastChange[s] = now;
        if (os == ns)
            return;
        auto &from = listFor(c, os);
        auto &to = listFor(c, ns);
        if (&from != &to) {
            std::uint32_t i = c.pos[s];
            from[i] = from.back();
            c.pos[from[i]] = i;
            from.pop_back();
            c.pos[s] = std::uint32_t(to.size());
            to.push_back(s);
        }
        c.state[s] = ns;
    }

    /** Rate changes are control-plane (hour boundaries, MMPP
     * flips); the per-arrival draw uses the cached mean gap. */
    static void
    setRate(Cell &c, double rate)
    {
        c.rate = rate;
        c.meanGap = rate > 0.0 ? 1.0 / rate : 0.0;
    }

    unsigned
    hourOf(double now) const
    {
        auto h = unsigned(now * invHourSeconds);
        return std::min(h, cfg.hours - 1);
    }

    void
    cancelTimer(Cell &c, std::uint32_t s)
    {
        if (c.timer[s]) {
            sq.laneQueue(c.idx).cancel(c.timer[s]);
            c.timer[s] = 0;
        }
    }

    bool
    open(const Cell &c, std::uint32_t s) const
    {
        return c.busy[s] < cfg.serverSlots &&
               (c.state[s] == ServerState::Active ||
                c.state[s] == ServerState::Idle);
    }

    std::uint64_t
    load(const Cell &c, std::uint32_t s) const
    {
        return std::uint64_t(c.busy[s]) + c.queued[s];
    }

    void
    recordLatency(Cell &c, double latency, double now)
    {
        ++c.completed;
        unsigned h = hourOf(now);
        ++c.hourCompleted[h];
        c.latencySum += latency;
        c.hourLatencySum[h] += latency;
        if (latency >= cfg.qosLatencySeconds) {
            ++c.violations;
            ++c.hourViolations[h];
        }
        auto bin = std::size_t(latency * invBinWidth);
        if (bin < kLatencyBins)
            ++c.latBins[bin];
        else
            ++c.latOverflow;
    }

    void
    scheduleCompletion(Cell &c, std::uint32_t s, RequestHandle h,
                       double now)
    {
        EnsembleSim *sim = this;
        std::uint32_t ci = c.idx;
        sq.laneQueue(ci).schedule(
            now + c.arena.get(h).service,
            [sim, ci, s, h] { sim->complete(ci, s, h); });
    }

    void
    beginWake(Cell &c, std::uint32_t s, double now)
    {
        setState(c, s, ServerState::Waking, now);
        ++c.wakes;
        EnsembleSim *sim = this;
        std::uint32_t ci = c.idx;
        sq.laneQueue(ci).schedule(
            now + cfg.power.sleepWakeSeconds,
            [sim, ci, s] { sim->transitionDone(ci, s); });
    }

    void
    beginBoot(Cell &c, std::uint32_t s, double now)
    {
        setState(c, s, ServerState::Booting, now);
        ++c.boots;
        EnsembleSim *sim = this;
        std::uint32_t ci = c.idx;
        sq.laneQueue(ci).schedule(
            now + cfg.power.bootSeconds,
            [sim, ci, s] { sim->transitionDone(ci, s); });
    }

    /** Wake capacity on demand: suspend resume if possible, else a
     * full boot. Only called when the awake list is empty, so one of
     * the other lists is not. */
    std::uint32_t
    wakeOne(Cell &c, double now)
    {
        if (!c.asleep.empty()) {
            std::uint32_t s =
                c.asleep.size() == 1
                    ? c.asleep[0]
                    : c.asleep[c.rng.pick(c.asleep.size())];
            beginWake(c, s, now);
            return s;
        }
        WSC_ASSERT(!c.off.empty(), "cell lost all its servers");
        std::uint32_t s =
            c.off.size() == 1
                ? c.off[0]
                : c.off[c.rng.pick(c.off.size())];
        beginBoot(c, s, now);
        return s;
    }

    /** Power-of-two-choices pick over the awake list. AlwaysOn
     * spreads (less loaded wins); the consolidating policies pack
     * (fuller-but-open wins), so idle servers drain and sleep. */
    std::uint32_t
    pickServer(Cell &c, double now)
    {
        if (c.awake.empty())
            return wakeOne(c, now);
        std::uint32_t a, b;
        if (c.awake.size() == 1) {
            return c.awake[0];
        }
        a = c.awake[c.rng.pick(c.awake.size())];
        b = c.awake[c.rng.pick(c.awake.size())];
        if (a == b)
            return a;
        if (cfg.policy == EnsemblePolicy::AlwaysOn) {
            std::uint64_t la = load(c, a), lb = load(c, b);
            if (lb < la || (lb == la && b < a))
                return b;
            return a;
        }
        bool oa = open(c, a), ob = open(c, b);
        if (oa != ob)
            return oa ? a : b;
        if (oa) {
            std::uint64_t la = load(c, a), lb = load(c, b);
            if (lb > la || (lb == la && b < a))
                return b;
            return a;
        }
        if (c.queued[b] < c.queued[a] ||
            (c.queued[b] == c.queued[a] && b < a))
            return b;
        return a;
    }

    void
    assign(Cell &c, std::uint32_t s, double arrival, double service,
           double now)
    {
        RequestHandle h = c.arena.acquire();
        Job &j = c.arena.get(h);
        j.arrival = arrival;
        j.service = service;
        if (open(c, s)) {
            if (c.state[s] == ServerState::Idle) {
                cancelTimer(c, s);
                setState(c, s, ServerState::Active, now);
            }
            ++c.busy[s];
            scheduleCompletion(c, s, h, now);
        } else {
            if (c.qTail[s])
                c.arena.get(c.qTail[s]).next = h;
            else
                c.qHead[s] = h;
            c.qTail[s] = h;
            ++c.queued[s];
        }
    }

    void
    dispatch(std::uint32_t ci, double arrival, double service,
             bool forwarded)
    {
        Cell &c = cells[ci];
        double now = sq.laneQueue(ci).now();
        std::uint32_t s = pickServer(c, now);
        if (!open(c, s)) {
            // Demand signal: the picked server has no free slot.
            if (cfg.policy != EnsemblePolicy::AlwaysOn &&
                !c.asleep.empty()) {
                // Wake a sleeper and hand it the job; the job eats
                // the wake latency, which is exactly the QoS cost of
                // consolidation the analytical model cannot see.
                s = c.asleep.size() == 1
                        ? c.asleep[0]
                        : c.asleep[c.rng.pick(c.asleep.size())];
                beginWake(c, s, now);
            } else if (!forwarded && cfg.cells > 1 &&
                       c.queued[s] >= cfg.spillDepth) {
                // No local capacity left: pay the network latency
                // and hand the job to a random remote cell.
                // Forwarded jobs never re-spill, so no ping-pong.
                auto t = std::uint32_t(
                    c.rng.pick(cfg.cells - 1));
                if (t >= ci)
                    ++t;
                ++c.spilled;
                EnsembleSim *sim = this;
                sq.post(ci, t, now + cfg.networkLatencySeconds,
                        [sim, t, arrival, service] {
                            sim->dispatch(t, arrival, service, true);
                        });
                return;
            }
        }
        assign(c, s, arrival, service, now);
    }

    void
    enterIdle(Cell &c, std::uint32_t s, double now)
    {
        setState(c, s, ServerState::Idle, now);
        if (cfg.policy != EnsemblePolicy::AlwaysOn) {
            cancelTimer(c, s);
            EnsembleSim *sim = this;
            std::uint32_t ci = c.idx;
            c.timer[s] = sq.laneQueue(ci).schedule(
                now + cfg.power.idleToSleepSeconds,
                [sim, ci, s] { sim->sleepTimer(ci, s); });
        }
    }

    /** Start queued jobs into free slots, then settle the server's
     * state (Active if serving, Idle + governor timer otherwise). */
    void
    pump(Cell &c, std::uint32_t s, double now)
    {
        while (c.busy[s] < cfg.serverSlots && c.qHead[s]) {
            RequestHandle h = c.qHead[s];
            Job &j = c.arena.get(h);
            c.qHead[s] = j.next;
            if (!c.qHead[s])
                c.qTail[s] = 0;
            j.next = 0;
            --c.queued[s];
            ++c.busy[s];
            scheduleCompletion(c, s, h, now);
        }
        if (c.busy[s] > 0) {
            if (c.state[s] != ServerState::Active)
                setState(c, s, ServerState::Active, now);
        } else {
            enterIdle(c, s, now);
        }
    }

    void
    complete(std::uint32_t ci, std::uint32_t s, RequestHandle h)
    {
        Cell &c = cells[ci];
        double now = sq.laneQueue(ci).now();
        double latency = now - c.arena.get(h).arrival;
        recordLatency(c, latency, now);
        c.arena.release(h);
        --c.busy[s];
        pump(c, s, now);
    }

    void
    transitionDone(std::uint32_t ci, std::uint32_t s)
    {
        Cell &c = cells[ci];
        pump(c, s, sq.laneQueue(ci).now());
    }

    void
    sleepTimer(std::uint32_t ci, std::uint32_t s)
    {
        Cell &c = cells[ci];
        c.timer[s] = 0;
        if (c.state[s] == ServerState::Idle) {
            setState(c, s, ServerState::Sleep,
                     sq.laneQueue(ci).now());
            ++c.sleeps;
        }
    }

    void
    rescheduleArrival(Cell &c, double now)
    {
        if (c.arrivalEvent) {
            sq.laneQueue(c.idx).cancel(c.arrivalEvent);
            c.arrivalEvent = 0;
        }
        if (c.rate > 0.0) {
            double delay = c.unitExp.next(c.arr) * c.meanGap;
            EnsembleSim *sim = this;
            std::uint32_t ci = c.idx;
            c.arrivalEvent = sq.laneQueue(ci).schedule(
                now + delay, [sim, ci] { sim->arrive(ci); });
        }
    }

    void
    arrive(std::uint32_t ci)
    {
        Cell &c = cells[ci];
        double now = sq.laneQueue(ci).now();
        c.arrivalEvent = 0;
        ++c.offered;
        double service =
            c.unitExp.next(c.arr) * cfg.meanServiceSeconds;
        dispatch(ci, now, service, false);
        rescheduleArrival(c, now);
    }

    void
    mmppFlip(std::uint32_t ci)
    {
        Cell &c = cells[ci];
        double now = sq.laneQueue(ci).now();
        c.inBurst = !c.inBurst;
        setRate(c, c.baseRate *
                       (c.inBurst ? cfg.mmpp.burstMultiplier : 1.0));
        // Exponential inter-arrivals are memoryless, so cancelling
        // the pending arrival and redrawing at the new rate is an
        // exact rate change, not an approximation.
        rescheduleArrival(c, now);
        double dwell = c.unitExp.next(c.arr) *
                       (c.inBurst ? cfg.mmpp.burstMeanSeconds
                                  : cfg.mmpp.calmMeanSeconds);
        EnsembleSim *sim = this;
        sq.laneQueue(ci).schedule(
            now + dwell, [sim, ci] { sim->mmppFlip(ci); });
    }

    /** Close every server's energy integral at @p now, crediting the
     * watt-seconds since the last sweep to @p hour. */
    void
    sweepCell(Cell &c, double now, unsigned hour)
    {
        for (std::uint32_t s = 0; s < c.n; ++s)
            setState(c, s, c.state[s], now);
        c.hourEnergyWs[hour] += c.energyWs;
        c.energyWs = 0.0;
        double active = c.stateSeconds[unsigned(ServerState::Active)];
        c.hourActiveSeconds[hour] += active - c.sweptActiveSeconds;
        c.sweptActiveSeconds = active;
    }

    std::uint32_t
    autoscaleTarget(const Cell &c)
    {
        // Forecast busy servers for the hour, sized so their slots
        // run at the autoscale utilization, plus the reserve margin.
        double needBusy = c.baseRate * cfg.meanServiceSeconds /
                          (double(cfg.serverSlots) *
                           cfg.autoscaleUtilization);
        auto target = std::uint32_t(
            std::ceil(needBusy * (1.0 + cfg.reserveMargin)));
        auto floor_ = std::uint32_t(std::max(
            1.0, std::ceil(cfg.reserveMargin * double(c.n))));
        target = std::max(target, floor_);
        target = std::min(target, c.n);
        if (cfg.powerCapWatts > 0.0) {
            double maxTotal = std::floor(cfg.powerCapWatts /
                                         cfg.power.busyWatts);
            auto maxCell = std::uint32_t(std::max(
                1.0, std::floor(maxTotal * double(c.n) /
                                double(cfg.servers))));
            if (target > maxCell) {
                target = maxCell;
                ++capClamps;
            }
        }
        return target;
    }

    void
    autoscale(Cell &c, double now)
    {
        std::uint32_t target = autoscaleTarget(c);
        auto cur = std::uint32_t(c.awake.size());
        if (cur < target) {
            std::uint32_t need = target - cur;
            // Suspend resume is seconds, boot is tens of seconds:
            // always drain the asleep pool first.
            while (need > 0 && !c.asleep.empty()) {
                beginWake(c, c.asleep.back(), now);
                --need;
            }
            while (need > 0 && !c.off.empty()) {
                beginBoot(c, c.off.back(), now);
                --need;
            }
        } else if (cur > target) {
            std::uint32_t excess = cur - target;
            while (excess > 0 && !c.asleep.empty()) {
                std::uint32_t s = c.asleep.back();
                setState(c, s, ServerState::Off, now);
                ++c.offs;
                --excess;
            }
            if (excess > 0) {
                // Only idle awake servers may power off; never a
                // serving or transitioning one. Collected in awake-
                // list order (deterministic), applied after.
                std::vector<std::uint32_t> idlers;
                for (std::uint32_t s : c.awake) {
                    if (c.state[s] == ServerState::Idle) {
                        idlers.push_back(s);
                        if (idlers.size() == excess)
                            break;
                    }
                }
                for (std::uint32_t s : idlers) {
                    cancelTimer(c, s);
                    setState(c, s, ServerState::Off, now);
                    ++c.offs;
                }
            }
        }
    }

    void
    programHour(Cell &c, unsigned hour, double now)
    {
        c.baseRate = peakRate * cfg.profile[hour] * double(c.n) /
                     double(cfg.servers);
        setRate(c, c.baseRate *
                       (c.inBurst ? cfg.mmpp.burstMultiplier : 1.0));
        rescheduleArrival(c, now);
        if (cfg.policy == EnsemblePolicy::PowerOff)
            autoscale(c, now);
    }

    /** Hour-boundary control plane, run single-threaded at the first
     * barrier at or past each boundary. */
    void
    onBarrier(double now)
    {
        while (nextBoundary <= cfg.hours &&
               double(nextBoundary) * hourSeconds <= now) {
            unsigned k = nextBoundary++;
            for (Cell &c : cells) {
                sweepCell(c, now, k - 1);
                if (k < cfg.hours)
                    programHour(c, k, now);
            }
        }
    }

    void
    setup()
    {
        cells.resize(cfg.cells);
        for (std::uint32_t ci = 0; ci < cfg.cells; ++ci) {
            Cell &c = cells[ci];
            c.idx = ci;
            std::uint32_t lo =
                std::uint32_t(std::uint64_t(cfg.servers) * ci /
                              cfg.cells);
            std::uint32_t hi =
                std::uint32_t(std::uint64_t(cfg.servers) *
                              (ci + 1) / cfg.cells);
            c.n = hi - lo;
            c.rng = SplitMix64(seedFor(cfg.seed, "ensemble-dispatch",
                                       std::uint64_t(ci)));
            c.arr = SplitMix64(seedFor(cfg.seed, "ensemble-arrivals",
                                       std::uint64_t(ci)));
            c.state.assign(c.n, ServerState::Idle);
            c.busy.assign(c.n, 0);
            c.queued.assign(c.n, 0);
            c.qHead.assign(c.n, 0);
            c.qTail.assign(c.n, 0);
            c.timer.assign(c.n, 0);
            c.lastChange.assign(c.n, 0.0);
            c.pos.resize(c.n);
            c.hourEnergyWs.assign(cfg.hours, 0.0);
            c.hourCompleted.assign(cfg.hours, 0);
            c.hourViolations.assign(cfg.hours, 0);
            c.hourLatencySum.assign(cfg.hours, 0.0);
            c.hourActiveSeconds.assign(cfg.hours, 0.0);
            c.latBins.assign(kLatencyBins, 0);
            // Expected arena occupancy: every slot of every server
            // can hold an in-service job, plus queued headroom.
            c.arena.reserve(std::size_t(c.n) * cfg.serverSlots + 256);

            // Initial condition: everyone awake and idle, except that
            // PowerOff starts with only its hour-0 target on (no boot
            // latency charged for the initial state).
            c.baseRate = peakRate * cfg.profile[0] * double(c.n) /
                         double(cfg.servers);
            setRate(c, c.baseRate);
            std::uint32_t awakeN = c.n;
            if (cfg.policy == EnsemblePolicy::PowerOff)
                awakeN = autoscaleTarget(c);
            for (std::uint32_t s = 0; s < c.n; ++s) {
                if (s < awakeN) {
                    c.pos[s] = std::uint32_t(c.awake.size());
                    c.awake.push_back(s);
                } else {
                    c.state[s] = ServerState::Off;
                    c.pos[s] = std::uint32_t(c.off.size());
                    c.off.push_back(s);
                }
            }
            // Idle governors start armed under the sleeping policies.
            if (cfg.policy != EnsemblePolicy::AlwaysOn) {
                EnsembleSim *sim = this;
                for (std::uint32_t s = 0; s < awakeN; ++s) {
                    c.timer[s] = sq.laneQueue(ci).schedule(
                        cfg.power.idleToSleepSeconds,
                        [sim, ci, s] { sim->sleepTimer(ci, s); });
                }
            }
            rescheduleArrival(c, 0.0);
            if (cfg.mmpp.enabled) {
                double dwell = c.unitExp.next(c.arr) *
                               cfg.mmpp.calmMeanSeconds;
                EnsembleSim *sim = this;
                sq.laneQueue(ci).schedule(
                    dwell, [sim, ci] { sim->mmppFlip(ci); });
            }
        }
    }
};

} // namespace

void
validateEnsembleConfig(const EnsembleConfig &cfg)
{
    WSC_ASSERT(cfg.servers >= 1, "empty ensemble");
    WSC_ASSERT(cfg.cells >= 1 && cfg.cells <= cfg.servers,
               "cells out of [1, servers]");
    WSC_ASSERT(cfg.hours >= 1 && cfg.hours <= 24,
               "hours out of [1, 24]");
    WSC_ASSERT(cfg.secondsPerHour > 0.0,
               "secondsPerHour must be positive");
    WSC_ASSERT(cfg.peakUtilization > 0.0 && cfg.peakUtilization <= 1.0,
               "peak utilization out of (0, 1]");
    WSC_ASSERT(cfg.serverSlots >= 1 && cfg.serverSlots <= 255,
               "server slots out of [1, 255]");
    WSC_ASSERT(cfg.meanServiceSeconds > 0.0,
               "service mean must be positive");
    WSC_ASSERT(cfg.qosLatencySeconds > 0.0,
               "QoS deadline must be positive");
    WSC_ASSERT(cfg.networkLatencySeconds > 0.0 &&
                   cfg.networkLatencySeconds <= cfg.secondsPerHour,
               "network latency out of (0, secondsPerHour]");
    WSC_ASSERT(cfg.spillDepth >= 1, "spill depth must be positive");
    WSC_ASSERT(cfg.reserveMargin >= 0.0, "negative reserve margin");
    WSC_ASSERT(cfg.autoscaleUtilization > 0.0 &&
                   cfg.autoscaleUtilization <= 1.0,
               "autoscale utilization out of (0, 1]");
    WSC_ASSERT(cfg.powerCapWatts >= 0.0, "negative power cap");
    for (double load : cfg.profile)
        WSC_ASSERT(load >= 0.0 && load <= 1.0,
                   "hourly load out of [0, 1]");
    if (cfg.mmpp.enabled) {
        WSC_ASSERT(cfg.mmpp.burstMultiplier > 0.0,
                   "burst multiplier must be positive");
        WSC_ASSERT(cfg.mmpp.calmMeanSeconds > 0.0 &&
                       cfg.mmpp.burstMeanSeconds > 0.0,
                   "MMPP dwell means must be positive");
    }
}

EnsembleResult
runEnsemble(const EnsembleConfig &cfg)
{
    validateEnsembleConfig(cfg);
    if (cfg.fast.enabled)
        return runEnsembleFast(cfg);

    EnsembleSim sim(cfg);
    // Expected per-shard event occupancy: a completion per busy slot
    // plus a governor timer per awake server, split across shards.
    sim.sq.reserve(std::size_t(cfg.servers) *
                       (std::size_t(cfg.serverSlots) + 1) /
                       std::max(1u, std::min(cfg.shards, cfg.cells)) +
                   1024);
    sim.setup();

    unsigned workers = cfg.workers;
    if (workers == 0)
        workers = std::min(cfg.shards,
                           std::max(1u, ThreadPool::defaultThreads()));

    auto t0 = std::chrono::steady_clock::now();
    auto stats = sim.sq.run(
        sim.horizon, cfg.networkLatencySeconds, workers,
        [&](sim::Time now) { sim.onBarrier(now); });
    double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    EnsembleResult r;
    r.servers = cfg.servers;
    r.cells = cfg.cells;
    r.hours = cfg.hours;
    r.secondsPerHour = cfg.secondsPerHour;
    r.policy = cfg.policy;
    r.capClamps = sim.capClamps;

    std::array<double, kServerStates> stateSeconds{};
    std::vector<std::uint64_t> bins(kLatencyBins, 0);
    std::uint64_t overflow = 0;
    r.hourKWh.assign(cfg.hours, 0.0);
    r.hourViolationFraction.assign(cfg.hours, 0.0);
    std::vector<std::uint64_t> hourCompleted(cfg.hours, 0);
    std::vector<std::uint64_t> hourViolations(cfg.hours, 0);

    for (const Cell &c : sim.cells) {
        r.offered += c.offered;
        r.completed += c.completed;
        r.violations += c.violations;
        r.spilled += c.spilled;
        r.wakes += c.wakes;
        r.boots += c.boots;
        r.sleeps += c.sleeps;
        r.offs += c.offs;
        r.meanLatency += c.latencySum;
        overflow += c.latOverflow;
        for (unsigned k = 0; k < kServerStates; ++k)
            stateSeconds[k] += c.stateSeconds[k];
        for (unsigned i = 0; i < kLatencyBins; ++i)
            bins[i] += c.latBins[i];
        for (unsigned h = 0; h < cfg.hours; ++h) {
            r.hourKWh[h] += c.hourEnergyWs[h];
            hourCompleted[h] += c.hourCompleted[h];
            hourViolations[h] += c.hourViolations[h];
        }
    }

    // Each simulated hour stands for a real 3600-second hour: mean
    // watts over the compressed hour times 3600 s.
    double wsToKWh = 1.0 / (1000.0 * cfg.secondsPerHour);
    for (unsigned h = 0; h < cfg.hours; ++h) {
        r.hourKWh[h] *= wsToKWh;
        r.kWhPerDay += r.hourKWh[h];
        if (hourCompleted[h] > 0)
            r.hourViolationFraction[h] =
                double(hourViolations[h]) /
                double(hourCompleted[h]);
    }

    double daySeconds = sim.horizon;
    r.meanActiveServers =
        stateSeconds[unsigned(ServerState::Active)] / daySeconds;
    r.meanAwakeServers =
        (stateSeconds[unsigned(ServerState::Active)] +
         stateSeconds[unsigned(ServerState::Idle)] +
         stateSeconds[unsigned(ServerState::Waking)] +
         stateSeconds[unsigned(ServerState::Booting)]) /
        daySeconds;
    for (unsigned k = 0; k < kServerStates; ++k)
        r.stateFractions[k] =
            stateSeconds[k] / (daySeconds * double(cfg.servers));

    if (r.completed > 0) {
        r.meanLatency /= double(r.completed);
        auto quantile = [&](double q) {
            double need = q * double(r.completed);
            std::uint64_t cum = 0;
            for (unsigned i = 0; i < kLatencyBins; ++i) {
                cum += bins[i];
                if (double(cum) >= need)
                    return (double(i) + 0.5) * sim.binWidth;
            }
            return double(kLatencyBins) * sim.binWidth;
        };
        r.p50 = quantile(0.50);
        r.p95 = quantile(0.95);
        r.p99 = quantile(0.99);
        r.qosViolationFraction =
            double(r.violations) / double(r.completed);
    } else {
        r.meanLatency = 0.0;
    }
    std::uint64_t onTime = r.completed - r.violations;
    r.qosAttainment =
        r.offered > 0 ? double(onTime) / double(r.offered) : 1.0;
    r.score = r.kWhPerDay / std::max(r.qosAttainment, 0.01);

    auto kernel = sim.sq.counters();
    r.eventsScheduled = kernel.scheduled;
    r.eventsDispatched = kernel.dispatched;
    r.crossCellMessages = stats.messages;
    r.windows = stats.windows;
    r.shardEvents = std::move(stats.shardDispatched);
    r.meanWindowImbalance = stats.meanWindowImbalance;

    r.fastMode = false;
    r.cellHourUtilization.assign(std::size_t(cfg.cells) * cfg.hours,
                                 0.0);
    r.cellHourLatencyMean.assign(std::size_t(cfg.cells) * cfg.hours,
                                 0.0);
    r.cellHourCompleted.assign(std::size_t(cfg.cells) * cfg.hours, 0);
    for (unsigned ci = 0; ci < cfg.cells; ++ci) {
        const Cell &c = sim.cells[ci];
        for (unsigned h = 0; h < cfg.hours; ++h) {
            std::size_t i = std::size_t(ci) * cfg.hours + h;
            r.cellHourUtilization[i] =
                c.hourActiveSeconds[h] /
                (double(c.n) * cfg.secondsPerHour);
            r.cellHourCompleted[i] = c.hourCompleted[h];
            if (c.hourCompleted[h] > 0)
                r.cellHourLatencyMean[i] =
                    c.hourLatencySum[h] /
                    double(c.hourCompleted[h]);
        }
    }

    r.wallSeconds = wall;
    return r;
}

} // namespace perfsim
} // namespace wsc
