#include "perfsim/throughput.hh"

#include <algorithm>

#include "perfsim/calibration.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

double
analyticBound(const workloads::InteractiveWorkload &workload,
              const StationConfig &st)
{
    auto mean = workload.meanDemand();
    double cpu_t = mean.cpuWork * st.serviceSlowdown / st.cpuCapacityGHz;
    double disk_t = 0.0;
    if (mean.diskReadBytes > 0.0) {
        // Mean miss cost; the access charge applies per read operation.
        disk_t += (1.0 - st.diskCacheHitRate) *
                  (st.diskAccessMs * 1e-3 * mean.diskReadOps +
                   mean.diskReadBytes / (st.diskReadMBs * 1e6));
    }
    if (mean.diskWriteBytes > 0.0) {
        disk_t += st.diskAccessMs * 1e-3 * writeAccessFactor *
                      mean.diskWriteOps +
                  mean.diskWriteBytes / (st.diskWriteMBs * 1e6);
    }
    double nic_t = mean.netBytes / (st.nicMBs * 1e6);
    double bottleneck = std::max({cpu_t, disk_t, nic_t});
    WSC_ASSERT(bottleneck > 0.0, "workload demands no resources");
    return 1.0 / bottleneck;
}

ThroughputResult
findSustainableRps(workloads::InteractiveWorkload &workload,
                   const StationConfig &st, const SearchParams &params,
                   Rng &rng)
{
    ThroughputResult out;
    out.analyticBoundRps = analyticBound(workload, st);
    auto qos = workload.qos();

    // Each probe uses an independent substream so probe order does not
    // perturb the workload sample sequence.
    auto probe = [&](double rps) {
        Rng sub = rng.split();
        auto r = simulateInteractive(workload, st, rps, params.window,
                                     sub);
        ++out.probes;
        out.kernelTotals.scheduled += r.kernel.scheduled;
        out.kernelTotals.dispatched += r.kernel.dispatched;
        out.kernelTotals.cancelled += r.kernel.cancelled;
        out.kernelTotals.compactions += r.kernel.compactions;
        out.kernelTotals.peakHeap =
            std::max(out.kernelTotals.peakHeap, r.kernel.peakHeap);
        return r;
    };

    // Bracket: the analytic bound can only overestimate, so it serves
    // as the failing upper end; walk down to find a passing lower end.
    double hi = out.analyticBoundRps * 1.05;
    double lo = 0.0;
    double lo_probe = out.analyticBoundRps;
    SimResult best{};
    bool have_pass = false;
    for (int i = 0; i < 7; ++i) {
        lo_probe *= 0.75;
        if (lo_probe < params.relativeFloor * out.analyticBoundRps)
            break;
        auto r = probe(lo_probe);
        if (r.passes(qos)) {
            lo = lo_probe;
            best = r;
            have_pass = true;
            break;
        }
        hi = lo_probe;
    }
    if (!have_pass) {
        // Nothing sustains QoS even at very low load (pathological
        // configuration); report the floor.
        out.sustainableRps = 0.0;
        return out;
    }

    for (unsigned i = 0; i < params.iterations; ++i) {
        double mid = 0.5 * (lo + hi);
        auto r = probe(mid);
        if (r.passes(qos)) {
            lo = mid;
            best = r;
        } else {
            hi = mid;
        }
    }
    out.sustainableRps = lo;
    out.atSustainable = best;
    return out;
}

} // namespace perfsim
} // namespace wsc
