#include "perfsim/server_sim.hh"

#include <algorithm>

#include "perfsim/calibration.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

StationConfig
makeStations(const platform::ServerConfig &server,
             const platform::CpuModel &ref,
             const workloads::WorkloadTraits &traits)
{
    StationConfig s;
    s.cpuCapacityGHz = effectiveCapability(server.cpu, ref, traits);
    s.cpuSlots = server.cpu.totalCores();
    double link_mbs = server.nic.gbps * 125.0; // 8 bits/byte
    s.nicMBs = (traits.streamPacingCapMBs > 0.0)
                   ? std::min(link_mbs, traits.streamPacingCapMBs)
                   : link_mbs;
    s.diskReadMBs = server.disk.bandwidthMBs;
    s.diskWriteMBs = server.disk.writeBandwidthMBs;
    s.diskAccessMs = server.disk.avgAccessMs;
    s.diskCacheHitRate = traits.diskCacheHitRate;
    return s;
}

std::string
SimResult::bottleneck() const
{
    const sim::StationStats *best = nullptr;
    for (const auto &s : stations)
        if (!best || s.utilization > best->utilization)
            best = &s;
    return best ? best->name : std::string();
}

bool
SimResult::passes(const workloads::QosSpec &qos) const
{
    if (saturated)
        return false;
    // Stability: nearly everything offered must complete in-window.
    if (offered == 0 ||
        double(completed) < 0.97 * double(offered))
        return false;
    return qosViolationFraction <= (1.0 - qos.quantile);
}

SimResult
simulateInteractive(workloads::InteractiveWorkload &workload,
                    const StationConfig &st, double rps,
                    const SimWindow &window, Rng &rng)
{
    WSC_ASSERT(rps > 0.0, "offered load must be positive");

    sim::EventQueue eq;
    if (window.tracer)
        eq.setTracer(window.tracer);
    sim::PsResource cpu(eq, "cpu", st.cpuCapacityGHz, st.cpuSlots);
    sim::FifoResource disk(eq, "disk", 1);
    sim::PsResource nic(eq, "nic", st.nicMBs, 1);

    stats::PercentileTracker latencies;
    stats::Summary latency_summary;
    auto qos = workload.qos();

    SimResult result;
    result.offeredRps = rps;

    double horizon = window.warmupSeconds + window.measureSeconds;
    std::size_t in_flight = 0;
    bool aborted = false;
    std::uint64_t qos_violations = 0;

    // One request's journey through the stations.
    auto launch = [&](double arrival_time, bool measured) {
        ++in_flight;
        if (in_flight > result.peakInFlight)
            result.peakInFlight = in_flight;
        auto demand = workload.nextRequest(rng);
        double cpu_work = demand.cpuWork * st.serviceSlowdown;

        // Disk stage work, resolved now so the closure stays simple.
        double disk_service = 0.0;
        if (demand.diskReadBytes > 0.0 &&
            !rng.bernoulli(st.diskCacheHitRate)) {
            disk_service += st.diskAccessMs * 1e-3 +
                            demand.diskReadBytes / (st.diskReadMBs * 1e6);
        }
        if (demand.diskWriteBytes > 0.0) {
            disk_service +=
                st.diskAccessMs * 1e-3 * writeAccessFactor +
                demand.diskWriteBytes / (st.diskWriteMBs * 1e6);
        }
        double net_mb = demand.netBytes / 1e6;

        auto finish = [&, arrival_time, measured] {
            --in_flight;
            double latency = eq.now() - arrival_time;
            if (measured) {
                latencies.add(latency);
                latency_summary.add(latency);
                ++result.completed;
                // Strict QoS: the paper requires latency < limit, so
                // exactly-at-the-limit responses are violations.
                if (latency >= qos.latencyLimit)
                    ++qos_violations;
            }
        };
        auto net_stage = [&, net_mb, finish] {
            if (net_mb > 0.0)
                nic.submit(net_mb, finish);
            else
                finish();
        };
        auto disk_stage = [&, disk_service, net_stage] {
            if (disk_service > 0.0)
                disk.submit(disk_service, net_stage);
            else
                net_stage();
        };
        cpu.submit(cpu_work, disk_stage);
    };

    // Poisson arrival process.
    std::function<void()> arrive = [&] {
        if (aborted)
            return;
        if (in_flight > window.maxInFlight) {
            aborted = true;
            return;
        }
        double now = eq.now();
        if (now < horizon) {
            bool measured = now >= window.warmupSeconds;
            if (measured)
                ++result.offered;
            launch(now, measured);
            eq.scheduleAfter(rng.exponential(1.0 / rps), arrive);
        }
    };
    eq.scheduleAfter(rng.exponential(1.0 / rps), arrive);

    // Run to the horizon, then drain a grace period so in-flight
    // requests can complete (or reveal saturation).
    eq.run(horizon);
    double grace = horizon + std::max(30.0, 5.0 * qos.latencyLimit);
    while (!eq.empty() && eq.now() < grace && !aborted)
        eq.step();

    result.saturated = aborted || in_flight > 0;
    if (latencies.count() > 0) {
        result.p50Latency = latencies.quantile(0.50);
        result.p95Latency = latencies.quantile(0.95);
        result.p99Latency = latencies.quantile(0.99);
        result.meanLatency = latency_summary.mean();
    }
    result.qosViolationFraction =
        result.offered ? double(qos_violations) / double(result.offered)
                       : 0.0;
    result.cpuUtilization = cpu.utilization();
    result.diskUtilization = disk.utilization();
    result.nicUtilization = nic.utilization();
    result.stations = {cpu.stats(), disk.stats(), nic.stats()};
    result.kernel = eq.counters();
    return result;
}

} // namespace perfsim
} // namespace wsc
