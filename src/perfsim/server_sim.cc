#include "perfsim/server_sim.hh"

#include <algorithm>

#include "perfsim/calibration.hh"
#include "perfsim/fast_demand.hh"
#include "perfsim/request_arena.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

StationConfig
makeStations(const platform::ServerConfig &server,
             const platform::CpuModel &ref,
             const workloads::WorkloadTraits &traits)
{
    StationConfig s;
    s.cpuCapacityGHz = effectiveCapability(server.cpu, ref, traits);
    s.cpuSlots = server.cpu.totalCores();
    double link_mbs = server.nic.gbps * 125.0; // 8 bits/byte
    s.nicMBs = (traits.streamPacingCapMBs > 0.0)
                   ? std::min(link_mbs, traits.streamPacingCapMBs)
                   : link_mbs;
    s.diskReadMBs = server.disk.bandwidthMBs;
    s.diskWriteMBs = server.disk.writeBandwidthMBs;
    s.diskAccessMs = server.disk.avgAccessMs;
    s.diskCacheHitRate = traits.diskCacheHitRate;
    return s;
}

std::string
SimResult::bottleneck() const
{
    const sim::StationStats *best = nullptr;
    for (const auto &s : stations)
        if (!best || s.utilization > best->utilization)
            best = &s;
    return best ? best->name : std::string();
}

bool
SimResult::passes(const workloads::QosSpec &qos) const
{
    if (saturated)
        return false;
    // Stability: nearly everything offered must complete in-window.
    if (offered == 0 ||
        double(completed) < 0.97 * double(offered))
        return false;
    return qosViolationFraction <= (1.0 - qos.quantile);
}

namespace {

/**
 * Pooled per-request state for the open-loop simulator. As in
 * closed_loop.cc, the nested finish/net_stage/disk_stage closure chain
 * (which heap-allocated several frames per request once the copies
 * nested past InlineAction's inline storage) is replaced by one arena
 * slot per in-flight request plus a staged advance() dispatcher whose
 * continuations capture only {simulation pointer, handle}.
 */
struct OpenRequest {
    double arrival = 0.0;
    double diskService = 0.0;
    double netMb = 0.0;
    bool measured = false;
};

enum class Stage : unsigned { Cpu, Disk, Net };

/** All run state the continuations need, gathered behind one pointer. */
struct OpenLoopSim {
    workloads::InteractiveWorkload &workload;
    const StationConfig &st;
    const SimWindow &window;
    Rng &rng;
    double rps;
    double horizon;

    sim::EventQueue eq;
    sim::PsResource cpu;
    sim::FifoResource disk;
    sim::PsResource nic;

    stats::PercentileTracker latencies;
    stats::Summary latencySummary;
    workloads::QosSpec qos;

    RequestArena<OpenRequest> arena;
    SimResult result;
    std::size_t inFlight = 0;
    bool aborted = false;
    std::uint64_t qosViolations = 0;
    FastDemandSource fastDemands;

    OpenLoopSim(workloads::InteractiveWorkload &workload,
                const StationConfig &st, const SimWindow &window,
                Rng &rng, double rps)
        : workload(workload), st(st), window(window), rng(rng),
          rps(rps),
          horizon(window.warmupSeconds + window.measureSeconds),
          cpu(eq, "cpu", st.cpuCapacityGHz, st.cpuSlots),
          disk(eq, "disk", 1), nic(eq, "nic", st.nicMBs, 1),
          qos(workload.qos())
    {
        fastDemands.configure(window.fastMode, rng);
    }
};

void openAdvance(OpenLoopSim &s, RequestHandle h, Stage done);

/** One request's journey through the stations. */
void
openLaunch(OpenLoopSim &s, double arrival, bool measured)
{
    ++s.inFlight;
    if (s.inFlight > s.result.peakInFlight)
        s.result.peakInFlight = s.inFlight;
    auto demand = s.fastDemands.enabled()
                      ? s.fastDemands.draw(s.workload)
                      : s.workload.nextRequest(s.rng);
    double cpu_work = demand.cpuWork * s.st.serviceSlowdown;

    // Disk stage work, resolved now so the continuations stay simple.
    double disk_service = 0.0;
    if (demand.diskReadBytes > 0.0 &&
        !s.rng.bernoulli(s.st.diskCacheHitRate)) {
        disk_service += s.st.diskAccessMs * 1e-3 +
                        demand.diskReadBytes / (s.st.diskReadMBs * 1e6);
    }
    if (demand.diskWriteBytes > 0.0) {
        disk_service +=
            s.st.diskAccessMs * 1e-3 * writeAccessFactor +
            demand.diskWriteBytes / (s.st.diskWriteMBs * 1e6);
    }
    double net_mb = demand.netBytes / 1e6;

    RequestHandle h = s.arena.acquire();
    OpenRequest &r = s.arena.get(h);
    r.arrival = arrival;
    r.diskService = disk_service;
    r.netMb = net_mb;
    r.measured = measured;

    s.cpu.submit(cpu_work,
                 [sp = &s, h] { openAdvance(*sp, h, Stage::Cpu); });
}

/** Staged dispatcher; zero-demand stages fall through synchronously. */
void
openAdvance(OpenLoopSim &s, RequestHandle h, Stage done)
{
    OpenRequest &r = s.arena.get(h);
    switch (done) {
      case Stage::Cpu:
        if (r.diskService > 0.0) {
            s.disk.submit(r.diskService, [sp = &s, h] {
                openAdvance(*sp, h, Stage::Disk);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Disk:
        if (r.netMb > 0.0) {
            s.nic.submit(r.netMb, [sp = &s, h] {
                openAdvance(*sp, h, Stage::Net);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Net: {
        --s.inFlight;
        double latency = s.eq.now() - r.arrival;
        if (r.measured) {
            s.latencies.add(latency);
            s.latencySummary.add(latency);
            ++s.result.completed;
            // Strict QoS: the paper requires latency < limit, so
            // exactly-at-the-limit responses are violations.
            if (latency >= s.qos.latencyLimit)
                ++s.qosViolations;
        }
        s.arena.release(h);
        break;
      }
    }
}

/** Poisson arrival process. */
void
openArrive(OpenLoopSim &s)
{
    if (s.aborted)
        return;
    if (s.inFlight > s.window.maxInFlight) {
        s.aborted = true;
        return;
    }
    double now = s.eq.now();
    if (now < s.horizon) {
        bool measured = now >= s.window.warmupSeconds;
        if (measured)
            ++s.result.offered;
        openLaunch(s, now, measured);
        s.eq.scheduleAfter(s.rng.exponential(1.0 / s.rps),
                           [sp = &s] { openArrive(*sp); });
    }
}

} // namespace

SimResult
simulateInteractive(workloads::InteractiveWorkload &workload,
                    const StationConfig &st, double rps,
                    const SimWindow &window, Rng &rng)
{
    WSC_ASSERT(rps > 0.0, "offered load must be positive");

    OpenLoopSim s(workload, st, window, rng, rps);
    if (window.tracer)
        s.eq.setTracer(window.tracer);
    s.result.offeredRps = rps;

    s.eq.scheduleAfter(rng.exponential(1.0 / rps),
                       [sp = &s] { openArrive(*sp); });

    // Run to the horizon, then drain a grace period so in-flight
    // requests can complete (or reveal saturation).
    s.eq.run(s.horizon);
    double grace = s.horizon + std::max(30.0, 5.0 * s.qos.latencyLimit);
    while (!s.eq.empty() && s.eq.now() < grace && !s.aborted)
        s.eq.step();

    SimResult result = std::move(s.result);
    result.saturated = s.aborted || s.inFlight > 0;
    if (s.latencies.count() > 0) {
        result.p50Latency = s.latencies.quantile(0.50);
        result.p95Latency = s.latencies.quantile(0.95);
        result.p99Latency = s.latencies.quantile(0.99);
        result.meanLatency = s.latencySummary.mean();
    }
    result.qosViolationFraction =
        result.offered ? double(s.qosViolations) / double(result.offered)
                       : 0.0;
    result.cpuUtilization = s.cpu.utilization();
    result.diskUtilization = s.disk.utilization();
    result.nicUtilization = s.nic.utilization();
    result.stations = {s.cpu.stats(), s.disk.stats(), s.nic.stats()};
    result.kernel = s.eq.counters();
    return result;
}

} // namespace perfsim
} // namespace wsc
