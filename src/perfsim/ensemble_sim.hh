/**
 * @file
 * Warehouse-scale ensemble simulation: an open-loop DES over 10k-100k
 * servers driven by a nonstationary (diurnal + flash-crowd) arrival
 * process, with per-server sleep-state machines and ensemble power
 * policies ranked by energy x QoS.
 *
 * This is the measured counterpart to the closed-form diurnal model
 * (core/diurnal.hh): the analytical policies price busy servers by the
 * hour but cannot see queueing, wake-up latency, or flash crowds — the
 * three effects that decide whether PowerOff's energy win survives its
 * QoS exposure. Here every server is a state machine (active / idle /
 * sleep / off, with wake and boot latencies from the sleep-state
 * catalog in power/sleep_states.hh), arrivals modulate hour by hour
 * over a 24-entry profile with an optional MMPP burst mode, and the
 * autoscaling + power-capping control plane runs at hour boundaries.
 *
 * The fleet is partitioned into CELLS — dispatch domains that model
 * row/cluster locality. Within a cell, dispatch is a power-of-two-
 * choices draw (spread for AlwaysOn, pack-onto-fewest for the
 * consolidating policies); congested cells spill to a random remote
 * cell over the network, paying the cross-cell latency. That latency
 * is exactly the conservative lookahead of the sharded event queue
 * (sim/sharded_queue.hh) the ensemble executes on, so the cell grid
 * doubles as the parallel decomposition: results are bit-identical at
 * any shard count because every cell owns its RNG stream (identity-
 * hashed from the config seed), its accumulators merge in cell-index
 * order, and all cross-cell interaction rides the barrier-delivered
 * message path.
 */

#ifndef WSC_PERFSIM_ENSEMBLE_SIM_HH
#define WSC_PERFSIM_ENSEMBLE_SIM_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "power/sleep_states.hh"
#include "sim/event_queue.hh"
#include "sim/fast_mode.hh"

namespace wsc {
namespace perfsim {

/** Per-server power/sleep state. */
enum class ServerState : std::uint8_t {
    Active,  //!< at least one slot serving
    Idle,    //!< awake, nothing to serve
    Sleep,   //!< suspended; must wake before serving
    Waking,  //!< suspend -> serving transition
    Off,     //!< powered off; must boot before serving
    Booting  //!< off -> serving transition
};

constexpr unsigned kServerStates = 6;

std::string to_string(ServerState s);

/** Ensemble power policy (mirrors core::PowerPolicy, which lives
 * above this layer). */
enum class EnsemblePolicy {
    /** Every server stays awake; dispatch spreads load. */
    AlwaysOn,
    /** Dispatch packs load; idle servers suspend after a governor
     * timeout and wake on demand. */
    ConsolidateIdle,
    /** ConsolidateIdle plus an hourly autoscaler that powers servers
     * off down to the forecast demand plus a reserve margin, and an
     * optional ensemble power cap. */
    PowerOff
};

std::string to_string(EnsemblePolicy p);

/** Markov-modulated flash-crowd mode: each cell independently flips
 * between calm and burst, multiplying its arrival rate. */
struct MmppConfig {
    bool enabled = false;
    double burstMultiplier = 3.0;  //!< arrival-rate factor in burst
    double calmMeanSeconds = 60.0; //!< mean dwell in calm
    double burstMeanSeconds = 5.0; //!< mean dwell in burst
};

/** All-ones hourly profile (the sustained-load assumption). */
inline std::array<double, 24>
flatHourlyProfile()
{
    std::array<double, 24> p;
    p.fill(1.0);
    return p;
}

/** Configuration of one ensemble run. */
struct EnsembleConfig {
    unsigned servers = 10000;
    /** Dispatch domains; also the parallel decomposition (lanes of
     * the sharded queue). Part of the model topology: changing it
     * changes results, unlike shards/workers. */
    unsigned cells = 16;
    unsigned shards = 1;  //!< physical event queues (execution knob)
    /** Threads executing shards; 0 = min(shards, hardware). */
    unsigned workers = 1;
    /** Event-ordering backend of every shard queue. An execution
     * knob like shards/workers: both backends dispatch the identical
     * (time, seq) order, so results are byte-identical either way.
     * The heap is the oracle; the calendar is the fast path. */
    sim::QueueKind queue = sim::QueueKind::Heap;

    unsigned hours = 24;  //!< simulated hours (indexes the profile)
    /** Duty-cycle compression: each simulated hour lasts this many
     * seconds of simulated time; energy extrapolates by 3600 / this.
     * Latency dynamics (service, wake, boot) are NOT compressed. */
    double secondsPerHour = 10.0;
    /** Hourly load in [0, 1] relative to peak (0 = dead trough). */
    std::array<double, 24> profile = flatHourlyProfile();

    /** Fleet peak utilization: peak arrival rate is this fraction of
     * the fleet's service capacity servers * slots / meanService. */
    double peakUtilization = 0.6;
    unsigned serverSlots = 2;        //!< concurrent jobs per server
    double meanServiceSeconds = 0.25; //!< exponential service mean
    double qosLatencySeconds = 1.5;  //!< latency deadline
    /** Cross-cell dispatch latency; doubles as the sharded queue's
     * conservative lookahead. */
    double networkLatencySeconds = 0.5;
    /** Queue depth at the picked server that triggers a spill to a
     * remote cell (never re-spilled). */
    unsigned spillDepth = 4;

    power::SleepStateCatalog power;
    EnsemblePolicy policy = EnsemblePolicy::PowerOff;
    double reserveMargin = 0.1;  //!< autoscaler headroom (PowerOff)
    /** Slot utilization the autoscaler sizes the awake pool for: the
     * target is forecastBusy / this, plus the reserve margin. */
    double autoscaleUtilization = 0.7;
    /** Ensemble power cap in watts; 0 disables. The autoscaler clamps
     * the awake-server target so busy power stays under the cap. */
    double powerCapWatts = 0.0;
    MmppConfig mmpp;

    /** fast-mode/2 macro-event arrival coalescing (sim/fast_mode.hh).
     * Off = the exact per-arrival engine, byte-identical to PR-9. */
    sim::EnsembleFastConfig fast;

    std::uint64_t seed = 1;
};

/**
 * Shard-count-invariant observables of one run (plus wallSeconds,
 * which is wall-clock and excluded from identity comparisons).
 */
struct EnsembleResult {
    unsigned servers = 0;
    unsigned cells = 0;
    unsigned hours = 0;
    double secondsPerHour = 0.0;
    EnsemblePolicy policy = EnsemblePolicy::AlwaysOn;

    std::uint64_t offered = 0;    //!< jobs arrived
    std::uint64_t completed = 0;  //!< jobs finished inside the horizon
    std::uint64_t violations = 0; //!< completed past the deadline
    std::uint64_t spilled = 0;    //!< jobs forwarded cross-cell
    std::uint64_t wakes = 0;      //!< sleep -> waking transitions
    std::uint64_t boots = 0;      //!< off -> booting transitions
    std::uint64_t sleeps = 0;     //!< idle -> sleep transitions
    std::uint64_t offs = 0;       //!< autoscaler power-downs
    std::uint64_t capClamps = 0;  //!< hours the power cap bound

    double kWhPerDay = 0.0;          //!< extrapolated to real hours
    double meanActiveServers = 0.0;  //!< time-weighted
    double meanAwakeServers = 0.0;   //!< active+idle+waking+booting
    /** Time-weighted fraction of server-time per ServerState. */
    std::array<double, kServerStates> stateFractions{};

    double meanLatency = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    /** violations / completed. */
    double qosViolationFraction = 0.0;
    /** on-time completions / offered (uncompleted jobs count
     * against). */
    double qosAttainment = 0.0;
    /** kWhPerDay / qosAttainment — the energy x QoS ranking metric
     * (lower is better). */
    double score = 0.0;

    std::vector<double> hourKWh;                //!< size hours
    std::vector<double> hourViolationFraction;  //!< size hours

    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsDispatched = 0;
    std::uint64_t crossCellMessages = 0;
    std::uint64_t windows = 0;

    /** Per-shard dispatch totals and the mean per-window imbalance
     * (busiest shard's share x shards; 1.0 = balanced). Execution
     * observables — they depend on the shard count and lane packing,
     * so they are excluded from identity comparisons, like
     * wallSeconds. */
    std::vector<std::uint64_t> shardEvents;
    double meanWindowImbalance = 1.0;

    /** True when this result came from the fast-mode/2 macro-event
     * engine; reports stamp the contract version only then. */
    bool fastMode = false;

    /** Equivalence-gate sample matrices, indexed [cell * hours + hour].
     * Deliberately NOT serialized into reports (exact-path bytes stay
     * PR-9-identical); bench_ensemble's KS gate consumes them. */
    std::vector<double> cellHourUtilization;  //!< active-server-seconds / (servers/cells * sph)
    std::vector<double> cellHourLatencyMean;  //!< mean completed-job latency, 0 if none
    std::vector<std::uint64_t> cellHourCompleted;

    double wallSeconds = 0.0;  //!< not shard-invariant; not identity
};

/** Panic on a degenerate ensemble configuration. */
void validateEnsembleConfig(const EnsembleConfig &cfg);

/** Run one ensemble simulation (dispatches to the fast-mode/2 engine
 * when cfg.fast.enabled). */
EnsembleResult runEnsemble(const EnsembleConfig &cfg);

/** The fast-mode/2 macro-event engine (perfsim/ensemble_fast.cc). */
EnsembleResult runEnsembleFast(const EnsembleConfig &cfg);

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_ENSEMBLE_SIM_HH
