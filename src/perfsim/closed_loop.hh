/**
 * @file
 * Closed-loop adaptive client driver.
 *
 * The paper's benchmarks are exercised by a client driver that
 * "generates and dispatches requests (with user-defined think time)
 * ... and can adapt the number of simultaneous clients according to
 * recently observed QoS results, to achieve the highest level of
 * throughput without overloading the servers" (Section 2.1).
 *
 * This module reimplements that driver against the station model: a
 * population of clients alternates think time and a request's journey
 * through the server; after each measurement epoch the population
 * grows while QoS holds and shrinks when it breaks. It serves as an
 * independent check on the open-loop bisection in throughput.hh - the
 * two must agree on sustainable throughput.
 */

#ifndef WSC_PERFSIM_CLOSED_LOOP_HH
#define WSC_PERFSIM_CLOSED_LOOP_HH

#include "perfsim/server_sim.hh"
#include "sim/fast_mode.hh"

namespace wsc {
namespace perfsim {

/** Adaptive-driver controls. */
struct ClosedLoopParams {
    unsigned initialClients = 8;
    unsigned maxClients = 100000;
    double thinkTimeMean = 1.0;   //!< seconds between a client's requests
    double epochSeconds = 15.0;   //!< QoS observation window
    unsigned epochs = 14;         //!< total adaptation epochs
    double growFactor = 1.3;      //!< population growth while QoS holds
    double shrinkFactor = 0.75;   //!< contraction on QoS violation

    /**
     * Degraded-mode client protocol. 0 (the default) disables the
     * request timer entirely, leaving the classic driver's event
     * sequence untouched. When positive, a request unanswered for this
     * many seconds is abandoned and retried with exponential backoff;
     * a client out of retries gives up and returns to thinking.
     */
    double requestTimeoutSeconds = 0.0;
    unsigned maxRetries = 2;
    double retryBackoffSeconds = 0.1; //!< first backoff; doubles after

    /**
     * Versioned fast mode (sim/fast_mode.hh). Off by default; when
     * enabled, runClosedLoop sources demands from a dedicated stream
     * in batched blocks, trading the bit-identity oracle for the
     * statistical-equivalence gate. runClosedLoopOracle ignores this
     * (the oracle is exact-mode-only by definition).
     */
    sim::FastModeConfig fastMode;
    /**
     * Retain every completed request's latency in
     * ClosedLoopResult::latencySamples — the raw material for the KS
     * half of the equivalence gate. Off by default (it is the one
     * per-request allocation the hot path otherwise avoids).
     */
    bool collectLatencySamples = false;
};

/** Outcome of an adaptive run. */
struct ClosedLoopResult {
    double sustainedRps = 0.0;   //!< best QoS-passing epoch throughput
    unsigned clientsAtBest = 0;
    unsigned finalClients = 0;   //!< target population after the run
    unsigned finalLiveClients = 0; //!< clients actually alive at the end
    double p95AtBest = 0.0;
    /** Per-epoch traces (for inspection/tests/bit-identity gates). */
    std::vector<double> epochRps;
    std::vector<bool> epochPassed;
    std::vector<std::uint64_t> epochCompleted;
    std::vector<std::uint64_t> epochViolations;
    std::vector<std::uint64_t> epochGiveups;
    /** Per-epoch p95 latency (0 for epochs with no completions). */
    std::vector<double> epochP95;
    // Degraded-mode protocol activity (all zero with the timer off).
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;
    std::uint64_t lateCompletions = 0; //!< answered after abandonment
    /** DES kernel activity for the whole run. */
    sim::EventQueue::Counters kernel;
    /**
     * Every completed request's latency across the whole run, in
     * completion order; populated only when
     * ClosedLoopParams::collectLatencySamples is set.
     */
    std::vector<double> latencySamples;
};

/**
 * Run the adaptive closed-loop driver for @p workload on @p stations.
 *
 * The hot path is allocation-free per request: request state lives in
 * a pooled RequestArena and continuations are InlineActions capturing
 * a context pointer plus a slot+generation handle (see DESIGN.md
 * "Request arena & inline actions").
 */
ClosedLoopResult runClosedLoop(workloads::InteractiveWorkload &workload,
                               const StationConfig &stations,
                               const ClosedLoopParams &params, Rng &rng);

/**
 * The seed lambda-chain driver, kept compiled as the correctness
 * oracle for the pooled driver: per-request nested closures and a
 * shared_ptr'd retry control block, heap-allocating per request. It
 * must produce bit-identical ClosedLoopResults (same RNG draw order,
 * same event order, same kernel counters) as runClosedLoop;
 * bench_closed_loop and the state-machine tests gate on that.
 */
ClosedLoopResult runClosedLoopOracle(
    workloads::InteractiveWorkload &workload,
    const StationConfig &stations, const ClosedLoopParams &params,
    Rng &rng);

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_CLOSED_LOOP_HH
