/**
 * @file
 * Closed-loop adaptive client driver.
 *
 * The paper's benchmarks are exercised by a client driver that
 * "generates and dispatches requests (with user-defined think time)
 * ... and can adapt the number of simultaneous clients according to
 * recently observed QoS results, to achieve the highest level of
 * throughput without overloading the servers" (Section 2.1).
 *
 * This module reimplements that driver against the station model: a
 * population of clients alternates think time and a request's journey
 * through the server; after each measurement epoch the population
 * grows while QoS holds and shrinks when it breaks. It serves as an
 * independent check on the open-loop bisection in throughput.hh - the
 * two must agree on sustainable throughput.
 */

#ifndef WSC_PERFSIM_CLOSED_LOOP_HH
#define WSC_PERFSIM_CLOSED_LOOP_HH

#include "perfsim/server_sim.hh"

namespace wsc {
namespace perfsim {

/** Adaptive-driver controls. */
struct ClosedLoopParams {
    unsigned initialClients = 8;
    unsigned maxClients = 100000;
    double thinkTimeMean = 1.0;   //!< seconds between a client's requests
    double epochSeconds = 15.0;   //!< QoS observation window
    unsigned epochs = 14;         //!< total adaptation epochs
    double growFactor = 1.3;      //!< population growth while QoS holds
    double shrinkFactor = 0.75;   //!< contraction on QoS violation

    /**
     * Degraded-mode client protocol. 0 (the default) disables the
     * request timer entirely, leaving the classic driver's event
     * sequence untouched. When positive, a request unanswered for this
     * many seconds is abandoned and retried with exponential backoff;
     * a client out of retries gives up and returns to thinking.
     */
    double requestTimeoutSeconds = 0.0;
    unsigned maxRetries = 2;
    double retryBackoffSeconds = 0.1; //!< first backoff; doubles after
};

/** Outcome of an adaptive run. */
struct ClosedLoopResult {
    double sustainedRps = 0.0;   //!< best QoS-passing epoch throughput
    unsigned clientsAtBest = 0;
    unsigned finalClients = 0;
    double p95AtBest = 0.0;
    /** Per-epoch throughput trace (for inspection/tests). */
    std::vector<double> epochRps;
    std::vector<bool> epochPassed;
    // Degraded-mode protocol activity (all zero with the timer off).
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;
    std::uint64_t lateCompletions = 0; //!< answered after abandonment
};

/**
 * Run the adaptive closed-loop driver for @p workload on @p stations.
 */
ClosedLoopResult runClosedLoop(workloads::InteractiveWorkload &workload,
                               const StationConfig &stations,
                               const ClosedLoopParams &params, Rng &rng);

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_CLOSED_LOOP_HH
