/**
 * @file
 * Pooled, generation-stamped storage for in-flight request state.
 *
 * The request-level simulators used to thread a request's state
 * through nested heap-allocated closures (and, on the timeout path,
 * a shared_ptr'd control block with a self-referential std::function).
 * RequestArena replaces both: request state lives in a free-listed
 * slot array, continuations capture only a {context pointer, handle}
 * pair — small enough for sim::InlineAction's inline storage — and a
 * handle's generation stamp distinguishes the current tenant from any
 * stale reference to a previous one, exactly like sim::EventQueue's
 * event slots. Late completions of abandoned attempts are detected by
 * a failed generation check instead of a kept-alive control block, so
 * the seed's ctl -> closure -> ctl ownership cycle is gone by
 * construction.
 */

#ifndef WSC_PERFSIM_REQUEST_ARENA_HH
#define WSC_PERFSIM_REQUEST_ARENA_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace wsc {
namespace perfsim {

/** Opaque handle to an arena slot: (slot << 32) | generation.
 * 0 is never valid (generations start at 1). */
using RequestHandle = std::uint64_t;

template <typename T>
class RequestArena
{
  public:
    /**
     * Claim a slot (recycling the most recently released one first)
     * and reset its payload to a default-constructed T.
     * @return handle valid until release().
     */
    RequestHandle
    acquire()
    {
        std::uint32_t slot;
        if (!freeList.empty()) {
            slot = freeList.back();
            freeList.pop_back();
            slots[slot] = T{};
        } else {
            WSC_ASSERT(gens.size() < (std::size_t(1) << 32),
                       "request arena slot space exhausted");
            slot = std::uint32_t(gens.size());
            gens.push_back(1);
            slots.emplace_back();
        }
        ++live_;
        return (RequestHandle(slot) << 32) | gens[slot];
    }

    /** True while @p h refers to its slot's current tenant. */
    bool
    valid(RequestHandle h) const
    {
        std::uint32_t slot = std::uint32_t(h >> 32);
        return slot < gens.size() && gens[slot] == std::uint32_t(h);
    }

    /** Payload for a handle the caller knows is valid. */
    T &
    get(RequestHandle h)
    {
        WSC_ASSERT(valid(h), "stale request handle");
        return slots[std::uint32_t(h >> 32)];
    }

    /** Payload for @p h, or nullptr when the handle is stale. */
    T *
    find(RequestHandle h)
    {
        return valid(h) ? &slots[std::uint32_t(h >> 32)] : nullptr;
    }

    /**
     * Release @p h's slot: the generation bump invalidates every
     * outstanding copy of the handle (in-flight stage completions,
     * pending retry timers), and the slot returns to the free list.
     */
    void
    release(RequestHandle h)
    {
        WSC_ASSERT(valid(h), "releasing stale request handle");
        std::uint32_t slot = std::uint32_t(h >> 32);
        ++gens[slot];
        freeList.push_back(slot);
        --live_;
    }

    /** Pre-size for @p n simultaneous requests. */
    void
    reserve(std::size_t n)
    {
        slots.reserve(n);
        gens.reserve(n);
        freeList.reserve(n);
    }

    /** Requests currently holding slots. */
    std::size_t live() const { return live_; }

  private:
    std::vector<T> slots;
    std::vector<std::uint32_t> gens;
    std::vector<std::uint32_t> freeList;
    std::size_t live_ = 0;
};

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_REQUEST_ARENA_HH
