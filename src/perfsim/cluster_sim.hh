/**
 * @file
 * Multi-server cluster simulation with load dispatch.
 *
 * The paper's performance model "makes the simplifying assumption that
 * cluster-level performance can be approximated by the aggregation of
 * single-machine benchmarks. This needs to be validated" (Section 4).
 * This module performs that validation inside the model world: N
 * server instances behind a dispatcher, driven by a cluster-level
 * Poisson stream, measured against N times the single-server
 * sustainable rate.
 *
 * Dispatch policies:
 *  - RoundRobin: perfect rotation (what DNS RR approximates),
 *  - Random: uniform random pick (what stateless hashing gives),
 *  - LeastOutstanding: fewest in-flight requests (an L7 balancer),
 *  - TwoChoices: least-loaded of two uniform draws (power of two
 *    choices) — O(1) per arrival, within a whisker of the full scan's
 *    balance, and the only affordable variant at ensemble scale.
 */

#ifndef WSC_PERFSIM_CLUSTER_SIM_HH
#define WSC_PERFSIM_CLUSTER_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "perfsim/server_sim.hh"
#include "perfsim/throughput.hh"
#include "util/thread_pool.hh"
#include "workloads/suite.hh"

namespace wsc {
namespace perfsim {

/** Load-dispatch policies. */
enum class DispatchPolicy {
    RoundRobin,
    Random,
    /** Exact full scan for the fewest in-flight requests: O(N) per
     * arrival. Kept as the exact-mode reference the bit-identity
     * tests pin; use TwoChoices when N is large. */
    LeastOutstanding,
    /** Least-loaded of two independent uniform draws: O(1) per
     * arrival with near-optimal imbalance (power of two choices). */
    TwoChoices
};

std::string to_string(DispatchPolicy p);

/** Result of one fixed-rate cluster simulation. */
struct ClusterSimResult {
    double offeredRps = 0.0;
    std::uint64_t completed = 0;
    double p95Latency = 0.0;
    double qosViolationFraction = 0.0;
    bool saturated = false;
    /** Peak imbalance: max over servers of in-flight, at the end. */
    double meanCpuUtilization = 0.0;
    double maxCpuUtilization = 0.0;

    bool passes(const workloads::QosSpec &qos) const;
};

/**
 * Simulate @p servers identical servers under @p policy at cluster
 * arrival rate @p rps.
 */
ClusterSimResult simulateCluster(
    workloads::InteractiveWorkload &workload,
    const StationConfig &stations, unsigned servers,
    DispatchPolicy policy, double rps, const SimWindow &window,
    Rng &rng);

/**
 * Highest QoS-passing cluster rate (bisection, like the single-server
 * search), and its ratio to servers x the single-server rate.
 */
struct ClusterScalingResult {
    double clusterRps = 0.0;
    double singleRps = 0.0;
    /** clusterRps / (servers * singleRps): 1.0 = perfect scaling. */
    double scalingEfficiency = 0.0;
};

ClusterScalingResult measureClusterScaling(
    workloads::InteractiveWorkload &workload,
    const StationConfig &stations, unsigned servers,
    DispatchPolicy policy, const SearchParams &params, Rng &rng);

/** One point of a scale-out sweep. */
struct ClusterSweepPoint {
    unsigned servers = 0;
    DispatchPolicy policy = DispatchPolicy::RoundRobin;
    ClusterScalingResult result;
};

/**
 * Measure cluster scaling over the cross product of @p serverCounts
 * and @p policies for @p benchmark (which must be interactive).
 *
 * Every point is an independent simulation: each gets its own
 * workload instance and an RNG seeded from (baseSeed, benchmark,
 * servers, policy), and the points fan out over @p pool (nullptr
 * selects the global pool). Results are in cross-product order
 * (serverCounts major, policies minor) and bit-identical to running
 * the points serially.
 */
std::vector<ClusterSweepPoint> sweepClusterScaling(
    workloads::Benchmark benchmark, const StationConfig &stations,
    const std::vector<unsigned> &serverCounts,
    const std::vector<DispatchPolicy> &policies,
    const SearchParams &params, std::uint64_t baseSeed,
    ThreadPool *pool = nullptr);

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_CLUSTER_SIM_HH
