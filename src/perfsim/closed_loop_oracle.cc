/**
 * @file
 * Reference (oracle) closed-loop driver.
 *
 * This is the seed implementation of the adaptive client driver kept
 * verbatim: requests are nested heap-allocated lambda chains
 * (respond -> net_stage -> disk_stage), and the timeout path tracks
 * each request through a shared_ptr'd ReqCtl whose self-referential
 * std::function keeps it alive. It allocates several times per
 * request, which is exactly why runClosedLoop replaced it with a
 * pooled arena — but it is the simplest possible statement of the
 * driver's semantics, so it stays compiled as the correctness oracle:
 * tests and bench_closed_loop require runClosedLoop to reproduce its
 * ClosedLoopResult bit for bit (same RNG draw order, same event
 * order, same kernel counters).
 *
 * Do not "optimise" this file; its value is being the unoptimised
 * original.
 */

#include "perfsim/closed_loop.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "perfsim/calibration.hh"
#include "stats/percentile.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

namespace {

/** Shared mutable state for the client population and epoch stats. */
struct OracleState {
    sim::EventQueue eq;
    std::unique_ptr<sim::PsResource> cpu;
    std::unique_ptr<sim::FifoResource> disk;
    std::unique_ptr<sim::PsResource> nic;
    workloads::InteractiveWorkload *workload = nullptr;
    const StationConfig *st = nullptr;
    Rng *rng = nullptr;
    unsigned targetClients = 0;
    unsigned liveClients = 0;
    // Epoch accounting.
    std::uint64_t epochCompleted = 0;
    std::uint64_t epochViolations = 0;
    std::uint64_t epochGiveups = 0;
    stats::PercentileTracker epochLatencies;
    double qosLimit = 0.0;
    // Degraded-mode protocol (timer disabled when timeout <= 0).
    double requestTimeout = 0.0;
    unsigned maxRetries = 0;
    double retryBackoff = 0.0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;
    std::uint64_t lateCompletions = 0;
    // Latency retention for the statistical-equivalence gate. The
    // oracle ignores ClosedLoopParams::fastMode entirely: it is the
    // exact-mode reference by definition.
    bool collectSamples = false;
    std::vector<double> latencySamples;
};

/** Per-request retry state (timeout-enabled path only). */
struct ReqCtl {
    bool resolved = false;
    unsigned attempts = 0;
    sim::EventId timeoutEv = 0;
    /** Re-sends the same request; cleared on resolution to break the
     * ctl -> closure -> ctl ownership cycle. */
    std::function<void()> reissue;
};

/** One client's think-request loop; stops when over the target. */
void
clientLoop(OracleState &s, double think_mean)
{
    if (s.liveClients > s.targetClients) {
        // Population shrank: this client retires.
        --s.liveClients;
        return;
    }
    double think = s.rng->exponential(think_mean);
    s.eq.scheduleAfter(think, [&s, think_mean] {
        double issued = s.eq.now();
        auto demand = s.workload->nextRequest(*s.rng);
        double cpu_work = demand.cpuWork * s.st->serviceSlowdown;
        double disk_service = 0.0;
        if (demand.diskReadBytes > 0.0 &&
            !s.rng->bernoulli(s.st->diskCacheHitRate)) {
            disk_service +=
                s.st->diskAccessMs * 1e-3 +
                demand.diskReadBytes / (s.st->diskReadMBs * 1e6);
        }
        if (demand.diskWriteBytes > 0.0) {
            disk_service +=
                s.st->diskAccessMs * 1e-3 * writeAccessFactor +
                demand.diskWriteBytes / (s.st->diskWriteMBs * 1e6);
        }
        double net_mb = demand.netBytes / 1e6;

        if (s.requestTimeout <= 0.0) {
            // Classic driver: no timer, identical event sequence to
            // the pre-fault-subsystem code.
            auto respond = [&s, issued, think_mean] {
                double latency = s.eq.now() - issued;
                ++s.epochCompleted;
                s.epochLatencies.add(latency);
                if (s.collectSamples)
                    s.latencySamples.push_back(latency);
                // Strict QoS boundary: latency == limit violates.
                if (latency >= s.qosLimit)
                    ++s.epochViolations;
                clientLoop(s, think_mean);
            };
            auto net_stage = [&s, net_mb, respond] {
                if (net_mb > 0.0)
                    s.nic->submit(net_mb, respond);
                else
                    respond();
            };
            auto disk_stage = [&s, disk_service, net_stage] {
                if (disk_service > 0.0)
                    s.disk->submit(disk_service, net_stage);
                else
                    net_stage();
            };
            s.cpu->submit(cpu_work, disk_stage);
            return;
        }

        // Degraded-mode protocol: abandon on timeout, resend the same
        // work (no extra RNG draws) with exponential backoff, give up
        // after maxRetries and return to thinking.
        auto ctl = std::make_shared<ReqCtl>();
        ctl->reissue = [&s, issued, think_mean, cpu_work, disk_service,
                        net_mb, ctl] {
            ++ctl->attempts;
            unsigned attempt = ctl->attempts;
            auto respond = [&s, issued, think_mean, ctl, attempt] {
                if (ctl->resolved || attempt != ctl->attempts) {
                    ++s.lateCompletions;
                    return;
                }
                ctl->resolved = true;
                ctl->reissue = nullptr;
                if (ctl->timeoutEv) {
                    s.eq.cancel(ctl->timeoutEv);
                    ctl->timeoutEv = 0;
                }
                double latency = s.eq.now() - issued;
                ++s.epochCompleted;
                s.epochLatencies.add(latency);
                if (s.collectSamples)
                    s.latencySamples.push_back(latency);
                if (latency >= s.qosLimit)
                    ++s.epochViolations;
                clientLoop(s, think_mean);
            };
            auto net_stage = [&s, net_mb, respond] {
                if (net_mb > 0.0)
                    s.nic->submit(net_mb, respond);
                else
                    respond();
            };
            auto disk_stage = [&s, disk_service, net_stage] {
                if (disk_service > 0.0)
                    s.disk->submit(disk_service, net_stage);
                else
                    net_stage();
            };
            s.cpu->submit(cpu_work, disk_stage);

            ctl->timeoutEv = s.eq.scheduleAfter(
                s.requestTimeout, [&s, think_mean, ctl] {
                    ctl->timeoutEv = 0;
                    if (ctl->resolved)
                        return;
                    ++s.timeouts;
                    if (ctl->attempts <= s.maxRetries) {
                        ++s.retries;
                        double backoff =
                            s.retryBackoff *
                            std::pow(2.0, double(ctl->attempts - 1));
                        s.eq.scheduleAfter(backoff, [ctl] {
                            if (ctl->reissue)
                                ctl->reissue();
                        });
                    } else {
                        ++s.giveups;
                        ++s.epochGiveups;
                        ctl->resolved = true;
                        ctl->reissue = nullptr;
                        clientLoop(s, think_mean);
                    }
                });
        };
        ctl->reissue();
    });
}

} // namespace

ClosedLoopResult
runClosedLoopOracle(workloads::InteractiveWorkload &workload,
                    const StationConfig &stations,
                    const ClosedLoopParams &params, Rng &rng)
{
    WSC_ASSERT(params.initialClients >= 1, "need at least one client");
    WSC_ASSERT(params.epochSeconds > 0.0, "epoch must be positive");
    WSC_ASSERT(params.growFactor > 1.0, "grow factor must exceed 1");
    WSC_ASSERT(params.shrinkFactor > 0.0 && params.shrinkFactor < 1.0,
               "shrink factor must be in (0, 1)");

    OracleState s;
    s.cpu = std::make_unique<sim::PsResource>(
        s.eq, "cpu", stations.cpuCapacityGHz, stations.cpuSlots);
    s.disk = std::make_unique<sim::FifoResource>(s.eq, "disk", 1);
    s.nic = std::make_unique<sim::PsResource>(s.eq, "nic",
                                              stations.nicMBs, 1);
    s.workload = &workload;
    s.st = &stations;
    s.rng = &rng;
    auto qos = workload.qos();
    s.qosLimit = qos.latencyLimit;
    s.targetClients = params.initialClients;
    s.requestTimeout = params.requestTimeoutSeconds;
    s.maxRetries = params.maxRetries;
    s.retryBackoff = params.retryBackoffSeconds;
    s.collectSamples = params.collectLatencySamples;

    auto spawn_to_target = [&] {
        while (s.liveClients < s.targetClients) {
            ++s.liveClients;
            clientLoop(s, params.thinkTimeMean);
        }
    };
    spawn_to_target();

    ClosedLoopResult result;
    result.epochRps.reserve(params.epochs);
    result.epochPassed.reserve(params.epochs);
    result.epochCompleted.reserve(params.epochs);
    result.epochViolations.reserve(params.epochs);
    result.epochGiveups.reserve(params.epochs);
    result.epochP95.reserve(params.epochs);
    for (unsigned epoch = 0; epoch < params.epochs; ++epoch) {
        s.epochCompleted = 0;
        s.epochViolations = 0;
        s.epochGiveups = 0;
        s.epochLatencies.clear();
        double end = s.eq.now() + params.epochSeconds;
        s.eq.run(end);

        double rps = double(s.epochCompleted) / params.epochSeconds;
        // Give-ups count as violations among resolved requests; with
        // the timer off both terms are zero and the rule is classic.
        std::uint64_t resolved = s.epochCompleted + s.epochGiveups;
        bool passed =
            s.epochCompleted > 0 &&
            double(s.epochViolations + s.epochGiveups) <=
                (1.0 - qos.quantile) * double(resolved);
        result.epochRps.push_back(rps);
        result.epochPassed.push_back(passed);
        result.epochCompleted.push_back(s.epochCompleted);
        result.epochViolations.push_back(s.epochViolations);
        result.epochGiveups.push_back(s.epochGiveups);
        result.epochP95.push_back(s.epochLatencies.count()
                                      ? s.epochLatencies.quantile(0.95)
                                      : 0.0);

        if (passed) {
            if (rps > result.sustainedRps) {
                result.sustainedRps = rps;
                result.clientsAtBest = s.targetClients;
                result.p95AtBest = result.epochP95.back();
            }
            double grown =
                std::ceil(double(s.targetClients) * params.growFactor);
            s.targetClients = unsigned(
                std::min<double>(grown, params.maxClients));
            spawn_to_target();
        } else {
            s.targetClients = std::max(
                1u, unsigned(std::floor(double(s.targetClients) *
                                        params.shrinkFactor)));
            // Excess clients retire lazily after their next response.
        }
    }
    result.finalClients = s.targetClients;
    result.finalLiveClients = s.liveClients;
    result.timeouts = s.timeouts;
    result.retries = s.retries;
    result.giveups = s.giveups;
    result.lateCompletions = s.lateCompletions;
    result.kernel = s.eq.counters();
    result.latencySamples = std::move(s.latencySamples);
    return result;
}

} // namespace perfsim
} // namespace wsc
