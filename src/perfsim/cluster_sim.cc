#include "perfsim/cluster_sim.hh"

#include <algorithm>

#include "perfsim/calibration.hh"
#include "perfsim/throughput.hh"
#include "stats/percentile.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

std::string
to_string(DispatchPolicy p)
{
    switch (p) {
      case DispatchPolicy::RoundRobin:
        return "round-robin";
      case DispatchPolicy::Random:
        return "random";
      case DispatchPolicy::LeastOutstanding:
        return "least-outstanding";
    }
    panic("unknown dispatch policy");
}

bool
ClusterSimResult::passes(const workloads::QosSpec &qos) const
{
    if (saturated || completed == 0)
        return false;
    return qosViolationFraction <= (1.0 - qos.quantile);
}

namespace {

/** One server's stations plus dispatch bookkeeping. */
struct ServerNode {
    std::unique_ptr<sim::PsResource> cpu;
    std::unique_ptr<sim::FifoResource> disk;
    std::unique_ptr<sim::PsResource> nic;
    std::size_t inFlight = 0;
};

} // namespace

ClusterSimResult
simulateCluster(workloads::InteractiveWorkload &workload,
                const StationConfig &st, unsigned servers,
                DispatchPolicy policy, double rps,
                const SimWindow &window, Rng &rng)
{
    WSC_ASSERT(servers >= 1, "empty cluster");
    WSC_ASSERT(rps > 0.0, "offered load must be positive");

    sim::EventQueue eq;
    std::vector<ServerNode> nodes(servers);
    for (unsigned i = 0; i < servers; ++i) {
        auto tag = std::to_string(i);
        nodes[i].cpu = std::make_unique<sim::PsResource>(
            eq, "cpu" + tag, st.cpuCapacityGHz, st.cpuSlots);
        nodes[i].disk =
            std::make_unique<sim::FifoResource>(eq, "disk" + tag, 1);
        nodes[i].nic = std::make_unique<sim::PsResource>(
            eq, "nic" + tag, st.nicMBs, 1);
    }

    auto qos = workload.qos();
    stats::PercentileTracker latencies;
    ClusterSimResult result;
    result.offeredRps = rps;
    double horizon = window.warmupSeconds + window.measureSeconds;
    std::uint64_t offered = 0, violations = 0;
    std::size_t total_in_flight = 0;
    bool aborted = false;
    unsigned rr_next = 0;

    auto pick = [&]() -> ServerNode & {
        switch (policy) {
          case DispatchPolicy::RoundRobin: {
            auto &n = nodes[rr_next];
            rr_next = (rr_next + 1) % servers;
            return n;
          }
          case DispatchPolicy::Random:
            return nodes[rng.uniformInt(0, servers - 1)];
          case DispatchPolicy::LeastOutstanding: {
            std::size_t best = 0;
            for (std::size_t i = 1; i < nodes.size(); ++i)
                if (nodes[i].inFlight < nodes[best].inFlight)
                    best = i;
            return nodes[best];
          }
        }
        panic("unknown dispatch policy");
    };

    auto launch = [&](double arrival, bool measured) {
        auto &node = pick();
        ++node.inFlight;
        ++total_in_flight;
        auto demand = workload.nextRequest(rng);
        double cpu_work = demand.cpuWork * st.serviceSlowdown;
        double disk_service = 0.0;
        if (demand.diskReadBytes > 0.0 &&
            !rng.bernoulli(st.diskCacheHitRate)) {
            disk_service += st.diskAccessMs * 1e-3 +
                            demand.diskReadBytes /
                                (st.diskReadMBs * 1e6);
        }
        if (demand.diskWriteBytes > 0.0) {
            disk_service +=
                st.diskAccessMs * 1e-3 * writeAccessFactor +
                demand.diskWriteBytes / (st.diskWriteMBs * 1e6);
        }
        double net_mb = demand.netBytes / 1e6;

        auto finish = [&, arrival, measured, node_ptr = &node] {
            --node_ptr->inFlight;
            --total_in_flight;
            double latency = eq.now() - arrival;
            if (measured) {
                latencies.add(latency);
                ++result.completed;
                // Strict QoS boundary: latency == limit violates.
                if (latency >= qos.latencyLimit)
                    ++violations;
            }
        };
        auto net_stage = [&, net_mb, finish, node_ptr = &node] {
            if (net_mb > 0.0)
                node_ptr->nic->submit(net_mb, finish);
            else
                finish();
        };
        auto disk_stage = [&, disk_service, net_stage,
                           node_ptr = &node] {
            if (disk_service > 0.0)
                node_ptr->disk->submit(disk_service, net_stage);
            else
                net_stage();
        };
        node.cpu->submit(cpu_work, disk_stage);
    };

    std::function<void()> arrive = [&] {
        if (aborted)
            return;
        if (total_in_flight > window.maxInFlight * servers) {
            aborted = true;
            return;
        }
        double now = eq.now();
        if (now < horizon) {
            bool measured = now >= window.warmupSeconds;
            if (measured)
                ++offered;
            launch(now, measured);
            eq.scheduleAfter(rng.exponential(1.0 / rps), arrive);
        }
    };
    eq.scheduleAfter(rng.exponential(1.0 / rps), arrive);

    eq.run(horizon);
    double grace = horizon + std::max(30.0, 5.0 * qos.latencyLimit);
    while (!eq.empty() && eq.now() < grace && !aborted)
        eq.step();

    result.saturated =
        aborted || total_in_flight > 0 ||
        (offered > 0 &&
         double(result.completed) < 0.97 * double(offered));
    if (latencies.count() > 0)
        result.p95Latency = latencies.quantile(0.95);
    result.qosViolationFraction =
        offered ? double(violations) / double(offered) : 0.0;

    double util_sum = 0.0, util_max = 0.0;
    for (auto &n : nodes) {
        double u = n.cpu->utilization();
        util_sum += u;
        util_max = std::max(util_max, u);
    }
    result.meanCpuUtilization = util_sum / double(servers);
    result.maxCpuUtilization = util_max;
    return result;
}

ClusterScalingResult
measureClusterScaling(workloads::InteractiveWorkload &workload,
                      const StationConfig &st, unsigned servers,
                      DispatchPolicy policy, const SearchParams &params,
                      Rng &rng)
{
    ClusterScalingResult out;
    {
        Rng sub = rng.split();
        out.singleRps =
            findSustainableRps(workload, st, params, sub)
                .sustainableRps;
    }
    WSC_ASSERT(out.singleRps > 0.0, "single server sustains nothing");

    auto qos = workload.qos();
    auto probe = [&](double rps) {
        Rng sub = rng.split();
        return simulateCluster(workload, st, servers, policy, rps,
                               params.window, sub);
    };
    double hi = out.singleRps * double(servers) * 1.1;
    double lo = 0.0;
    // Bracket downward from the ideal aggregate.
    double cursor = hi;
    for (int i = 0; i < 8 && lo == 0.0; ++i) {
        cursor *= 0.8;
        if (probe(cursor).passes(qos))
            lo = cursor;
    }
    if (lo == 0.0) {
        out.clusterRps = 0.0;
        out.scalingEfficiency = 0.0;
        return out;
    }
    for (unsigned i = 0; i < params.iterations; ++i) {
        double mid = 0.5 * (lo + hi);
        if (probe(mid).passes(qos))
            lo = mid;
        else
            hi = mid;
    }
    out.clusterRps = lo;
    out.scalingEfficiency =
        out.clusterRps / (out.singleRps * double(servers));
    return out;
}

std::vector<ClusterSweepPoint>
sweepClusterScaling(workloads::Benchmark benchmark,
                    const StationConfig &stations,
                    const std::vector<unsigned> &serverCounts,
                    const std::vector<DispatchPolicy> &policies,
                    const SearchParams &params, std::uint64_t baseSeed,
                    ThreadPool *pool)
{
    std::vector<ClusterSweepPoint> out;
    for (unsigned servers : serverCounts)
        for (auto policy : policies)
            out.push_back({servers, policy, {}});

    parallelFor(
        out.size(),
        [&](std::size_t i) {
            auto workload = workloads::makeBenchmark(benchmark);
            auto *iw = dynamic_cast<workloads::InteractiveWorkload *>(
                workload.get());
            WSC_ASSERT(iw, "cluster sweep needs an interactive "
                           "workload: "
                               << workloads::to_string(benchmark));
            // Seed from the point's identity so the sweep decomposes
            // identically for any thread count.
            Rng rng(seedFor(baseSeed, "cluster-scaling",
                            std::uint64_t(benchmark),
                            std::uint64_t(out[i].servers),
                            std::uint64_t(out[i].policy)));
            out[i].result =
                measureClusterScaling(*iw, stations, out[i].servers,
                                      out[i].policy, params, rng);
        },
        pool);
    return out;
}

} // namespace perfsim
} // namespace wsc
