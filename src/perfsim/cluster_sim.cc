#include "perfsim/cluster_sim.hh"

#include <algorithm>

#include "perfsim/calibration.hh"
#include "perfsim/fast_demand.hh"
#include "perfsim/request_arena.hh"
#include "perfsim/throughput.hh"
#include "stats/percentile.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

std::string
to_string(DispatchPolicy p)
{
    switch (p) {
      case DispatchPolicy::RoundRobin:
        return "round-robin";
      case DispatchPolicy::Random:
        return "random";
      case DispatchPolicy::LeastOutstanding:
        return "least-outstanding";
      case DispatchPolicy::TwoChoices:
        return "two-choices";
    }
    panic("unknown dispatch policy");
}

bool
ClusterSimResult::passes(const workloads::QosSpec &qos) const
{
    if (saturated || completed == 0)
        return false;
    return qosViolationFraction <= (1.0 - qos.quantile);
}

namespace {

/** One server's stations plus dispatch bookkeeping. */
struct ServerNode {
    std::unique_ptr<sim::PsResource> cpu;
    std::unique_ptr<sim::FifoResource> disk;
    std::unique_ptr<sim::PsResource> nic;
    std::size_t inFlight = 0;
};

/**
 * Pooled per-request state: as in closed_loop.cc / server_sim.cc, the
 * slot carries the demand and the dispatch target so continuations
 * capture only {simulation pointer, handle}.
 */
struct ClusterRequest {
    double arrival = 0.0;
    double diskService = 0.0;
    double netMb = 0.0;
    std::uint32_t nodeIdx = 0;
    bool measured = false;
};

enum class Stage : unsigned { Cpu, Disk, Net };

/** All run state the continuations need, behind one pointer. */
struct ClusterSim {
    workloads::InteractiveWorkload &workload;
    const StationConfig &st;
    const SimWindow &window;
    Rng &rng;
    unsigned servers;
    DispatchPolicy policy;
    double rps;
    double horizon;

    sim::EventQueue eq;
    std::vector<ServerNode> nodes;
    stats::PercentileTracker latencies;
    workloads::QosSpec qos;
    RequestArena<ClusterRequest> arena;
    ClusterSimResult result;
    std::uint64_t offered = 0;
    std::uint64_t violations = 0;
    std::size_t totalInFlight = 0;
    bool aborted = false;
    unsigned rrNext = 0;
    FastDemandSource fastDemands;

    ClusterSim(workloads::InteractiveWorkload &workload,
               const StationConfig &st, unsigned servers,
               DispatchPolicy policy, double rps,
               const SimWindow &window, Rng &rng)
        : workload(workload), st(st), window(window), rng(rng),
          servers(servers), policy(policy), rps(rps),
          horizon(window.warmupSeconds + window.measureSeconds),
          nodes(servers), qos(workload.qos())
    {
        for (unsigned i = 0; i < servers; ++i) {
            auto tag = std::to_string(i);
            nodes[i].cpu = std::make_unique<sim::PsResource>(
                eq, "cpu" + tag, st.cpuCapacityGHz, st.cpuSlots);
            nodes[i].disk = std::make_unique<sim::FifoResource>(
                eq, "disk" + tag, 1);
            nodes[i].nic = std::make_unique<sim::PsResource>(
                eq, "nic" + tag, st.nicMBs, 1);
        }
        fastDemands.configure(window.fastMode, rng);
    }

    std::uint32_t
    pick()
    {
        switch (policy) {
          case DispatchPolicy::RoundRobin: {
            unsigned n = rrNext;
            rrNext = (rrNext + 1) % servers;
            return n;
          }
          case DispatchPolicy::Random:
            return std::uint32_t(rng.uniformInt(0, servers - 1));
          case DispatchPolicy::LeastOutstanding: {
            std::size_t best = 0;
            for (std::size_t i = 1; i < nodes.size(); ++i)
                if (nodes[i].inFlight < nodes[best].inFlight)
                    best = i;
            return std::uint32_t(best);
          }
          case DispatchPolicy::TwoChoices: {
            auto a = std::uint32_t(rng.uniformInt(0, servers - 1));
            auto b = std::uint32_t(rng.uniformInt(0, servers - 1));
            if (nodes[b].inFlight < nodes[a].inFlight)
                return b;
            // Ties (including a == b) keep the first draw.
            return a;
          }
        }
        panic("unknown dispatch policy");
    }
};

void clusterAdvance(ClusterSim &s, RequestHandle h, Stage done);

void
clusterLaunch(ClusterSim &s, double arrival, bool measured)
{
    std::uint32_t nodeIdx = s.pick();
    ServerNode &node = s.nodes[nodeIdx];
    ++node.inFlight;
    ++s.totalInFlight;
    auto demand = s.fastDemands.enabled()
                      ? s.fastDemands.draw(s.workload)
                      : s.workload.nextRequest(s.rng);
    double cpu_work = demand.cpuWork * s.st.serviceSlowdown;
    double disk_service = 0.0;
    if (demand.diskReadBytes > 0.0 &&
        !s.rng.bernoulli(s.st.diskCacheHitRate)) {
        disk_service += s.st.diskAccessMs * 1e-3 +
                        demand.diskReadBytes /
                            (s.st.diskReadMBs * 1e6);
    }
    if (demand.diskWriteBytes > 0.0) {
        disk_service +=
            s.st.diskAccessMs * 1e-3 * writeAccessFactor +
            demand.diskWriteBytes / (s.st.diskWriteMBs * 1e6);
    }
    double net_mb = demand.netBytes / 1e6;

    RequestHandle h = s.arena.acquire();
    ClusterRequest &r = s.arena.get(h);
    r.arrival = arrival;
    r.diskService = disk_service;
    r.netMb = net_mb;
    r.nodeIdx = nodeIdx;
    r.measured = measured;

    node.cpu->submit(cpu_work, [sp = &s, h] {
        clusterAdvance(*sp, h, Stage::Cpu);
    });
}

void
clusterAdvance(ClusterSim &s, RequestHandle h, Stage done)
{
    ClusterRequest &r = s.arena.get(h);
    ServerNode &node = s.nodes[r.nodeIdx];
    switch (done) {
      case Stage::Cpu:
        if (r.diskService > 0.0) {
            node.disk->submit(r.diskService, [sp = &s, h] {
                clusterAdvance(*sp, h, Stage::Disk);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Disk:
        if (r.netMb > 0.0) {
            node.nic->submit(r.netMb, [sp = &s, h] {
                clusterAdvance(*sp, h, Stage::Net);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Net: {
        --node.inFlight;
        --s.totalInFlight;
        double latency = s.eq.now() - r.arrival;
        if (r.measured) {
            s.latencies.add(latency);
            ++s.result.completed;
            // Strict QoS boundary: latency == limit violates.
            if (latency >= s.qos.latencyLimit)
                ++s.violations;
        }
        s.arena.release(h);
        break;
      }
    }
}

void
clusterArrive(ClusterSim &s)
{
    if (s.aborted)
        return;
    if (s.totalInFlight > s.window.maxInFlight * s.servers) {
        s.aborted = true;
        return;
    }
    double now = s.eq.now();
    if (now < s.horizon) {
        bool measured = now >= s.window.warmupSeconds;
        if (measured)
            ++s.offered;
        clusterLaunch(s, now, measured);
        s.eq.scheduleAfter(s.rng.exponential(1.0 / s.rps),
                           [sp = &s] { clusterArrive(*sp); });
    }
}

} // namespace

ClusterSimResult
simulateCluster(workloads::InteractiveWorkload &workload,
                const StationConfig &st, unsigned servers,
                DispatchPolicy policy, double rps,
                const SimWindow &window, Rng &rng)
{
    WSC_ASSERT(servers >= 1, "empty cluster");
    WSC_ASSERT(rps > 0.0, "offered load must be positive");

    ClusterSim s(workload, st, servers, policy, rps, window, rng);
    s.result.offeredRps = rps;

    s.eq.scheduleAfter(rng.exponential(1.0 / rps),
                       [sp = &s] { clusterArrive(*sp); });

    s.eq.run(s.horizon);
    double grace = s.horizon + std::max(30.0, 5.0 * s.qos.latencyLimit);
    while (!s.eq.empty() && s.eq.now() < grace && !s.aborted)
        s.eq.step();

    ClusterSimResult result = s.result;
    result.saturated =
        s.aborted || s.totalInFlight > 0 ||
        (s.offered > 0 &&
         double(result.completed) < 0.97 * double(s.offered));
    if (s.latencies.count() > 0)
        result.p95Latency = s.latencies.quantile(0.95);
    result.qosViolationFraction =
        s.offered ? double(s.violations) / double(s.offered) : 0.0;

    double util_sum = 0.0, util_max = 0.0;
    for (auto &n : s.nodes) {
        double u = n.cpu->utilization();
        util_sum += u;
        util_max = std::max(util_max, u);
    }
    result.meanCpuUtilization = util_sum / double(servers);
    result.maxCpuUtilization = util_max;
    return result;
}

ClusterScalingResult
measureClusterScaling(workloads::InteractiveWorkload &workload,
                      const StationConfig &st, unsigned servers,
                      DispatchPolicy policy, const SearchParams &params,
                      Rng &rng)
{
    // Guard before the (expensive) single-server search: with the
    // config default of servers = 0 the first probe would otherwise
    // divide by zero (RoundRobin) or underflow uniformInt's bounds
    // (Random) deep inside the run.
    WSC_ASSERT(servers >= 1, "empty cluster");

    ClusterScalingResult out;
    {
        Rng sub = rng.split();
        out.singleRps =
            findSustainableRps(workload, st, params, sub)
                .sustainableRps;
    }
    WSC_ASSERT(out.singleRps > 0.0, "single server sustains nothing");

    auto qos = workload.qos();
    auto probe = [&](double rps) {
        Rng sub = rng.split();
        return simulateCluster(workload, st, servers, policy, rps,
                               params.window, sub);
    };
    double hi = out.singleRps * double(servers) * 1.1;
    double lo = 0.0;
    // Bracket downward from the ideal aggregate.
    double cursor = hi;
    for (int i = 0; i < 8 && lo == 0.0; ++i) {
        cursor *= 0.8;
        if (probe(cursor).passes(qos))
            lo = cursor;
    }
    if (lo == 0.0) {
        out.clusterRps = 0.0;
        out.scalingEfficiency = 0.0;
        return out;
    }
    for (unsigned i = 0; i < params.iterations; ++i) {
        double mid = 0.5 * (lo + hi);
        if (probe(mid).passes(qos))
            lo = mid;
        else
            hi = mid;
    }
    out.clusterRps = lo;
    out.scalingEfficiency =
        out.clusterRps / (out.singleRps * double(servers));
    return out;
}

std::vector<ClusterSweepPoint>
sweepClusterScaling(workloads::Benchmark benchmark,
                    const StationConfig &stations,
                    const std::vector<unsigned> &serverCounts,
                    const std::vector<DispatchPolicy> &policies,
                    const SearchParams &params, std::uint64_t baseSeed,
                    ThreadPool *pool)
{
    std::vector<ClusterSweepPoint> out;
    for (unsigned servers : serverCounts)
        for (auto policy : policies)
            out.push_back({servers, policy, {}});

    parallelFor(
        out.size(),
        [&](std::size_t i) {
            auto workload = workloads::makeBenchmark(benchmark);
            auto *iw = dynamic_cast<workloads::InteractiveWorkload *>(
                workload.get());
            WSC_ASSERT(iw, "cluster sweep needs an interactive "
                           "workload: "
                               << workloads::to_string(benchmark));
            // Seed from the point's identity so the sweep decomposes
            // identically for any thread count.
            Rng rng(seedFor(baseSeed, "cluster-scaling",
                            std::uint64_t(benchmark),
                            std::uint64_t(out[i].servers),
                            std::uint64_t(out[i].policy)));
            out[i].result =
                measureClusterScaling(*iw, stations, out[i].servers,
                                      out[i].policy, params, rng);
        },
        pool);
    return out;
}

} // namespace perfsim
} // namespace wsc
