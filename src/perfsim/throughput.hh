/**
 * @file
 * Sustainable-throughput search for interactive workloads.
 *
 * Finds the highest request rate that still meets the workload's QoS
 * constraint — the paper's "RPS with QoS" metric — mirroring the
 * adaptive client driver described in Section 2.1 (which grows the
 * number of simultaneous clients until QoS degrades).
 */

#ifndef WSC_PERFSIM_THROUGHPUT_HH
#define WSC_PERFSIM_THROUGHPUT_HH

#include "perfsim/server_sim.hh"

namespace wsc {
namespace perfsim {

/** Search controls. */
struct SearchParams {
    unsigned iterations = 9;      //!< bisection steps after bracketing
    double relativeFloor = 0.02;  //!< lowest probe, fraction of bound
    SimWindow window;
};

/** Outcome of the search. */
struct ThroughputResult {
    double sustainableRps = 0.0;  //!< highest QoS-passing offered load
    double analyticBoundRps = 0.0; //!< bottleneck-capacity upper bound
    SimResult atSustainable;      //!< measurement at the returned rate
    std::uint64_t probes = 0;     //!< fixed-rate simulations run
    /** Kernel activity summed over every probe, not just the best. */
    sim::EventQueue::Counters kernelTotals;
};

/**
 * Analytic bottleneck bound: the service rate of the busiest station
 * under mean demands. The true sustainable rate is below this (QoS
 * shaves headroom); it seeds the bisection bracket.
 */
double analyticBound(const workloads::InteractiveWorkload &workload,
                     const StationConfig &stations);

/**
 * Binary-search the sustainable RPS for @p workload on @p stations.
 * Deterministic given @p rng's seed.
 */
ThroughputResult findSustainableRps(
    workloads::InteractiveWorkload &workload,
    const StationConfig &stations, const SearchParams &params, Rng &rng);

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_THROUGHPUT_HH
