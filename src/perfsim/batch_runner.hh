/**
 * @file
 * Discrete-event execution of MapReduce-style batch jobs.
 *
 * Models the paper's Hadoop deployment on one node: a bounded pool of
 * worker slots (4 threads per CPU) executes map tasks (disk read, then
 * CPU) and, once all maps retire, reduce tasks (CPU, then disk write).
 * The metric is the job makespan (Table 1: execution time).
 */

#ifndef WSC_PERFSIM_BATCH_RUNNER_HH
#define WSC_PERFSIM_BATCH_RUNNER_HH

#include "perfsim/server_sim.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace perfsim {

/**
 * Node-outage schedule applied to a batch run (fault injection).
 *
 * The runner approximates a MapReduce master's failure handling: no
 * task starts while the node is down, and a task whose execution
 * overlaps an outage is killed and re-executed from its last
 * checkpoint (or from scratch without checkpointing). Windows must be
 * sorted and non-overlapping. An empty policy leaves the classic
 * runner's event sequence untouched.
 */
struct BatchFaultPolicy {
    /** Sorted, non-overlapping [start, end) down intervals, seconds. */
    std::vector<std::pair<double, double>> downWindows;
    /**
     * Checkpoint period; work completed in whole periods before the
     * failure is not re-executed. 0 disables checkpointing (full
     * task re-execution on any overlap).
     */
    double checkpointIntervalSeconds = 0.0;

    bool any() const { return !downWindows.empty(); }
};

/** Result of one batch job execution. */
struct BatchResult {
    double makespanSeconds = 0.0;
    double cpuUtilization = 0.0;
    double diskUtilization = 0.0;
    std::uint64_t tasksRun = 0;
    /** Per-station activity snapshots (cpu, disk). */
    std::vector<sim::StationStats> stations;
    /** DES kernel activity for this run. */
    sim::EventQueue::Counters kernel;
    // Fault-policy activity (zero without a policy).
    std::uint64_t tasksReexecuted = 0;
    std::uint64_t checkpointRestores = 0; //!< re-runs shortened by a ckpt
    double lostWorkSeconds = 0.0; //!< task-seconds of discarded progress
};

/**
 * Execute @p workload's task graph on @p stations.
 *
 * @param workload Batch job description.
 * @param stations Station capacities for the platform.
 * @param rng Drives per-task jitter.
 * @param tracer Optional kernel trace sink (see SimWindow::tracer).
 */
BatchResult runBatch(const workloads::BatchWorkload &workload,
                     const StationConfig &stations, Rng &rng,
                     const sim::EventQueue::Tracer &tracer = {});

/**
 * Execute @p workload under a node-outage schedule: deferred starts
 * during outages plus kill-and-re-execute (optionally from
 * checkpoints) for tasks that overlap one.
 */
BatchResult runBatch(const workloads::BatchWorkload &workload,
                     const StationConfig &stations, Rng &rng,
                     const BatchFaultPolicy &policy,
                     const sim::EventQueue::Tracer &tracer = {});

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_BATCH_RUNNER_HH
