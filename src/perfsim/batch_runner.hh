/**
 * @file
 * Discrete-event execution of MapReduce-style batch jobs.
 *
 * Models the paper's Hadoop deployment on one node: a bounded pool of
 * worker slots (4 threads per CPU) executes map tasks (disk read, then
 * CPU) and, once all maps retire, reduce tasks (CPU, then disk write).
 * The metric is the job makespan (Table 1: execution time).
 */

#ifndef WSC_PERFSIM_BATCH_RUNNER_HH
#define WSC_PERFSIM_BATCH_RUNNER_HH

#include "perfsim/server_sim.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace perfsim {

/** Result of one batch job execution. */
struct BatchResult {
    double makespanSeconds = 0.0;
    double cpuUtilization = 0.0;
    double diskUtilization = 0.0;
    std::uint64_t tasksRun = 0;
    /** Per-station activity snapshots (cpu, disk). */
    std::vector<sim::StationStats> stations;
    /** DES kernel activity for this run. */
    sim::EventQueue::Counters kernel;
};

/**
 * Execute @p workload's task graph on @p stations.
 *
 * @param workload Batch job description.
 * @param stations Station capacities for the platform.
 * @param rng Drives per-task jitter.
 * @param tracer Optional kernel trace sink (see SimWindow::tracer).
 */
BatchResult runBatch(const workloads::BatchWorkload &workload,
                     const StationConfig &stations, Rng &rng,
                     const sim::EventQueue::Tracer &tracer = {});

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_BATCH_RUNNER_HH
