/**
 * @file
 * Platform-capability calibration for the performance model.
 *
 * The paper evaluated its benchmarks with full-system simulation
 * (COTSon/SimNow); this library substitutes a request-level model (see
 * DESIGN.md). The substitution needs a mapping from a platform's CPU
 * description (Table 2) to an aggregate service capacity for each
 * workload, and that mapping is calibrated here.
 *
 * Model
 * -----
 * Raw capability of a CPU for workload w:
 *
 *   raw = cores * freqGHz * ipc * (l2KB / 8192)^cacheBeta_w
 *
 * where ipc is 1.0 for out-of-order cores and inorderIpcFactor
 * (default 0.6) for in-order cores, and cacheBeta_w captures the
 * workload's last-level-cache sensitivity.
 *
 * Effective capability folds in software scaling (Amdahl effects, GC
 * and lock behavior, I/O stack overheads) via a per-workload exponent:
 *
 *   effective = raw_ref * (raw / raw_ref)^gamma_w
 *
 * with raw_ref the srvr1 capability for the same workload. gamma < 1
 * flattens hardware differences (throughput stacks do not convert all
 * of a big machine's capability into requests); gamma > 1 punishes
 * weak platforms super-linearly (webmail's PHP stack).
 *
 * Fitted values (against the published Figure 2(c) "Perf" rows):
 *
 *   workload   cacheBeta  gamma   rationale
 *   websearch     0.08    0.55    srvr2/srvr1 = 68% fixes gamma;
 *                                 desk/srvr1 = 36% fixes beta
 *   webmail       0.05    1.06    srvr2/srvr1 = 48%
 *   ytube         0.02    1.00    CPU barely matters until emb2
 *   mapreduce     0.05    0.80    desk 78% / mobl 72% / emb1 51%
 *
 * The residual error per cell is recorded in EXPERIMENTS.md.
 */

#ifndef WSC_PERFSIM_CALIBRATION_HH
#define WSC_PERFSIM_CALIBRATION_HH

#include "platform/components.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace perfsim {

/** Reference last-level cache for the cache-sensitivity term (srvr1). */
constexpr double referenceL2KB = 8192.0;

/**
 * Raw aggregate capability of @p cpu for a workload with the given
 * traits, in GHz-equivalents of a reference out-of-order core.
 */
double rawCapability(const platform::CpuModel &cpu,
                     const workloads::WorkloadTraits &traits);

/**
 * Effective (software-scaled) capability of @p cpu relative to the
 * reference platform @p ref (conventionally srvr1's CPU).
 */
double effectiveCapability(const platform::CpuModel &cpu,
                           const platform::CpuModel &ref,
                           const workloads::WorkloadTraits &traits);

/**
 * Fraction of disk access (seek + rotation) cost charged to writes.
 * Maildir appends and HDFS writes are write-behind and coalesced, so
 * they rarely pay a full random access.
 */
constexpr double writeAccessFactor = 0.25;

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_CALIBRATION_HH
