/**
 * @file
 * Pooled closed-loop driver.
 *
 * The request state machine lives in a RequestArena instead of the
 * oracle's nested heap-allocated lambda chains: each in-flight request
 * owns one free-listed slot, resource completions are InlineActions
 * capturing a {driver pointer, handle} pair (plus, on the timeout
 * path, the attempt number and demand values needed to keep routing a
 * superseded attempt's stages exactly as the oracle does), and every
 * stage completes into one advance() dispatcher. Late completions of
 * abandoned requests are detected by the handle's failed generation
 * check — the pooled equivalent of the oracle's kept-alive ReqCtl.
 *
 * The contract, enforced by tests and bench_closed_loop, is
 * bit-identity with runClosedLoopOracle (closed_loop_oracle.cc): the
 * same RNG draw order, the same schedule/cancel sequence, and
 * therefore byte-identical ClosedLoopResults — while the steady-state
 * hot path performs zero per-request heap allocations (every capture
 * fits InlineAction's inline storage; see test_alloc_free.cc).
 */

#include "perfsim/closed_loop.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "perfsim/calibration.hh"
#include "perfsim/fast_demand.hh"
#include "perfsim/request_arena.hh"
#include "stats/percentile.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

namespace {

/**
 * Pooled per-request state. Demand fields are immutable after issue;
 * attempts/timeoutEv mutate only on the timeout path. 48 bytes, so an
 * epoch's worth of in-flight requests stays cache-resident.
 */
struct Request {
    double issued = 0.0;      //!< first issue time (latency baseline)
    double cpuWork = 0.0;
    double diskService = 0.0;
    double netMb = 0.0;
    unsigned attempts = 0;    //!< current attempt number (timed path)
    sim::EventId timeoutEv = 0;
};

/** Pipeline stage that just completed. */
enum class Stage : unsigned { Cpu, Disk, Net };

/** Shared mutable state for the client population and epoch stats. */
struct DriverState {
    sim::EventQueue eq;
    std::unique_ptr<sim::PsResource> cpu;
    std::unique_ptr<sim::FifoResource> disk;
    std::unique_ptr<sim::PsResource> nic;
    workloads::InteractiveWorkload *workload = nullptr;
    const StationConfig *st = nullptr;
    Rng *rng = nullptr;
    double thinkMean = 1.0;
    unsigned targetClients = 0;
    unsigned liveClients = 0;
    RequestArena<Request> arena;
    // Epoch accounting.
    std::uint64_t epochCompleted = 0;
    std::uint64_t epochViolations = 0;
    std::uint64_t epochGiveups = 0;
    stats::PercentileTracker epochLatencies;
    double qosLimit = 0.0;
    // Degraded-mode protocol (timer disabled when timeout <= 0).
    double requestTimeout = 0.0;
    unsigned maxRetries = 0;
    double retryBackoff = 0.0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;
    std::uint64_t lateCompletions = 0;
    /** Fast mode: batched demands off a dedicated stream (inert when
     * disabled, leaving the exact path's draw sequence untouched). */
    FastDemandSource fastDemands;
    // Latency retention for the statistical-equivalence gate.
    bool collectSamples = false;
    std::vector<double> latencySamples;
};

void clientLoop(DriverState &s);
void beginRequest(DriverState &s);
void advance(DriverState &s, RequestHandle h, Stage done);
void issueAttempt(DriverState &s, RequestHandle h);
void timedAdvance(DriverState &s, RequestHandle h, unsigned attempt,
                  double issued, double diskService, double netMb,
                  Stage done);
void onTimeout(DriverState &s, RequestHandle h);

/**
 * One client's think-request loop; stops when over the target.
 *
 * The retire check re-reads the target after the decrement: if a
 * regrowth raced the retirement (target moved past us between the
 * comparison and the decrement), the client stays alive instead of
 * leaving the population one short until the next spawn pass. Under
 * the current single-threaded epoch loop the re-check never fires —
 * bit-identity with the oracle is preserved — but it makes the loop
 * safe against mid-epoch regrowth paths.
 */
void
clientLoop(DriverState &s)
{
    if (s.liveClients > s.targetClients) {
        // Population shrank: this client retires.
        --s.liveClients;
        if (s.liveClients >= s.targetClients)
            return;
        ++s.liveClients; // target regrew past us: stay in the loop
    }
    double think = s.rng->exponential(s.thinkMean);
    s.eq.scheduleAfter(think, [sp = &s] { beginRequest(*sp); });
}

/** Think time elapsed: draw demand, claim a slot, enter the pipeline. */
void
beginRequest(DriverState &s)
{
    // Exact mode: RNG draw order matches the oracle exactly —
    // nextRequest, then the conditional cache-hit bernoulli. Fast
    // mode swaps only the demand source; think times and the
    // bernoulli still come from the main engine in the same order.
    double issued = s.eq.now();
    auto demand = s.fastDemands.enabled()
                      ? s.fastDemands.draw(*s.workload)
                      : s.workload->nextRequest(*s.rng);
    double cpu_work = demand.cpuWork * s.st->serviceSlowdown;
    double disk_service = 0.0;
    if (demand.diskReadBytes > 0.0 &&
        !s.rng->bernoulli(s.st->diskCacheHitRate)) {
        disk_service +=
            s.st->diskAccessMs * 1e-3 +
            demand.diskReadBytes / (s.st->diskReadMBs * 1e6);
    }
    if (demand.diskWriteBytes > 0.0) {
        disk_service +=
            s.st->diskAccessMs * 1e-3 * writeAccessFactor +
            demand.diskWriteBytes / (s.st->diskWriteMBs * 1e6);
    }
    double net_mb = demand.netBytes / 1e6;

    RequestHandle h = s.arena.acquire();
    Request &r = s.arena.get(h);
    r.issued = issued;
    r.cpuWork = cpu_work;
    r.diskService = disk_service;
    r.netMb = net_mb;

    if (s.requestTimeout <= 0.0) {
        // Classic driver: the handle is always live when a stage
        // completes, so continuations carry only {driver, handle}.
        s.cpu->submit(cpu_work,
                      [sp = &s, h] { advance(*sp, h, Stage::Cpu); });
        return;
    }
    issueAttempt(s, h);
}

/**
 * Classic-path dispatcher: a completed stage either submits the next
 * resource or, with zero demand, falls through to the next stage
 * synchronously — the same chaining the oracle's disk_stage/net_stage
 * closures perform.
 */
void
advance(DriverState &s, RequestHandle h, Stage done)
{
    Request &r = s.arena.get(h);
    switch (done) {
      case Stage::Cpu:
        if (r.diskService > 0.0) {
            s.disk->submit(r.diskService, [sp = &s, h] {
                advance(*sp, h, Stage::Disk);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Disk:
        if (r.netMb > 0.0) {
            s.nic->submit(r.netMb, [sp = &s, h] {
                advance(*sp, h, Stage::Net);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Net: {
        // Respond: account, release the slot, go back to thinking.
        double latency = s.eq.now() - r.issued;
        ++s.epochCompleted;
        s.epochLatencies.add(latency);
        if (s.collectSamples)
            s.latencySamples.push_back(latency);
        // Strict QoS boundary: latency == limit violates.
        if (latency >= s.qosLimit)
            ++s.epochViolations;
        s.arena.release(h);
        clientLoop(s);
        break;
      }
    }
}

/** (Re)issue the request's work and arm the abandonment timer. */
void
issueAttempt(DriverState &s, RequestHandle h)
{
    Request &r = s.arena.get(h);
    ++r.attempts;
    unsigned attempt = r.attempts;
    // Stage continuations carry the demand values: a superseded
    // attempt keeps flowing through disk/nic exactly like the
    // oracle's closures do, even after the slot is released (or
    // re-let to another request).
    double issued = r.issued;
    double diskService = r.diskService;
    double netMb = r.netMb;
    s.cpu->submit(r.cpuWork,
                  [sp = &s, h, attempt, issued, diskService, netMb] {
                      timedAdvance(*sp, h, attempt, issued,
                                   diskService, netMb, Stage::Cpu);
                  });
    r.timeoutEv = s.eq.scheduleAfter(
        s.requestTimeout, [sp = &s, h] { onTimeout(*sp, h); });
}

/**
 * Timed-path dispatcher. Intermediate stages never consult the slot
 * (the oracle routes superseded attempts through disk/nic without
 * checking either); only the final respond checks the handle and the
 * attempt stamp, counting a failed check as a late completion.
 */
void
timedAdvance(DriverState &s, RequestHandle h, unsigned attempt,
             double issued, double diskService, double netMb,
             Stage done)
{
    switch (done) {
      case Stage::Cpu:
        if (diskService > 0.0) {
            s.disk->submit(diskService,
                           [sp = &s, h, attempt, issued, netMb] {
                               timedAdvance(*sp, h, attempt, issued,
                                            0.0, netMb, Stage::Disk);
                           });
            return;
        }
        [[fallthrough]];
      case Stage::Disk:
        if (netMb > 0.0) {
            s.nic->submit(netMb, [sp = &s, h, attempt, issued] {
                timedAdvance(*sp, h, attempt, issued, 0.0, 0.0,
                             Stage::Net);
            });
            return;
        }
        [[fallthrough]];
      case Stage::Net: {
        Request *r = s.arena.find(h);
        if (!r || attempt != r->attempts) {
            // Answer for an abandoned or superseded attempt: the slot
            // was released (generation mismatch) or re-armed with a
            // newer attempt. The oracle's ReqCtl resolved/attempts
            // check, without the control block.
            ++s.lateCompletions;
            return;
        }
        if (r->timeoutEv) {
            s.eq.cancel(r->timeoutEv);
            r->timeoutEv = 0;
        }
        double latency = s.eq.now() - issued;
        ++s.epochCompleted;
        s.epochLatencies.add(latency);
        if (s.collectSamples)
            s.latencySamples.push_back(latency);
        if (latency >= s.qosLimit)
            ++s.epochViolations;
        s.arena.release(h);
        clientLoop(s);
        break;
      }
    }
}

/** Abandonment timer fired: retry with exponential backoff or give up. */
void
onTimeout(DriverState &s, RequestHandle h)
{
    Request *r = s.arena.find(h);
    if (!r)
        return; // resolved (resolution cancels the timer; defensive)
    r->timeoutEv = 0;
    ++s.timeouts;
    if (r->attempts <= s.maxRetries) {
        ++s.retries;
        double backoff =
            s.retryBackoff * std::pow(2.0, double(r->attempts - 1));
        // The timed-out attempt can still complete during the backoff
        // window and resolve the request; the resulting release makes
        // the handle stale, so the reissue check is one validity test
        // (the oracle's `if (ctl->reissue)`).
        s.eq.scheduleAfter(backoff, [sp = &s, h] {
            if (sp->arena.valid(h))
                issueAttempt(*sp, h);
        });
    } else {
        ++s.giveups;
        ++s.epochGiveups;
        s.arena.release(h);
        clientLoop(s);
    }
}

} // namespace

ClosedLoopResult
runClosedLoop(workloads::InteractiveWorkload &workload,
              const StationConfig &stations,
              const ClosedLoopParams &params, Rng &rng)
{
    WSC_ASSERT(params.initialClients >= 1, "need at least one client");
    WSC_ASSERT(params.epochSeconds > 0.0, "epoch must be positive");
    WSC_ASSERT(params.growFactor > 1.0, "grow factor must exceed 1");
    WSC_ASSERT(params.shrinkFactor > 0.0 && params.shrinkFactor < 1.0,
               "shrink factor must be in (0, 1)");

    DriverState s;
    s.cpu = std::make_unique<sim::PsResource>(
        s.eq, "cpu", stations.cpuCapacityGHz, stations.cpuSlots);
    s.disk = std::make_unique<sim::FifoResource>(s.eq, "disk", 1);
    s.nic = std::make_unique<sim::PsResource>(s.eq, "nic",
                                              stations.nicMBs, 1);
    s.workload = &workload;
    s.st = &stations;
    s.rng = &rng;
    s.thinkMean = params.thinkTimeMean;
    auto qos = workload.qos();
    s.qosLimit = qos.latencyLimit;
    s.targetClients = params.initialClients;
    s.requestTimeout = params.requestTimeoutSeconds;
    s.maxRetries = params.maxRetries;
    s.retryBackoff = params.retryBackoffSeconds;
    s.fastDemands.configure(params.fastMode, rng);
    s.collectSamples = params.collectLatencySamples;
    s.arena.reserve(std::min<std::size_t>(params.initialClients, 4096));
    s.eq.reserve(std::min<std::size_t>(2 * params.initialClients, 8192));

    auto spawn_to_target = [&] {
        while (s.liveClients < s.targetClients) {
            ++s.liveClients;
            clientLoop(s);
        }
    };
    spawn_to_target();

    ClosedLoopResult result;
    result.epochRps.reserve(params.epochs);
    result.epochPassed.reserve(params.epochs);
    result.epochCompleted.reserve(params.epochs);
    result.epochViolations.reserve(params.epochs);
    result.epochGiveups.reserve(params.epochs);
    result.epochP95.reserve(params.epochs);
    for (unsigned epoch = 0; epoch < params.epochs; ++epoch) {
        std::uint64_t lastCompleted = s.epochCompleted;
        s.epochCompleted = 0;
        s.epochViolations = 0;
        s.epochGiveups = 0;
        s.epochLatencies.clear();
        // Presize from the previous epoch: growth is bounded by the
        // grow factor, so 2x + headroom keeps steady-state epochs
        // from reallocating the sample vector mid-measurement.
        s.epochLatencies.reserve(2 * std::size_t(lastCompleted) + 1024);
        double end = s.eq.now() + params.epochSeconds;
        s.eq.run(end);

        double rps = double(s.epochCompleted) / params.epochSeconds;
        // Give-ups count as violations among resolved requests; with
        // the timer off both terms are zero and the rule is classic.
        std::uint64_t resolved = s.epochCompleted + s.epochGiveups;
        bool passed =
            s.epochCompleted > 0 &&
            double(s.epochViolations + s.epochGiveups) <=
                (1.0 - qos.quantile) * double(resolved);
        result.epochRps.push_back(rps);
        result.epochPassed.push_back(passed);
        result.epochCompleted.push_back(s.epochCompleted);
        result.epochViolations.push_back(s.epochViolations);
        result.epochGiveups.push_back(s.epochGiveups);
        result.epochP95.push_back(s.epochLatencies.count()
                                      ? s.epochLatencies.quantile(0.95)
                                      : 0.0);

        if (passed) {
            if (rps > result.sustainedRps) {
                result.sustainedRps = rps;
                result.clientsAtBest = s.targetClients;
                result.p95AtBest = result.epochP95.back();
            }
            double grown =
                std::ceil(double(s.targetClients) * params.growFactor);
            s.targetClients = unsigned(
                std::min<double>(grown, params.maxClients));
            spawn_to_target();
        } else {
            s.targetClients = std::max(
                1u, unsigned(std::floor(double(s.targetClients) *
                                        params.shrinkFactor)));
            // Excess clients retire lazily after their next response.
        }
    }
    result.finalClients = s.targetClients;
    result.finalLiveClients = s.liveClients;
    result.timeouts = s.timeouts;
    result.retries = s.retries;
    result.giveups = s.giveups;
    result.lateCompletions = s.lateCompletions;
    result.kernel = s.eq.counters();
    result.latencySamples = std::move(s.latencySamples);
    return result;
}

} // namespace perfsim
} // namespace wsc
