#include "perfsim/closed_loop.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "perfsim/calibration.hh"
#include "stats/percentile.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

namespace {

/** Shared mutable state for the client population and epoch stats. */
struct DriverState {
    sim::EventQueue eq;
    std::unique_ptr<sim::PsResource> cpu;
    std::unique_ptr<sim::FifoResource> disk;
    std::unique_ptr<sim::PsResource> nic;
    workloads::InteractiveWorkload *workload = nullptr;
    const StationConfig *st = nullptr;
    Rng *rng = nullptr;
    unsigned targetClients = 0;
    unsigned liveClients = 0;
    std::uint64_t nextClientGeneration = 0;
    // Epoch accounting.
    std::uint64_t epochCompleted = 0;
    std::uint64_t epochViolations = 0;
    stats::PercentileTracker epochLatencies;
    double qosLimit = 0.0;
};

/** One client's think-request loop; stops when over the target. */
void
clientLoop(DriverState &s, double think_mean)
{
    if (s.liveClients > s.targetClients) {
        // Population shrank: this client retires.
        --s.liveClients;
        return;
    }
    double think = s.rng->exponential(think_mean);
    s.eq.scheduleAfter(think, [&s, think_mean] {
        double issued = s.eq.now();
        auto demand = s.workload->nextRequest(*s.rng);
        double cpu_work = demand.cpuWork * s.st->serviceSlowdown;
        double disk_service = 0.0;
        if (demand.diskReadBytes > 0.0 &&
            !s.rng->bernoulli(s.st->diskCacheHitRate)) {
            disk_service +=
                s.st->diskAccessMs * 1e-3 +
                demand.diskReadBytes / (s.st->diskReadMBs * 1e6);
        }
        if (demand.diskWriteBytes > 0.0) {
            disk_service +=
                s.st->diskAccessMs * 1e-3 * writeAccessFactor +
                demand.diskWriteBytes / (s.st->diskWriteMBs * 1e6);
        }
        double net_mb = demand.netBytes / 1e6;

        auto respond = [&s, issued, think_mean] {
            double latency = s.eq.now() - issued;
            ++s.epochCompleted;
            s.epochLatencies.add(latency);
            // Strict QoS boundary: latency == limit violates.
            if (latency >= s.qosLimit)
                ++s.epochViolations;
            clientLoop(s, think_mean);
        };
        auto net_stage = [&s, net_mb, respond] {
            if (net_mb > 0.0)
                s.nic->submit(net_mb, respond);
            else
                respond();
        };
        auto disk_stage = [&s, disk_service, net_stage] {
            if (disk_service > 0.0)
                s.disk->submit(disk_service, net_stage);
            else
                net_stage();
        };
        s.cpu->submit(cpu_work, disk_stage);
    });
}

} // namespace

ClosedLoopResult
runClosedLoop(workloads::InteractiveWorkload &workload,
              const StationConfig &stations,
              const ClosedLoopParams &params, Rng &rng)
{
    WSC_ASSERT(params.initialClients >= 1, "need at least one client");
    WSC_ASSERT(params.epochSeconds > 0.0, "epoch must be positive");
    WSC_ASSERT(params.growFactor > 1.0, "grow factor must exceed 1");
    WSC_ASSERT(params.shrinkFactor > 0.0 && params.shrinkFactor < 1.0,
               "shrink factor must be in (0, 1)");

    DriverState s;
    s.cpu = std::make_unique<sim::PsResource>(
        s.eq, "cpu", stations.cpuCapacityGHz, stations.cpuSlots);
    s.disk = std::make_unique<sim::FifoResource>(s.eq, "disk", 1);
    s.nic = std::make_unique<sim::PsResource>(s.eq, "nic",
                                              stations.nicMBs, 1);
    s.workload = &workload;
    s.st = &stations;
    s.rng = &rng;
    auto qos = workload.qos();
    s.qosLimit = qos.latencyLimit;
    s.targetClients = params.initialClients;

    auto spawn_to_target = [&] {
        while (s.liveClients < s.targetClients) {
            ++s.liveClients;
            clientLoop(s, params.thinkTimeMean);
        }
    };
    spawn_to_target();

    ClosedLoopResult result;
    for (unsigned epoch = 0; epoch < params.epochs; ++epoch) {
        s.epochCompleted = 0;
        s.epochViolations = 0;
        s.epochLatencies.clear();
        double end = s.eq.now() + params.epochSeconds;
        s.eq.run(end);

        double rps = double(s.epochCompleted) / params.epochSeconds;
        bool passed =
            s.epochCompleted > 0 &&
            double(s.epochViolations) <=
                (1.0 - qos.quantile) * double(s.epochCompleted);
        result.epochRps.push_back(rps);
        result.epochPassed.push_back(passed);

        if (passed) {
            if (rps > result.sustainedRps) {
                result.sustainedRps = rps;
                result.clientsAtBest = s.targetClients;
                result.p95AtBest =
                    s.epochLatencies.count()
                        ? s.epochLatencies.quantile(0.95)
                        : 0.0;
            }
            double grown =
                std::ceil(double(s.targetClients) * params.growFactor);
            s.targetClients = unsigned(
                std::min<double>(grown, params.maxClients));
            spawn_to_target();
        } else {
            s.targetClients = std::max(
                1u, unsigned(std::floor(double(s.targetClients) *
                                        params.shrinkFactor)));
            // Excess clients retire lazily after their next response.
        }
    }
    result.finalClients = s.targetClients;
    return result;
}

} // namespace perfsim
} // namespace wsc
