/**
 * @file
 * The fast-mode/2 ensemble engine: macro-event arrival coalescing.
 *
 * The exact engine (ensemble_sim.cc) schedules one DES event per
 * request arrival, completion, and governor timer — ~30M events for a
 * 100k-server day. This engine replaces all of them with one
 * macro-event per (cell, lookahead-window):
 *
 *  - the window's arrival count is drawn in one shot from the hourly
 *    Poisson/MMPP law (SplitMix64::poisson over the same per-cell
 *    identity-seeded streams), and arrival instants are placed at
 *    sorted uniform order statistics via exponential spacings — both
 *    exact for a Poisson process, so the pinned arrival law is
 *    preserved distribution-for-distribution;
 *  - each arrival is dispatched with the same power-of-two-choices
 *    policy logic, evaluated against the server's *instantaneous*
 *    state at the arrival time, reconstructed from per-server
 *    timelines instead of materialized by events;
 *  - per-server queueing is the Kiefer–Wolfowitz slot recursion: a
 *    sorted vector of slot-free times per server gives the exact
 *    M/M/c FCFS start/completion times for the sampled arrivals and
 *    services (start = max(arrival, earliest slot, transition end));
 *  - energy and sleep-state residency integrate lazily over a
 *    per-server segment timeline (transition -> active -> idle ->
 *    sleep), with the idle-to-sleep governor evaluated as a deadline
 *    (busy-end + governor timeout) instead of a timer event. Virtual
 *    sleepers are materialized onto the asleep list at window starts
 *    and hour barriers, so dispatch and the autoscaler see the same
 *    membership the exact engine's timer events would produce, at
 *    most one window late (a declared fast-mode/2 relaxation).
 *
 * What stays *real* DES events — so sim::ShardedEventQueue's
 * conservative windowed execution and its shard/worker bit-invariance
 * carry over unchanged — is exactly the cross-cell and control-plane
 * traffic: macro-events themselves (scheduled from the barrier at
 * every window start), MMPP phase flips, cross-cell spill posts, and
 * the autoscaling/power-cap hour barriers.
 *
 * Determinism: all stochastic state is per-cell (identity-seeded
 * streams, consumed in a fixed order: window count, spacings, then
 * per-arrival service), all accumulators merge in cell-index order,
 * and all cross-cell interaction rides the barrier-ordered message
 * path — so a seed reproduces the same bytes at any shard/worker
 * count and queue backend, which test_ensemble asserts.
 */

#include "perfsim/ensemble_sim.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/sharded_queue.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"

namespace wsc {
namespace perfsim {

namespace {

constexpr unsigned kLatencyBins = 1024; // same binning as exact mode

/** Coarse per-server mode. Timeline servers carry their full state
 * implicitly (slot-free times + transition end + governor deadline);
 * SleepM/Off are materialized endpoints with flat power draw. */
enum class FMode : std::uint8_t { Timeline, SleepM, Off };

/** One dispatch cell of the fast engine: same topology, streams, and
 * accumulator shapes as the exact engine's Cell, but per-server state
 * is a timeline, not an event-driven state machine. */
struct FastCell {
    std::uint32_t idx = 0;
    std::uint32_t n = 0;
    SplitMix64 rng{0}; //!< dispatch draws (p2c, wake picks, spills)
    SplitMix64 arr{0}; //!< arrival draws (counts, spacings, services)

    // Per-server timeline state, SoA.
    std::vector<double> slotFree;     //!< n * slots, sorted ascending per server
    std::vector<double> transEnd;     //!< wake/boot transition end
    std::vector<std::uint8_t> transBoot; //!< transition was a boot
    std::vector<double> lastMark;     //!< energy-integration mark
    std::vector<FMode> mode;
    /** FIFO of queued-job start times per server (starts are
     * nondecreasing under FCFS, so a head index pops them in order;
     * the live queue depth at time t is the tail past t). */
    std::vector<std::vector<double>> pendStart;
    std::vector<std::uint32_t> pendHead;

    /** Dense membership lists, exactly as the exact engine: awake =
     * Timeline, asleep = SleepM, off = Off. */
    std::vector<std::uint32_t> awake, asleep, off, pos;

    /** Lazy min-heap of (governor deadline, server): draining it as
     * dispatch time advances materializes sleepers at the same
     * instants the exact engine's timer events fire, so the p2c pool
     * and the wake-on-demand asleep list track the exact engine's
     * membership promptly instead of lagging a whole window. A
     * server's deadline max(busy end, transition end) + timeout is
     * monotone nondecreasing, so each server keeps at most one entry
     * (inGov flag) holding a lower bound; a pop whose recomputed
     * deadline is still in the future re-pushes instead of sleeping.
     * That caps heap traffic at ~one op per server per window instead
     * of one per arrival. */
    std::vector<std::pair<double, std::uint32_t>> govHeap;
    std::vector<std::uint8_t> inGov;

    double baseRate = 0.0;
    double rate = 0.0;
    bool inBurst = false;
    /** End of the window the last macro event opened, and the cell's
     * next scheduled MMPP flip (+inf when MMPP is off). Together with
     * the pending spill-delivery times below they bound the
     * constant-rate segments arrival synthesis runs over: each lane
     * event (macro open, flip, spill delivery) synthesizes from
     * synthMark up to the nearest of window end / next flip / next
     * spill, so MMPP phase changes land mid-window with full
     * fidelity and a spilled job joins its target's queue in true
     * arrival order instead of behind the whole window's backlog. */
    double winEnd = 0.0;
    double nextFlip = std::numeric_limits<double>::infinity();
    /** How far this cell's arrival stream has been synthesized. */
    double synthMark = 0.0;
    /** Spills this cell posted during the current window, staged as
     * (target cell, delivery time); the barrier merges them into the
     * targets' inSpills. Lookahead equals the network latency, so a
     * spill posted in window W is always delivered in window W+1 —
     * every delivery time is known before its window opens. */
    std::vector<std::pair<std::uint32_t, double>> outSpills;
    /** Delivery times landing in the currently open window, sorted;
     * synthesis never crosses inSpills[inSpillHead]. */
    std::vector<double> inSpills;
    std::uint32_t inSpillHead = 0;

    // Accumulators, merged in cell order (same shapes as exact).
    std::array<double, kServerStates> stateSeconds{};
    double energyWs = 0.0;
    std::vector<double> hourEnergyWs, hourLatencySum,
        hourActiveSeconds;
    double sweptActiveSeconds = 0.0;
    std::uint64_t offered = 0, completed = 0, violations = 0,
                  spilled = 0, wakes = 0, boots = 0, sleeps = 0,
                  offs = 0;
    std::vector<std::uint64_t> hourCompleted, hourViolations, latBins;
    std::uint64_t latOverflow = 0;

    std::vector<double> arrTimes; //!< window-arrival scratch
};

struct EnsembleFastSim {
    const EnsembleConfig &cfg;
    sim::ShardedEventQueue sq;
    std::vector<FastCell> cells;
    double hourSeconds;
    double horizon;
    double lookahead;
    double binWidth;
    double invHourSeconds;
    double invBinWidth;
    double peakRate;
    unsigned slots;
    bool sleepsEligible; //!< the governor runs (policy != AlwaysOn)
    std::array<double, kServerStates> wattsTable{};
    unsigned nextBoundary = 1;
    std::uint64_t capClamps = 0;

    explicit EnsembleFastSim(const EnsembleConfig &cfg)
        : cfg(cfg), sq(cfg.cells, cfg.shards, cfg.queue),
          hourSeconds(cfg.secondsPerHour),
          horizon(double(cfg.hours) * cfg.secondsPerHour),
          lookahead(cfg.networkLatencySeconds),
          binWidth(4.0 * cfg.qosLatencySeconds / kLatencyBins),
          invHourSeconds(1.0 / hourSeconds),
          invBinWidth(1.0 / binWidth),
          peakRate(cfg.peakUtilization * double(cfg.servers) *
                   double(cfg.serverSlots) / cfg.meanServiceSeconds),
          slots(cfg.serverSlots),
          sleepsEligible(cfg.policy != EnsemblePolicy::AlwaysOn)
    {
        wattsTable[unsigned(ServerState::Active)] =
            cfg.power.busyWatts;
        wattsTable[unsigned(ServerState::Idle)] = cfg.power.idleWatts;
        wattsTable[unsigned(ServerState::Sleep)] =
            cfg.power.sleepWatts;
        wattsTable[unsigned(ServerState::Off)] = cfg.power.offWatts;
        wattsTable[unsigned(ServerState::Waking)] =
            cfg.power.transitionWatts;
        wattsTable[unsigned(ServerState::Booting)] =
            cfg.power.transitionWatts;
    }

    unsigned
    hourOf(double now) const
    {
        auto h = unsigned(now * invHourSeconds);
        return std::min(h, cfg.hours - 1);
    }

    double *
    slotsOf(FastCell &c, std::uint32_t s)
    {
        return c.slotFree.data() + std::size_t(s) * slots;
    }

    /** Time the server's last busy period drains (max slot-free). */
    double
    busyEnd(FastCell &c, std::uint32_t s)
    {
        return slotsOf(c, s)[slots - 1];
    }

    /** When the idle-to-sleep governor would have fired: the exact
     * engine arms the timer when the server drains (or finishes a
     * transition with nothing queued), which in timeline terms is
     * max(busy end, transition end) + the governor timeout. */
    double
    govDeadline(FastCell &c, std::uint32_t s)
    {
        return std::max(busyEnd(c, s), c.transEnd[s]) +
               cfg.power.idleToSleepSeconds;
    }

    /** A Timeline server that drained more than a governor timeout
     * ago is *virtually* asleep: the exact engine's timer would have
     * moved it to the asleep list already. */
    bool
    virtuallyAsleep(FastCell &c, std::uint32_t s, double t)
    {
        return sleepsEligible && c.mode[s] == FMode::Timeline &&
               t >= govDeadline(c, s);
    }

    /** Busy slots at time t: slot-free entries past t. Monotone
     * arrival processing keeps this exact — every counted slot is
     * continuously occupied through t (queued jobs start back-to-
     * back, and any drain gap ends at an arrival we already saw). */
    unsigned
    busyAt(FastCell &c, std::uint32_t s, double t)
    {
        const double *w = slotsOf(c, s);
        unsigned b = 0;
        for (unsigned i = 0; i < slots; ++i)
            b += w[i] > t;
        return b;
    }

    /** Queued jobs at time t: pending starts past t. Pops the FIFO
     * head as time advances (amortized O(1)). */
    std::uint32_t
    queuedAt(FastCell &c, std::uint32_t s, double t)
    {
        auto &pend = c.pendStart[s];
        std::uint32_t &head = c.pendHead[s];
        while (head < pend.size() && pend[head] <= t)
            ++head;
        if (head == pend.size() && head > 0) {
            pend.clear();
            head = 0;
        }
        return std::uint32_t(pend.size()) - head;
    }

    bool
    openAt(FastCell &c, std::uint32_t s, double t)
    {
        return c.mode[s] == FMode::Timeline && t >= c.transEnd[s] &&
               busyAt(c, s, t) < slots && !virtuallyAsleep(c, s, t);
    }

    std::uint64_t
    loadAt(FastCell &c, std::uint32_t s, double t)
    {
        return std::uint64_t(busyAt(c, s, t)) + queuedAt(c, s, t);
    }

    /** One-pass candidate snapshot for the p2c pick: open / load /
     * queued computed from a single read of the server's slots and
     * transition state (openAt + loadAt share busyAt and the
     * governor-deadline read, so fusing them halves the dispatch
     * loop's random-access traffic). */
    struct Probe {
        bool open;
        std::uint64_t load;
        std::uint32_t queued;
    };

    Probe
    probeAt(FastCell &c, std::uint32_t s, double t)
    {
        const double *w = slotsOf(c, s);
        unsigned b = 0;
        for (unsigned i = 0; i < slots; ++i)
            b += w[i] > t;
        std::uint32_t q = queuedAt(c, s, t);
        double tE = c.transEnd[s];
        bool open = c.mode[s] == FMode::Timeline && t >= tE &&
                    b < slots;
        if (open && sleepsEligible &&
            t >= std::max(w[slots - 1], tE) +
                     cfg.power.idleToSleepSeconds)
            open = false;  // virtually asleep
        return {open, std::uint64_t(b) + q, q};
    }

    void
    account(FastCell &c, ServerState st, double dt)
    {
        c.energyWs += dt * wattsTable[unsigned(st)];
        c.stateSeconds[unsigned(st)] += dt;
    }

    /**
     * Integrate server @p s's energy and state residency over
     * [lastMark, x). Timeline servers walk the segment sequence
     * transition -> active -> idle -> (sleep past the governor
     * deadline); materialized servers integrate flat. Exact given
     * the sampled trajectory: the segment boundaries are the same
     * instants the exact engine's events would have flipped state at.
     */
    void
    integrateTo(FastCell &c, std::uint32_t s, double x)
    {
        double t = c.lastMark[s];
        if (x <= t)
            return;
        c.lastMark[s] = x;
        if (c.mode[s] == FMode::SleepM) {
            account(c, ServerState::Sleep, x - t);
            return;
        }
        if (c.mode[s] == FMode::Off) {
            account(c, ServerState::Off, x - t);
            return;
        }
        double tE = c.transEnd[s];
        double bE = busyEnd(c, s);
        if (tE > t) {
            double e = std::min(tE, x);
            account(c,
                    c.transBoot[s] ? ServerState::Booting
                                   : ServerState::Waking,
                    e - t);
            t = e;
        }
        if (bE > t && t < x) {
            double e = std::min(bE, x);
            account(c, ServerState::Active, e - t);
            t = e;
        }
        if (t >= x)
            return;
        if (sleepsEligible) {
            double gov = std::max(bE, tE) +
                         cfg.power.idleToSleepSeconds;
            if (gov > t) {
                double e = std::min(gov, x);
                account(c, ServerState::Idle, e - t);
                t = e;
            }
            if (t < x)
                account(c, ServerState::Sleep, x - t);
        } else {
            account(c, ServerState::Idle, x - t);
        }
    }

    void
    pushGov(FastCell &c, std::uint32_t s)
    {
        if (!sleepsEligible || c.inGov[s])
            return;
        c.inGov[s] = 1;
        c.govHeap.emplace_back(govDeadline(c, s), s);
        std::push_heap(c.govHeap.begin(), c.govHeap.end(),
                       std::greater<>());
    }

    /** Materialize every server whose governor deadline passed by
     * @p t onto the asleep list (the exact engine's sleepTimer). */
    void
    drainGov(FastCell &c, double t)
    {
        if (!sleepsEligible)
            return;
        while (!c.govHeap.empty() && c.govHeap.front().first <= t) {
            auto [d, s] = c.govHeap.front();
            std::pop_heap(c.govHeap.begin(), c.govHeap.end(),
                          std::greater<>());
            c.govHeap.pop_back();
            c.inGov[s] = 0;
            if (c.mode[s] != FMode::Timeline)
                continue;
            double cur = govDeadline(c, s);
            if (cur > t) {
                // Later work extended the deadline past t: the entry
                // was a lower bound; re-arm at the current one.
                c.inGov[s] = 1;
                c.govHeap.emplace_back(cur, s);
                std::push_heap(c.govHeap.begin(), c.govHeap.end(),
                               std::greater<>());
                continue;
            }
            integrateTo(c, s, t);
            c.mode[s] = FMode::SleepM;
            moveList(c, s, c.awake, c.asleep);
            ++c.sleeps;
        }
    }

    void
    moveList(FastCell &c, std::uint32_t s,
             std::vector<std::uint32_t> &from,
             std::vector<std::uint32_t> &to)
    {
        std::uint32_t i = c.pos[s];
        from[i] = from.back();
        c.pos[from[i]] = i;
        from.pop_back();
        c.pos[s] = std::uint32_t(to.size());
        to.push_back(s);
    }

    void
    beginWake(FastCell &c, std::uint32_t s, double now)
    {
        integrateTo(c, s, now);
        if (c.mode[s] == FMode::SleepM)
            moveList(c, s, c.asleep, c.awake);
        c.mode[s] = FMode::Timeline;
        c.transEnd[s] = now + cfg.power.sleepWakeSeconds;
        c.transBoot[s] = 0;
        ++c.wakes;
        pushGov(c, s);
    }

    void
    beginBoot(FastCell &c, std::uint32_t s, double now)
    {
        integrateTo(c, s, now);
        moveList(c, s, c.off, c.awake);
        c.mode[s] = FMode::Timeline;
        c.transEnd[s] = now + cfg.power.bootSeconds;
        c.transBoot[s] = 1;
        ++c.boots;
        pushGov(c, s);
    }

    std::uint32_t
    wakeOne(FastCell &c, double now)
    {
        if (!c.asleep.empty()) {
            std::uint32_t s =
                c.asleep.size() == 1
                    ? c.asleep[0]
                    : c.asleep[c.rng.pick(c.asleep.size())];
            beginWake(c, s, now);
            return s;
        }
        WSC_ASSERT(!c.off.empty(), "cell lost all its servers");
        std::uint32_t s = c.off.size() == 1
                              ? c.off[0]
                              : c.off[c.rng.pick(c.off.size())];
        beginBoot(c, s, now);
        return s;
    }

    /** Power-of-two-choices pick: the exact engine's policy logic,
     * evaluated against instantaneous timeline state at time t. Fills
     * @p pr with the winner's snapshot so the caller never re-probes. */
    std::uint32_t
    pickServer(FastCell &c, double t, Probe &pr)
    {
        if (c.awake.empty()) {
            // Freshly woken/booted: transitioning, empty queue.
            pr = {false, 0, 0};
            return wakeOne(c, t);
        }
        if (c.awake.size() == 1) {
            std::uint32_t s = c.awake[0];
            pr = probeAt(c, s, t);
            return s;
        }
        std::uint32_t a = c.awake[c.rng.pick(c.awake.size())];
        std::uint32_t b = c.awake[c.rng.pick(c.awake.size())];
        if (a == b) {
            pr = probeAt(c, a, t);
            return a;
        }
        Probe pa = probeAt(c, a, t), pb = probeAt(c, b, t);
        if (cfg.policy == EnsemblePolicy::AlwaysOn) {
            if (pb.load < pa.load || (pb.load == pa.load && b < a)) {
                pr = pb;
                return b;
            }
            pr = pa;
            return a;
        }
        if (pa.open != pb.open) {
            pr = pa.open ? pa : pb;
            return pa.open ? a : b;
        }
        if (pa.open) {
            if (pb.load > pa.load || (pb.load == pa.load && b < a)) {
                pr = pb;
                return b;
            }
            pr = pa;
            return a;
        }
        if (pb.queued < pa.queued ||
            (pb.queued == pa.queued && b < a)) {
            pr = pb;
            return b;
        }
        pr = pa;
        return a;
    }

    void
    recordLatency(FastCell &c, double latency, double completion)
    {
        ++c.completed;
        unsigned h = hourOf(completion);
        ++c.hourCompleted[h];
        c.hourLatencySum[h] += latency;
        if (latency >= cfg.qosLatencySeconds) {
            ++c.violations;
            ++c.hourViolations[h];
        }
        auto bin = std::size_t(latency * invBinWidth);
        if (bin < kLatencyBins)
            ++c.latBins[bin];
        else
            ++c.latOverflow;
    }

    /**
     * Assign one job to server @p s: close the server's timeline up
     * to the arrival, then run the slot recursion. @p t is the
     * dispatch instant (clamped to the server's integration mark for
     * barrier-delivered spills, which may trail fresh arrivals by up
     * to one window); @p arrival is the job's original arrival time,
     * which is what latency is measured from.
     */
    void
    assign(FastCell &c, std::uint32_t s, double t, double arrival,
           double service)
    {
        double tc = std::max(t, c.lastMark[s]);
        if (virtuallyAsleep(c, s, tc)) {
            // The governor had put this server to sleep; the job
            // wakes it and eats the wake latency, exactly the
            // consolidation QoS cost the exact engine charges.
            integrateTo(c, s, tc);
            ++c.sleeps;
            ++c.wakes;
            c.transEnd[s] = tc + cfg.power.sleepWakeSeconds;
            c.transBoot[s] = 0;
        } else {
            integrateTo(c, s, tc);
        }
        double *w = slotsOf(c, s);
        double start = std::max({tc, w[0], c.transEnd[s]});
        double completion = start + service;
        if (start > tc)
            c.pendStart[s].push_back(start);
        // Replace the earliest slot and restore sorted order.
        w[0] = completion;
        for (unsigned i = 1;
             i < slots && w[i - 1] > w[i]; ++i)
            std::swap(w[i - 1], w[i]);
        pushGov(c, s);
        if (completion <= horizon)
            recordLatency(c, completion - arrival, completion);
    }

    void
    dispatch(std::uint32_t ci, double t, double arrival,
             double service, bool forwarded)
    {
        FastCell &c = cells[ci];
        drainGov(c, t);
        Probe pr;
        std::uint32_t s = pickServer(c, t, pr);
        if (!pr.open) {
            if (sleepsEligible && !c.asleep.empty()) {
                s = c.asleep.size() == 1
                        ? c.asleep[0]
                        : c.asleep[c.rng.pick(c.asleep.size())];
                beginWake(c, s, t);
            } else if (!forwarded && cfg.cells > 1 &&
                       pr.queued >= cfg.spillDepth) {
                auto tgt = std::uint32_t(c.rng.pick(cfg.cells - 1));
                if (tgt >= ci)
                    ++tgt;
                ++c.spilled;
                double at = t + cfg.networkLatencySeconds;
                c.outSpills.emplace_back(tgt, at);
                EnsembleFastSim *sim = this;
                sq.post(ci, tgt, at,
                        [sim, tgt, arrival, service] {
                            sim->spillDeliver(tgt, arrival,
                                              service);
                        });
                return;
            }
        }
        assign(c, s, t, arrival, service);
    }

    /** Synthesize and dispatch the arrivals of one constant-rate
     * segment [from, to) in one shot: count from a single Poisson
     * draw, placement via exponential spacings (sorted uniform order
     * statistics — exact for a Poisson process). */
    void
    synthSegment(std::uint32_t ci, FastCell &c, double from,
                 double to)
    {
        if (c.rate <= 0.0 || to <= from)
            return;
        std::uint64_t n = c.arr.poisson(c.rate * (to - from));
        if (n == 0)
            return;
        c.arrTimes.resize(n);
        double acc = 0.0;
        for (std::uint64_t i = 0; i < n; ++i) {
            acc += c.arr.exponential(1.0);
            c.arrTimes[i] = acc;
        }
        acc += c.arr.exponential(1.0);
        double scale = (to - from) / acc;
        for (std::uint64_t i = 0; i < n; ++i) {
            double tau = from + c.arrTimes[i] * scale;
            ++c.offered;
            double service =
                c.arr.exponential(cfg.meanServiceSeconds);
            dispatch(ci, tau, tau, service, false);
        }
    }

    /** Next spill-delivery split point, +inf when none remain. */
    double
    nextSpill(const FastCell &c) const
    {
        return c.inSpillHead < c.inSpills.size()
                   ? c.inSpills[c.inSpillHead]
                   : std::numeric_limits<double>::infinity();
    }

    /** Advance the cell's arrival synthesis to @p to, clamped to the
     * nearest rate change or interleaving point (window end, MMPP
     * flip, spill delivery). Each lane event calls this after
     * updating its own bound, so segments tile the window exactly
     * and every dispatch happens in arrival order. */
    void
    synthUpTo(std::uint32_t ci, FastCell &c, double to)
    {
        to = std::min(std::min(to, c.winEnd),
                      std::min(c.nextFlip, nextSpill(c)));
        if (to > c.synthMark) {
            synthSegment(ci, c, c.synthMark, to);
            c.synthMark = to;
        }
    }

    /** The per-(cell, window) macro event: open the window and
     * synthesize arrivals up to the first split point; flips and
     * spill deliveries inside the window extend the synthesis as
     * they fire. */
    void
    macroEvent(std::uint32_t ci)
    {
        FastCell &c = cells[ci];
        double t = sq.laneQueue(ci).now();
        c.winEnd = std::min(t + lookahead, horizon);
        drainGov(c, t);
        synthUpTo(ci, c, c.winEnd);
    }

    void
    mmppFlip(std::uint32_t ci)
    {
        FastCell &c = cells[ci];
        double now = sq.laneQueue(ci).now();
        synthUpTo(ci, c, now);
        c.inBurst = !c.inBurst;
        c.rate = c.baseRate *
                 (c.inBurst ? cfg.mmpp.burstMultiplier : 1.0);
        double dwell = c.arr.exponential(
            c.inBurst ? cfg.mmpp.burstMeanSeconds
                      : cfg.mmpp.calmMeanSeconds);
        c.nextFlip = now + dwell;
        EnsembleFastSim *sim = this;
        sq.laneQueue(ci).schedule(
            c.nextFlip, [sim, ci] { sim->mmppFlip(ci); });
        // The open window's remainder runs at the new rate from the
        // flip instant: exact MMPP modulation, not a window-start
        // snapshot.
        synthUpTo(ci, c, c.winEnd);
    }

    /** A spilled job lands: close synthesis at the delivery instant,
     * retire its split point, and dispatch it — in exact arrival
     * order relative to the target's own synthesized stream. */
    void
    spillDeliver(std::uint32_t ci, double arrival, double service)
    {
        FastCell &c = cells[ci];
        double d = sq.laneQueue(ci).now();
        synthUpTo(ci, c, d);
        if (c.inSpillHead < c.inSpills.size() &&
            c.inSpills[c.inSpillHead] <= d)
            ++c.inSpillHead;
        dispatch(ci, d, arrival, service, true);
        synthUpTo(ci, c, c.winEnd);
    }

    std::uint32_t
    autoscaleTarget(const FastCell &c)
    {
        double needBusy = c.baseRate * cfg.meanServiceSeconds /
                          (double(cfg.serverSlots) *
                           cfg.autoscaleUtilization);
        auto target = std::uint32_t(
            std::ceil(needBusy * (1.0 + cfg.reserveMargin)));
        auto floor_ = std::uint32_t(std::max(
            1.0, std::ceil(cfg.reserveMargin * double(c.n))));
        target = std::max(target, floor_);
        target = std::min(target, c.n);
        if (cfg.powerCapWatts > 0.0) {
            double maxTotal = std::floor(cfg.powerCapWatts /
                                         cfg.power.busyWatts);
            auto maxCell = std::uint32_t(std::max(
                1.0, std::floor(maxTotal * double(c.n) /
                                double(cfg.servers))));
            if (target > maxCell) {
                target = maxCell;
                ++capClamps;
            }
        }
        return target;
    }

    void
    autoscale(FastCell &c, double now)
    {
        std::uint32_t target = autoscaleTarget(c);
        auto cur = std::uint32_t(c.awake.size());
        if (cur < target) {
            std::uint32_t need = target - cur;
            while (need > 0 && !c.asleep.empty()) {
                beginWake(c, c.asleep.back(), now);
                --need;
            }
            while (need > 0 && !c.off.empty()) {
                beginBoot(c, c.off.back(), now);
                --need;
            }
        } else if (cur > target) {
            std::uint32_t excess = cur - target;
            while (excess > 0 && !c.asleep.empty()) {
                std::uint32_t s = c.asleep.back();
                integrateTo(c, s, now);
                c.mode[s] = FMode::Off;
                moveList(c, s, c.asleep, c.off);
                ++c.offs;
                --excess;
            }
            if (excess > 0) {
                // Only idle servers power off: drained, out of any
                // transition, and not yet past the governor deadline
                // (those were materialized asleep in the hour sweep).
                std::vector<std::uint32_t> idlers;
                for (std::uint32_t s : c.awake) {
                    if (now >= c.transEnd[s] &&
                        now >= busyEnd(c, s)) {
                        idlers.push_back(s);
                        if (idlers.size() == excess)
                            break;
                    }
                }
                for (std::uint32_t s : idlers) {
                    integrateTo(c, s, now);
                    c.mode[s] = FMode::Off;
                    moveList(c, s, c.awake, c.off);
                    ++c.offs;
                }
            }
        }
    }

    /** Close every server's integral at @p now and credit the energy
     * since the last sweep to @p hour (the exact engine's sweepCell,
     * over timelines). */
    void
    hourSweep(FastCell &c, double now, unsigned hour)
    {
        drainGov(c, now);
        for (std::uint32_t s = 0; s < c.n; ++s)
            integrateTo(c, s, now);
        c.hourEnergyWs[hour] += c.energyWs;
        c.energyWs = 0.0;
        double active = c.stateSeconds[unsigned(ServerState::Active)];
        c.hourActiveSeconds[hour] += active - c.sweptActiveSeconds;
        c.sweptActiveSeconds = active;
    }

    void
    programHour(FastCell &c, unsigned hour, double now)
    {
        c.baseRate = peakRate * cfg.profile[hour] * double(c.n) /
                     double(cfg.servers);
        c.rate = c.baseRate *
                 (c.inBurst ? cfg.mmpp.burstMultiplier : 1.0);
        if (cfg.policy == EnsemblePolicy::PowerOff)
            autoscale(c, now);
    }

    /** Barrier callback: hour control plane when a boundary passed,
     * then seed every cell's next macro event at the window start
     * (it runs first thing inside the next shard window, so the
     * arrival synthesis itself executes in parallel). */
    void
    onBarrier(double now)
    {
        while (nextBoundary <= cfg.hours &&
               double(nextBoundary) * hourSeconds <= now) {
            unsigned k = nextBoundary++;
            for (FastCell &c : cells) {
                hourSweep(c, now, k - 1);
                if (k < cfg.hours)
                    programHour(c, k, now);
            }
        }
        // Single-threaded point: publish last window's staged spill
        // deliveries to their targets as synthesis split points for
        // the window about to open (lane order, so the merge is
        // shard- and worker-count invariant).
        for (FastCell &c : cells) {
            c.inSpills.clear();
            c.inSpillHead = 0;
        }
        for (FastCell &src : cells) {
            for (const auto &[tgt, at] : src.outSpills)
                cells[tgt].inSpills.push_back(at);
            src.outSpills.clear();
        }
        for (FastCell &c : cells)
            std::sort(c.inSpills.begin(), c.inSpills.end());
        if (now >= horizon)
            return;
        EnsembleFastSim *sim = this;
        for (std::uint32_t ci = 0; ci < cfg.cells; ++ci)
            sq.laneQueue(ci).schedule(
                now, [sim, ci] { sim->macroEvent(ci); });
    }

    void
    setup()
    {
        cells.resize(cfg.cells);
        for (std::uint32_t ci = 0; ci < cfg.cells; ++ci) {
            FastCell &c = cells[ci];
            c.idx = ci;
            std::uint32_t lo =
                std::uint32_t(std::uint64_t(cfg.servers) * ci /
                              cfg.cells);
            std::uint32_t hi =
                std::uint32_t(std::uint64_t(cfg.servers) *
                              (ci + 1) / cfg.cells);
            c.n = hi - lo;
            // The same identity-seeded streams as the exact engine
            // (pinned by the fast-mode/2 contract).
            c.rng = SplitMix64(seedFor(cfg.seed, "ensemble-dispatch",
                                       std::uint64_t(ci)));
            c.arr = SplitMix64(seedFor(cfg.seed, "ensemble-arrivals",
                                       std::uint64_t(ci)));
            c.slotFree.assign(std::size_t(c.n) * slots, 0.0);
            c.transEnd.assign(c.n, 0.0);
            c.transBoot.assign(c.n, 0);
            c.lastMark.assign(c.n, 0.0);
            c.mode.assign(c.n, FMode::Timeline);
            c.pendStart.resize(c.n);
            c.pendHead.assign(c.n, 0);
            c.inGov.assign(c.n, 0);
            c.pos.resize(c.n);
            c.hourEnergyWs.assign(cfg.hours, 0.0);
            c.hourCompleted.assign(cfg.hours, 0);
            c.hourViolations.assign(cfg.hours, 0);
            c.hourLatencySum.assign(cfg.hours, 0.0);
            c.hourActiveSeconds.assign(cfg.hours, 0.0);
            c.latBins.assign(kLatencyBins, 0);

            // Initial condition mirrors the exact engine: everyone
            // awake and idle (governor deadline = idleToSleepSeconds
            // from t=0), except PowerOff starts at its hour-0 target.
            c.baseRate = peakRate * cfg.profile[0] * double(c.n) /
                         double(cfg.servers);
            c.rate = c.baseRate;
            std::uint32_t awakeN = c.n;
            if (cfg.policy == EnsemblePolicy::PowerOff)
                awakeN = autoscaleTarget(c);
            for (std::uint32_t s = 0; s < c.n; ++s) {
                if (s < awakeN) {
                    c.pos[s] = std::uint32_t(c.awake.size());
                    c.awake.push_back(s);
                    // The exact engine arms every awake server's idle
                    // governor at t=0.
                    pushGov(c, s);
                } else {
                    c.mode[s] = FMode::Off;
                    c.pos[s] = std::uint32_t(c.off.size());
                    c.off.push_back(s);
                }
            }
            if (cfg.mmpp.enabled) {
                double dwell =
                    c.arr.exponential(cfg.mmpp.calmMeanSeconds);
                c.nextFlip = dwell;
                EnsembleFastSim *sim = this;
                sq.laneQueue(ci).schedule(
                    dwell, [sim, ci] { sim->mmppFlip(ci); });
            }
            // First window's macro event.
            EnsembleFastSim *sim = this;
            sq.laneQueue(ci).schedule(
                0.0, [sim, ci] { sim->macroEvent(ci); });
        }
    }
};

} // namespace

EnsembleResult
runEnsembleFast(const EnsembleConfig &cfg)
{
    validateEnsembleConfig(cfg);

    EnsembleFastSim sim(cfg);
    // Event population is tiny: one macro event per cell in flight,
    // plus MMPP flips and spill posts.
    sim.sq.reserve(4096);
    sim.setup();

    unsigned workers = cfg.workers;
    if (workers == 0)
        workers = std::min(cfg.shards,
                           std::max(1u, ThreadPool::defaultThreads()));

    auto t0 = std::chrono::steady_clock::now();
    auto stats = sim.sq.run(
        sim.horizon, cfg.networkLatencySeconds, workers,
        [&](sim::Time now) { sim.onBarrier(now); });
    double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    EnsembleResult r;
    r.servers = cfg.servers;
    r.cells = cfg.cells;
    r.hours = cfg.hours;
    r.secondsPerHour = cfg.secondsPerHour;
    r.policy = cfg.policy;
    r.capClamps = sim.capClamps;

    std::array<double, kServerStates> stateSeconds{};
    std::vector<std::uint64_t> bins(kLatencyBins, 0);
    std::uint64_t overflow = 0;
    r.hourKWh.assign(cfg.hours, 0.0);
    r.hourViolationFraction.assign(cfg.hours, 0.0);
    std::vector<std::uint64_t> hourCompleted(cfg.hours, 0);
    std::vector<std::uint64_t> hourViolations(cfg.hours, 0);

    for (const FastCell &c : sim.cells) {
        r.offered += c.offered;
        r.completed += c.completed;
        r.violations += c.violations;
        r.spilled += c.spilled;
        r.wakes += c.wakes;
        r.boots += c.boots;
        r.sleeps += c.sleeps;
        r.offs += c.offs;
        overflow += c.latOverflow;
        for (unsigned k = 0; k < kServerStates; ++k)
            stateSeconds[k] += c.stateSeconds[k];
        for (unsigned i = 0; i < kLatencyBins; ++i)
            bins[i] += c.latBins[i];
        for (unsigned h = 0; h < cfg.hours; ++h) {
            r.hourKWh[h] += c.hourEnergyWs[h];
            hourCompleted[h] += c.hourCompleted[h];
            hourViolations[h] += c.hourViolations[h];
            r.meanLatency += c.hourLatencySum[h];
        }
    }

    double wsToKWh = 1.0 / (1000.0 * cfg.secondsPerHour);
    for (unsigned h = 0; h < cfg.hours; ++h) {
        r.hourKWh[h] *= wsToKWh;
        r.kWhPerDay += r.hourKWh[h];
        if (hourCompleted[h] > 0)
            r.hourViolationFraction[h] =
                double(hourViolations[h]) /
                double(hourCompleted[h]);
    }

    double daySeconds = sim.horizon;
    r.meanActiveServers =
        stateSeconds[unsigned(ServerState::Active)] / daySeconds;
    r.meanAwakeServers =
        (stateSeconds[unsigned(ServerState::Active)] +
         stateSeconds[unsigned(ServerState::Idle)] +
         stateSeconds[unsigned(ServerState::Waking)] +
         stateSeconds[unsigned(ServerState::Booting)]) /
        daySeconds;
    for (unsigned k = 0; k < kServerStates; ++k)
        r.stateFractions[k] =
            stateSeconds[k] / (daySeconds * double(cfg.servers));

    if (r.completed > 0) {
        r.meanLatency /= double(r.completed);
        auto quantile = [&](double q) {
            double need = q * double(r.completed);
            std::uint64_t cum = 0;
            for (unsigned i = 0; i < kLatencyBins; ++i) {
                cum += bins[i];
                if (double(cum) >= need)
                    return (double(i) + 0.5) * sim.binWidth;
            }
            return double(kLatencyBins) * sim.binWidth;
        };
        r.p50 = quantile(0.50);
        r.p95 = quantile(0.95);
        r.p99 = quantile(0.99);
        r.qosViolationFraction =
            double(r.violations) / double(r.completed);
    } else {
        r.meanLatency = 0.0;
    }
    std::uint64_t onTime = r.completed - r.violations;
    r.qosAttainment =
        r.offered > 0 ? double(onTime) / double(r.offered) : 1.0;
    r.score = r.kWhPerDay / std::max(r.qosAttainment, 0.01);

    auto kernel = sim.sq.counters();
    r.eventsScheduled = kernel.scheduled;
    r.eventsDispatched = kernel.dispatched;
    r.crossCellMessages = stats.messages;
    r.windows = stats.windows;
    r.shardEvents = std::move(stats.shardDispatched);
    r.meanWindowImbalance = stats.meanWindowImbalance;

    r.fastMode = true;
    r.cellHourUtilization.assign(std::size_t(cfg.cells) * cfg.hours,
                                 0.0);
    r.cellHourLatencyMean.assign(std::size_t(cfg.cells) * cfg.hours,
                                 0.0);
    r.cellHourCompleted.assign(std::size_t(cfg.cells) * cfg.hours, 0);
    for (unsigned ci = 0; ci < cfg.cells; ++ci) {
        const FastCell &c = sim.cells[ci];
        for (unsigned h = 0; h < cfg.hours; ++h) {
            std::size_t i = std::size_t(ci) * cfg.hours + h;
            r.cellHourUtilization[i] =
                c.hourActiveSeconds[h] /
                (double(c.n) * cfg.secondsPerHour);
            r.cellHourCompleted[i] = c.hourCompleted[h];
            if (c.hourCompleted[h] > 0)
                r.cellHourLatencyMean[i] =
                    c.hourLatencySum[h] /
                    double(c.hourCompleted[h]);
        }
    }

    r.wallSeconds = wall;
    return r;
}

} // namespace perfsim
} // namespace wsc
