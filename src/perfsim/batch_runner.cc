#include "perfsim/batch_runner.hh"

#include <cmath>
#include <deque>

#include "perfsim/calibration.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

BatchResult
runBatch(const workloads::BatchWorkload &workload,
         const StationConfig &st, Rng &rng,
         const sim::EventQueue::Tracer &tracer)
{
    return runBatch(workload, st, rng, BatchFaultPolicy{}, tracer);
}

BatchResult
runBatch(const workloads::BatchWorkload &workload,
         const StationConfig &st, Rng &rng,
         const BatchFaultPolicy &policy,
         const sim::EventQueue::Tracer &tracer)
{
    for (std::size_t i = 1; i < policy.downWindows.size(); ++i)
        WSC_ASSERT(policy.downWindows[i - 1].second <=
                       policy.downWindows[i].first,
                   "down windows must be sorted and non-overlapping");
    auto tasks = workload.tasks(rng);
    WSC_ASSERT(!tasks.empty(), "batch job has no tasks");

    sim::EventQueue eq;
    if (tracer)
        eq.setTracer(tracer);
    sim::PsResource cpu(eq, "cpu", st.cpuCapacityGHz, st.cpuSlots);
    sim::FifoResource disk(eq, "disk", 1);

    unsigned slots = workload.threadsPerCore() * st.cpuSlots;
    WSC_ASSERT(slots >= 1, "no worker slots");

    std::deque<workloads::BatchTask> maps, reduces;
    for (const auto &t : tasks)
        (t.isReduce ? reduces : maps).push_back(t);

    BatchResult result;
    unsigned running = 0;
    std::size_t maps_left = maps.size();
    double makespan = 0.0;
    bool resume_pending = false;

    // First outage window starting inside [start, end), or null.
    auto kill_window =
        [&](double start,
            double end) -> const std::pair<double, double> * {
        for (const auto &w : policy.downWindows)
            if (w.first >= start && w.first < end)
                return &w;
        return nullptr;
    };

    // Forward declaration so stages can chain back into the scheduler.
    std::function<void()> schedule = [&] {
        // The master starts no task while the node is down; dispatch
        // resumes when the current window ends.
        for (const auto &w : policy.downWindows) {
            if (eq.now() >= w.first && eq.now() < w.second) {
                if (!resume_pending) {
                    resume_pending = true;
                    eq.schedule(w.second, [&] {
                        resume_pending = false;
                        schedule();
                    });
                }
                return;
            }
        }
        while (running < slots) {
            std::deque<workloads::BatchTask> *queue = nullptr;
            if (!maps.empty())
                queue = &maps;
            else if (maps_left == 0 && !reduces.empty())
                queue = &reduces;
            if (!queue)
                return;
            workloads::BatchTask task = queue->front();
            queue->pop_front();
            ++running;

            auto retire = [&, task, start = eq.now()] {
                --running;
                // A task whose execution overlapped an outage lost its
                // node: kill it and re-execute the unsaved remainder.
                // Starts never happen inside a window (dispatch is
                // deferred), so overlap means a window began mid-run.
                if (const auto *w = kill_window(start, eq.now())) {
                    double progress = w->first - start;
                    double saved = 0.0;
                    if (policy.checkpointIntervalSeconds > 0.0)
                        saved = std::floor(
                                    progress /
                                    policy.checkpointIntervalSeconds) *
                                policy.checkpointIntervalSeconds;
                    double elapsed = eq.now() - start;
                    double redo =
                        elapsed > 0.0 ? (elapsed - saved) / elapsed
                                      : 1.0;
                    workloads::BatchTask again = task;
                    again.cpuWork *= redo;
                    again.diskReadBytes *= redo;
                    again.diskWriteBytes *= redo;
                    (again.isReduce ? reduces : maps)
                        .push_front(again);
                    ++result.tasksReexecuted;
                    if (saved > 0.0)
                        ++result.checkpointRestores;
                    result.lostWorkSeconds +=
                        std::max(0.0, progress - saved);
                    schedule();
                    return;
                }
                ++result.tasksRun;
                if (!task.isReduce)
                    --maps_left;
                makespan = eq.now();
                schedule();
            };
            auto cpu_stage = [&, task, retire] {
                double work = task.cpuWork * st.serviceSlowdown;
                cpu.submit(work, [&, task, retire] {
                    if (task.diskWriteBytes > 0.0) {
                        double service =
                            st.diskAccessMs * 1e-3 * writeAccessFactor +
                            task.diskWriteBytes /
                                (st.diskWriteMBs * 1e6);
                        disk.submit(service, retire);
                    } else {
                        retire();
                    }
                });
            };
            if (task.diskReadBytes > 0.0) {
                double service = st.diskAccessMs * 1e-3 +
                                 task.diskReadBytes /
                                     (st.diskReadMBs * 1e6);
                disk.submit(service, cpu_stage);
            } else {
                cpu_stage();
            }
        }
    };

    eq.schedule(0.0, schedule);
    eq.runAll();

    WSC_ASSERT(result.tasksRun == tasks.size(),
               "batch run retired " << result.tasksRun << " of "
                                    << tasks.size() << " tasks");
    result.makespanSeconds = makespan;
    result.cpuUtilization = cpu.utilization();
    result.diskUtilization = disk.utilization();
    result.stations = {cpu.stats(), disk.stats()};
    result.kernel = eq.counters();
    return result;
}

} // namespace perfsim
} // namespace wsc
