#include "perfsim/batch_runner.hh"

#include <deque>

#include "perfsim/calibration.hh"
#include "util/logging.hh"

namespace wsc {
namespace perfsim {

BatchResult
runBatch(const workloads::BatchWorkload &workload,
         const StationConfig &st, Rng &rng,
         const sim::EventQueue::Tracer &tracer)
{
    auto tasks = workload.tasks(rng);
    WSC_ASSERT(!tasks.empty(), "batch job has no tasks");

    sim::EventQueue eq;
    if (tracer)
        eq.setTracer(tracer);
    sim::PsResource cpu(eq, "cpu", st.cpuCapacityGHz, st.cpuSlots);
    sim::FifoResource disk(eq, "disk", 1);

    unsigned slots = workload.threadsPerCore() * st.cpuSlots;
    WSC_ASSERT(slots >= 1, "no worker slots");

    std::deque<workloads::BatchTask> maps, reduces;
    for (const auto &t : tasks)
        (t.isReduce ? reduces : maps).push_back(t);

    BatchResult result;
    unsigned running = 0;
    std::size_t maps_left = maps.size();
    double makespan = 0.0;

    // Forward declaration so stages can chain back into the scheduler.
    std::function<void()> schedule = [&] {
        while (running < slots) {
            std::deque<workloads::BatchTask> *queue = nullptr;
            if (!maps.empty())
                queue = &maps;
            else if (maps_left == 0 && !reduces.empty())
                queue = &reduces;
            if (!queue)
                return;
            workloads::BatchTask task = queue->front();
            queue->pop_front();
            ++running;

            auto retire = [&, task] {
                --running;
                ++result.tasksRun;
                if (!task.isReduce)
                    --maps_left;
                makespan = eq.now();
                schedule();
            };
            auto cpu_stage = [&, task, retire] {
                double work = task.cpuWork * st.serviceSlowdown;
                cpu.submit(work, [&, task, retire] {
                    if (task.diskWriteBytes > 0.0) {
                        double service =
                            st.diskAccessMs * 1e-3 * writeAccessFactor +
                            task.diskWriteBytes /
                                (st.diskWriteMBs * 1e6);
                        disk.submit(service, retire);
                    } else {
                        retire();
                    }
                });
            };
            if (task.diskReadBytes > 0.0) {
                double service = st.diskAccessMs * 1e-3 +
                                 task.diskReadBytes /
                                     (st.diskReadMBs * 1e6);
                disk.submit(service, cpu_stage);
            } else {
                cpu_stage();
            }
        }
    };

    eq.schedule(0.0, schedule);
    eq.runAll();

    WSC_ASSERT(result.tasksRun == tasks.size(),
               "batch run retired " << result.tasksRun << " of "
                                    << tasks.size() << " tasks");
    result.makespanSeconds = makespan;
    result.cpuUtilization = cpu.utilization();
    result.diskUtilization = disk.utilization();
    result.stations = {cpu.stats(), disk.stats()};
    result.kernel = eq.counters();
    return result;
}

} // namespace perfsim
} // namespace wsc
