/**
 * @file
 * One-call performance evaluation of a (platform, benchmark) pair.
 *
 * Wraps station derivation, the sustainable-throughput search, and the
 * batch runner behind a single facade returning the paper's "Perf"
 * number: RPS-with-QoS for interactive workloads, reciprocal execution
 * time for batch workloads.
 */

#ifndef WSC_PERFSIM_PERF_EVAL_HH
#define WSC_PERFSIM_PERF_EVAL_HH

#include <optional>

#include "perfsim/batch_runner.hh"
#include "perfsim/throughput.hh"
#include "platform/server_config.hh"
#include "workloads/suite.hh"

namespace wsc {
namespace perfsim {

/** Options altering the evaluated configuration. */
struct PerfOptions {
    /** Replace the platform's disk (e.g. remote laptop via SAN). */
    std::optional<platform::DiskModel> diskOverride;
    /**
     * Extra disk access latency in milliseconds (e.g. SAN round trip
     * for remote disks); added to the disk model's access time.
     */
    double extraDiskAccessMs = 0.0;
    /**
     * Fraction of disk accesses absorbed by a flash cache, on top of
     * the workload's page-cache hit rate; see flashcache module.
     */
    double flashCacheHitRate = 0.0;
    /** Flash-served access time (ms) and bandwidth (MB/s). */
    double flashAccessMs = 0.2;
    double flashReadMBs = 50.0;
    /** Uniform service stretch (memory-blade remote-miss slowdown). */
    double serviceSlowdown = 1.0;
    /** RNG seed; fixed default for reproducibility. */
    std::uint64_t seed = 12345;
    SearchParams search;
};

/** Performance with measurement context. */
struct PerfMeasurement {
    double perf = 0.0;  //!< RPS (interactive) or 1/seconds (batch)
    bool interactive = true;
    double sustainableRps = 0.0;
    double makespanSeconds = 0.0;
    double cpuUtilization = 0.0;
    double diskUtilization = 0.0;
    double nicUtilization = 0.0;

    /** Latency distribution at the sustainable operating point
     * (interactive only; zeros for batch). */
    double meanLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    double qosViolationFraction = 0.0;
    double qosLatencyLimit = 0.0; //!< seconds; 0 when no QoS applies

    /** Station with the highest utilization at the operating point. */
    std::string bottleneck;
    /** Station snapshots from the measurement run. */
    std::vector<sim::StationStats> stations;
    /** Kernel activity summed over every simulation this measurement
     * ran (all throughput-search probes, or the one batch run). */
    sim::EventQueue::Counters kernel;
    /** Fixed-rate simulations the throughput search ran (1 for batch). */
    std::uint64_t searchProbes = 0;
};

/**
 * Evaluates benchmarks against platforms with a fixed reference CPU
 * (srvr1) for the calibration model.
 */
class PerfEvaluator
{
  public:
    /** Uses srvr1's CPU as the calibration reference. */
    PerfEvaluator();

    /** Explicit reference CPU (for what-if studies). */
    explicit PerfEvaluator(platform::CpuModel reference);

    /** Measure one benchmark on one platform. */
    PerfMeasurement measure(const platform::ServerConfig &server,
                            workloads::Benchmark benchmark,
                            const PerfOptions &options = {}) const;

    /** Station derivation including the option overrides (exposed for
     * tests and the flashcache module). */
    StationConfig stationsFor(const platform::ServerConfig &server,
                              const workloads::WorkloadTraits &traits,
                              const PerfOptions &options) const;

    const platform::CpuModel &reference() const { return ref; }

  private:
    platform::CpuModel ref;
};

} // namespace perfsim
} // namespace wsc

#endif // WSC_PERFSIM_PERF_EVAL_HH
