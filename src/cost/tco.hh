/**
 * @file
 * Three-year total-cost-of-ownership model.
 *
 * Combines per-server hardware costs, amortized rack-shared hardware,
 * and burdened power-and-cooling into the paper's TCO-$ metric, with
 * the per-category breakdown of Figure 1(b).
 */

#ifndef WSC_COST_TCO_HH
#define WSC_COST_TCO_HH

#include <string>
#include <vector>

#include "cost/burdened_power.hh"
#include "cost/component_cost.hh"
#include "power/component_power.hh"
#include "power/rack_power.hh"

namespace wsc {
namespace cost {

/**
 * The full lifecycle-cost result for one server, all in dollars over
 * the depreciation window.
 */
struct TcoResult {
    // Hardware (infrastructure) side.
    ComponentCost hw;          //!< per-server component hardware
    double rackHwShare = 0.0;  //!< amortized switch/enclosure share

    // Burdened power-and-cooling side, per component.
    power::ComponentPower watts;   //!< max operational component watts
    ComponentCost pc;              //!< burdened P&C $ per component
    double switchPcShare = 0.0;    //!< burdened P&C $ for switch share

    /** Per-server hardware dollars (excluding rack share). */
    double serverHw() const { return hw.total(); }

    /** Infrastructure dollars: server HW + rack share. */
    double infrastructure() const { return hw.total() + rackHwShare; }

    /** Burdened power-and-cooling dollars. */
    double powerCooling() const { return pc.total() + switchPcShare; }

    /** Total cost of ownership. */
    double tco() const { return infrastructure() + powerCooling(); }

    /** Max operational per-server watts including switch share. */
    double wattsWithSwitch = 0.0;
};

/** One slice of the Figure 1(b)-style breakdown. */
struct BreakdownSlice {
    std::string label;
    double dollars;
    double fraction; //!< of total TCO
};

/**
 * TCO model: evaluates a (component cost, component power) pair under
 * rack and burdened-power parameters.
 */
class TcoModel
{
  public:
    TcoModel(RackCostParams rack_cost, power::RackPowerParams rack_power,
             BurdenedPowerParams burden);

    /** Evaluate the lifecycle cost of one server. */
    TcoResult evaluate(const ComponentCost &hw,
                       const power::ComponentPower &watts) const;

    /**
     * The Figure 1(b) breakdown: one slice per component for hardware
     * and one per component for P&C, plus rack HW and rack P&C.
     */
    std::vector<BreakdownSlice> breakdown(const TcoResult &r) const;

    const BurdenedPowerParams &burden() const { return burden_; }
    const RackCostParams &rackCost() const { return rackCost_; }
    const power::RackPowerParams &rackPower() const { return rackPower_; }

  private:
    RackCostParams rackCost_;
    power::RackPowerParams rackPower_;
    BurdenedPowerParams burden_;
};

} // namespace cost
} // namespace wsc

#endif // WSC_COST_TCO_HH
