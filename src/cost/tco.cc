#include "cost/tco.hh"

#include "util/logging.hh"

namespace wsc {
namespace cost {

TcoModel::TcoModel(RackCostParams rack_cost,
                   power::RackPowerParams rack_power,
                   BurdenedPowerParams burden)
    : rackCost_(rack_cost), rackPower_(rack_power), burden_(burden)
{
    WSC_ASSERT(rackCost_.serversPerRack == rackPower_.serversPerRack,
               "rack cost and power models disagree on servers per rack");
}

TcoResult
TcoModel::evaluate(const ComponentCost &hw,
                   const power::ComponentPower &watts) const
{
    TcoResult r;
    r.hw = hw;
    r.watts = watts;
    r.rackHwShare =
        rackCost_.switchRackCost / double(rackCost_.serversPerRack);

    auto pc_of = [&](double w) {
        return burdenedPowerCoolingCost(burden_, w);
    };
    r.pc.cpu = pc_of(watts.cpu);
    r.pc.memory = pc_of(watts.memory);
    r.pc.disk = pc_of(watts.disk);
    r.pc.boardMgmt = pc_of(watts.boardMgmt);
    r.pc.powerFans = pc_of(watts.powerFans);
    double switch_share =
        rackPower_.switchWatts / double(rackPower_.serversPerRack);
    r.switchPcShare = pc_of(switch_share);
    r.wattsWithSwitch = watts.total() + switch_share;
    return r;
}

std::vector<BreakdownSlice>
TcoModel::breakdown(const TcoResult &r) const
{
    double total = r.tco();
    WSC_ASSERT(total > 0.0, "TCO breakdown of zero-cost result");
    auto slice = [&](std::string label, double dollars) {
        return BreakdownSlice{std::move(label), dollars, dollars / total};
    };
    return {
        slice("CPU HW", r.hw.cpu),
        slice("CPU P&C", r.pc.cpu),
        slice("Mem HW", r.hw.memory),
        slice("Mem P&C", r.pc.memory),
        slice("Disk HW", r.hw.disk),
        slice("Disk P&C", r.pc.disk),
        slice("Board HW", r.hw.boardMgmt),
        slice("Board P&C", r.pc.boardMgmt),
        slice("Fan HW", r.hw.powerFans),
        slice("Fans P&C", r.pc.powerFans),
        slice("Rack HW", r.rackHwShare),
        slice("Rack P&C", r.switchPcShare),
    };
}

} // namespace cost
} // namespace wsc
