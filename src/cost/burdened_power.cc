#include "cost/burdened_power.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace wsc {
namespace cost {

double
burdenedCostOfSustainedWatts(const BurdenedPowerParams &p,
                             double sustained_watts)
{
    WSC_ASSERT(sustained_watts >= 0.0, "negative power");
    WSC_ASSERT(p.years > 0.0, "non-positive depreciation window");
    WSC_ASSERT(p.tariffPerMWh >= 0.0, "negative tariff");
    double energy_mwh = units::energyMWh(sustained_watts, p.years);
    return p.burdenMultiplier() * p.tariffPerMWh * energy_mwh;
}

double
burdenedPowerCoolingCost(const BurdenedPowerParams &p,
                         double max_operational_watts)
{
    WSC_ASSERT(p.activityFactor > 0.0 && p.activityFactor <= 1.0,
               "activity factor out of (0, 1]");
    return burdenedCostOfSustainedWatts(
        p, max_operational_watts * p.activityFactor);
}

} // namespace cost
} // namespace wsc
