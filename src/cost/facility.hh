/**
 * @file
 * Facility model: deriving the burdened-cost constants from physical
 * datacenter parameters.
 *
 * The paper takes K1, L1, K2 as published constants (1.33 / 0.8 /
 * 0.667, from Patel & Shah's cost model). Those constants are not
 * arbitrary: they follow from the facility's capital intensity and
 * cooling efficiency. This module reconstructs them:
 *
 *  - K1: amortized power-delivery capital (UPS, PDUs, switchgear,
 *    generators) per dollar of IT electricity,
 *      K1 = (powerCapexPerWatt / infraLifeYears)
 *            / (tariff * hours/yr * activity)
 *  - L1: cooling electricity per watt of IT power = 1 / COP of the
 *    cooling plant,
 *  - K2: amortized cooling-plant capital per dollar of cooling
 *    electricity, analogous to K1 over the cooling load.
 *
 * With 2008-typical inputs ($10.50/W power infrastructure, $4.20/W
 * cooling plant, 12-year infrastructure life, COP 1.25, $100/MWh,
 * activity 0.75) the derivation lands on the paper's constants to
 * within a few percent — and exposes the real knobs (COP, capex,
 * tariff) behind the packaging/cooling studies.
 */

#ifndef WSC_COST_FACILITY_HH
#define WSC_COST_FACILITY_HH

#include "cost/burdened_power.hh"

namespace wsc {
namespace cost {

/** Physical facility parameters (2008-typical defaults). */
struct FacilityParams {
    /** Power-delivery capital per IT watt of capacity. */
    double powerCapexPerWatt = 10.5;
    /** Cooling-plant capital per IT watt of capacity. */
    double coolingCapexPerWatt = 4.2;
    /** Facility infrastructure depreciation, years. */
    double infraLifeYears = 12.0;
    /** Coefficient of performance of the cooling plant. */
    double cop = 1.25;
    /** Electrical distribution losses charged with cooling. */
    double distributionLossFraction = 0.0;
};

/**
 * Derive burdened-cost parameters from the facility description.
 * tariff and activity factor (and depreciation window) are carried
 * over from @p economic.
 */
BurdenedPowerParams deriveBurdenedParams(
    const FacilityParams &facility, const BurdenedPowerParams &economic);

/**
 * Power usage effectiveness implied by the facility: total facility
 * power over IT power, 1 + 1/COP + losses.
 */
double impliedPue(const FacilityParams &facility);

/**
 * The COP a facility would need for a given L1 (used to express the
 * paper's packaging gains as plant-level equivalents).
 */
double copForL1(double l1);

} // namespace cost
} // namespace wsc

#endif // WSC_COST_FACILITY_HH
