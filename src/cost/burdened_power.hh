/**
 * @file
 * Burdened power-and-cooling cost model (Patel et al.).
 *
 * The paper (Section 2.2) computes the lifecycle cost of powering and
 * cooling a rack as
 *
 *   PowerCoolingCost = (1 + K1 + L1 * (1 + K2)) * U_grid * E_consumed
 *
 * where
 *   - K1 amortizes the power-delivery infrastructure,
 *   - L1 is the cooling electricity load factor (watts of cooling per
 *     watt of IT power),
 *   - K2 amortizes the cooling infrastructure capital expenditure over
 *     the cooling electricity,
 *   - U_grid is the electricity tariff, and
 *   - E_consumed is the sustained IT energy over the depreciation
 *     window (activity factor applied).
 *
 * With the paper's defaults (K1 = 1.33, L1 = 0.8, K2 = 0.667, tariff
 * $100/MWh, activity factor 0.75, 3-year depreciation) this model
 * reproduces Figure 1(a)'s published burdened costs: $2,464 for srvr1
 * (341 W with switch share) and $1,561 for srvr2 (216 W).
 */

#ifndef WSC_COST_BURDENED_POWER_HH
#define WSC_COST_BURDENED_POWER_HH

namespace wsc {
namespace cost {

/** Parameters of the burdened power-and-cooling cost model. */
struct BurdenedPowerParams {
    double k1 = 1.33;           //!< power-delivery infra amortization
    double l1 = 0.8;            //!< cooling load factor
    double k2 = 0.667;          //!< cooling infra amortization
    double tariffPerMWh = 100.0; //!< electricity tariff, $/MWh
    double activityFactor = 0.75; //!< sustained / max operational power
    double years = 3.0;          //!< depreciation window

    /** Overall burden multiplier (1 + K1 + L1*(1 + K2)). */
    double
    burdenMultiplier() const
    {
        return 1.0 + k1 + l1 * (1.0 + k2);
    }
};

/**
 * Burdened power-and-cooling lifecycle cost for a device drawing
 * @p max_operational_watts (activity factor is applied internally).
 *
 * @param p Model parameters.
 * @param max_operational_watts Maximum operational power draw.
 * @return Dollars over the depreciation window.
 */
double burdenedPowerCoolingCost(const BurdenedPowerParams &p,
                                double max_operational_watts);

/**
 * Same, for an already-sustained (post-activity-factor) power draw.
 * Used when the caller models activity explicitly.
 */
double burdenedCostOfSustainedWatts(const BurdenedPowerParams &p,
                                    double sustained_watts);

} // namespace cost
} // namespace wsc

#endif // WSC_COST_BURDENED_POWER_HH
