/**
 * @file
 * Per-server component hardware cost specification.
 *
 * Mirrors the line items of the paper's Figure 1(a): CPU, memory, disk,
 * board + management, and power-conversion + fans, in US dollars per
 * server.
 */

#ifndef WSC_COST_COMPONENT_COST_HH
#define WSC_COST_COMPONENT_COST_HH

namespace wsc {
namespace cost {

/** Hardware cost per server component, in dollars. */
struct ComponentCost {
    double cpu = 0.0;
    double memory = 0.0;
    double disk = 0.0;
    double boardMgmt = 0.0;
    double powerFans = 0.0;

    /** Per-server hardware cost (excluding rack-shared items). */
    double
    total() const
    {
        return cpu + memory + disk + boardMgmt + powerFans;
    }

    ComponentCost
    operator+(const ComponentCost &o) const
    {
        return {cpu + o.cpu, memory + o.memory, disk + o.disk,
                boardMgmt + o.boardMgmt, powerFans + o.powerFans};
    }

    ComponentCost
    scaled(double f) const
    {
        return {cpu * f, memory * f, disk * f, boardMgmt * f,
                powerFans * f};
    }
};

/** Rack-shared hardware cost parameters. */
struct RackCostParams {
    unsigned serversPerRack = 40;
    double switchRackCost = 2750.0; //!< switch + enclosure per rack
};

} // namespace cost
} // namespace wsc

#endif // WSC_COST_COMPONENT_COST_HH
