#include "cost/facility.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace wsc {
namespace cost {

BurdenedPowerParams
deriveBurdenedParams(const FacilityParams &f,
                     const BurdenedPowerParams &economic)
{
    WSC_ASSERT(f.powerCapexPerWatt >= 0.0, "negative power capex");
    WSC_ASSERT(f.coolingCapexPerWatt >= 0.0, "negative cooling capex");
    WSC_ASSERT(f.infraLifeYears > 0.0, "non-positive infra life");
    WSC_ASSERT(f.cop > 0.0, "non-positive COP");
    WSC_ASSERT(economic.tariffPerMWh > 0.0, "non-positive tariff");
    WSC_ASSERT(economic.activityFactor > 0.0 &&
                   economic.activityFactor <= 1.0,
               "activity factor out of (0, 1]");

    // Yearly electricity dollars for one sustained IT watt.
    double dollars_per_watt_year = economic.tariffPerMWh / 1.0e6 *
                                   units::hoursPerYear *
                                   economic.activityFactor;

    BurdenedPowerParams out = economic;
    out.k1 = (f.powerCapexPerWatt / f.infraLifeYears) /
             dollars_per_watt_year;
    out.l1 = 1.0 / f.cop + f.distributionLossFraction;
    // Cooling capital amortized against the cooling electricity.
    double cooling_dollars_per_watt_year =
        out.l1 * dollars_per_watt_year;
    WSC_ASSERT(cooling_dollars_per_watt_year > 0.0,
               "degenerate cooling load");
    out.k2 = (f.coolingCapexPerWatt / f.infraLifeYears) /
             cooling_dollars_per_watt_year;
    return out;
}

double
impliedPue(const FacilityParams &f)
{
    WSC_ASSERT(f.cop > 0.0, "non-positive COP");
    return 1.0 + 1.0 / f.cop + f.distributionLossFraction;
}

double
copForL1(double l1)
{
    WSC_ASSERT(l1 > 0.0, "non-positive cooling load factor");
    return 1.0 / l1;
}

} // namespace cost
} // namespace wsc
