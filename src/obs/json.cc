#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace wsc {
namespace obs {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    out += '\n';
    out.append(stack.size() * 2, ' ');
}

void
JsonWriter::beforeValue()
{
    WSC_ASSERT(!rootDone, "JSON document already complete");
    if (stack.empty())
        return;
    Level &top = stack.back();
    if (top.scope == Scope::Object) {
        WSC_ASSERT(keyPending, "JSON value in object without a key");
        keyPending = false;
        return;
    }
    if (top.hasItems)
        out += ',';
    top.hasItems = true;
    indent();
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    WSC_ASSERT(!stack.empty() && stack.back().scope == Scope::Object,
               "JSON key outside an object");
    WSC_ASSERT(!keyPending, "JSON key after key");
    Level &top = stack.back();
    if (top.hasItems)
        out += ',';
    top.hasItems = true;
    indent();
    out += '"';
    out += escape(name);
    out += "\": ";
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    stack.push_back(Level{Scope::Object});
    out += '{';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    WSC_ASSERT(!stack.empty() && stack.back().scope == Scope::Object,
               "unmatched JSON endObject");
    WSC_ASSERT(!keyPending, "JSON object closed with a dangling key");
    bool had = stack.back().hasItems;
    stack.pop_back();
    if (had) {
        out += '\n';
        out.append(stack.size() * 2, ' ');
    }
    out += '}';
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    stack.push_back(Level{Scope::Array});
    out += '[';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    WSC_ASSERT(!stack.empty() && stack.back().scope == Scope::Array,
               "unmatched JSON endArray");
    bool had = stack.back().hasItems;
    stack.pop_back();
    if (had) {
        out += '\n';
        out.append(stack.size() * 2, ' ');
    }
    out += ']';
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    out += '"';
    out += escape(s);
    out += '"';
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    if (!std::isfinite(d))
        return null();
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t n)
{
    beforeValue();
    out += std::to_string(n);
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out += b ? "true" : "false";
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out += "null";
    if (stack.empty())
        rootDone = true;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    WSC_ASSERT(stack.empty() && rootDone,
               "JSON document incomplete: " << stack.size()
                                            << " open container(s)");
    return out;
}

} // namespace obs
} // namespace wsc
