#include "obs/metrics.hh"

namespace wsc {
namespace obs {

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
MetricRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    // Snapshot the source first: taking both locks at once would
    // deadlock if two registries ever merged into each other
    // concurrently.
    auto counterSnaps = other.counters();
    auto gaugeSnaps = other.gauges();
    auto timerSnaps = other.timers();

    for (const auto &c : counterSnaps)
        counter(c.name).add(c.value);
    for (const auto &g : gaugeSnaps)
        gauge(g.name).raise(g.value);
    for (const auto &t : timerSnaps) {
        Timer &dst = timer(t.name);
        dst.nanos.fetch_add(std::uint64_t(t.seconds * 1e9),
                            std::memory_order_relaxed);
        dst.samples.fetch_add(t.count, std::memory_order_relaxed);
    }
}

std::vector<MetricRegistry::CounterSnap>
MetricRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<CounterSnap> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.push_back({name, c->value()});
    return out;
}

std::vector<MetricRegistry::GaugeSnap>
MetricRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<GaugeSnap> out;
    out.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.push_back({name, g->value()});
    return out;
}

std::vector<MetricRegistry::TimerSnap>
MetricRegistry::timers() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TimerSnap> out;
    out.reserve(timers_.size());
    for (const auto &[name, t] : timers_)
        out.push_back({name, t->totalSeconds(), t->count()});
    return out;
}

} // namespace obs
} // namespace wsc
