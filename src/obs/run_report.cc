#include "obs/run_report.hh"

#include <algorithm>
#include <map>

#include "obs/json.hh"

namespace wsc {
namespace obs {

namespace {

void
writeStation(JsonWriter &w, const StationReport &s)
{
    w.beginObject();
    w.key("name").value(s.name);
    w.key("utilization").value(s.utilization);
    w.key("completed").value(s.completed);
    w.key("peak_depth").value(s.peakDepth);
    w.key("mean_depth").value(s.meanDepth);
    w.endObject();
}

void
writeKernel(JsonWriter &w, const KernelReport &k)
{
    w.beginObject();
    w.key("scheduled").value(k.scheduled);
    w.key("dispatched").value(k.dispatched);
    w.key("cancelled").value(k.cancelled);
    w.key("compactions").value(k.compactions);
    w.key("peak_heap").value(k.peakHeap);
    w.endObject();
}

void
writeCell(JsonWriter &w, const CellReport &c, const ReportOptions &opts)
{
    w.beginObject();
    w.key("design").value(c.design);
    w.key("benchmark").value(c.benchmark);
    w.key("interactive").value(c.interactive);
    w.key("perf").value(c.perf);
    w.key("sustainable_rps").value(c.sustainableRps);
    w.key("makespan_seconds").value(c.makespanSeconds);
    w.key("latency");
    w.beginObject();
    w.key("mean").value(c.latency.mean);
    w.key("p50").value(c.latency.p50);
    w.key("p95").value(c.latency.p95);
    w.key("p99").value(c.latency.p99);
    w.endObject();
    w.key("qos_violation_fraction").value(c.qosViolationFraction);
    w.key("qos_latency_limit").value(c.qosLatencyLimit);
    w.key("bottleneck").value(c.bottleneck);
    w.key("stations");
    w.beginArray();
    for (const auto &s : c.stations)
        writeStation(w, s);
    w.endArray();
    w.key("kernel");
    writeKernel(w, c.kernel);
    w.key("search_probes").value(c.searchProbes);
    if (opts.includeTimings)
        w.key("wall_seconds").value(c.wallSeconds);
    w.endObject();
}

void
writeAvail(JsonWriter &w, const AvailReport &a)
{
    w.beginObject();
    w.key("design").value(a.design);
    w.key("benchmark").value(a.benchmark);
    w.key("spec").value(a.spec);
    w.key("mttf_scale").value(a.mttfScale);
    w.key("servers").value(a.servers);
    w.key("offered_rps").value(a.offeredRps);
    w.key("horizon_seconds").value(a.horizonSeconds);
    w.key("avail");
    w.beginObject();
    w.key("availability").value(a.availability);
    w.key("epochs_total").value(a.epochsTotal);
    w.key("epochs_passed").value(a.epochsPassed);
    w.key("goodput_rps").value(a.goodputRps);
    w.key("goodput_fraction").value(a.goodputFraction);
    w.key("mean_time_to_qos_violation_seconds")
        .value(a.meanTimeToQosViolationSeconds);
    w.endObject();
    w.key("protocol");
    w.beginObject();
    w.key("offered").value(a.offered);
    w.key("completions").value(a.completions);
    w.key("qos_violations").value(a.qosViolations);
    w.key("timeouts").value(a.timeouts);
    w.key("retries").value(a.retries);
    w.key("giveups").value(a.giveups);
    w.key("late_completions").value(a.lateCompletions);
    w.endObject();
    w.key("faults");
    w.beginObject();
    w.key("per_component");
    w.beginArray();
    for (const auto &f : a.faults) {
        w.beginObject();
        w.key("component").value(f.component);
        w.key("failures").value(f.failures);
        w.key("repairs").value(f.repairs);
        w.endObject();
    }
    w.endArray();
    w.key("server_crashes").value(a.serverCrashes);
    w.key("thermal_throttles").value(a.thermalThrottles);
    w.key("thermal_shutdowns").value(a.thermalShutdowns);
    w.key("server_down_fraction").value(a.serverDownFraction);
    w.key("server_degraded_fraction").value(a.serverDegradedFraction);
    w.key("blast_radius_mean").value(a.blastRadiusMean);
    w.key("blast_radius_max").value(a.blastRadiusMax);
    w.endObject();
    w.key("kernel");
    writeKernel(w, a.kernel);
    w.endObject();
}

void
writeEnsemble(JsonWriter &w, const EnsembleReport &e,
              const ReportOptions &opts)
{
    w.beginObject();
    w.key("policy").value(e.policy);
    // Omitted when empty: plain (design-free) ensemble runs keep
    // their byte layout.
    if (!e.design.empty())
        w.key("design").value(e.design);
    w.key("servers").value(e.servers);
    w.key("cells").value(e.cells);
    w.key("hours").value(e.hours);
    w.key("seconds_per_hour").value(e.secondsPerHour);
    w.key("offered").value(e.offered);
    w.key("completed").value(e.completed);
    w.key("violations").value(e.violations);
    w.key("spilled").value(e.spilled);
    w.key("wakes").value(e.wakes);
    w.key("boots").value(e.boots);
    w.key("sleeps").value(e.sleeps);
    w.key("offs").value(e.offs);
    w.key("cap_clamps").value(e.capClamps);
    w.key("kwh_per_day").value(e.kWhPerDay);
    w.key("analytical_kwh_per_day").value(e.analyticalKWhPerDay);
    w.key("mean_active_servers").value(e.meanActiveServers);
    w.key("mean_awake_servers").value(e.meanAwakeServers);
    w.key("state_fractions");
    w.beginObject();
    w.key("active").value(e.activeFraction);
    w.key("idle").value(e.idleFraction);
    w.key("sleep").value(e.sleepFraction);
    w.key("waking").value(e.wakingFraction);
    w.key("off").value(e.offFraction);
    w.key("booting").value(e.bootingFraction);
    w.endObject();
    w.key("latency");
    w.beginObject();
    w.key("mean").value(e.latency.mean);
    w.key("p50").value(e.latency.p50);
    w.key("p95").value(e.latency.p95);
    w.key("p99").value(e.latency.p99);
    w.endObject();
    w.key("qos_violation_fraction").value(e.qosViolationFraction);
    w.key("qos_attainment").value(e.qosAttainment);
    w.key("score").value(e.score);
    w.key("hour_kwh");
    w.beginArray();
    for (double v : e.hourKWh)
        w.value(v);
    w.endArray();
    w.key("hour_violation_fraction");
    w.beginArray();
    for (double v : e.hourViolationFraction)
        w.value(v);
    w.endArray();
    w.key("kernel");
    w.beginObject();
    w.key("scheduled").value(e.eventsScheduled);
    w.key("dispatched").value(e.eventsDispatched);
    w.key("cross_cell_messages").value(e.crossCellMessages);
    w.key("windows").value(e.windows);
    w.endObject();
    // Omitted when empty: exact-mode reports keep their byte layout.
    if (!e.fastMode.empty())
        w.key("fast_mode").value(e.fastMode);
    if (opts.includeTimings)
        w.key("wall_seconds").value(e.wallSeconds);
    w.endObject();
}

} // namespace

SweepRollup
SweepReport::rollup() const
{
    SweepRollup r;
    r.cells = cells.size();
    std::map<std::string, std::uint64_t> byStation;
    for (const auto &c : cells) {
        r.eventsDispatched += c.kernel.dispatched;
        r.searchProbes += c.searchProbes;
        if (!c.bottleneck.empty())
            ++byStation[c.bottleneck];
    }
    for (const auto &[station, count] : byStation)
        r.bottlenecks.push_back({station, count});
    return r;
}

void
SweepReport::captureMetrics(const MetricRegistry &registry)
{
    counters = registry.counters();
    gauges = registry.gauges();
    timers = registry.timers();
}

std::string
toJson(const CellReport &cell, const ReportOptions &opts)
{
    JsonWriter w;
    writeCell(w, cell, opts);
    return w.str();
}

std::string
toJson(const AvailReport &avail, const ReportOptions &)
{
    JsonWriter w;
    writeAvail(w, avail);
    return w.str();
}

std::string
toJson(const EnsembleReport &ensemble, const ReportOptions &opts)
{
    JsonWriter w;
    writeEnsemble(w, ensemble, opts);
    return w.str();
}

std::string
toJson(const SweepReport &report, const ReportOptions &opts)
{
    JsonWriter w;
    w.beginObject();
    w.key("tool").value(report.tool);
    w.key("base_seed").value(report.baseSeed);
    w.key("threads").value(report.threads);
    // Omitted when empty: exact-mode reports keep their pre-fast-mode
    // byte layout.
    if (!report.fastMode.empty())
        w.key("fast_mode").value(report.fastMode);

    w.key("cells");
    w.beginArray();
    for (const auto &c : report.cells)
        writeCell(w, c, opts);
    w.endArray();

    // Omitted when empty: zero-fault reports keep their pre-fault
    // byte layout.
    if (!report.avail.empty()) {
        w.key("avail");
        w.beginArray();
        for (const auto &a : report.avail)
            writeAvail(w, a);
        w.endArray();
    }

    // Omitted when empty: non-ensemble reports keep their byte layout.
    if (!report.ensemble.empty()) {
        w.key("ensemble");
        w.beginArray();
        for (const auto &e : report.ensemble)
            writeEnsemble(w, e, opts);
        w.endArray();
    }

    SweepRollup roll = report.rollup();
    w.key("rollup");
    w.beginObject();
    w.key("cells").value(roll.cells);
    w.key("events_dispatched").value(roll.eventsDispatched);
    w.key("search_probes").value(roll.searchProbes);
    w.key("bottlenecks");
    w.beginArray();
    for (const auto &b : roll.bottlenecks) {
        w.beginObject();
        w.key("station").value(b.station);
        w.key("cells").value(b.cells);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("counters");
    w.beginObject();
    for (const auto &c : report.counters)
        w.key(c.name).value(c.value);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &g : report.gauges)
        w.key(g.name).value(g.value);
    w.endObject();
    if (opts.includeTimings) {
        w.key("timers");
        w.beginObject();
        for (const auto &t : report.timers) {
            w.key(t.name);
            w.beginObject();
            w.key("seconds").value(t.seconds);
            w.key("count").value(t.count);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

} // namespace obs
} // namespace wsc
