/**
 * @file
 * Structured run reports for design-space sweeps.
 *
 * One CellReport per (design x workload) cell captures what the paper's
 * methodology needs to audit a sweep: the sustainable-RPS operating
 * point, QoS latency percentiles, the bottleneck station, per-station
 * utilization/depth, and the DES kernel's own activity counters. A
 * SweepReport aggregates cells plus a rollup (totals and a bottleneck
 * histogram) and serializes to JSON.
 *
 * Everything except wall-clock timings derives from simulation state,
 * which is seed-deterministic; serializing with includeTimings=false
 * therefore yields byte-identical JSON across thread counts, and the
 * determinism test compares exactly that.
 */

#ifndef WSC_OBS_RUN_REPORT_HH
#define WSC_OBS_RUN_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace wsc {
namespace obs {

/** Mirror of sim::StationStats, decoupled so obs stays sim-free. */
struct StationReport {
    std::string name;
    double utilization = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t peakDepth = 0;
    double meanDepth = 0.0;
};

/** DES kernel activity for one cell (summed over its simulations). */
struct KernelReport {
    std::uint64_t scheduled = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t compactions = 0;
    std::uint64_t peakHeap = 0;
};

/** Request latency distribution at the sustainable operating point. */
struct LatencyReport {
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** One (design x workload) evaluation. */
struct CellReport {
    std::string design;
    std::string benchmark;
    bool interactive = false;

    /** Paper metric: normalized performance for this cell. */
    double perf = 0.0;
    /** Interactive cells: highest load meeting QoS. 0 for batch. */
    double sustainableRps = 0.0;
    /** Batch cells: makespan of the fixed job. 0 for interactive. */
    double makespanSeconds = 0.0;

    LatencyReport latency; //!< seconds, at the sustainable point
    double qosViolationFraction = 0.0;
    double qosLatencyLimit = 0.0; //!< seconds; 0 when no QoS applies

    /** Station with the highest utilization at the operating point. */
    std::string bottleneck;
    std::vector<StationReport> stations;
    KernelReport kernel;

    /** Simulation probes the throughput search ran for this cell. */
    std::uint64_t searchProbes = 0;
    /** Wall-clock spent evaluating the cell (timing; excludable). */
    double wallSeconds = 0.0;
};

/** Per-component fault activity for one availability run. */
struct FaultClassReport {
    std::string component;
    std::uint64_t failures = 0;
    std::uint64_t repairs = 0;
};

/**
 * One design's availability evaluation under fault injection: the
 * `avail.*` QoS-sustainment metrics, the degraded-mode protocol
 * activity, and the `faults.*` injector accounting.
 */
struct AvailReport {
    std::string design;
    std::string benchmark;
    std::string spec;       //!< canonical fault-spec text
    double mttfScale = 1.0;
    std::uint64_t servers = 0;
    double offeredRps = 0.0;
    double horizonSeconds = 0.0;

    // avail.*
    double availability = 0.0;
    std::uint64_t epochsTotal = 0;
    std::uint64_t epochsPassed = 0;
    double goodputRps = 0.0;
    double goodputFraction = 0.0;
    double meanTimeToQosViolationSeconds = 0.0;

    // Degraded-mode client protocol.
    std::uint64_t offered = 0;
    std::uint64_t completions = 0;
    std::uint64_t qosViolations = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;
    std::uint64_t lateCompletions = 0;

    // faults.*
    std::vector<FaultClassReport> faults;
    std::uint64_t serverCrashes = 0;
    std::uint64_t thermalThrottles = 0;
    std::uint64_t thermalShutdowns = 0;
    double serverDownFraction = 0.0;
    double serverDegradedFraction = 0.0;
    double blastRadiusMean = 0.0;
    std::uint64_t blastRadiusMax = 0;

    KernelReport kernel;
};

/**
 * One ensemble-policy run of the warehouse-scale DES: fleet/QoS/energy
 * observables plus the kernel's activity counters. Every field except
 * wallSeconds is shard-count-invariant, so serializing with
 * includeTimings=false yields byte-identical JSON at any shard count —
 * the ensemble determinism test compares exactly that. Execution knobs
 * (shards, workers) are deliberately absent from the schema.
 */
struct EnsembleReport {
    std::string policy;
    /** Platform design the service demand was scaled by; empty (and
     * the JSON field omitted) for plain ensemble runs. */
    std::string design;
    std::uint64_t servers = 0;
    std::uint64_t cells = 0;
    std::uint64_t hours = 0;
    double secondsPerHour = 0.0;

    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t violations = 0;
    std::uint64_t spilled = 0;
    std::uint64_t wakes = 0;
    std::uint64_t boots = 0;
    std::uint64_t sleeps = 0;
    std::uint64_t offs = 0;
    std::uint64_t capClamps = 0;

    double kWhPerDay = 0.0;
    /** Analytical prediction from the closed-form diurnal model, for
     * the measured-vs-analytical comparison; 0 when not computed. */
    double analyticalKWhPerDay = 0.0;
    double meanActiveServers = 0.0;
    double meanAwakeServers = 0.0;
    double activeFraction = 0.0;
    double idleFraction = 0.0;
    double sleepFraction = 0.0;
    double wakingFraction = 0.0;
    double offFraction = 0.0;
    double bootingFraction = 0.0;

    LatencyReport latency;
    double qosViolationFraction = 0.0;
    double qosAttainment = 0.0;
    double score = 0.0; //!< kWh / attainment, lower is better

    std::vector<double> hourKWh;
    std::vector<double> hourViolationFraction;

    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsDispatched = 0;
    std::uint64_t crossCellMessages = 0;
    std::uint64_t windows = 0;

    /** Fast-mode contract version ("fast-mode/2") when the run used
     * the macro-event engine; empty (and the JSON key omitted, so
     * exact reports keep their byte layout) otherwise. */
    std::string fastMode;

    double wallSeconds = 0.0; //!< timing; excludable
};

/** Sweep-level aggregate, derived from the cells. */
struct SweepRollup {
    std::uint64_t cells = 0;
    std::uint64_t eventsDispatched = 0;
    std::uint64_t searchProbes = 0;
    /** How often each station limited a design, name-sorted. */
    struct BottleneckCount {
        std::string station;
        std::uint64_t cells = 0;
    };
    std::vector<BottleneckCount> bottlenecks;
};

/** A full sweep: tool metadata, per-cell results, metrics, rollup. */
struct SweepReport {
    std::string tool;
    std::uint64_t baseSeed = 0;
    std::uint64_t threads = 0;
    /**
     * Fast-mode contract version string ("fast-mode/1") when the sweep
     * ran with --fast-mode; empty — and the "fast_mode" JSON field
     * omitted — for exact runs, keeping exact-mode reports
     * byte-identical to pre-fast-mode output.
     */
    std::string fastMode;
    std::vector<CellReport> cells;
    /** Availability evaluations (empty without --faults; the "avail"
     * JSON section is omitted when empty so zero-fault reports are
     * byte-identical to pre-fault-subsystem output). */
    std::vector<AvailReport> avail;
    /** Ensemble-policy runs (empty without --ensemble; the "ensemble"
     * JSON section is omitted when empty so non-ensemble reports are
     * byte-identical to pre-ensemble output). */
    std::vector<EnsembleReport> ensemble;

    /** Registry snapshots (e.g. cache hit counts, eval totals). */
    std::vector<MetricRegistry::CounterSnap> counters;
    std::vector<MetricRegistry::GaugeSnap> gauges;
    /** Wall-clock timers (timing; excludable). */
    std::vector<MetricRegistry::TimerSnap> timers;

    /** Compute the rollup from the current cells. */
    SweepRollup rollup() const;

    /** Copy all three snapshot kinds out of @p registry. */
    void captureMetrics(const MetricRegistry &registry);
};

struct ReportOptions {
    /**
     * Include wall-clock fields (cell wallSeconds, sweep timers).
     * Disable to compare reports across runs: the remaining content is
     * seed-deterministic.
     */
    bool includeTimings = true;
};

/** Serialize a sweep report (stable field order, %.17g doubles). */
std::string toJson(const SweepReport &report,
                   const ReportOptions &opts = {});

/** Serialize one cell (embedded by the sweep writer; also testable). */
std::string toJson(const CellReport &cell,
                   const ReportOptions &opts = {});

/** Serialize one availability entry (embedded by the sweep writer). */
std::string toJson(const AvailReport &avail,
                   const ReportOptions &opts = {});

/** Serialize one ensemble entry (embedded by the sweep writer). */
std::string toJson(const EnsembleReport &ensemble,
                   const ReportOptions &opts = {});

} // namespace obs
} // namespace wsc

#endif // WSC_OBS_RUN_REPORT_HH
