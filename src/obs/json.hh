/**
 * @file
 * Minimal streaming JSON writer for run reports.
 *
 * The observability layer emits machine-readable reports without an
 * external JSON dependency; this writer covers exactly what the report
 * schema needs: nested objects/arrays, strings, numbers, booleans, and
 * null. Output is deterministic — doubles round-trip via %.17g and
 * non-finite values serialize as null — so reports produced by
 * bit-identical sweeps compare equal as text.
 */

#ifndef WSC_OBS_JSON_HH
#define WSC_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wsc {
namespace obs {

/**
 * Stack-checked JSON emitter.
 *
 * Usage errors (value without a key inside an object, mismatched
 * end calls, finishing with open containers) panic rather than emit
 * malformed output. Calls chain:
 *
 *   JsonWriter w;
 *   w.beginObject().key("rps").value(1234.5).endObject();
 *   std::string text = w.str();
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t n);
    JsonWriter &value(bool b);
    JsonWriter &null();

    /** Finished document. Panics if containers remain open. */
    const std::string &str() const;

    /** JSON string escaping (exposed for tests). */
    static std::string escape(const std::string &s);

  private:
    enum class Scope { Object, Array };

    struct Level {
        Scope scope;
        bool hasItems = false;
    };

    std::string out;
    std::vector<Level> stack;
    bool keyPending = false; //!< key() emitted, value expected
    bool rootDone = false;

    /** Comma/newline/indent bookkeeping before an item. */
    void beforeValue();
    void indent();
};

} // namespace obs
} // namespace wsc

#endif // WSC_OBS_JSON_HH
