/**
 * @file
 * Metrics registry: named counters, gauges, and wall-clock timers.
 *
 * Hot-path updates are lock-free: handles returned by the registry are
 * plain atomics with stable addresses, so callers hoist the lookup out
 * of their loops and pay a relaxed atomic op per update. The registry
 * mutex guards only creation, enumeration, and merge.
 *
 * Determinism contract: counters merge by sum and gauges by max, both
 * order-independent, so a parallel sweep that merges per-worker
 * registries in any order produces the same totals as a serial run.
 * Timers measure wall-clock and are inherently nondeterministic; report
 * writers expose an includeTimings switch so determinism-sensitive
 * comparisons can exclude them.
 */

#ifndef WSC_OBS_METRICS_HH
#define WSC_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wsc {
namespace obs {

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v{0};
};

/** Last-set (or merged-max) level, e.g. peak queue depth. */
class Gauge
{
  public:
    void set(double x) { v.store(x, std::memory_order_relaxed); }

    /** Raise to @p x if above the current value. */
    void
    raise(double x)
    {
        double cur = v.load(std::memory_order_relaxed);
        while (cur < x &&
               !v.compare_exchange_weak(cur, x,
                                        std::memory_order_relaxed)) {
        }
    }

    double value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v{0.0};
};

/** Accumulated wall-clock time plus sample count. */
class Timer
{
  public:
    void
    record(double seconds)
    {
        // Nanosecond integer ticks keep the accumulate atomic.
        auto ticks = std::uint64_t(seconds * 1e9);
        nanos.fetch_add(ticks, std::memory_order_relaxed);
        samples.fetch_add(1, std::memory_order_relaxed);
    }

    double
    totalSeconds() const
    {
        return double(nanos.load(std::memory_order_relaxed)) * 1e-9;
    }

    std::uint64_t
    count() const
    {
        return samples.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricRegistry;
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> samples{0};
};

/** RAII wall-clock measurement into a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &t)
        : timer(t), start(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        timer.record(dt.count());
    }

  private:
    Timer &timer;
    std::chrono::steady_clock::time_point start;
};

/**
 * Named metric store.
 *
 * Lookup creates on first use and returns a reference with a stable
 * address (metrics live behind unique_ptr and are never removed), so
 * handles stay valid for the registry's lifetime.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create; thread-safe. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);

    /**
     * Fold @p other into this registry: counters and timers add,
     * gauges take the max. Order-independent, so merging per-worker
     * registries yields identical totals regardless of thread
     * interleaving.
     */
    void merge(const MetricRegistry &other);

    struct CounterSnap {
        std::string name;
        std::uint64_t value;
    };
    struct GaugeSnap {
        std::string name;
        double value;
    };
    struct TimerSnap {
        std::string name;
        double seconds;
        std::uint64_t count;
    };

    /** Name-sorted snapshots (deterministic iteration order). */
    std::vector<CounterSnap> counters() const;
    std::vector<GaugeSnap> gauges() const;
    std::vector<TimerSnap> timers() const;

  private:
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
};

} // namespace obs
} // namespace wsc

#endif // WSC_OBS_METRICS_HH
