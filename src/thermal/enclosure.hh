/**
 * @file
 * Enclosure-level packaging designs (paper Section 3.3, Figure 3).
 *
 * Three designs are modeled:
 *
 *  - Conventional 1U "pizza box": front-to-back airflow along the full
 *    chassis depth; 40 servers in a 42U rack.
 *  - Dual-entry enclosure with directed airflow: blades insert from
 *    front and back onto a midplane; inlet/exhaust plenums direct cold
 *    air vertically through all blades in parallel (a parallel rather
 *    than serial connection of flow resistances). Shorter flow length,
 *    no pre-heat, lower pressure drop: ~2x cooling-efficiency gain and
 *    40 x 75 W blades per 5U enclosure (320 systems/rack).
 *  - Aggregated micro-blade cooling: small 25 W modules interspersed
 *    with planar heat pipes (3x copper) feeding one large optimized
 *    sink; ~4x gain and ~1250 systems/rack.
 */

#ifndef WSC_THERMAL_ENCLOSURE_HH
#define WSC_THERMAL_ENCLOSURE_HH

#include <string>

#include "thermal/airflow.hh"
#include "thermal/conduction.hh"

namespace wsc {
namespace thermal {

/** The three packaging designs. */
enum class PackagingDesign {
    Conventional1U,
    DualEntry,
    AggregatedMicroblade
};

std::string to_string(PackagingDesign d);

/** Physical/thermal description of one design. */
struct EnclosureModel {
    PackagingDesign design;
    double flowLengthM;      //!< air traversal distance
    double ductAreaM2;       //!< per-server flow cross-section
    double allowableDeltaT;  //!< inlet-to-exhaust rise budget (K)
    unsigned serversPerEnclosure;
    unsigned enclosureUnitsU;   //!< rack units per enclosure
    double serverPowerBudgetW;  //!< per supported system

    /** Per-server flow path. */
    FlowPath serverPath() const;

    /** Cooling efficiency (heat W per fan W) at the power budget. */
    double coolingEfficiency() const;

    /** Systems per 42U rack (2U reserved for the rack switch). */
    unsigned systemsPerRack() const;

    /** Fan power per server at the power budget. */
    double fanPowerPerServer() const;
};

/** Catalog entry for one design. */
EnclosureModel makeEnclosure(PackagingDesign d);

/**
 * Cooling-efficiency gain of @p d over the conventional baseline.
 * Used to scale the burdened-cost cooling load factor L1.
 */
double coolingGainOverBaseline(PackagingDesign d);

/**
 * Aggregated-cooling sanity model: dissipation headroom of a micro
 * blade using a heat pipe + one shared sink versus discrete copper
 * spreaders and per-module sinks.
 */
struct AggregationAnalysis {
    double discreteMaxW;   //!< per module, copper + small sink
    double aggregatedMaxW; //!< per module, heat pipe + shared sink
};

AggregationAnalysis analyzeAggregation(unsigned modulesPerBlade = 4);

} // namespace thermal
} // namespace wsc

#endif // WSC_THERMAL_ENCLOSURE_HH
