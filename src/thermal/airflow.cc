#include "thermal/airflow.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace thermal {

FlowPath
FlowPath::series(const std::vector<FlowPath> &paths)
{
    WSC_ASSERT(!paths.empty(), "series of zero paths");
    FlowPath out{0.0};
    for (const auto &p : paths)
        out.k += p.k;
    return out;
}

FlowPath
FlowPath::parallel(const std::vector<FlowPath> &paths)
{
    WSC_ASSERT(!paths.empty(), "parallel of zero paths");
    double inv_sqrt_sum = 0.0;
    for (const auto &p : paths) {
        WSC_ASSERT(p.k > 0.0, "non-positive flow resistance");
        inv_sqrt_sum += 1.0 / std::sqrt(p.k);
    }
    return FlowPath{1.0 / (inv_sqrt_sum * inv_sqrt_sum)};
}

FlowPath
FlowPath::duct(double lengthM, double areaM2, double kRef,
               double lengthRef, double areaRef)
{
    WSC_ASSERT(lengthM > 0.0 && areaM2 > 0.0, "invalid duct geometry");
    double k = kRef * (lengthM / lengthRef) *
               (areaRef / areaM2) * (areaRef / areaM2);
    return FlowPath{k};
}

double
requiredFlow(double watts, double deltaT, const AirProperties &air)
{
    WSC_ASSERT(watts >= 0.0, "negative heat load");
    WSC_ASSERT(deltaT > 0.0, "temperature rise must be positive");
    return watts / (air.densityKgM3 * air.cpJPerKgK * deltaT);
}

double
fanPower(const FlowPath &path, double q, double efficiency)
{
    WSC_ASSERT(q >= 0.0, "negative flow");
    WSC_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
               "fan efficiency out of (0, 1]");
    return path.pressureDrop(q) * q / efficiency;
}

double
coolingEfficiency(const FlowPath &path, double watts, double deltaT,
                  double efficiency, const AirProperties &air)
{
    WSC_ASSERT(watts > 0.0, "need a positive heat load");
    double q = requiredFlow(watts, deltaT, air);
    double fp = fanPower(path, q, efficiency);
    WSC_ASSERT(fp > 0.0, "zero fan power");
    return watts / fp;
}

} // namespace thermal
} // namespace wsc
