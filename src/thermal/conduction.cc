#include "thermal/conduction.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace thermal {

double
Spreader::resistance() const
{
    WSC_ASSERT(conductivity > 0.0 && lengthM > 0.0 && areaM2 > 0.0,
               "invalid spreader parameters");
    return lengthM / (conductivity * areaM2);
}

Spreader
Spreader::heatPipe(double lengthM, double areaM2)
{
    return Spreader{3.0 * copperConductivity, lengthM, areaM2};
}

Spreader
Spreader::copper(double lengthM, double areaM2)
{
    return Spreader{copperConductivity, lengthM, areaM2};
}

double
HeatSink::resistance(double qRel) const
{
    WSC_ASSERT(qRel > 0.0, "relative flow must be positive");
    WSC_ASSERT(finAreaM2 > 0.0 && hBase > 0.0, "invalid sink");
    double h = hBase * std::pow(qRel, flowExponent);
    return 1.0 / (h * finAreaM2);
}

double
moduleResistance(const Spreader &spreader, const HeatSink &sink,
                 double qRel)
{
    return spreader.resistance() + sink.resistance(qRel);
}

double
maxDissipation(const Spreader &spreader, const HeatSink &sink,
               double deltaT, double qRel)
{
    WSC_ASSERT(deltaT > 0.0, "temperature budget must be positive");
    return deltaT / moduleResistance(spreader, sink, qRel);
}

} // namespace thermal
} // namespace wsc
