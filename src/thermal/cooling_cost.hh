/**
 * @file
 * Mapping from packaging/cooling design to burdened-cost parameters.
 *
 * The burdened power-and-cooling model (cost/burdened_power.hh) charges
 * L1 watts of cooling per watt of IT power plus amortized cooling
 * capital (K2 on top of L1). A packaging design with an N-fold
 * cooling-efficiency gain divides the cooling electricity — and, by
 * shrinking the required cooling plant, its capital share — by N.
 */

#ifndef WSC_THERMAL_COOLING_COST_HH
#define WSC_THERMAL_COOLING_COST_HH

#include "cost/burdened_power.hh"
#include "thermal/enclosure.hh"

namespace wsc {
namespace thermal {

/**
 * Burdened-cost parameters adjusted for a packaging design: the
 * cooling load factor L1 is divided by the design's efficiency gain
 * over the conventional baseline.
 */
cost::BurdenedPowerParams applyCooling(
    const cost::BurdenedPowerParams &base, PackagingDesign design);

/** Same, with an explicit efficiency gain. */
cost::BurdenedPowerParams applyCoolingGain(
    const cost::BurdenedPowerParams &base, double gain);

/**
 * Fan/PSU hardware cost and power scaling of a design relative to the
 * conventional chassis: aggregation shares fans and sinks across
 * servers.
 */
struct PackagingHardware {
    double fanCostFactor = 1.0;  //!< scales the power+fans cost item
    double fanPowerFactor = 1.0; //!< scales the power+fans power item
};

PackagingHardware packagingHardware(PackagingDesign design);

} // namespace thermal
} // namespace wsc

#endif // WSC_THERMAL_COOLING_COST_HH
