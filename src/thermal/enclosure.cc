#include "thermal/enclosure.hh"

#include "util/logging.hh"

namespace wsc {
namespace thermal {

std::string
to_string(PackagingDesign d)
{
    switch (d) {
      case PackagingDesign::Conventional1U:
        return "conventional-1U";
      case PackagingDesign::DualEntry:
        return "dual-entry";
      case PackagingDesign::AggregatedMicroblade:
        return "aggregated-microblade";
    }
    panic("unknown packaging design");
}

EnclosureModel
makeEnclosure(PackagingDesign d)
{
    EnclosureModel m{};
    m.design = d;
    switch (d) {
      case PackagingDesign::Conventional1U:
        // Full-depth front-to-back traversal, serial pre-heated air.
        m.flowLengthM = 0.75;
        m.ductAreaM2 = 0.0019;
        m.allowableDeltaT = 10.0;
        m.serversPerEnclosure = 1;
        m.enclosureUnitsU = 1;
        m.serverPowerBudgetW = 340.0;
        break;
      case PackagingDesign::DualEntry:
        // Vertical directed airflow between plenums: roughly half the
        // flow length, parallel feed, no pre-heat (full deltaT usable).
        m.flowLengthM = 0.42;
        m.ductAreaM2 = 0.0019;
        m.allowableDeltaT = 10.5;
        m.serversPerEnclosure = 40;
        m.enclosureUnitsU = 5;
        m.serverPowerBudgetW = 75.0;
        break;
      case PackagingDesign::AggregatedMicroblade:
        // One optimized sink per carrier blade channels the flow
        // through a single resistance; heat pipes flatten gradients.
        m.flowLengthM = 0.30;
        m.ductAreaM2 = 0.0021;
        m.allowableDeltaT = 12.0;
        m.serversPerEnclosure = 156; // 39 carrier blades x 4 modules
        m.enclosureUnitsU = 5;
        m.serverPowerBudgetW = 25.0;
        break;
    }
    return m;
}

FlowPath
EnclosureModel::serverPath() const
{
    return FlowPath::duct(flowLengthM, ductAreaM2);
}

double
EnclosureModel::coolingEfficiency() const
{
    return thermal::coolingEfficiency(serverPath(), serverPowerBudgetW,
                                      allowableDeltaT);
}

unsigned
EnclosureModel::systemsPerRack() const
{
    constexpr unsigned usableU = 40; // 42U minus switch/patching
    unsigned enclosures = usableU / enclosureUnitsU;
    return enclosures * serversPerEnclosure;
}

double
EnclosureModel::fanPowerPerServer() const
{
    double q = requiredFlow(serverPowerBudgetW, allowableDeltaT);
    return fanPower(serverPath(), q);
}

double
coolingGainOverBaseline(PackagingDesign d)
{
    // Compare at the target design's per-server power budget: the
    // conventional enclosure cooling the same servers. (Comparing
    // across power budgets would conflate the packaging gain with the
    // separate low-power-component gain of Section 3.2.)
    auto target = makeEnclosure(d);
    auto base = makeEnclosure(PackagingDesign::Conventional1U);
    base.serverPowerBudgetW = target.serverPowerBudgetW;
    base.ductAreaM2 = target.ductAreaM2;
    return target.coolingEfficiency() / base.coolingEfficiency();
}

AggregationAnalysis
analyzeAggregation(unsigned modulesPerBlade)
{
    WSC_ASSERT(modulesPerBlade >= 1, "need at least one module");
    // Discrete: each 25 W module has a copper spreader and a small
    // private sink in pre-heated serial flow.
    Spreader copper = Spreader::copper(0.05, 2.0e-4);
    HeatSink small{0.02, 25.0, 0.6};
    // Aggregated: a wide planar heat pipe (large cross-section) to a
    // shared sink whose fin area grows super-linearly with the module
    // count (one big optimized sink channels the full cool flow).
    Spreader pipe = Spreader::heatPipe(0.09, 6.0e-4);
    HeatSink shared{0.02 * 4.0 * double(modulesPerBlade), 25.0, 0.6};

    AggregationAnalysis out;
    out.discreteMaxW = maxDissipation(copper, small, 35.0, 0.8);
    // Shared sink resistance is per blade; each module sees its share.
    double blade_max =
        maxDissipation(pipe, shared, 35.0, 1.0) ;
    out.aggregatedMaxW = blade_max / double(modulesPerBlade);
    return out;
}

} // namespace thermal
} // namespace wsc
