#include "thermal/cooling_cost.hh"

#include "util/logging.hh"

namespace wsc {
namespace thermal {

cost::BurdenedPowerParams
applyCoolingGain(const cost::BurdenedPowerParams &base, double gain)
{
    WSC_ASSERT(gain > 0.0, "cooling gain must be positive");
    cost::BurdenedPowerParams out = base;
    out.l1 = base.l1 / gain;
    return out;
}

cost::BurdenedPowerParams
applyCooling(const cost::BurdenedPowerParams &base,
             PackagingDesign design)
{
    return applyCoolingGain(base, coolingGainOverBaseline(design));
}

PackagingHardware
packagingHardware(PackagingDesign design)
{
    switch (design) {
      case PackagingDesign::Conventional1U:
        return {1.0, 1.0};
      case PackagingDesign::DualEntry:
        // Shared enclosure fans replace per-chassis fans; PSUs are
        // consolidated at the enclosure.
        return {0.8, 0.85};
      case PackagingDesign::AggregatedMicroblade:
        // One sink and fan set per carrier blade across 4 modules.
        return {0.5, 0.6};
    }
    panic("unknown packaging design");
}

} // namespace thermal
} // namespace wsc
