/**
 * @file
 * Conduction-side thermal models: heat sinks and planar heat pipes.
 *
 * The aggregated-cooling design (paper Figure 3b) intersperses small
 * server modules with planar heat pipes of effective conductivity
 * three times copper, moving the heat to one large optimized sink.
 * Aggregation wins twice: the heat pipe lowers spreading resistance,
 * and one big sink has more fin area (and a better operating point)
 * than several small ones.
 */

#ifndef WSC_THERMAL_CONDUCTION_HH
#define WSC_THERMAL_CONDUCTION_HH

namespace wsc {
namespace thermal {

/** Thermal conductivity of copper, W/(m K). */
constexpr double copperConductivity = 400.0;

/** A planar conduction element (spreader or heat pipe). */
struct Spreader {
    double conductivity = copperConductivity; //!< W/(m K)
    double lengthM = 0.05;   //!< conduction path length
    double areaM2 = 2.0e-4;  //!< cross-section

    /** Conduction resistance, K/W. */
    double resistance() const;

    /** Planar heat pipe: 3x copper effective conductivity (paper). */
    static Spreader heatPipe(double lengthM, double areaM2);

    /** Copper spreader of the same geometry, for comparison. */
    static Spreader copper(double lengthM, double areaM2);
};

/** A finned heat sink characterized by area and airflow. */
struct HeatSink {
    double finAreaM2 = 0.05;  //!< total convective area
    /** Convective coefficient grows with local air velocity. */
    double hBase = 25.0;      //!< W/(m^2 K) at the reference flow
    double flowExponent = 0.6; //!< h ~ q^exp

    /**
     * Sink-to-air resistance at relative flow @p qRel (1.0 = the
     * reference operating point), K/W.
     */
    double resistance(double qRel = 1.0) const;
};

/**
 * Junction-to-air resistance of a module: spreader + sink in series.
 */
double moduleResistance(const Spreader &spreader, const HeatSink &sink,
                        double qRel = 1.0);

/**
 * Maximum power a module can dissipate with junction-ambient budget
 * @p deltaT through the given spreader and sink.
 */
double maxDissipation(const Spreader &spreader, const HeatSink &sink,
                      double deltaT, double qRel = 1.0);

} // namespace thermal
} // namespace wsc

#endif // WSC_THERMAL_CONDUCTION_HH
