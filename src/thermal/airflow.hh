/**
 * @file
 * Lumped airflow network model for enclosure cooling analysis.
 *
 * First-order treatment used to evaluate the paper's packaging ideas
 * (Section 3.3): air moving through an enclosure sees a flow
 * resistance; the pressure drop across a path scales with the square
 * of the volumetric flow (turbulent regime), and fan electrical power
 * is deltaP * Q / efficiency. Heat removal follows the sensible-heat
 * equation P = rho * cp * Q * deltaT.
 *
 * Two structural results drive the paper's designs:
 *  - halving the flow length halves the path resistance (shorter
 *    traversal, lower pre-heat), and
 *  - feeding blades in parallel (dual-entry plenums) divides the flow
 *    per path, dropping the quadratic pressure term sharply.
 */

#ifndef WSC_THERMAL_AIRFLOW_HH
#define WSC_THERMAL_AIRFLOW_HH

#include <vector>

namespace wsc {
namespace thermal {

/** Air properties at datacenter inlet conditions. */
struct AirProperties {
    double densityKgM3 = 1.16;       //!< at ~30 C
    double cpJPerKgK = 1007.0;       //!< specific heat
};

/**
 * A flow path with quadratic pressure-flow characteristic:
 * deltaP = k * Q^2, with k proportional to the traversed length and
 * inversely to the cross-section area squared.
 */
struct FlowPath {
    /** Resistance coefficient k in Pa / (m^3/s)^2. */
    double k = 1.0e5;

    /** Pressure drop at volumetric flow @p q (m^3/s). */
    double pressureDrop(double q) const { return k * q * q; }

    /** Series combination: resistances add. */
    static FlowPath series(const std::vector<FlowPath> &paths);

    /**
     * Parallel combination: at equal pressure, flows add;
     * k_eq = 1 / (sum_i 1/sqrt(k_i))^2.
     */
    static FlowPath parallel(const std::vector<FlowPath> &paths);

    /**
     * Resistance of a duct of given flow length and cross-section
     * area, relative to a reference geometry. k scales linearly with
     * length and with 1/area^2.
     */
    static FlowPath duct(double lengthM, double areaM2,
                         double kRef = 2.0e4, double lengthRef = 0.75,
                         double areaRef = 0.0019);
};

/**
 * Volumetric flow (m^3/s) needed to remove @p watts with an air
 * temperature rise of @p deltaT kelvin.
 */
double requiredFlow(double watts, double deltaT,
                    const AirProperties &air = {});

/**
 * Fan electrical power to push flow @p q through @p path.
 * @param efficiency Combined fan/motor efficiency (default 0.35).
 */
double fanPower(const FlowPath &path, double q,
                double efficiency = 0.35);

/**
 * Cooling efficiency: watts of heat removed per watt of fan power,
 * for a path sized to remove @p watts at @p deltaT.
 */
double coolingEfficiency(const FlowPath &path, double watts,
                         double deltaT, double efficiency = 0.35,
                         const AirProperties &air = {});

} // namespace thermal
} // namespace wsc

#endif // WSC_THERMAL_AIRFLOW_HH
