/**
 * @file
 * High-throughput trace-replay engine: allocation-free cache kernels.
 *
 * The trace studies (paper Sections 3.4 and 3.5) replay millions of
 * page accesses per design-space cell, and the seed implementation —
 * virtual dispatch per access, a std::list + unordered_map LRU, a
 * node allocation per miss — was the slowest kernel in the repo. This
 * module provides drop-in-equivalent kernels built for throughput:
 *
 *  - PageSlotMap: a flat open-addressing (linear-probe, backshift-
 *    delete) page -> frame-slot hash table sized at construction; no
 *    per-access allocation, one or two cache lines per probe.
 *  - LruKernel: an intrusive index-linked LRU list over a
 *    preallocated frame arena (no list nodes, splice = 6 index
 *    writes).
 *  - RandomKernel / ClockKernel: the same flat table over a slot
 *    vector / clock ring.
 *  - ColdTracker: first-touch accounting via a footprint-sized bitset
 *    instead of an unordered_map per page.
 *
 * The replay drivers devirtualize policy dispatch (one switch per
 * replay, a template loop per policy) and pull page ids in batches
 * from TraceGenerator::nextBatch.
 *
 * Determinism contract: each kernel makes bit-identical hit/miss
 * decisions to its legacy ReplacementPolicy counterpart (the legacy
 * classes are kept as the per-access validation oracle), and
 * RandomKernel draws its Rng in exactly the same order as
 * RandomPolicy. Sharded replays derive per-shard seeds from
 * (seed, profile, shard count, shard index) via util/hash.hh, so the
 * merged result depends only on those identities — never on thread
 * count or scheduling.
 */

#ifndef WSC_MEMBLADE_REPLAY_HH
#define WSC_MEMBLADE_REPLAY_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "memblade/replacement.hh"
#include "memblade/trace.hh"
#include "memblade/two_level.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace wsc {

class ThreadPool;

namespace memblade {

/**
 * Page -> frame-slot map with two representations picked at
 * construction:
 *
 *  - Direct-mapped: when the caller declares a bounded id space
 *    (pageBound in (0, kDirectLimit]), a flat slot-per-page array.
 *    Lookup is a single indexed load — no hashing, no probing — and
 *    the array (4 bytes/page) is smaller than a hash table would be
 *    whenever the footprint is within ~8x of the frame count.
 *  - Open-addressing hash: for sparse or unbounded id spaces, linear
 *    probing over a power-of-two table held at <= 50% load; deletion
 *    uses backward-shift (no tombstones), so probe chains never
 *    degrade over a long replay.
 *
 * Both are sized once at construction and never rehash or allocate
 * afterwards, and both implement exactly the same map, so replay
 * decisions cannot depend on the representation.
 *
 * The all-ones page id is reserved as the empty marker; synthetic
 * traces never produce it (ids are < footprintPages) and replayTrace
 * asserts it away for user traces.
 */
class PageSlotMap
{
  public:
    static constexpr PageId kEmptyKey = ~PageId(0);
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t(0);

    /** Largest declared bound served direct-mapped: 16M pages = a
     * 64 MiB slot array. Every synthetic profile is far below it. */
    static constexpr std::uint64_t kDirectLimit = std::uint64_t(1)
                                                  << 24;

    /**
     * @param maxEntries Most entries ever resident (the frame count).
     * @param pageBound All ids are < pageBound (0 = unbounded); a
     *        small bound selects the direct-mapped representation.
     */
    explicit PageSlotMap(std::size_t maxEntries,
                         std::uint64_t pageBound = 0);

    /** Slot of @p page, or kNoSlot. */
    std::uint32_t
    find(PageId page) const
    {
        if (!direct.empty())
            return page < direct.size() ? direct[std::size_t(page)]
                                        : kNoSlot;
        std::size_t i = idealIndex(page);
        for (;;) {
            const Entry &e = table[i];
            if (e.key == page)
                return e.slot;
            if (e.key == kEmptyKey)
                return kNoSlot;
            i = (i + 1) & mask;
        }
    }

    /** Insert @p page (must not be present). */
    void
    insert(PageId page, std::uint32_t slot)
    {
        ++count;
        if (!direct.empty()) {
            WSC_ASSERT(page < direct.size(),
                       "page id beyond the declared bound");
            direct[std::size_t(page)] = slot;
            return;
        }
        std::size_t i = idealIndex(page);
        while (table[i].key != kEmptyKey)
            i = (i + 1) & mask;
        table[i] = Entry{page, slot};
    }

    /** Remove @p page (must be present). */
    void erase(PageId page);

    /** Pull @p page's lookup line toward the cache ahead of find(). */
    void
    prefetch(PageId page) const
    {
#if defined(__GNUC__) || defined(__clang__)
        if (!direct.empty()) {
            if (page < direct.size())
                __builtin_prefetch(direct.data() + page);
            return;
        }
        __builtin_prefetch(table.data() + idealIndex(page));
#else
        (void)page;
#endif
    }

    std::size_t size() const { return count; }

  private:
    struct Entry {
        PageId key;
        std::uint32_t slot;
    };

    std::size_t
    idealIndex(PageId page) const
    {
        return std::size_t(hashMix(page)) & mask;
    }

    std::vector<std::uint32_t> direct; //!< slot per page, or empty
    std::vector<Entry> table;
    std::size_t mask = 0;
    std::size_t count = 0;
};

/**
 * Exact LRU over a preallocated frame arena: the recency order is an
 * intrusive doubly-linked list of frame indices, so a hit costs one
 * table probe plus an index splice and a miss never allocates.
 *
 * Bit-identical decisions to LruPolicy.
 */
class LruKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    explicit LruKernel(std::size_t frames, std::uint64_t pageBound = 0);

    /** Touch @p page; returns true if it was resident (hit). */
    bool
    access(PageId page)
    {
        std::uint32_t slot = map.find(page);
        if (slot != PageSlotMap::kNoSlot) {
            moveToFront(slot);
            return true;
        }
        if (size_ < frames_) {
            slot = std::uint32_t(size_++);
        } else {
            slot = tail;
            map.erase(pages[slot]);
            // Unlink the tail; it becomes the new frame.
            tail = links[slot].prev;
            if (tail != kNull)
                links[tail].next = kNull;
            else
                head = kNull; // single-frame cache emptied
        }
        pages[slot] = page;
        linkFront(slot);
        map.insert(page, slot);
        return false;
    }

    /** See PageSlotMap::prefetch. */
    void prefetch(PageId page) const { map.prefetch(page); }

    std::size_t resident() const { return map.size(); }
    std::size_t frames() const { return frames_; }

  private:
    static constexpr std::uint32_t kNull = ~std::uint32_t(0);

    /** Recency links only: the hit path (find + splice) never reads
     * the frame's page, so links stay 8 bytes — eight frames per
     * cache line — and the pages array is touched only on eviction
     * and refill. */
    struct Link {
        std::uint32_t prev, next;
    };

    void
    linkFront(std::uint32_t slot)
    {
        links[slot].prev = kNull;
        links[slot].next = head;
        if (head != kNull)
            links[head].prev = slot;
        head = slot;
        if (tail == kNull)
            tail = slot;
    }

    void
    moveToFront(std::uint32_t slot)
    {
        if (slot == head)
            return;
        // Unlink.
        std::uint32_t p = links[slot].prev, n = links[slot].next;
        links[p].next = n;
        if (n != kNull)
            links[n].prev = p;
        else
            tail = p;
        // Relink at head.
        links[slot].prev = kNull;
        links[slot].next = head;
        links[head].prev = slot;
        head = slot;
    }

    std::size_t frames_;
    std::size_t size_ = 0;
    std::uint32_t head = kNull, tail = kNull;
    std::vector<Link> links;
    std::vector<PageId> pages;
    PageSlotMap map;
};

/**
 * Random replacement over a flat slot vector. Draws its Rng in
 * exactly the same order as RandomPolicy (one uniformInt per
 * miss-when-full), so replays are bit-identical to the legacy policy.
 */
class RandomKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    RandomKernel(std::size_t frames, Rng rng,
                 std::uint64_t pageBound = 0);

    bool
    access(PageId page)
    {
        if (map.find(page) != PageSlotMap::kNoSlot)
            return true;
        if (slots.size() < frames_) {
            map.insert(page, std::uint32_t(slots.size()));
            slots.push_back(page);
            return false;
        }
        auto idx =
            std::uint32_t(rng.uniformInt(0, std::uint64_t(frames_) - 1));
        map.erase(slots[idx]);
        slots[idx] = page;
        map.insert(page, idx);
        return false;
    }

    /** See PageSlotMap::prefetch. */
    void prefetch(PageId page) const { map.prefetch(page); }

    std::size_t resident() const { return map.size(); }

  private:
    std::size_t frames_;
    Rng rng;
    std::vector<PageId> slots;
    PageSlotMap map;
};

/** Clock (second chance) over a flat ring; bit-identical to
 * ClockPolicy. */
class ClockKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    explicit ClockKernel(std::size_t frames,
                         std::uint64_t pageBound = 0);

    bool
    access(PageId page)
    {
        std::uint32_t slot = map.find(page);
        if (slot != PageSlotMap::kNoSlot) {
            referenced[slot] = 1;
            return true;
        }
        if (ring.size() < frames_) {
            map.insert(page, std::uint32_t(ring.size()));
            ring.push_back(page);
            referenced.push_back(1);
            return false;
        }
        while (referenced[hand]) {
            referenced[hand] = 0;
            hand = (hand + 1 == frames_) ? 0 : hand + 1;
        }
        map.erase(ring[hand]);
        ring[hand] = page;
        referenced[hand] = 1;
        map.insert(page, std::uint32_t(hand));
        hand = (hand + 1 == frames_) ? 0 : hand + 1;
        return false;
    }

    /** See PageSlotMap::prefetch. */
    void prefetch(PageId page) const { map.prefetch(page); }

    std::size_t resident() const { return map.size(); }

  private:
    std::size_t frames_;
    std::size_t hand = 0;
    std::vector<PageId> ring;
    std::vector<std::uint8_t> referenced;
    PageSlotMap map;
};

/**
 * First-touch (cold-miss) tracker. For bounded id spaces — synthetic
 * traces are bounded by the profile footprint — a bitset of one bit
 * per page; for sparse/unbounded spaces it falls back to a hash set.
 */
class ColdTracker
{
  public:
    /** @param pageBound Ids are < pageBound (0 = unbounded/sparse). */
    explicit ColdTracker(std::uint64_t pageBound);

    /** Mark @p page touched; returns true on first touch. */
    bool
    firstTouch(PageId page)
    {
        if (!bits.empty()) {
            std::uint64_t &word = bits[std::size_t(page >> 6)];
            std::uint64_t m = std::uint64_t(1) << (page & 63);
            if (word & m)
                return false;
            word |= m;
            return true;
        }
        return sparse.insert(page).second;
    }

  private:
    /** Largest bound served by the bitset: 1 << 28 pages = 32 MiB. */
    static constexpr std::uint64_t kBitsetLimit = std::uint64_t(1) << 28;

    std::vector<std::uint64_t> bits;
    std::unordered_set<PageId> sparse;
};

/** A replay split into a warmup prefix and a measured remainder. */
struct WindowedReplay {
    ReplayStats total;    //!< whole replay, warmup included
    ReplayStats measured; //!< accesses at index >= warmup only
};

/**
 * Batched, devirtualized replay of @p accesses pages from @p gen
 * through one kernel of @p kind with @p frames frames.
 *
 * Shared driver for the memory-blade replays (warmup = 0, use
 * .total) and the flash-cache steady-state measurement (warmup =
 * accesses/2, use .measured); cold misses are tracked across the
 * whole replay with a bitset bounded by @p pageBound.
 *
 * @param kernelRng Consumed only by PolicyKind::Random, in the same
 *        order as the legacy policy.
 */
WindowedReplay replayWindowed(TraceGenerator &gen, PolicyKind kind,
                              std::size_t frames,
                              std::uint64_t pageBound,
                              std::uint64_t accesses,
                              std::uint64_t warmup, Rng kernelRng);

/**
 * Replay an explicit page sequence through one kernel (the fast path
 * behind trace_io's replayTrace).
 *
 * @param pageBound Ids are < pageBound (0 = sparse cold tracking).
 */
ReplayStats replayPages(const PageId *pages, std::size_t n,
                        PolicyKind kind, std::size_t frames,
                        std::uint64_t pageBound, Rng kernelRng);

/**
 * Shard a long replay across @p shards independent trace segments and
 * merge the statistics.
 *
 * Each shard replays accesses/shards accesses (the remainder spread
 * over the first shards) of an independent generator stream seeded by
 * seedFor(seed, profile.name, shards, shard); stats are summed in
 * shard order. The result therefore depends on (seed, shards) but
 * never on the pool width: any thread count, including serial,
 * produces bit-identical totals. Cold misses are per-shard
 * first-touches (shards are independent streams).
 *
 * @param pool Pool for the fan-out; nullptr = ThreadPool::global().
 */
ReplayStats shardedReplayProfile(const TraceProfile &profile,
                                 double localFraction, PolicyKind kind,
                                 std::uint64_t accesses,
                                 std::uint64_t seed, unsigned shards,
                                 ThreadPool *pool = nullptr);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_REPLAY_HH
