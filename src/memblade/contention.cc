#include "memblade/contention.hh"

#include <limits>

#include "util/logging.hh"

namespace wsc {
namespace memblade {

ContentionResult
analyzeContention(double fetches_per_second,
                  const BladeLinkParams &params, const RemoteLink &link)
{
    WSC_ASSERT(fetches_per_second >= 0.0, "negative fetch rate");
    WSC_ASSERT(params.serviceSecondsPerFetch > 0.0,
               "service time must be positive");
    WSC_ASSERT(params.channels >= 1, "blade needs a service channel");

    ContentionResult r;
    r.offeredFetchesPerSecond = fetches_per_second;
    // Fetches split evenly over the channels (page-interleaved).
    double per_channel = fetches_per_second / double(params.channels);
    double rho = per_channel * params.serviceSecondsPerFetch;
    r.utilization = rho;
    if (rho >= 1.0) {
        r.stable = false;
        r.meanWaitSeconds =
            std::numeric_limits<double>::infinity();
        r.effectiveStallSeconds = r.meanWaitSeconds;
        return r;
    }
    // M/D/1 mean wait (Pollaczek-Khinchine, deterministic service).
    r.meanWaitSeconds = rho * params.serviceSecondsPerFetch /
                        (2.0 * (1.0 - rho));
    r.effectiveStallSeconds = link.stallSecondsPerMiss +
                              r.meanWaitSeconds;
    return r;
}

double
contendedSlowdown(const ReplayStats &stats, const TraceProfile &profile,
                  const RemoteLink &link, unsigned servers,
                  const BladeLinkParams &params)
{
    WSC_ASSERT(servers >= 1, "need at least one server");
    double per_server_fetches =
        stats.warmMissRate() * profile.touchesPerSecond;
    double total = per_server_fetches * double(servers);
    auto c = analyzeContention(total, params, link);
    if (!c.stable)
        return std::numeric_limits<double>::infinity();
    return per_server_fetches * c.effectiveStallSeconds;
}

unsigned
maxServersPerBlade(const ReplayStats &stats, const TraceProfile &profile,
                   const RemoteLink &link, double budget,
                   const BladeLinkParams &params, unsigned limit)
{
    WSC_ASSERT(budget > 0.0, "slowdown budget must be positive");
    unsigned best = 0;
    for (unsigned n = 1; n <= limit; ++n) {
        double sd = contendedSlowdown(stats, profile, link, n, params);
        if (sd <= budget)
            best = n;
        else
            break; // slowdown is monotone in n
    }
    return best;
}

} // namespace memblade
} // namespace wsc
