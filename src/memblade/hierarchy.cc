#include "memblade/hierarchy.hh"

#include <vector>

#include "memblade/trace_stream.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace wsc {
namespace memblade {

std::string
to_string(HierarchyMode mode)
{
    switch (mode) {
      case HierarchyMode::Inclusive:
        return "inclusive";
      case HierarchyMode::Exclusive:
        return "exclusive";
    }
    panic("unknown hierarchy mode");
}

HierarchyMode
hierarchyModeFromString(const std::string &name)
{
    if (name == "inclusive")
        return HierarchyMode::Inclusive;
    if (name == "exclusive")
        return HierarchyMode::Exclusive;
    fatal("unknown hierarchy mode '" + name +
          "' (expected inclusive or exclusive)");
}

TwoLevelHierarchy::TwoLevelHierarchy(const HierarchyParams &params)
    : params_(params)
{
    if (params_.l1Frames == 0 || params_.l2Frames == 0)
        fatal("hierarchy levels need at least one frame each");
    if (params_.mode == HierarchyMode::Inclusive &&
        params_.l2Frames < params_.l1Frames)
        fatal("inclusive hierarchy needs l2Frames >= l1Frames (L1 "
              "must fit inside L2)");
    if (params_.prefetchDepth > 0 && params_.prefetchFrames == 0)
        params_.prefetchFrames = 4 * params_.prefetchDepth;
}

void
TwoLevelHierarchy::fillL2Inclusive(PageId page)
{
    if (l2.touch(page))
        return;
    if (l2.map.size() == params_.l2Frames) {
        PageId victim = l2.popLru();
        // Inclusion: an L2 eviction back-invalidates L1.
        l1.erase(victim);
    }
    l2.insertMru(page);
}

void
TwoLevelHierarchy::demoteToL2(PageId victim)
{
    buf.erase(victim); // keep the prefetch FIFO disjoint from L2
    if (l2.map.size() == params_.l2Frames)
        l2.popLru();
    l2.insertMru(victim);
}

void
TwoLevelHierarchy::fill(PageId page)
{
    buf.erase(page); // keep the prefetch FIFO disjoint from L1
    if (params_.mode == HierarchyMode::Inclusive) {
        fillL2Inclusive(page);
        if (!l1.touch(page)) {
            if (l1.map.size() == params_.l1Frames)
                l1.popLru(); // still in L2; inclusion holds
            l1.insertMru(page);
        }
        return;
    }
    // Exclusive: fill L1 only; the L1 victim demotes to the L2 MRU.
    if (l1.map.size() == params_.l1Frames)
        demoteToL2(l1.popLru());
    l1.insertMru(page);
}

void
TwoLevelHierarchy::issuePrefetches(PageId page)
{
    for (std::size_t d = 1; d <= params_.prefetchDepth; ++d) {
        PageId q = page + d;
        if (q < page) // PageId wraparound
            break;
        if (inL1(q) || inL2(q) || inPrefetch(q))
            continue;
        if (buf.map.size() == params_.prefetchFrames)
            buf.popLru(); // FIFO: drop the oldest prefetch
        buf.insertMru(q);
    }
}

void
TwoLevelHierarchy::access(PageId page)
{
    ++stats_.accesses;
    if (l1.touch(page)) {
        ++stats_.l1Hits;
        return;
    }
    if (inPrefetch(page)) {
        ++stats_.prefetchHits;
        fill(page); // fill() drops it from the buffer
        issuePrefetches(page); // keep a sequential stream ramped
        return;
    }
    if (params_.mode == HierarchyMode::Inclusive) {
        if (l2.touch(page)) {
            ++stats_.l2Hits;
            if (l1.map.size() == params_.l1Frames)
                l1.popLru();
            l1.insertMru(page);
            issuePrefetches(page);
            return;
        }
    } else if (l2.map.count(page) != 0) {
        ++stats_.l2Hits;
        // Exclusive promotion: the page leaves L2 for L1.
        l2.erase(page);
        if (l1.map.size() == params_.l1Frames)
            demoteToL2(l1.popLru());
        l1.insertMru(page);
        issuePrefetches(page);
        return;
    }
    ++stats_.misses;
    fill(page);
    issuePrefetches(page);
}

void
TwoLevelHierarchy::checkInvariants() const
{
    WSC_ASSERT(l1.map.size() == l1.order.size(), "L1 map/list skew");
    WSC_ASSERT(l2.map.size() == l2.order.size(), "L2 map/list skew");
    WSC_ASSERT(buf.map.size() == buf.order.size(),
               "prefetch map/list skew");
    WSC_ASSERT(l1.map.size() <= params_.l1Frames, "L1 over capacity");
    WSC_ASSERT(l2.map.size() <= params_.l2Frames, "L2 over capacity");
    WSC_ASSERT(buf.map.size() <= params_.prefetchFrames,
               "prefetch buffer over capacity");
    for (PageId p : l1.order) {
        if (params_.mode == HierarchyMode::Inclusive)
            WSC_ASSERT(inL2(p), "inclusion violated: L1 page not in L2");
        else
            WSC_ASSERT(!inL2(p), "exclusion violated: page in both levels");
    }
    for (PageId p : buf.order)
        WSC_ASSERT(!inL1(p) && !inL2(p),
                   "prefetch buffer overlaps a cache level");
}

HierarchyStats
replayHierarchyPages(const PageId *pages, std::size_t n,
                     const HierarchyParams &params)
{
    TwoLevelHierarchy h(params);
    for (std::size_t i = 0; i < n; ++i)
        h.access(pages[i]);
    return h.stats();
}

HierarchyStats
replayHierarchyStream(TraceStream &ts, const HierarchyParams &params)
{
    TwoLevelHierarchy h(params);
    std::vector<PageId> buf(4096);
    for (;;) {
        std::size_t n = ts.fillPages(buf.data(), buf.size());
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i)
            h.access(buf[i]);
    }
    return h.stats();
}

HierarchyStats
replayHierarchyProfile(const TraceProfile &profile,
                       const HierarchyParams &params,
                       std::uint64_t accesses, std::uint64_t seed)
{
    // Mirror replayProfile's Rng derivation (kernel split drawn and
    // discarded) so hierarchy results line up with flat replays of
    // the same (profile, seed).
    Rng rng(seed);
    (void)rng.split();
    TraceGenerator gen(profile, rng.split());
    TwoLevelHierarchy h(params);
    std::vector<PageId> buf(4096);
    std::uint64_t done = 0;
    while (done < accesses) {
        auto n = std::size_t(
            std::min<std::uint64_t>(buf.size(), accesses - done));
        gen.nextBatch(buf.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            h.access(buf[i]);
        done += n;
    }
    return h.stats();
}

} // namespace memblade
} // namespace wsc
