/**
 * @file
 * Page-trace persistence.
 *
 * The paper replayed traces gathered from full-system simulation; our
 * generators substitute for those. This module lets users of the
 * library replay *real* traces instead: a simple line-oriented text
 * format (one decimal page id per line, '#' comments) plus a compact
 * binary format for long traces, with round-trip guarantees.
 */

#ifndef WSC_MEMBLADE_TRACE_IO_HH
#define WSC_MEMBLADE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "memblade/trace.hh"
#include "memblade/two_level.hh"

namespace wsc {
namespace memblade {

/**
 * Write a trace as text: a header comment, then one page id per line.
 */
void writeTraceText(std::ostream &os, const std::vector<PageId> &trace);

/**
 * Read a text trace. Blank lines and lines starting with '#' are
 * skipped; anything unparsable raises FatalError (user input).
 */
std::vector<PageId> readTraceText(std::istream &is);

/**
 * Write a trace in the legacy binary format, version 2: magic "WSCT",
 * a version byte (2), a little-endian u64 count, then count
 * little-endian u64 page ids. (Version "1" was the pre-versioned
 * host-endian layout; its files start the count where v2 puts the
 * version byte, so v2 readers reject them explicitly.)
 */
void writeTraceBinary(std::ostream &os,
                      const std::vector<PageId> &trace);

/**
 * Read a binary trace; validates magic, version, and length. The
 * header count is checked against the bytes actually present before
 * any allocation, so a corrupt count raises FatalError instead of
 * requesting an exabyte vector.
 */
std::vector<PageId> readTraceBinary(std::istream &is);

/** Convenience: file-path variants (format chosen by extension:
 * ".trace" text, ".btrace" legacy binary, ".strace" streaming —
 * see memblade/trace_stream.hh). */
void saveTrace(const std::string &path,
               const std::vector<PageId> &trace);
std::vector<PageId> loadTrace(const std::string &path);

/**
 * Replay an explicit trace through a two-level memory of
 * @p localFrames frames and return the statistics.
 *
 * @param pageBound Declared bound on page ids (0 = unknown, computed
 *        with an extra O(n) pass; streaming callers pass the header
 *        bound and skip the scan).
 */
ReplayStats replayTrace(const std::vector<PageId> &trace,
                        std::size_t localFrames, PolicyKind kind,
                        std::uint64_t seed,
                        std::uint64_t pageBound = 0);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_TRACE_IO_HH
