/**
 * @file
 * Memory-blade contention model (paper Section 3.4 / Section 4).
 *
 * The paper's trace-driven methodology "cannot account for the
 * second-order impact of PCIe link contention"; this module closes
 * that gap with a queueing model of the shared blade.
 *
 * Each of N servers generates remote page fetches as a Poisson stream
 * (rate = warm-miss rate x page-touch rate). The blade's controller
 * and the PCIe fabric serve fetches with a deterministic service time
 * (page transfer + DRAM access). The resulting M/D/1 waiting time is
 * added to the per-miss stall, inflating the slowdown at high blade
 * load. The model answers the provisioning question the paper leaves
 * open: how many servers can share one memory blade before contention
 * erodes the "2% slowdown" assumption?
 */

#ifndef WSC_MEMBLADE_CONTENTION_HH
#define WSC_MEMBLADE_CONTENTION_HH

#include <vector>

#include "memblade/latency.hh"

namespace wsc {
namespace memblade {

/** Shared-blade service parameters. */
struct BladeLinkParams {
    /**
     * Deterministic blade service time per 4 KB fetch: PCIe transfer
     * (page / link bandwidth) + DRAM wake and access. The PCIe 2.0 x4
     * link moves 4 KB in ~2 us at 2 GB/s; DRAM power-up adds ~0.1 us.
     */
    double serviceSecondsPerFetch = 2.1e-6;
    /** Number of independent service channels on the blade. */
    unsigned channels = 1;
};

/** Contention analysis result for one sharing configuration. */
struct ContentionResult {
    double offeredFetchesPerSecond = 0.0;
    double utilization = 0.0;     //!< of the blade service capacity
    double meanWaitSeconds = 0.0; //!< queueing delay per fetch
    double effectiveStallSeconds = 0.0; //!< link stall + queueing
    bool stable = true;           //!< utilization < 1
};

/**
 * M/D/1 (per channel) waiting time for Poisson fetch arrivals at
 * @p fetches_per_second against @p params.
 *
 * W = rho * S / (2 * (1 - rho)), the Pollaczek-Khinchine mean wait
 * for deterministic service.
 */
ContentionResult analyzeContention(double fetches_per_second,
                                   const BladeLinkParams &params,
                                   const RemoteLink &link);

/**
 * Slowdown of one workload when @p servers servers with the given
 * replay statistics share a blade, including queueing contention.
 *
 * @param stats Per-server replay statistics.
 * @param profile The workload's trace profile (touch rate).
 * @param link Baseline per-miss stall.
 * @param servers Servers sharing the blade.
 * @param params Blade service parameters.
 */
double contendedSlowdown(const ReplayStats &stats,
                         const TraceProfile &profile,
                         const RemoteLink &link, unsigned servers,
                         const BladeLinkParams &params);

/**
 * Largest number of servers (1..limit) that can share one blade while
 * keeping the workload's contended slowdown at or below @p budget.
 * Returns 0 if even a single server exceeds the budget.
 */
unsigned maxServersPerBlade(const ReplayStats &stats,
                            const TraceProfile &profile,
                            const RemoteLink &link, double budget,
                            const BladeLinkParams &params,
                            unsigned limit = 256);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_CONTENTION_HH
