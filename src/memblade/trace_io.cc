#include "memblade/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "memblade/replay.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace wsc {
namespace memblade {

namespace {

constexpr char magic[4] = {'W', 'S', 'C', 'T'};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

void
writeTraceText(std::ostream &os, const std::vector<PageId> &trace)
{
    os << "# wsc page trace, " << trace.size() << " accesses\n";
    for (PageId p : trace)
        os << p << "\n";
    WSC_ASSERT(os.good(), "trace write failed");
}

std::vector<PageId>
readTraceText(std::istream &is)
{
    std::vector<PageId> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        try {
            std::size_t consumed = 0;
            unsigned long long v = std::stoull(t, &consumed);
            if (consumed != t.size())
                throw std::invalid_argument("trailing characters");
            out.push_back(PageId(v));
        } catch (const std::exception &) {
            fatal("bad trace line " + std::to_string(line_no) + ": '" +
                  t + "'");
        }
    }
    return out;
}

void
writeTraceBinary(std::ostream &os, const std::vector<PageId> &trace)
{
    os.write(magic, sizeof(magic));
    std::uint64_t count = trace.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(reinterpret_cast<const char *>(trace.data()),
             std::streamsize(trace.size() * sizeof(PageId)));
    WSC_ASSERT(os.good(), "trace write failed");
}

std::vector<PageId>
readTraceBinary(std::istream &is)
{
    char m[4] = {};
    is.read(m, sizeof(m));
    if (!is.good() || std::memcmp(m, magic, sizeof(magic)) != 0)
        fatal("not a wsc binary trace (bad magic)");
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is.good())
        fatal("truncated binary trace header");
    std::vector<PageId> out(count);
    is.read(reinterpret_cast<char *>(out.data()),
            std::streamsize(count * sizeof(PageId)));
    if (std::size_t(is.gcount()) != count * sizeof(PageId))
        fatal("truncated binary trace body: expected " +
              std::to_string(count) + " ids");
    return out;
}

void
saveTrace(const std::string &path, const std::vector<PageId> &trace)
{
    if (endsWith(path, ".btrace")) {
        std::ofstream os(path, std::ios::binary);
        if (!os)
            fatal("cannot open '" + path + "' for writing");
        writeTraceBinary(os, trace);
    } else if (endsWith(path, ".trace")) {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '" + path + "' for writing");
        writeTraceText(os, trace);
    } else {
        fatal("unknown trace extension on '" + path +
              "' (use .trace or .btrace)");
    }
}

std::vector<PageId>
loadTrace(const std::string &path)
{
    if (endsWith(path, ".btrace")) {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            fatal("cannot open '" + path + "'");
        return readTraceBinary(is);
    }
    if (endsWith(path, ".trace")) {
        std::ifstream is(path);
        if (!is)
            fatal("cannot open '" + path + "'");
        return readTraceText(is);
    }
    fatal("unknown trace extension on '" + path +
          "' (use .trace or .btrace)");
}

ReplayStats
replayTrace(const std::vector<PageId> &trace, std::size_t localFrames,
            PolicyKind kind, std::uint64_t seed)
{
    WSC_ASSERT(localFrames > 0, "need at least one local frame");
    // Dense id spaces get bitset cold tracking; sparse ones fall back
    // to a hash set inside ColdTracker.
    std::uint64_t bound = 0;
    for (PageId p : trace)
        bound = std::max(bound, p + 1);
    return replayPages(trace.data(), trace.size(), kind, localFrames,
                       bound, Rng(seed));
}

} // namespace memblade
} // namespace wsc
