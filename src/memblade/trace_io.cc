#include "memblade/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "memblade/replay.hh"
#include "memblade/trace_stream.hh"
#include "util/endian.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace wsc {
namespace memblade {

namespace {

constexpr char magic[4] = {'W', 'S', 'C', 'T'};
constexpr std::uint8_t kBinaryVersion = 2;

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

void
writeTraceText(std::ostream &os, const std::vector<PageId> &trace)
{
    os << "# wsc page trace, " << trace.size() << " accesses\n";
    for (PageId p : trace)
        os << p << "\n";
    WSC_ASSERT(os.good(), "trace write failed");
}

std::vector<PageId>
readTraceText(std::istream &is)
{
    std::vector<PageId> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        try {
            std::size_t consumed = 0;
            unsigned long long v = std::stoull(t, &consumed);
            if (consumed != t.size())
                throw std::invalid_argument("trailing characters");
            out.push_back(PageId(v));
        } catch (const std::exception &) {
            fatal("bad trace line " + std::to_string(line_no) + ": '" +
                  t + "'");
        }
    }
    return out;
}

void
writeTraceBinary(std::ostream &os, const std::vector<PageId> &trace)
{
    os.write(magic, sizeof(magic));
    char version = char(kBinaryVersion);
    os.write(&version, 1);
    std::uint64_t count = toLittle64(trace.size());
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    if (detail::kHostIsLittleEndian) {
        os.write(reinterpret_cast<const char *>(trace.data()),
                 std::streamsize(trace.size() * sizeof(PageId)));
    } else {
        for (PageId p : trace) {
            std::uint64_t le = toLittle64(p);
            os.write(reinterpret_cast<const char *>(&le), sizeof(le));
        }
    }
    WSC_ASSERT(os.good(), "trace write failed");
}

std::vector<PageId>
readTraceBinary(std::istream &is)
{
    char m[4] = {};
    is.read(m, sizeof(m));
    if (!is.good() || std::memcmp(m, magic, sizeof(magic)) != 0)
        fatal("not a wsc binary trace (bad magic)");
    char version = 0;
    is.read(&version, 1);
    if (!is.good())
        fatal("truncated binary trace header");
    if (std::uint8_t(version) != kBinaryVersion)
        fatal("unsupported binary trace version " +
              std::to_string(unsigned(std::uint8_t(version))) +
              " (expected " + std::to_string(unsigned(kBinaryVersion)) +
              "; pre-versioned files must be regenerated)");
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is.good())
        fatal("truncated binary trace header");
    count = fromLittle64(count);

    // Never trust the header count: a corrupt file could request an
    // exabyte allocation. On a seekable stream, bound it by the bytes
    // actually remaining before allocating anything.
    std::streamoff body = -1;
    std::streamoff here = is.tellg();
    if (here >= 0) {
        is.seekg(0, std::ios::end);
        std::streamoff end = is.tellg();
        is.seekg(here);
        if (end >= here)
            body = end - here;
    }
    if (body >= 0 &&
        count > std::uint64_t(body) / sizeof(PageId))
        fatal("binary trace count " + std::to_string(count) +
              " exceeds the stream's record capacity (" +
              std::to_string(std::uint64_t(body) / sizeof(PageId)) +
              ")");

    std::vector<PageId> out;
    if (body >= 0) {
        out.resize(std::size_t(count));
        is.read(reinterpret_cast<char *>(out.data()),
                std::streamsize(count * sizeof(PageId)));
        if (std::size_t(is.gcount()) != count * sizeof(PageId))
            fatal("truncated binary trace body: expected " +
                  std::to_string(count) + " ids");
    } else {
        // Non-seekable stream: read in bounded chunks so allocation
        // can never outrun the data actually present.
        constexpr std::size_t kChunkIds = 1 << 16;
        std::uint64_t got = 0;
        while (got < count) {
            auto n = std::size_t(
                std::min<std::uint64_t>(kChunkIds, count - got));
            std::size_t prev = out.size();
            out.resize(prev + n);
            is.read(reinterpret_cast<char *>(out.data() + prev),
                    std::streamsize(n * sizeof(PageId)));
            if (std::size_t(is.gcount()) != n * sizeof(PageId))
                fatal("truncated binary trace body: expected " +
                      std::to_string(count) + " ids");
            got += n;
        }
    }
    if (!detail::kHostIsLittleEndian) {
        for (PageId &p : out)
            p = fromLittle64(p);
    }
    return out;
}

void
saveTrace(const std::string &path, const std::vector<PageId> &trace)
{
    if (endsWith(path, ".strace")) {
        writeTraceStream(path, trace);
    } else if (endsWith(path, ".btrace")) {
        std::ofstream os(path, std::ios::binary);
        if (!os)
            fatal("cannot open '" + path + "' for writing");
        writeTraceBinary(os, trace);
    } else if (endsWith(path, ".trace")) {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open '" + path + "' for writing");
        writeTraceText(os, trace);
    } else {
        fatal("unknown trace extension on '" + path +
              "' (use .trace, .btrace, or .strace)");
    }
}

std::vector<PageId>
loadTrace(const std::string &path)
{
    if (endsWith(path, ".strace"))
        return readTraceStreamPages(path);
    if (endsWith(path, ".btrace")) {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            fatal("cannot open '" + path + "'");
        return readTraceBinary(is);
    }
    if (endsWith(path, ".trace")) {
        std::ifstream is(path);
        if (!is)
            fatal("cannot open '" + path + "'");
        return readTraceText(is);
    }
    fatal("unknown trace extension on '" + path +
          "' (use .trace, .btrace, or .strace)");
}

ReplayStats
replayTrace(const std::vector<PageId> &trace, std::size_t localFrames,
            PolicyKind kind, std::uint64_t seed,
            std::uint64_t pageBound)
{
    WSC_ASSERT(localFrames > 0, "need at least one local frame");
    // Dense id spaces get bitset cold tracking; sparse ones fall back
    // to a hash set inside ColdTracker. Callers that already know the
    // bound (the streaming format carries it in the header) pass it
    // in and skip this extra pass.
    std::uint64_t bound = pageBound;
    if (bound == 0) {
        for (PageId p : trace)
            bound = std::max(bound, p + 1);
    }
    return replayPages(trace.data(), trace.size(), kind, localFrames,
                       bound, Rng(seed));
}

} // namespace memblade
} // namespace wsc
