/**
 * @file
 * Page-replacement policies for the local-memory simulator.
 *
 * The paper evaluates LRU and random replacement, expecting an
 * implementable policy to land between them (Section 3.4); Clock is
 * included as that implementable middle point.
 */

#ifndef WSC_MEMBLADE_REPLACEMENT_HH
#define WSC_MEMBLADE_REPLACEMENT_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "memblade/trace.hh"
#include "util/random.hh"

namespace wsc {
namespace memblade {

/**
 * Abstract replacement policy over a fixed number of local frames.
 *
 * access() returns true on hit. On miss the policy admits the page,
 * evicting a victim if full (exclusive hierarchy: the victim swaps to
 * the remote blade, the paper's DMA-swap design).
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Touch @p page; returns true if it was resident (hit). */
    virtual bool access(PageId page) = 0;

    /** Pages currently resident. */
    virtual std::size_t resident() const = 0;

    virtual std::string name() const = 0;
};

/** Exact LRU via list + hash map; O(1) per access. */
class LruPolicy : public ReplacementPolicy
{
  public:
    explicit LruPolicy(std::size_t frames);

    bool access(PageId page) override;
    std::size_t resident() const override { return map.size(); }
    std::string name() const override { return "lru"; }

  private:
    std::size_t frames;
    std::list<PageId> order; //!< front = most recent
    std::unordered_map<PageId, std::list<PageId>::iterator> map;
};

/** Random replacement via vector + hash map; O(1) per access. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::size_t frames, Rng rng);

    bool access(PageId page) override;
    std::size_t resident() const override { return map.size(); }
    std::string name() const override { return "random"; }

  private:
    std::size_t frames;
    Rng rng;
    std::vector<PageId> slots;
    std::unordered_map<PageId, std::size_t> map; //!< page -> slot index
};

/** Clock (second chance): the implementable approximation of LRU. */
class ClockPolicy : public ReplacementPolicy
{
  public:
    explicit ClockPolicy(std::size_t frames);

    bool access(PageId page) override;
    std::size_t resident() const override { return map.size(); }
    std::string name() const override { return "clock"; }

  private:
    struct Frame {
        PageId page;
        bool referenced;
    };
    std::size_t frames;
    std::vector<Frame> ring;
    std::size_t hand = 0;
    std::unordered_map<PageId, std::size_t> map;
};

/**
 * Policy kinds for factory construction. The paper's trio plus the
 * policy zoo (ARC/SLRU/2Q/LFUDA, see memblade/policy_zoo.hh).
 */
enum class PolicyKind { Lru, Random, Clock, Arc, Slru, TwoQ, Lfuda };

/** Every PolicyKind, in declaration order (for sweeps and tables). */
inline constexpr PolicyKind allPolicyKinds[] = {
    PolicyKind::Lru,  PolicyKind::Random, PolicyKind::Clock,
    PolicyKind::Arc,  PolicyKind::Slru,   PolicyKind::TwoQ,
    PolicyKind::Lfuda,
};

/** Construct a policy with @p frames local frames. */
std::unique_ptr<ReplacementPolicy> makePolicy(PolicyKind kind,
                                              std::size_t frames,
                                              Rng rng);

std::string to_string(PolicyKind kind);

/**
 * Parse a policy name ("lru", "random", "clock", "arc", "slru", "2q",
 * "lfuda"); fatal() on anything else.
 */
PolicyKind policyFromString(const std::string &name);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_REPLACEMENT_HH
