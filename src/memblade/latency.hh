/**
 * @file
 * Remote-access latency models and the slowdown computation.
 *
 * The paper derives 4 µs for a 4 KB page over a PCIe 2.0 x4 link
 * (published PCIe round-trip plus DRAM and bus-transfer latencies) and
 * 0.5 µs with the critical-block-first (CBF) optimization, where the
 * faulting access resumes as soon as the needed block arrives
 * (Figure 4b; Section 3.4 quotes 0.75 µs including DMA setup — we
 * expose both as named configurations).
 *
 * Execution slowdown for a workload:
 *
 *   slowdown = warm-miss rate * touches/second * stall seconds per miss
 *
 * i.e. the fraction of execution time spent stalled on remote fetches.
 */

#ifndef WSC_MEMBLADE_LATENCY_HH
#define WSC_MEMBLADE_LATENCY_HH

#include <string>

#include "memblade/trace.hh"
#include "memblade/two_level.hh"

namespace wsc {
namespace memblade {

/** A remote-memory interconnect configuration. */
struct RemoteLink {
    std::string name;
    double stallSecondsPerMiss = 4.0e-6;

    /** PCIe 2.0 x4, full 4 KB page transferred before use. */
    static RemoteLink
    pcieX4()
    {
        return {"PCIe x4 (4 us)", 4.0e-6};
    }

    /** Critical-block-first: stall only until the needed block lands. */
    static RemoteLink
    cbf()
    {
        return {"CBF (0.5 us)", 0.5e-6};
    }

    /** CBF including DMA-setup overhead (Section 3.4 text). */
    static RemoteLink
    cbfWithSetup()
    {
        return {"CBF+setup (0.75 us)", 0.75e-6};
    }
};

/**
 * How a remote-page access is detected and the swap initiated.
 *
 * The baseline design detects the access as a TLB miss and runs a
 * light-weight software trap handler in the OS/hypervisor (Ekman &
 * Stenstrom); Section 4 floats hardware TLB handlers as an extension
 * that removes most of that cost.
 */
enum class TrapHandling {
    None,        //!< cost already folded into the link figure
    SoftwareTrap, //!< OS/hypervisor handler on every remote miss
    HardwareTlb  //!< dedicated hardware walker/initiator
};

/** Per-miss trap cost, seconds. */
double trapCostSeconds(TrapHandling handling);

/** A link with the detection/initiation cost added per miss. */
RemoteLink withTrapCost(const RemoteLink &base, TrapHandling handling);

/**
 * Execution slowdown (fractional, e.g. 0.047 = 4.7%) given replay
 * statistics, the workload's page-touch rate, and a link.
 *
 * Cold (first-touch) misses are excluded: in the real system they are
 * demand-zero or file-backed populations, not blade swaps.
 */
double slowdown(const ReplayStats &stats, const TraceProfile &profile,
                const RemoteLink &link);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_LATENCY_HH
