/**
 * @file
 * Replacement-policy zoo: ARC, SLRU, 2Q, and LFUDA beyond the paper's
 * LRU/Random/Clock trio.
 *
 * The paper expected an implementable policy to land between LRU and
 * random (Section 3.4); modern tiered-memory and flash-cache stacks
 * ship adaptive policies instead, so the zoo lets the memory-blade and
 * remote-disk studies ask whether the 2008 conclusions survive better
 * replacement. Each policy comes in two forms, the PR-4 oracle idiom:
 *
 *  - a *reference* per-access implementation (ReplacementPolicy
 *    subclass over std::list/unordered_map, readable and obviously
 *    faithful to the published algorithm), and
 *  - a *kernel* (flat arenas, intrusive index-linked lists, a
 *    PageSlotMap directory; no per-access allocation) used by the
 *    batched replay drivers.
 *
 * Determinism contract: kernel and reference make exactly the same
 * hit/miss decision on every access of every trace — both implement
 *  the same algorithm with the same deterministic tie-breaks, and
 * test_policy_zoo + bench_trace_replay enforce the identity across
 * workloads and capacities. None of the four policies consumes
 * randomness.
 *
 * Algorithms (deterministic tie-breaks spelled out):
 *
 *  - ARC (Megiddo & Modha, FAST'03 Fig. 4): cache lists T1 (seen
 *    once) and T2 (seen twice+), ghost lists B1/B2, integer target p
 *    adapted on ghost hits by max(1, |Bother|/|Bhit|). REPLACE demotes
 *    the T1 LRU when |T1| > p (or |T1| == p on a B2 hit), else the T2
 *    LRU; if the chosen side is empty it demotes from the other
 *    (defensive, identical in both forms).
 *  - SLRU (Karedla et al.): protected segment of floor(frames/2)
 *    frames, the rest probationary. Misses enter the probationary
 *    MRU; a probationary hit promotes to the protected MRU, demoting
 *    the protected LRU back to the probationary MRU when over
 *    capacity; eviction is the probationary LRU.
 *  - 2Q full version (Johnson & Shasha, VLDB'94): FIFO A1in of
 *    Kin = max(1, frames/4), ghost FIFO A1out of Kout = max(1,
 *    frames/2), LRU Am for the rest of the cache. A1in hits do not
 *    reorder; an A1out ghost hit admits to Am.
 *  - LFUDA (Arlitt et al.): key = in-cache reference count + global
 *    age L; L is set to the victim's key on every eviction; the
 *    victim is the minimum (key, insertion-sequence) pair, so ties
 *    break FIFO.
 */

#ifndef WSC_MEMBLADE_POLICY_ZOO_HH
#define WSC_MEMBLADE_POLICY_ZOO_HH

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "memblade/replacement.hh"
#include "memblade/replay.hh"

namespace wsc {
namespace memblade {

// --------------------------------------------------------------------
// Reference implementations (the per-access oracles).
// --------------------------------------------------------------------

/** ARC reference: four std::lists plus an iterator map. */
class ArcPolicy : public ReplacementPolicy
{
  public:
    explicit ArcPolicy(std::size_t frames);

    bool access(PageId page) override;
    std::size_t resident() const override { return t1.size() + t2.size(); }
    std::string name() const override { return "arc"; }

  private:
    enum List : std::uint8_t { T1, T2, B1, B2 };
    struct Where {
        List list;
        std::list<PageId>::iterator it;
    };

    std::list<PageId> &listOf(List l);
    void replace(bool inB2);

    std::size_t c;      //!< cache capacity (frames)
    std::size_t target = 0; //!< p: adaptive T1 target size
    std::list<PageId> t1, t2, b1, b2; //!< front = MRU
    std::unordered_map<PageId, Where> map;
};

/** SLRU reference: probationary + protected segment lists. */
class SlruPolicy : public ReplacementPolicy
{
  public:
    explicit SlruPolicy(std::size_t frames);

    bool access(PageId page) override;
    std::size_t
    resident() const override
    {
        return prob.size() + prot.size();
    }
    std::string name() const override { return "slru"; }

  private:
    struct Where {
        bool isProtected;
        std::list<PageId>::iterator it;
    };

    std::size_t probCap, protCap;
    std::list<PageId> prob, prot; //!< front = MRU
    std::unordered_map<PageId, Where> map;
};

/** 2Q (full version) reference: A1in/A1out FIFOs + Am LRU. */
class TwoQPolicy : public ReplacementPolicy
{
  public:
    explicit TwoQPolicy(std::size_t frames);

    bool access(PageId page) override;
    std::size_t
    resident() const override
    {
        return a1in.size() + am.size();
    }
    std::string name() const override { return "2q"; }

  private:
    enum List : std::uint8_t { A1in, A1out, Am };
    struct Where {
        List list;
        std::list<PageId>::iterator it;
    };

    void reclaimFor();

    std::size_t frames, kin, kout;
    std::list<PageId> a1in, a1out, am; //!< front = newest/MRU
    std::unordered_map<PageId, Where> map;
};

/** LFU-with-dynamic-aging reference: an ordered (key, seq) victim map. */
class LfudaPolicy : public ReplacementPolicy
{
  public:
    explicit LfudaPolicy(std::size_t frames);

    bool access(PageId page) override;
    std::size_t resident() const override { return map.size(); }
    std::string name() const override { return "lfuda"; }

  private:
    struct Entry {
        std::uint64_t count;
        std::uint64_t key; //!< count + age at last touch
        std::uint64_t seq; //!< insertion sequence (FIFO tie-break)
    };

    std::size_t frames;
    std::uint64_t age = 0;  //!< L: key of the last eviction victim
    std::uint64_t nextSeq = 0;
    std::unordered_map<PageId, Entry> map;
    /** (key, seq) -> page, ordered; begin() is the victim. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, PageId> order;
};

// --------------------------------------------------------------------
// Kernels (flat arenas, no per-access allocation).
// --------------------------------------------------------------------

namespace zoo_detail {

constexpr std::uint32_t kNull = ~std::uint32_t(0);

/** A node of an intrusive list over a shared arena. */
struct Node {
    PageId page = 0;
    std::uint32_t prev = kNull, next = kNull;
    std::uint8_t tag = 0; //!< which list the node is on
};

/** Intrusive list endpoints; nodes live in the owner's arena. */
struct NodeList {
    std::uint32_t head = kNull, tail = kNull; //!< head = MRU/front
    std::size_t size = 0;
};

void pushFront(std::vector<Node> &nodes, NodeList &list,
               std::uint32_t i);
void unlink(std::vector<Node> &nodes, NodeList &list, std::uint32_t i);

} // namespace zoo_detail

/** ARC kernel: T1/T2/B1/B2 as intrusive lists over one 2c-node arena. */
class ArcKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    explicit ArcKernel(std::size_t frames, std::uint64_t pageBound = 0);

    /** Touch @p page; returns true if it was resident (hit). */
    bool access(PageId page);

    /** See PageSlotMap::prefetch. */
    void prefetch(PageId page) const { map.prefetch(page); }

    std::size_t resident() const { return t1.size + t2.size; }

  private:
    enum Tag : std::uint8_t { T1, T2, B1, B2 };

    zoo_detail::NodeList &listOf(std::uint8_t tag);
    void moveTo(std::uint32_t i, Tag to);
    void dropLru(Tag tag);
    std::uint32_t allocNode(PageId page, Tag tag);
    void replace(bool inB2);

    std::size_t c;
    std::size_t target = 0;
    std::vector<zoo_detail::Node> nodes; //!< 2c-node arena
    std::vector<std::uint32_t> freeNodes;
    zoo_detail::NodeList t1, t2, b1, b2;
    PageSlotMap map; //!< page -> node index (cache + ghosts)
};

/** SLRU kernel: two intrusive segments over one frame arena. */
class SlruKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    explicit SlruKernel(std::size_t frames,
                        std::uint64_t pageBound = 0);

    bool access(PageId page);
    void prefetch(PageId page) const { map.prefetch(page); }
    std::size_t resident() const { return prob.size + prot.size; }

  private:
    enum Tag : std::uint8_t { Prob, Prot };

    std::size_t probCap, protCap;
    std::size_t used = 0;
    std::vector<zoo_detail::Node> nodes;
    zoo_detail::NodeList prob, prot;
    PageSlotMap map;
};

/** 2Q kernel: A1in/A1out/Am intrusive lists over one arena. */
class TwoQKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    explicit TwoQKernel(std::size_t frames,
                        std::uint64_t pageBound = 0);

    bool access(PageId page);
    void prefetch(PageId page) const { map.prefetch(page); }
    std::size_t resident() const { return a1in.size + am.size; }

  private:
    enum Tag : std::uint8_t { A1in, A1out, Am };

    void reclaimFor();
    std::uint32_t allocNode(PageId page, Tag tag);
    void dropTail(zoo_detail::NodeList &list);

    std::size_t frames_, kin, kout;
    std::vector<zoo_detail::Node> nodes; //!< frames + kout nodes
    std::vector<std::uint32_t> freeNodes;
    zoo_detail::NodeList a1in, a1out, am;
    PageSlotMap map;
};

/** LFUDA kernel: indexed binary min-heap over a flat slot arena. */
class LfudaKernel
{
  public:
    /** @param pageBound See PageSlotMap (0 = unbounded ids). */
    explicit LfudaKernel(std::size_t frames,
                         std::uint64_t pageBound = 0);

    bool access(PageId page);
    void prefetch(PageId page) const { map.prefetch(page); }
    std::size_t resident() const { return used; }

  private:
    bool less(std::uint32_t a, std::uint32_t b) const;
    void siftUp(std::size_t heapPos);
    void siftDown(std::size_t heapPos);

    std::size_t frames_;
    std::size_t used = 0;
    std::uint64_t age = 0;
    std::uint64_t nextSeq = 0;
    std::vector<PageId> pages;
    std::vector<std::uint64_t> counts, keys, seqs;
    std::vector<std::uint32_t> heap; //!< heap of slot indices
    std::vector<std::uint32_t> pos;  //!< slot -> heap position
    PageSlotMap map;
};

/**
 * Devirtualized policy dispatch shared by every batched replay driver:
 * construct the kernel for @p kind and invoke @p fn on it. The Rng is
 * consumed only by PolicyKind::Random (in RandomPolicy's draw order);
 * every other kernel is deterministic.
 */
template <typename Fn>
auto
withPolicyKernel(PolicyKind kind, std::size_t frames,
                 std::uint64_t pageBound, Rng kernelRng, Fn &&fn)
{
    switch (kind) {
      case PolicyKind::Lru: {
        LruKernel k(frames, pageBound);
        return fn(k);
      }
      case PolicyKind::Random: {
        RandomKernel k(frames, kernelRng, pageBound);
        return fn(k);
      }
      case PolicyKind::Clock: {
        ClockKernel k(frames, pageBound);
        return fn(k);
      }
      case PolicyKind::Arc: {
        ArcKernel k(frames, pageBound);
        return fn(k);
      }
      case PolicyKind::Slru: {
        SlruKernel k(frames, pageBound);
        return fn(k);
      }
      case PolicyKind::TwoQ: {
        TwoQKernel k(frames, pageBound);
        return fn(k);
      }
      case PolicyKind::Lfuda: {
        LfudaKernel k(frames, pageBound);
        return fn(k);
      }
    }
    panic("unknown policy kind");
}

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_POLICY_ZOO_HH
