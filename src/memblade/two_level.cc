#include "memblade/two_level.hh"

#include <cmath>

#include "memblade/replay.hh"
#include "util/logging.hh"

namespace wsc {
namespace memblade {

TwoLevelMemory::TwoLevelMemory(std::size_t localFrames, PolicyKind kind,
                               Rng rng)
    : policy(makePolicy(kind, localFrames, rng))
{
}

void
TwoLevelMemory::access(PageId page)
{
    ++stats_.accesses;
    bool hit = policy->access(page);
    if (hit) {
        ++stats_.hits;
        return;
    }
    ++stats_.misses;
    auto [it, inserted] = seen.emplace(page, true);
    (void)it;
    if (inserted)
        ++stats_.coldMisses;
}

void
TwoLevelMemory::replay(TraceGenerator &gen, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        access(gen.next());
}

ReplayStats
replayProfile(const TraceProfile &profile, double localFraction,
              PolicyKind kind, std::uint64_t accesses,
              std::uint64_t seed)
{
    WSC_ASSERT(localFraction > 0.0 && localFraction <= 1.0,
               "local fraction out of (0, 1]");
    auto frames = std::size_t(
        std::ceil(double(profile.footprintPages) * localFraction));
    // Same Rng derivation as the original TwoLevelMemory path, so
    // results stay bit-identical for any (profile, fraction, seed);
    // the replay itself runs on the allocation-free kernels.
    Rng rng(seed);
    Rng kernel_rng = rng.split();
    TraceGenerator gen(profile, rng.split());
    return replayWindowed(gen, kind, frames, profile.footprintPages,
                          accesses, 0, kernel_rng)
        .total;
}

} // namespace memblade
} // namespace wsc
