/**
 * @file
 * Content-based page sharing and compression on the memory blade.
 *
 * Section 3.4 lists two follow-on optimizations the shared blade
 * "opens up": memory compression (IBM MXT-style) and content-based
 * page sharing across blades (VMware ESX-style). Both reduce the
 * physical DRAM the blade needs for a given logical capacity; this
 * module models their capacity effect and folds it into the
 * provisioning economics.
 *
 * Model
 * -----
 * Across the servers sharing a blade, a fraction `dupFraction` of
 * remote pages is duplicated content (zero pages, shared libraries,
 * common file-cache blocks); deduplication stores one copy for each
 * duplicate class of average size `dupClassSize`. Of the remaining
 * unique pages, a fraction `compressibleFraction` compresses at ratio
 * `compressionRatio`. Physical capacity per logical byte:
 *
 *   phys = dup/dupClassSize
 *        + uniq * (compressible/ratio + (1 - compressible))
 *
 * with uniq = 1 - dupFraction. Compression also adds a small latency
 * to each remote fetch (decompression on the blade controller).
 */

#ifndef WSC_MEMBLADE_PAGE_SHARING_HH
#define WSC_MEMBLADE_PAGE_SHARING_HH

#include "memblade/blade.hh"
#include "memblade/latency.hh"

namespace wsc {
namespace memblade {

/** Content-reduction parameters (defaults follow published ESX/MXT data). */
struct ContentParams {
    bool enableSharing = true;
    bool enableCompression = true;
    /** Fraction of remote pages with duplicate content. */
    double dupFraction = 0.15;
    /** Average duplicates per shared class (ESX reports 2-4). */
    double dupClassSize = 3.0;
    /** Fraction of unique pages that compress usefully. */
    double compressibleFraction = 0.6;
    /** Compression ratio on compressible pages (MXT: ~2x). */
    double compressionRatio = 2.0;
    /** Added per-fetch latency for decompression, seconds. */
    double decompressSeconds = 0.3e-6;
};

/**
 * Physical DRAM bytes needed per logical remote byte under the given
 * content parameters (1.0 when both features are disabled).
 */
double physicalPerLogical(const ContentParams &params);

/**
 * Remote link with the decompression latency folded in (unchanged if
 * compression is disabled).
 */
RemoteLink linkWith(const ContentParams &params, const RemoteLink &base);

/**
 * Memory-sharing outcome with content reduction applied to the remote
 * tier: the blade's DRAM cost and power shrink by the physical/logical
 * factor.
 */
SharedMemoryOutcome applyMemorySharingWithContent(
    const platform::ServerConfig &server, const BladeParams &params,
    Provisioning scheme, const ContentParams &content);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_PAGE_SHARING_HH
