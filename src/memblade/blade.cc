#include "memblade/blade.hh"

#include "util/logging.hh"

namespace wsc {
namespace memblade {

std::string
to_string(Provisioning p)
{
    switch (p) {
      case Provisioning::Static:
        return "static";
      case Provisioning::Dynamic:
        return "dynamic";
    }
    panic("unknown provisioning scheme");
}

SharedMemoryOutcome
applyMemorySharing(const platform::ServerConfig &server,
                   const BladeParams &params, Provisioning scheme)
{
    WSC_ASSERT(params.localFraction > 0.0 && params.localFraction <= 1.0,
               "local fraction out of (0, 1]");
    double base_cost = server.memory.dollars;
    double base_watts = server.memory.watts;

    double remote_fraction = (scheme == Provisioning::Static)
                                 ? 1.0 - params.localFraction
                                 : 0.85 - params.localFraction;
    WSC_ASSERT(remote_fraction >= 0.0, "remote fraction negative");

    SharedMemoryOutcome out;
    out.memoryDollars =
        base_cost * params.localFraction +
        base_cost * remote_fraction * (1.0 - params.remoteCostDiscount) +
        params.pcieCostPerServer;
    out.memoryWatts =
        base_watts * params.localFraction +
        base_watts * remote_fraction * (1.0 - params.remotePowerSaving) +
        params.pciePowerPerServer;
    out.slowdown = params.assumedSlowdown;
    return out;
}

platform::ServerConfig
withMemorySharing(const platform::ServerConfig &server,
                  const BladeParams &params, Provisioning scheme)
{
    auto outcome = applyMemorySharing(server, params, scheme);
    platform::ServerConfig cfg = server;
    cfg.memory.dollars = outcome.memoryDollars;
    cfg.memory.watts = outcome.memoryWatts;
    // Local capacity shrinks; the blade share remains addressable.
    cfg.memory.capacityGB =
        server.memory.capacityGB * params.localFraction;
    return cfg;
}

} // namespace memblade
} // namespace wsc
