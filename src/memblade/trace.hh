/**
 * @file
 * Synthetic page-access traces for the memory-sharing study.
 *
 * The paper gathered memory traces from full-system simulation of the
 * benchmarks on the emb1 model and replayed them through a two-level
 * memory simulator (Section 3.4). We substitute a synthetic trace
 * generator whose streams have the workloads' page-grain reuse
 * structure: a hot working set that captures most touches, a Zipf-
 * distributed warm region, and sequential scan runs (mapreduce's
 * streaming splits, websearch's posting scans).
 *
 * Each benchmark also carries a page-touch rate (TLB-visible distinct-
 * page touches per second of execution) used to convert remote-miss
 * rates into execution slowdowns; these are calibrated against the
 * paper's Figure 4(b) and documented in EXPERIMENTS.md.
 */

#ifndef WSC_MEMBLADE_TRACE_HH
#define WSC_MEMBLADE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/distributions.hh"
#include "util/random.hh"
#include "workloads/suite.hh"

namespace wsc {
namespace memblade {

/** A page identifier within a workload's footprint. */
using PageId = std::uint64_t;

/** Parameters shaping one workload's page-access stream. */
struct TraceProfile {
    std::string name;
    std::uint64_t footprintPages = 1 << 18; //!< distinct pages touched
    double hotSetFraction = 0.1;  //!< fraction of footprint that is hot
    double hotProb = 0.8;         //!< probability a touch hits the hot set
    double zipfS = 0.8;           //!< skew within each region
    double seqRunMean = 1.0;      //!< mean sequential run length (pages)
    /** Distinct-page touches per second of execution on emb1. */
    double touchesPerSecond = 1.0e5;
};

/** The calibrated profile for one benchmark. */
TraceProfile profileFor(workloads::Benchmark b);

/**
 * Streaming generator of page ids following a TraceProfile.
 */
class TraceGenerator
{
  public:
    TraceGenerator(TraceProfile profile, Rng rng);

    /** Next page id in [0, footprintPages). */
    PageId next();

    /**
     * Fill @p out[0..n) with the next @p n page ids.
     *
     * Draws the RNG in exactly the same order as @p n scalar next()
     * calls — the generator state and every subsequent id are
     * identical whichever way the trace is pulled — but drains
     * sequential runs in blocks, so batched replay loops avoid the
     * per-access call and branch overhead.
     */
    void nextBatch(PageId *out, std::size_t n);

    const TraceProfile &profile() const { return p; }

  private:
    TraceProfile p;
    Rng rng;
    sim::ZipfDist hotDist;
    sim::ZipfDist coldDist;
    std::uint64_t hotPages;
    // Sequential-run state.
    PageId runPage = 0;
    std::uint64_t runLeft = 0;

    PageId drawStart();
};

/** Materialize @p n accesses (for tests and offline analysis). */
std::vector<PageId> generateTrace(const TraceProfile &profile,
                                  std::uint64_t n, Rng rng);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_TRACE_HH
