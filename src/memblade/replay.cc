#include "memblade/replay.hh"

#include <cmath>

#include "memblade/policy_zoo.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace wsc {
namespace memblade {

namespace {

std::size_t
nextPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

PageSlotMap::PageSlotMap(std::size_t maxEntries,
                         std::uint64_t pageBound)
{
    WSC_ASSERT(maxEntries > 0, "empty page-slot map");
    if (pageBound > 0 && pageBound <= kDirectLimit) {
        direct.assign(std::size_t(pageBound), kNoSlot);
        return;
    }
    // <= 50% load keeps linear-probe chains short for the whole
    // replay; 16 is the floor so tiny caches still probe sparsely.
    std::size_t capacity = nextPow2(std::max<std::size_t>(
        16, maxEntries * 2));
    table.assign(capacity, Entry{kEmptyKey, kNoSlot});
    mask = capacity - 1;
}

void
PageSlotMap::erase(PageId page)
{
    if (!direct.empty()) {
        WSC_ASSERT(page < direct.size() &&
                       direct[std::size_t(page)] != kNoSlot,
                   "erase of absent page");
        direct[std::size_t(page)] = kNoSlot;
        --count;
        return;
    }
    std::size_t i = idealIndex(page);
    while (table[i].key != page) {
        WSC_ASSERT(table[i].key != kEmptyKey,
                   "erase of absent page");
        i = (i + 1) & mask;
    }
    --count;
    // Backward-shift deletion: close the hole at i by pulling forward
    // any later entry whose probe path runs through it, repeating
    // until the chain ends. No tombstones, so probe lengths stay
    // bounded by the load factor forever.
    std::size_t j = i;
    for (;;) {
        table[i].key = kEmptyKey;
        for (;;) {
            j = (j + 1) & mask;
            if (table[j].key == kEmptyKey)
                return;
            std::size_t k = idealIndex(table[j].key);
            // Keep the entry at j if its ideal slot k lies cyclically
            // in (i, j]: its probe path does not pass through i.
            bool keep = (i <= j) ? (i < k && k <= j)
                                 : (i < k || k <= j);
            if (!keep)
                break;
        }
        table[i] = table[j];
        i = j;
    }
}

LruKernel::LruKernel(std::size_t frames, std::uint64_t pageBound)
    : frames_(frames), links(frames), pages(frames),
      map(frames, pageBound)
{
    WSC_ASSERT(frames > 0, "LRU needs at least one frame");
}

RandomKernel::RandomKernel(std::size_t frames, Rng rng_in,
                           std::uint64_t pageBound)
    : frames_(frames), rng(rng_in), map(frames, pageBound)
{
    WSC_ASSERT(frames > 0, "random policy needs at least one frame");
    slots.reserve(frames);
}

ClockKernel::ClockKernel(std::size_t frames, std::uint64_t pageBound)
    : frames_(frames), map(frames, pageBound)
{
    WSC_ASSERT(frames > 0, "clock needs at least one frame");
    ring.reserve(frames);
    referenced.reserve(frames);
}

ColdTracker::ColdTracker(std::uint64_t pageBound)
{
    if (pageBound > 0 && pageBound <= kBitsetLimit)
        bits.assign(std::size_t((pageBound + 63) / 64), 0);
}

namespace {

/** Replay chunk size: big enough to amortize the batch-fill call,
 * small enough to stay L1/L2 resident (32 KB of page ids). */
constexpr std::size_t kChunk = 4096;

/** Prefetch distance: the batch buffer shows us future page ids, so
 * their hash-probe lines can be in flight while earlier accesses
 * retire — far enough to cover a memory round trip, near enough that
 * the line is still resident when its access arrives. */
constexpr std::size_t kPrefetch = 16;

template <typename Kernel>
WindowedReplay
replayLoop(Kernel &kernel, TraceGenerator &gen, std::uint64_t accesses,
           std::uint64_t warmup, ColdTracker &cold)
{
    WSC_ASSERT(warmup <= accesses, "warmup longer than the replay");
    WindowedReplay w;
    std::vector<PageId> buf(kChunk);
    std::uint64_t done = 0;
    while (done < accesses) {
        auto n = std::size_t(
            std::min<std::uint64_t>(kChunk, accesses - done));
        gen.nextBatch(buf.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            if (i + kPrefetch < n)
                kernel.prefetch(buf[i + kPrefetch]);
            PageId page = buf[i];
            bool measured = done + i >= warmup;
            ++w.total.accesses;
            w.measured.accesses += measured;
            if (kernel.access(page)) {
                ++w.total.hits;
                w.measured.hits += measured;
                continue;
            }
            ++w.total.misses;
            w.measured.misses += measured;
            if (cold.firstTouch(page)) {
                ++w.total.coldMisses;
                w.measured.coldMisses += measured;
            }
        }
        done += n;
    }
    return w;
}

template <typename Kernel>
ReplayStats
replayPagesLoop(Kernel &kernel, const PageId *pages, std::size_t n,
                ColdTracker &cold)
{
    ReplayStats st;
    st.accesses = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetch < n)
            kernel.prefetch(pages[i + kPrefetch]);
        PageId page = pages[i];
        WSC_ASSERT(page != PageSlotMap::kEmptyKey,
                   "page id ~0 is reserved");
        if (kernel.access(page)) {
            ++st.hits;
            continue;
        }
        ++st.misses;
        if (cold.firstTouch(page))
            ++st.coldMisses;
    }
    return st;
}

} // namespace

WindowedReplay
replayWindowed(TraceGenerator &gen, PolicyKind kind, std::size_t frames,
               std::uint64_t pageBound, std::uint64_t accesses,
               std::uint64_t warmup, Rng kernelRng)
{
    ColdTracker cold(pageBound);
    return withPolicyKernel(kind, frames, pageBound, kernelRng,
                            [&](auto &k) {
                                return replayLoop(k, gen, accesses,
                                                  warmup, cold);
                            });
}

ReplayStats
replayPages(const PageId *pages, std::size_t n, PolicyKind kind,
            std::size_t frames, std::uint64_t pageBound, Rng kernelRng)
{
    ColdTracker cold(pageBound);
    return withPolicyKernel(kind, frames, pageBound, kernelRng,
                            [&](auto &k) {
                                return replayPagesLoop(k, pages, n,
                                                       cold);
                            });
}

ReplayStats
shardedReplayProfile(const TraceProfile &profile, double localFraction,
                     PolicyKind kind, std::uint64_t accesses,
                     std::uint64_t seed, unsigned shards,
                     ThreadPool *pool)
{
    WSC_ASSERT(shards > 0, "need at least one shard");
    WSC_ASSERT(localFraction > 0.0 && localFraction <= 1.0,
               "local fraction out of (0, 1]");

    std::vector<ReplayStats> parts(shards);
    parallelFor(
        shards,
        [&](std::size_t s) {
            std::uint64_t base = accesses / shards;
            std::uint64_t n = base + (s < accesses % shards ? 1 : 0);
            // Seed from the shard's identity, never from scheduling.
            std::uint64_t shard_seed =
                seedFor(seed, std::string_view(profile.name),
                        std::uint64_t(shards), std::uint64_t(s));
            parts[s] = replayProfile(profile, localFraction, kind, n,
                                     shard_seed);
        },
        pool);

    // Deterministic merge: sum in shard order.
    ReplayStats merged;
    for (const auto &p : parts) {
        merged.accesses += p.accesses;
        merged.hits += p.hits;
        merged.misses += p.misses;
        merged.coldMisses += p.coldMisses;
    }
    return merged;
}

} // namespace memblade
} // namespace wsc
