#include "memblade/policy_zoo.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace memblade {

// --------------------------------------------------------------------
// ARC reference
// --------------------------------------------------------------------

ArcPolicy::ArcPolicy(std::size_t frames) : c(frames)
{
    WSC_ASSERT(frames > 0, "ARC needs at least one frame");
}

std::list<PageId> &
ArcPolicy::listOf(List l)
{
    switch (l) {
      case T1:
        return t1;
      case T2:
        return t2;
      case B1:
        return b1;
      case B2:
        return b2;
    }
    panic("unknown ARC list");
}

void
ArcPolicy::replace(bool inB2)
{
    // Demote the T1 LRU when T1 exceeds its target (or sits exactly on
    // it after a B2 ghost hit), else the T2 LRU. The empty-side guard
    // is mirrored verbatim in ArcKernel::replace.
    bool fromT1 = !t1.empty() && (t1.size() > target ||
                                  (inB2 && t1.size() == target));
    if (!fromT1 && t2.empty())
        fromT1 = !t1.empty();
    if (fromT1) {
        PageId victim = t1.back();
        t1.pop_back();
        b1.push_front(victim);
        map[victim] = Where{B1, b1.begin()};
    } else if (!t2.empty()) {
        PageId victim = t2.back();
        t2.pop_back();
        b2.push_front(victim);
        map[victim] = Where{B2, b2.begin()};
    }
}

bool
ArcPolicy::access(PageId page)
{
    auto it = map.find(page);
    if (it != map.end()) {
        Where &w = it->second;
        if (w.list == T1 || w.list == T2) {
            listOf(w.list).erase(w.it);
            t2.push_front(page);
            w = Where{T2, t2.begin()};
            return true;
        }
        if (w.list == B1) {
            auto d = std::max<std::size_t>(1, b2.size() / b1.size());
            target = std::min(c, target + d);
            replace(false);
            b1.erase(it->second.it);
            t2.push_front(page);
            map[page] = Where{T2, t2.begin()};
            return false;
        }
        // B2 ghost hit.
        auto d = std::max<std::size_t>(1, b1.size() / b2.size());
        target -= std::min(target, d);
        replace(true);
        b2.erase(it->second.it);
        t2.push_front(page);
        map[page] = Where{T2, t2.begin()};
        return false;
    }

    // Brand-new page (case IV of the ARC pseudocode).
    std::size_t l1 = t1.size() + b1.size();
    std::size_t total = l1 + t2.size() + b2.size();
    if (l1 == c) {
        if (t1.size() < c) {
            PageId lru = b1.back();
            b1.pop_back();
            map.erase(lru);
            replace(false);
        } else {
            PageId lru = t1.back();
            t1.pop_back();
            map.erase(lru);
        }
    } else if (total >= c) {
        if (total == 2 * c && !b2.empty()) {
            PageId lru = b2.back();
            b2.pop_back();
            map.erase(lru);
        }
        replace(false);
    }
    t1.push_front(page);
    map[page] = Where{T1, t1.begin()};
    return false;
}

// --------------------------------------------------------------------
// SLRU reference
// --------------------------------------------------------------------

SlruPolicy::SlruPolicy(std::size_t frames)
{
    WSC_ASSERT(frames > 0, "SLRU needs at least one frame");
    protCap = frames >= 2 ? frames / 2 : 0;
    probCap = frames - protCap;
}

bool
SlruPolicy::access(PageId page)
{
    auto it = map.find(page);
    if (it != map.end()) {
        Where &w = it->second;
        if (w.isProtected) {
            prot.splice(prot.begin(), prot, w.it);
            return true;
        }
        // Probationary hit: promote, demoting the protected LRU back
        // when the segment overflows.
        prob.erase(w.it);
        prot.push_front(page);
        map[page] = Where{true, prot.begin()};
        if (prot.size() > protCap) {
            PageId demoted = prot.back();
            prot.pop_back();
            prob.push_front(demoted);
            map[demoted] = Where{false, prob.begin()};
        }
        return true;
    }
    // Miss: evict the probationary LRU first so the segment never
    // overflows (mirrored in SlruKernel).
    if (prob.size() == probCap) {
        PageId victim = prob.back();
        prob.pop_back();
        map.erase(victim);
    }
    prob.push_front(page);
    map[page] = Where{false, prob.begin()};
    return false;
}

// --------------------------------------------------------------------
// 2Q reference
// --------------------------------------------------------------------

TwoQPolicy::TwoQPolicy(std::size_t frames) : frames(frames)
{
    WSC_ASSERT(frames > 0, "2Q needs at least one frame");
    kin = std::max<std::size_t>(1, frames / 4);
    kout = std::max<std::size_t>(1, frames / 2);
}

void
TwoQPolicy::reclaimFor()
{
    if (a1in.size() + am.size() < frames)
        return;
    if (a1in.size() >= kin || am.empty()) {
        // Page out the A1in tail into the A1out ghost FIFO.
        PageId victim = a1in.back();
        a1in.pop_back();
        a1out.push_front(victim);
        map[victim] = Where{A1out, a1out.begin()};
        if (a1out.size() > kout) {
            PageId dropped = a1out.back();
            a1out.pop_back();
            map.erase(dropped);
        }
    } else {
        PageId victim = am.back();
        am.pop_back();
        map.erase(victim);
    }
}

bool
TwoQPolicy::access(PageId page)
{
    auto it = map.find(page);
    if (it != map.end()) {
        Where &w = it->second;
        if (w.list == Am) {
            am.splice(am.begin(), am, w.it);
            return true;
        }
        if (w.list == A1in)
            return true; // FIFO: hits do not reorder
        // A1out ghost hit: remove the ghost before reclaiming so the
        // reclaim can never drop the very entry being admitted.
        a1out.erase(w.it);
        map.erase(it);
        reclaimFor();
        am.push_front(page);
        map[page] = Where{Am, am.begin()};
        return false;
    }
    reclaimFor();
    a1in.push_front(page);
    map[page] = Where{A1in, a1in.begin()};
    return false;
}

// --------------------------------------------------------------------
// LFUDA reference
// --------------------------------------------------------------------

LfudaPolicy::LfudaPolicy(std::size_t frames) : frames(frames)
{
    WSC_ASSERT(frames > 0, "LFUDA needs at least one frame");
}

bool
LfudaPolicy::access(PageId page)
{
    auto it = map.find(page);
    if (it != map.end()) {
        Entry &e = it->second;
        order.erase(std::make_pair(e.key, e.seq));
        e.count += 1;
        e.key = e.count + age;
        order.emplace(std::make_pair(e.key, e.seq), page);
        return true;
    }
    if (map.size() == frames) {
        auto victim = order.begin();
        age = victim->first.first;
        map.erase(victim->second);
        order.erase(victim);
    }
    Entry e{1, 1 + age, nextSeq++};
    map.emplace(page, e);
    order.emplace(std::make_pair(e.key, e.seq), page);
    return false;
}

// --------------------------------------------------------------------
// Intrusive-list plumbing shared by the kernels
// --------------------------------------------------------------------

namespace zoo_detail {

void
pushFront(std::vector<Node> &nodes, NodeList &list, std::uint32_t i)
{
    nodes[i].prev = kNull;
    nodes[i].next = list.head;
    if (list.head != kNull)
        nodes[list.head].prev = i;
    else
        list.tail = i;
    list.head = i;
    ++list.size;
}

void
unlink(std::vector<Node> &nodes, NodeList &list, std::uint32_t i)
{
    std::uint32_t p = nodes[i].prev, n = nodes[i].next;
    if (p != kNull)
        nodes[p].next = n;
    else
        list.head = n;
    if (n != kNull)
        nodes[n].prev = p;
    else
        list.tail = p;
    --list.size;
}

} // namespace zoo_detail

using zoo_detail::kNull;
using zoo_detail::pushFront;
using zoo_detail::unlink;

// --------------------------------------------------------------------
// ARC kernel
// --------------------------------------------------------------------

ArcKernel::ArcKernel(std::size_t frames, std::uint64_t pageBound)
    : c(frames), nodes(2 * frames), map(2 * frames, pageBound)
{
    WSC_ASSERT(frames > 0, "ARC needs at least one frame");
    freeNodes.reserve(nodes.size());
    for (std::size_t i = nodes.size(); i > 0; --i)
        freeNodes.push_back(std::uint32_t(i - 1));
}

zoo_detail::NodeList &
ArcKernel::listOf(std::uint8_t tag)
{
    switch (tag) {
      case T1:
        return t1;
      case T2:
        return t2;
      case B1:
        return b1;
      case B2:
        return b2;
    }
    panic("unknown ARC list");
}

void
ArcKernel::moveTo(std::uint32_t i, Tag to)
{
    unlink(nodes, listOf(nodes[i].tag), i);
    nodes[i].tag = to;
    pushFront(nodes, listOf(to), i);
}

void
ArcKernel::dropLru(Tag tag)
{
    zoo_detail::NodeList &list = listOf(tag);
    std::uint32_t i = list.tail;
    WSC_ASSERT(i != kNull, "drop from an empty ARC list");
    unlink(nodes, list, i);
    map.erase(nodes[i].page);
    freeNodes.push_back(i);
}

std::uint32_t
ArcKernel::allocNode(PageId page, Tag tag)
{
    std::uint32_t i = freeNodes.back();
    freeNodes.pop_back();
    nodes[i].page = page;
    nodes[i].tag = tag;
    pushFront(nodes, listOf(tag), i);
    map.insert(page, i);
    return i;
}

void
ArcKernel::replace(bool inB2)
{
    // Verbatim mirror of ArcPolicy::replace.
    bool fromT1 = t1.size > 0 && (t1.size > target ||
                                  (inB2 && t1.size == target));
    if (!fromT1 && t2.size == 0)
        fromT1 = t1.size > 0;
    if (fromT1) {
        std::uint32_t i = t1.tail;
        moveTo(i, B1);
    } else if (t2.size > 0) {
        std::uint32_t i = t2.tail;
        moveTo(i, B2);
    }
}

bool
ArcKernel::access(PageId page)
{
    std::uint32_t i = map.find(page);
    if (i != PageSlotMap::kNoSlot) {
        std::uint8_t tag = nodes[i].tag;
        if (tag == T1 || tag == T2) {
            moveTo(i, T2);
            return true;
        }
        if (tag == B1) {
            auto d = std::max<std::size_t>(1, b2.size / b1.size);
            target = std::min(c, target + d);
            replace(false);
            moveTo(i, T2);
            return false;
        }
        // B2 ghost hit.
        auto d = std::max<std::size_t>(1, b1.size / b2.size);
        target -= std::min(target, d);
        replace(true);
        moveTo(i, T2);
        return false;
    }

    std::size_t l1 = t1.size + b1.size;
    std::size_t total = l1 + t2.size + b2.size;
    if (l1 == c) {
        if (t1.size < c) {
            dropLru(B1);
            replace(false);
        } else {
            dropLru(T1);
        }
    } else if (total >= c) {
        if (total == 2 * c && b2.size > 0)
            dropLru(B2);
        replace(false);
    }
    allocNode(page, T1);
    return false;
}

// --------------------------------------------------------------------
// SLRU kernel
// --------------------------------------------------------------------

SlruKernel::SlruKernel(std::size_t frames, std::uint64_t pageBound)
    : nodes(frames), map(frames, pageBound)
{
    WSC_ASSERT(frames > 0, "SLRU needs at least one frame");
    protCap = frames >= 2 ? frames / 2 : 0;
    probCap = frames - protCap;
}

bool
SlruKernel::access(PageId page)
{
    std::uint32_t i = map.find(page);
    if (i != PageSlotMap::kNoSlot) {
        if (nodes[i].tag == Prot) {
            if (prot.head != i) {
                unlink(nodes, prot, i);
                pushFront(nodes, prot, i);
            }
            return true;
        }
        unlink(nodes, prob, i);
        nodes[i].tag = Prot;
        pushFront(nodes, prot, i);
        if (prot.size > protCap) {
            std::uint32_t d = prot.tail;
            unlink(nodes, prot, d);
            nodes[d].tag = Prob;
            pushFront(nodes, prob, d);
        }
        return true;
    }
    std::uint32_t slot;
    if (prob.size == probCap) {
        slot = prob.tail;
        unlink(nodes, prob, slot);
        map.erase(nodes[slot].page);
    } else {
        slot = std::uint32_t(used++);
    }
    nodes[slot].page = page;
    nodes[slot].tag = Prob;
    pushFront(nodes, prob, slot);
    map.insert(page, slot);
    return false;
}

// --------------------------------------------------------------------
// 2Q kernel
// --------------------------------------------------------------------

TwoQKernel::TwoQKernel(std::size_t frames, std::uint64_t pageBound)
    : frames_(frames),
      kin(std::max<std::size_t>(1, frames / 4)),
      kout(std::max<std::size_t>(1, frames / 2)),
      nodes(frames + std::max<std::size_t>(1, frames / 2)),
      map(frames + kout, pageBound)
{
    WSC_ASSERT(frames > 0, "2Q needs at least one frame");
    freeNodes.reserve(nodes.size());
    for (std::size_t i = nodes.size(); i > 0; --i)
        freeNodes.push_back(std::uint32_t(i - 1));
}

std::uint32_t
TwoQKernel::allocNode(PageId page, Tag tag)
{
    std::uint32_t i = freeNodes.back();
    freeNodes.pop_back();
    nodes[i].page = page;
    nodes[i].tag = tag;
    map.insert(page, i);
    return i;
}

void
TwoQKernel::dropTail(zoo_detail::NodeList &list)
{
    std::uint32_t i = list.tail;
    WSC_ASSERT(i != kNull, "drop from an empty 2Q list");
    unlink(nodes, list, i);
    map.erase(nodes[i].page);
    freeNodes.push_back(i);
}

void
TwoQKernel::reclaimFor()
{
    if (a1in.size + am.size < frames_)
        return;
    if (a1in.size >= kin || am.size == 0) {
        std::uint32_t i = a1in.tail;
        unlink(nodes, a1in, i);
        nodes[i].tag = A1out;
        pushFront(nodes, a1out, i);
        if (a1out.size > kout)
            dropTail(a1out);
    } else {
        dropTail(am);
    }
}

bool
TwoQKernel::access(PageId page)
{
    std::uint32_t i = map.find(page);
    if (i != PageSlotMap::kNoSlot) {
        std::uint8_t tag = nodes[i].tag;
        if (tag == Am) {
            if (am.head != i) {
                unlink(nodes, am, i);
                pushFront(nodes, am, i);
            }
            return true;
        }
        if (tag == A1in)
            return true; // FIFO: hits do not reorder
        // A1out ghost hit: drop the ghost before reclaiming, exactly
        // as the reference does.
        unlink(nodes, a1out, i);
        map.erase(page);
        freeNodes.push_back(i);
        reclaimFor();
        std::uint32_t n = allocNode(page, Am);
        pushFront(nodes, am, n);
        return false;
    }
    reclaimFor();
    std::uint32_t n = allocNode(page, A1in);
    pushFront(nodes, a1in, n);
    return false;
}

// --------------------------------------------------------------------
// LFUDA kernel
// --------------------------------------------------------------------

LfudaKernel::LfudaKernel(std::size_t frames, std::uint64_t pageBound)
    : frames_(frames), pages(frames), counts(frames), keys(frames),
      seqs(frames), pos(frames), map(frames, pageBound)
{
    WSC_ASSERT(frames > 0, "LFUDA needs at least one frame");
    heap.reserve(frames);
}

bool
LfudaKernel::less(std::uint32_t a, std::uint32_t b) const
{
    return keys[a] < keys[b] ||
           (keys[a] == keys[b] && seqs[a] < seqs[b]);
}

void
LfudaKernel::siftUp(std::size_t heapPos)
{
    std::uint32_t slot = heap[heapPos];
    while (heapPos > 0) {
        std::size_t parent = (heapPos - 1) / 2;
        if (!less(slot, heap[parent]))
            break;
        heap[heapPos] = heap[parent];
        pos[heap[heapPos]] = std::uint32_t(heapPos);
        heapPos = parent;
    }
    heap[heapPos] = slot;
    pos[slot] = std::uint32_t(heapPos);
}

void
LfudaKernel::siftDown(std::size_t heapPos)
{
    std::uint32_t slot = heap[heapPos];
    std::size_t n = heap.size();
    for (;;) {
        std::size_t kid = 2 * heapPos + 1;
        if (kid >= n)
            break;
        if (kid + 1 < n && less(heap[kid + 1], heap[kid]))
            ++kid;
        if (!less(heap[kid], slot))
            break;
        heap[heapPos] = heap[kid];
        pos[heap[heapPos]] = std::uint32_t(heapPos);
        heapPos = kid;
    }
    heap[heapPos] = slot;
    pos[slot] = std::uint32_t(heapPos);
}

bool
LfudaKernel::access(PageId page)
{
    std::uint32_t slot = map.find(page);
    if (slot != PageSlotMap::kNoSlot) {
        counts[slot] += 1;
        keys[slot] = counts[slot] + age;
        siftDown(pos[slot]); // keys only grow on a hit
        return true;
    }
    if (used == frames_) {
        std::uint32_t victim = heap[0];
        age = keys[victim];
        map.erase(pages[victim]);
        pages[victim] = page;
        counts[victim] = 1;
        keys[victim] = 1 + age;
        seqs[victim] = nextSeq++;
        map.insert(page, victim);
        siftDown(0);
        return false;
    }
    auto slotNew = std::uint32_t(used++);
    pages[slotNew] = page;
    counts[slotNew] = 1;
    keys[slotNew] = 1 + age;
    seqs[slotNew] = nextSeq++;
    heap.push_back(slotNew);
    pos[slotNew] = std::uint32_t(heap.size() - 1);
    siftUp(heap.size() - 1);
    map.insert(page, slotNew);
    return false;
}

} // namespace memblade
} // namespace wsc
