/**
 * @file
 * Hybrid DRAM/flash memory-blade organization.
 *
 * Section 3.4 lists "DRAM/flash hybrid memory organizations" among
 * the optimizations the blade architecture opens up: back the blade
 * with a small DRAM tier (hot remote pages) and a large flash tier
 * (the cold tail), trading fetch latency for capacity cost.
 *
 * The simulator stacks a second replacement level behind the local
 * memory: local miss -> blade DRAM (LRU over dramFrames) -> blade
 * flash. Slowdown combines the two stall magnitudes; cost and power
 * replace the remote DRAM with the DRAM-tier + flash-tier mix.
 */

#ifndef WSC_MEMBLADE_HYBRID_HH
#define WSC_MEMBLADE_HYBRID_HH

#include "memblade/blade.hh"
#include "memblade/latency.hh"
#include "memblade/two_level.hh"

namespace wsc {
namespace memblade {

/** Hybrid-blade configuration. */
struct HybridParams {
    /** Blade DRAM tier as a fraction of the remote footprint. */
    double dramTierFraction = 0.25;
    /** Stall for a DRAM-tier hit (the plain remote stall). */
    RemoteLink dramLink = RemoteLink::pcieX4();
    /** Stall for a flash-tier hit: flash read + transfer. */
    double flashStallSeconds = 25.0e-6;
    /** Flash is this much cheaper per GB than the remote DRAM. */
    double flashCostRatio = 0.1;
    /** Flash tier power per GB relative to powered-down DRAM. */
    double flashPowerRatio = 0.5;
};

/** Replay statistics for the three-level hierarchy. */
struct HybridStats {
    ReplayStats local;          //!< local-tier statistics
    std::uint64_t dramHits = 0; //!< local misses served by blade DRAM
    std::uint64_t flashHits = 0; //!< ... by blade flash

    /** Fraction of local warm misses absorbed by the DRAM tier. */
    double
    dramHitRate() const
    {
        auto total = dramHits + flashHits;
        return total ? double(dramHits) / double(total) : 0.0;
    }
};

/**
 * Replay a profile through local memory + hybrid blade.
 *
 * @param profile Trace profile.
 * @param localFraction Local memory as a fraction of the footprint.
 * @param params Hybrid configuration (DRAM tier sized as a fraction
 *        of the *remote* portion of the footprint).
 * @param kind Replacement policy used at both levels.
 * @param accesses Trace length.
 * @param seed RNG seed.
 */
HybridStats replayHybrid(const TraceProfile &profile,
                         double localFraction,
                         const HybridParams &params, PolicyKind kind,
                         std::uint64_t accesses, std::uint64_t seed);

/** Execution slowdown of the hybrid configuration. */
double hybridSlowdown(const HybridStats &stats,
                      const TraceProfile &profile,
                      const HybridParams &params);

/**
 * Memory cost/power outcome with a hybrid blade: the remote tier's
 * DRAM is reduced to the DRAM-tier fraction and the rest becomes
 * flash.
 */
SharedMemoryOutcome applyHybridSharing(
    const platform::ServerConfig &server, const BladeParams &blade,
    Provisioning scheme, const HybridParams &params);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_HYBRID_HH
