/**
 * @file
 * Memory-blade provisioning: cost and power deltas of ensemble-level
 * memory sharing (paper Section 3.4, Figure 4c).
 *
 * Each server keeps a fraction of its memory locally; the remainder
 * moves to a shared memory blade reached over PCIe. The blade uses
 * lower-density devices 24% cheaper per GB, held in active power-down
 * (>90% power saving) between page transfers. Each server pays a $10
 * PCIe x4 lane cost and 1.45 W for its share of the blade controller.
 *
 * Two provisioning schemes:
 *  - static: total ensemble DRAM equals the baseline (25% local + 75%
 *    on the blade);
 *  - dynamic: 20% of servers use only local memory, shrinking total
 *    DRAM to 85% of baseline (25% local + 60% on the blade).
 */

#ifndef WSC_MEMBLADE_BLADE_HH
#define WSC_MEMBLADE_BLADE_HH

#include <string>

#include "platform/server_config.hh"

namespace wsc {
namespace memblade {

/** Memory-blade architecture parameters (paper defaults). */
struct BladeParams {
    double localFraction = 0.25;   //!< memory kept on the server
    double remoteCostDiscount = 0.24; //!< blade DRAM cheaper per GB
    double remotePowerSaving = 0.9;   //!< active power-down saving
    double pcieCostPerServer = 10.0;  //!< $ per x4 lane + controller
    double pciePowerPerServer = 1.45; //!< W per server
    /** Uniform execution slowdown assumed for the cost study. */
    double assumedSlowdown = 0.02;
};

/** Provisioning scheme selector. */
enum class Provisioning {
    Static,  //!< same total DRAM as the baseline
    Dynamic  //!< 85% of baseline DRAM (20% of blades local-only)
};

std::string to_string(Provisioning p);

/** Cost/power outcome of applying memory sharing to one server. */
struct SharedMemoryOutcome {
    double memoryDollars = 0.0; //!< replaces the baseline memory cost
    double memoryWatts = 0.0;   //!< replaces the baseline memory power
    double slowdown = 0.0;      //!< fractional performance loss
};

/**
 * Per-server memory cost/power with the blade applied to @p server.
 *
 * For the dynamic scheme the remote share is 60% of the baseline
 * capacity (ensemble average), as in the paper.
 */
SharedMemoryOutcome applyMemorySharing(
    const platform::ServerConfig &server, const BladeParams &params,
    Provisioning scheme);

/**
 * A server config with the shared-memory cost/power substituted.
 * Performance impact is carried separately via the slowdown.
 */
platform::ServerConfig withMemorySharing(
    const platform::ServerConfig &server, const BladeParams &params,
    Provisioning scheme);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_BLADE_HH
