/**
 * @file
 * Two-level inclusive/exclusive cache hierarchy with a small
 * sequential prefetch buffer.
 *
 * The paper's memory blade is a strict two-level exclusive hierarchy
 * (local frames front a remote blade; a local victim swaps out to the
 * blade). Modern tiered setups — CXL memory tiers, flash-backed page
 * caches — also run inclusive configurations and lean on prefetching,
 * so this module models both containment policies explicitly:
 *
 *  - Inclusive: L1 contents are always a subset of L2. An L2
 *    eviction back-invalidates the page from L1; demand fills
 *    populate both levels. Requires l2Frames >= l1Frames.
 *  - Exclusive: L1 and L2 are disjoint. An L2 hit promotes the page
 *    to L1 (removing it from L2); the L1 victim demotes to the L2
 *    MRU position — the paper's DMA-swap, generalized.
 *
 * The optional prefetch buffer is a tiny FIFO of next-sequential
 * pages: every demand fill of page p enqueues p+1 .. p+depth (those
 * not already resident anywhere); a hit in the buffer promotes the
 * page into the hierarchy like a fill but counts as a prefetch hit
 * rather than a miss. This is the drcachesim caching_device idiom —
 * the buffer sits beside L1, not in the miss path's capacity.
 *
 * Both levels run exact LRU. Victim visibility (who got evicted, for
 * back-invalidation and demotion) is what the ReplacementPolicy /
 * kernel interfaces deliberately do not expose, so the hierarchy
 * keeps its own list+map levels; it is a fidelity model, not a
 * throughput kernel, and test_hierarchy pins its invariants.
 */

#ifndef WSC_MEMBLADE_HIERARCHY_HH
#define WSC_MEMBLADE_HIERARCHY_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "memblade/trace.hh"

namespace wsc {
namespace memblade {

class TraceStream;

/** Containment policy between the two levels. */
enum class HierarchyMode { Inclusive, Exclusive };

std::string to_string(HierarchyMode mode);

/** Parse "inclusive" / "exclusive"; fatal() on anything else. */
HierarchyMode hierarchyModeFromString(const std::string &name);

struct HierarchyParams {
    std::size_t l1Frames = 0;
    std::size_t l2Frames = 0;
    HierarchyMode mode = HierarchyMode::Exclusive;
    /** Sequential prefetch distance per demand fill (0 = off). */
    std::size_t prefetchDepth = 0;
    /** Prefetch FIFO capacity; 0 with depth > 0 defaults to
     * 4 * prefetchDepth. */
    std::size_t prefetchFrames = 0;
};

struct HierarchyStats {
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t prefetchHits = 0; //!< served from the prefetch FIFO
    std::uint64_t misses = 0;       //!< missed every level

    double
    missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }
};

/** The hierarchy model. See the file comment for semantics. */
class TwoLevelHierarchy
{
  public:
    explicit TwoLevelHierarchy(const HierarchyParams &params);

    /** Run one access through L1 -> prefetch buffer -> L2. */
    void access(PageId page);

    const HierarchyStats &stats() const { return stats_; }
    const HierarchyParams &params() const { return params_; }

    bool inL1(PageId page) const { return l1.map.count(page) != 0; }
    bool inL2(PageId page) const { return l2.map.count(page) != 0; }
    bool
    inPrefetch(PageId page) const
    {
        return buf.map.count(page) != 0;
    }
    std::size_t l1Resident() const { return l1.map.size(); }
    std::size_t l2Resident() const { return l2.map.size(); }
    std::size_t prefetchResident() const { return buf.map.size(); }

    /**
     * Walk every resident page and panic() on a containment
     * violation: inclusive L1 not a subset of L2, exclusive L1/L2
     * overlap, or the prefetch buffer overlapping either level.
     * O(resident); meant for tests.
     */
    void checkInvariants() const;

  private:
    /** One LRU level: recency list (front = MRU) + iterator map. */
    struct Level {
        std::list<PageId> order;
        std::unordered_map<PageId, std::list<PageId>::iterator> map;

        bool
        touch(PageId page) // -> true when present (moved to MRU)
        {
            auto it = map.find(page);
            if (it == map.end())
                return false;
            order.splice(order.begin(), order, it->second);
            return true;
        }

        void
        insertMru(PageId page)
        {
            order.push_front(page);
            map[page] = order.begin();
        }

        void
        erase(PageId page)
        {
            auto it = map.find(page);
            if (it == map.end())
                return;
            order.erase(it->second);
            map.erase(it);
        }

        PageId
        popLru()
        {
            PageId victim = order.back();
            order.pop_back();
            map.erase(victim);
            return victim;
        }
    };

    /** Demand-fill @p page into the hierarchy (not counted here). */
    void fill(PageId page);
    void fillL2Inclusive(PageId page);
    void demoteToL2(PageId victim);
    void issuePrefetches(PageId page);

    HierarchyParams params_;
    HierarchyStats stats_;
    Level l1, l2;
    Level buf; //!< prefetch FIFO (insertMru + popLru = FIFO; no touch)
};

/** Replay an explicit page sequence through a fresh hierarchy. */
HierarchyStats replayHierarchyPages(const PageId *pages, std::size_t n,
                                    const HierarchyParams &params);

/** Replay a whole streaming trace through a fresh hierarchy. */
HierarchyStats replayHierarchyStream(TraceStream &ts,
                                     const HierarchyParams &params);

/**
 * Replay @p accesses synthetic accesses of @p profile through a fresh
 * hierarchy (same Rng derivation as replayProfile: kernel split drawn
 * and discarded, generator split consumed).
 */
HierarchyStats replayHierarchyProfile(const TraceProfile &profile,
                                      const HierarchyParams &params,
                                      std::uint64_t accesses,
                                      std::uint64_t seed);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_HIERARCHY_HH
