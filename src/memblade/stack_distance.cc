#include "memblade/stack_distance.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace memblade {

StackDistanceEngine::StackDistanceEngine(std::uint64_t pageBound,
                                         std::uint64_t maxAccesses)
{
    WSC_ASSERT(pageBound > 0, "empty page-id space");
    // Timestamps are uint32; one slot per access plus the unused 0.
    WSC_ASSERT(maxAccesses < ~std::uint32_t(0),
               "trace too long for 32-bit timestamps");
    last.assign(std::size_t(pageBound), 0);
    capacity_ = std::uint32_t(maxAccesses);
    // One mark bit per timestamp (1-based; slot 0 unused) plus the
    // block and superblock rank counters, all sized for the whole
    // trace up front.
    live.assign((std::size_t(maxAccesses) >> kWordShift) + 1, 0);
    blockCnt.assign((std::size_t(maxAccesses) >> kBlockShift) + 1, 0);
    superCnt.assign((std::size_t(maxAccesses) >> kSuperShift) + 1, 0);
    // Distances are < min(pageBound, maxAccesses); sizing the
    // histogram up front keeps record() from ever growing it.
    hist.assign(std::size_t(std::min(pageBound, maxAccesses)) + 1, 0);
}

void
StackDistanceEngine::setMark(std::uint32_t t)
{
    live[t >> kWordShift] |= std::uint64_t(1) << (t & 63);
    ++blockCnt[t >> kBlockShift];
    ++superCnt[t >> kSuperShift];
}

void
StackDistanceEngine::clearMark(std::uint32_t t)
{
    live[t >> kWordShift] &= ~(std::uint64_t(1) << (t & 63));
    --blockCnt[t >> kBlockShift];
    --superCnt[t >> kSuperShift];
}

std::uint32_t
StackDistanceEngine::rankAt(std::uint32_t t) const
{
    std::size_t word = t >> kWordShift;
    std::size_t block = t >> kBlockShift;
    std::size_t super = t >> kSuperShift;
    std::uint32_t s = 0;
    // Whole superblocks below t, then whole blocks within t's
    // superblock, then whole words within t's block: three short
    // contiguous sums over arrays that stay cache-resident.
    for (std::size_t i = 0; i < super; ++i)
        s += superCnt[i];
    for (std::size_t b = super << (kSuperShift - kBlockShift);
         b < block; ++b)
        s += blockCnt[b];
    for (std::size_t w = block << (kBlockShift - kWordShift); w < word;
         ++w)
        s += std::uint32_t(std::popcount(live[w]));
    // Partial word: bits 0 .. (t & 63) inclusive.
    std::uint64_t mask = ~std::uint64_t(0) >> (63 - (t & 63));
    return s + std::uint32_t(std::popcount(live[word] & mask));
}

void
StackDistanceEngine::record(std::vector<std::uint32_t> &hist,
                            std::uint64_t d)
{
    if (d >= hist.size()) {
        std::size_t sz = hist.empty() ? 64 : hist.size();
        while (sz <= d)
            sz *= 2;
        hist.resize(sz, 0);
    }
    ++hist[d];
}

void
StackDistanceEngine::access(PageId page)
{
    WSC_ASSERT(page < last.size(), "page id beyond declared bound");
    WSC_ASSERT(now < capacity_, "engine capacity exceeded");
    ++now;
    if (measuring)
        ++measuredAccesses_;
    std::uint32_t prev = last[page];
    if (prev == 0) {
        // First touch: infinite distance, a miss at every capacity.
        ++cold;
        if (measuring)
            ++measuredCold;
    } else {
        // Marks in (prev, now-1] = distinct other pages since the
        // previous access; a C-frame LRU cache hits iff d < C. Every
        // distinct page seen so far holds exactly one live mark at a
        // time <= now-1, so the full rank at now-1 is just the
        // cold-miss count — only rankAt(prev) needs the bitmap.
        std::uint64_t d = cold - rankAt(prev);
        record(hist, d);
        if (measuring)
            record(measuredHist, d);
        // The page's mark moves from its old time to now.
        clearMark(prev);
    }
    setMark(now);
    last[page] = now;
}

namespace {

std::vector<std::uint64_t>
cumulate(const std::vector<std::uint32_t> &hist)
{
    std::size_t top = hist.size();
    while (top > 0 && hist[top - 1] == 0)
        --top;
    std::vector<std::uint64_t> cum(top + 1, 0);
    for (std::size_t d = 0; d < top; ++d)
        cum[d + 1] = cum[d] + hist[d];
    return cum;
}

} // namespace

StackDistanceCurve
StackDistanceEngine::finish() const
{
    StackDistanceCurve c;
    c.accesses = now;
    c.coldMisses = cold;
    c.measuredAccesses = measuredAccesses_;
    c.measuredColdMisses = measuredCold;
    c.cumHits = cumulate(hist);
    c.measuredCumHits = cumulate(measuredHist);
    return c;
}

StackDistanceCurve
lruCurve(TraceGenerator &gen, std::uint64_t pageBound,
         std::uint64_t accesses, std::uint64_t warmup)
{
    StackDistanceEngine eng(pageBound, accesses);
    constexpr std::size_t kChunk = 4096;
    std::vector<PageId> buf(kChunk);
    std::uint64_t done = 0;
    while (done < accesses) {
        auto n = std::size_t(
            std::min<std::uint64_t>(kChunk, accesses - done));
        gen.nextBatch(buf.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            if (i + 16 < n)
                eng.prefetchPage(buf[i + 16]);
            if (i + 6 < n)
                eng.prefetchPaths(buf[i + 6]);
            if (done + i == warmup)
                eng.beginMeasurement();
            eng.access(buf[i]);
        }
        done += n;
    }
    return eng.finish();
}

StackDistanceCurve
lruCurveForProfile(const TraceProfile &profile, std::uint64_t accesses,
                   std::uint64_t seed)
{
    // Mirror replayProfile's Rng derivation: the kernel split is
    // drawn (and discarded — LRU consumes no randomness) so the
    // generator sees the identical stream.
    Rng rng(seed);
    (void)rng.split();
    TraceGenerator gen(profile, rng.split());
    return lruCurve(gen, profile.footprintPages, accesses, accesses);
}

std::vector<ReplayStats>
replayProfileSweep(const TraceProfile &profile,
                   const std::vector<double> &localFractions,
                   std::uint64_t accesses, std::uint64_t seed)
{
    auto curve = lruCurveForProfile(profile, accesses, seed);
    std::vector<ReplayStats> out;
    out.reserve(localFractions.size());
    for (double f : localFractions) {
        WSC_ASSERT(f > 0.0 && f <= 1.0,
                   "local fraction out of (0, 1]");
        auto frames = std::size_t(
            std::ceil(double(profile.footprintPages) * f));
        out.push_back(curve.statsAt(frames));
    }
    return out;
}

} // namespace memblade
} // namespace wsc
