/**
 * @file
 * Mattson stack-distance engine: exact LRU hit rates at every
 * capacity from one trace pass.
 *
 * LRU has the inclusion property (Mattson et al. 1970): a reference
 * hits in a C-frame LRU cache iff its stack distance — one plus the
 * number of distinct other pages touched since its previous access —
 * is at most C. Histogramming those distances over one pass therefore
 * yields the exact hit count of a *direct* LRU replay at *every*
 * capacity simultaneously, so sweeps over local-memory fractions
 * (Figure 4b style curves) or flash-cache sizes collapse from N
 * replays to a single pass per workload.
 *
 * Reuse distances are computed with a ranked bitmap over last-access
 * timestamps: each live page contributes one mark (bit) at the time
 * of its most recent access, and two small count arrays — one per
 * 512-timestamp block, one per 64-block superblock — turn "marks at
 * times <= t" into a handful of contiguous sums plus at most eight
 * popcounts. The whole structure is ~1.04 bits per trace access
 * (256 KB for a 2M-access trace), so queries stay cache-resident
 * where a Fenwick tree of 32-bit nodes would wander an array 32x
 * larger. Total cost O(n * n/superblock) worst case but with tiny
 * constants; space O(n/8 + footprint).
 *
 * Determinism contract: lruCurveForProfile consumes its Rng in
 * exactly the order replayProfile does, so curve.statsAt(frames) is
 * bit-identical — same integer hit/miss/cold counts, hence the same
 * double rates — to replayProfile(profile, fraction, Lru, accesses,
 * seed) for every fraction, and the measured window matches the
 * flash-cache warmup/measure split the same way. The per-access LRU
 * kernel stays in the tree as the validation oracle (test_replay).
 */

#ifndef WSC_MEMBLADE_STACK_DISTANCE_HH
#define WSC_MEMBLADE_STACK_DISTANCE_HH

#include <cstdint>
#include <vector>

#include "memblade/trace.hh"
#include "memblade/two_level.hh"

namespace wsc {
namespace memblade {

/**
 * The finished product of a stack-distance pass: cumulative hit
 * counts indexed by capacity, for the whole trace and for the
 * measured (post-warmup) window.
 */
struct StackDistanceCurve {
    std::uint64_t accesses = 0;
    std::uint64_t coldMisses = 0;
    std::uint64_t measuredAccesses = 0;
    std::uint64_t measuredColdMisses = 0;

    /** cumHits[c] = hits of a c-frame LRU cache (clamped at the
     * largest observed distance; larger capacities change nothing). */
    std::vector<std::uint64_t> cumHits;
    std::vector<std::uint64_t> measuredCumHits;

    /** Exact LRU hits over the whole trace at @p frames frames. */
    std::uint64_t
    hitsAt(std::size_t frames) const
    {
        return cumHits[std::min(frames, cumHits.size() - 1)];
    }

    /** Exact LRU hits over the measured window at @p frames frames. */
    std::uint64_t
    measuredHitsAt(std::size_t frames) const
    {
        return measuredCumHits[std::min(frames,
                                        measuredCumHits.size() - 1)];
    }

    /**
     * Whole-trace replay statistics at @p frames frames;
     * bit-identical to a direct LRU replay of the same trace.
     */
    ReplayStats
    statsAt(std::size_t frames) const
    {
        ReplayStats st;
        st.accesses = accesses;
        st.hits = hitsAt(frames);
        st.misses = accesses - st.hits;
        st.coldMisses = coldMisses;
        return st;
    }

    /** Measured-window hit rate at @p frames frames. */
    double
    measuredHitRateAt(std::size_t frames) const
    {
        return measuredAccesses ? double(measuredHitsAt(frames)) /
                                      double(measuredAccesses)
                                : 0.0;
    }
};

/**
 * Streaming stack-distance accumulator. Feed it the trace in access
 * order; call beginMeasurement() where the measured window starts
 * (never, for whole-trace curves); finish() builds the curve.
 */
class StackDistanceEngine
{
  public:
    /**
     * @param pageBound Page ids are < pageBound.
     * @param maxAccesses Capacity: at most this many access() calls.
     */
    StackDistanceEngine(std::uint64_t pageBound,
                        std::uint64_t maxAccesses);

    /** Record the next reference. */
    void access(PageId page);

    /** Pull @p page's last-access slot toward the cache; issue ~16
     * accesses ahead of the access() that uses it. */
    void
    prefetchPage(PageId page) const
    {
#if defined(__GNUC__) || defined(__clang__)
        if (page < last.size())
            __builtin_prefetch(last.data() + page);
#else
        (void)page;
#endif
    }

    /**
     * Second prefetch stage, issued once the last-access slot has had
     * time to arrive: read the page's previous timestamp and pull its
     * bitmap line — the only randomly-indexed line in the query (the
     * count arrays are small enough to stay resident). Purely a hint:
     * a stale timestamp only mistrains the prefetch.
     */
    void
    prefetchPaths(PageId page) const
    {
#if defined(__GNUC__) || defined(__clang__)
        std::uint32_t prev = page < last.size()
                                 ? last[std::size_t(page)]
                                 : 0;
        if (prev != 0)
            __builtin_prefetch(live.data() + (prev >> kWordShift));
#else
        (void)page;
#endif
    }

    /** Subsequent accesses also count toward the measured window. */
    void beginMeasurement() { measuring = true; }

    /** Build the cumulative curve from the histograms. */
    StackDistanceCurve finish() const;

  private:
    /** Ranked-bitmap geometry: 64-bit words, 512-timestamp blocks
     * (one cache line of bitmap), 64-block superblocks. */
    static constexpr std::uint32_t kWordShift = 6;
    static constexpr std::uint32_t kBlockShift = 9;
    static constexpr std::uint32_t kSuperShift = 15;

    void setMark(std::uint32_t t);
    void clearMark(std::uint32_t t);
    /** Live marks at times <= @p t (t >= 1). */
    std::uint32_t rankAt(std::uint32_t t) const;
    static void record(std::vector<std::uint32_t> &hist,
                       std::uint64_t d);

    std::vector<std::uint32_t> last; //!< last[p] = time (1-based); 0 = never
    std::vector<std::uint64_t> live;     //!< mark bit per timestamp
    std::vector<std::uint16_t> blockCnt; //!< marks per 512 timestamps
    std::vector<std::uint32_t> superCnt; //!< marks per 32768 timestamps
    /** hist[d] counts; uint32 suffices (counts <= maxAccesses < 2^32)
     * and halves the randomly-indexed footprint. */
    std::vector<std::uint32_t> hist, measuredHist;
    std::uint32_t now = 0;
    std::uint32_t capacity_ = 0; //!< max access() calls
    std::uint64_t cold = 0, measuredCold = 0, measuredAccesses_ = 0;
    bool measuring = false;
};

/**
 * Drain @p accesses pages from @p gen (batched) through the engine.
 *
 * Accesses at index >= @p warmup form the measured window (pass
 * warmup == accesses for a whole-trace curve with no window).
 */
StackDistanceCurve lruCurve(TraceGenerator &gen,
                            std::uint64_t pageBound,
                            std::uint64_t accesses,
                            std::uint64_t warmup);

/**
 * Single-pass exact-LRU curve for a synthetic profile, mirroring
 * replayProfile's RNG derivation: statsAt(ceil(footprint * f)) is
 * bit-identical to replayProfile(profile, f, PolicyKind::Lru,
 * accesses, seed) for any fraction f.
 */
StackDistanceCurve lruCurveForProfile(const TraceProfile &profile,
                                      std::uint64_t accesses,
                                      std::uint64_t seed);

/**
 * Exact-LRU replay stats at every requested local fraction from one
 * trace pass (the N-replay sweep collapsed). Only LRU has the
 * inclusion property; Random/Clock sweeps still replay per fraction.
 */
std::vector<ReplayStats> replayProfileSweep(
    const TraceProfile &profile,
    const std::vector<double> &localFractions, std::uint64_t accesses,
    std::uint64_t seed);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_STACK_DISTANCE_HH
