#include "memblade/replacement.hh"

#include "memblade/policy_zoo.hh"
#include "util/logging.hh"

namespace wsc {
namespace memblade {

LruPolicy::LruPolicy(std::size_t frames) : frames(frames)
{
    WSC_ASSERT(frames > 0, "LRU needs at least one frame");
}

bool
LruPolicy::access(PageId page)
{
    auto it = map.find(page);
    if (it != map.end()) {
        order.splice(order.begin(), order, it->second);
        return true;
    }
    if (map.size() >= frames) {
        PageId victim = order.back();
        order.pop_back();
        map.erase(victim);
    }
    order.push_front(page);
    map[page] = order.begin();
    return false;
}

RandomPolicy::RandomPolicy(std::size_t frames, Rng rng_in)
    : frames(frames), rng(rng_in)
{
    WSC_ASSERT(frames > 0, "random policy needs at least one frame");
    slots.reserve(frames);
}

bool
RandomPolicy::access(PageId page)
{
    // One lookup on the hit path (was count + erase/operator[]).
    if (map.find(page) != map.end())
        return true;
    if (slots.size() < frames) {
        map.emplace(page, slots.size());
        slots.push_back(page);
        return false;
    }
    std::size_t idx = std::size_t(rng.uniformInt(0, frames - 1));
    map.erase(slots[idx]);
    slots[idx] = page;
    map.emplace(page, idx);
    return false;
}

ClockPolicy::ClockPolicy(std::size_t frames) : frames(frames)
{
    WSC_ASSERT(frames > 0, "clock needs at least one frame");
    ring.reserve(frames);
}

bool
ClockPolicy::access(PageId page)
{
    auto it = map.find(page);
    if (it != map.end()) {
        ring[it->second].referenced = true;
        return true;
    }
    if (ring.size() < frames) {
        map[page] = ring.size();
        ring.push_back(Frame{page, true});
        return false;
    }
    // Advance the hand past referenced frames, clearing their bits.
    while (ring[hand].referenced) {
        ring[hand].referenced = false;
        hand = (hand + 1) % frames;
    }
    map.erase(ring[hand].page);
    ring[hand] = Frame{page, true};
    map[page] = hand;
    hand = (hand + 1) % frames;
    return false;
}

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::size_t frames, Rng rng)
{
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>(frames);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(frames, rng);
      case PolicyKind::Clock:
        return std::make_unique<ClockPolicy>(frames);
      case PolicyKind::Arc:
        return std::make_unique<ArcPolicy>(frames);
      case PolicyKind::Slru:
        return std::make_unique<SlruPolicy>(frames);
      case PolicyKind::TwoQ:
        return std::make_unique<TwoQPolicy>(frames);
      case PolicyKind::Lfuda:
        return std::make_unique<LfudaPolicy>(frames);
    }
    panic("unknown policy kind");
}

std::string
to_string(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "lru";
      case PolicyKind::Random:
        return "random";
      case PolicyKind::Clock:
        return "clock";
      case PolicyKind::Arc:
        return "arc";
      case PolicyKind::Slru:
        return "slru";
      case PolicyKind::TwoQ:
        return "2q";
      case PolicyKind::Lfuda:
        return "lfuda";
    }
    panic("unknown policy kind");
}

PolicyKind
policyFromString(const std::string &name)
{
    for (PolicyKind kind : allPolicyKinds) {
        if (name == to_string(kind))
            return kind;
    }
    fatal("unknown replacement policy '" + name +
          "' (expected lru, random, clock, arc, slru, 2q, or lfuda)");
}

} // namespace memblade
} // namespace wsc
