#include "memblade/latency.hh"

#include "util/logging.hh"

namespace wsc {
namespace memblade {

double
trapCostSeconds(TrapHandling handling)
{
    switch (handling) {
      case TrapHandling::None:
        return 0.0;
      case TrapHandling::SoftwareTrap:
        // Trap entry, handler dispatch, page-table update, TLB
        // shootdown amortization: several hundred nanoseconds on the
        // era's cores.
        return 0.4e-6;
      case TrapHandling::HardwareTlb:
        return 0.05e-6;
    }
    panic("unknown trap handling");
}

RemoteLink
withTrapCost(const RemoteLink &base, TrapHandling handling)
{
    RemoteLink out = base;
    switch (handling) {
      case TrapHandling::None:
        return out;
      case TrapHandling::SoftwareTrap:
        out.name = base.name + " + SW trap";
        break;
      case TrapHandling::HardwareTlb:
        out.name = base.name + " + HW TLB";
        break;
    }
    out.stallSecondsPerMiss += trapCostSeconds(handling);
    return out;
}

double
slowdown(const ReplayStats &stats, const TraceProfile &profile,
         const RemoteLink &link)
{
    WSC_ASSERT(link.stallSecondsPerMiss >= 0.0, "negative stall time");
    double miss_rate = stats.warmMissRate();
    double misses_per_second = miss_rate * profile.touchesPerSecond;
    return misses_per_second * link.stallSecondsPerMiss;
}

} // namespace memblade
} // namespace wsc
