#include "memblade/trace_stream.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "memblade/policy_zoo.hh"
#include "util/endian.hh"
#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define WSC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace wsc {
namespace memblade {

namespace {

constexpr char kMagic[4] = {'W', 'S', 'C', 'S'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagTimestamps = 0x1;
constexpr std::size_t kHeaderSize = 32;

/** Write-flag bit of the record word; page ids use bits 0..62. */
constexpr std::uint64_t kWriteBit = std::uint64_t(1) << 63;

/** Writer flush threshold and reader batch size, in records. */
constexpr std::size_t kIoBatch = 1 << 16;

void
encodeHeader(unsigned char *h, std::uint8_t flags, std::uint64_t count,
             std::uint64_t pageBound)
{
    std::memset(h, 0, kHeaderSize);
    std::memcpy(h, kMagic, sizeof(kMagic));
    h[4] = kVersion;
    h[5] = flags;
    std::uint64_t le = toLittle64(count);
    std::memcpy(h + 8, &le, sizeof(le));
    le = toLittle64(pageBound);
    std::memcpy(h + 16, &le, sizeof(le));
}

std::uint64_t
loadLe64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return fromLittle64(v);
}

} // namespace

// --------------------------------------------------------------------
// TraceStreamWriter
// --------------------------------------------------------------------

TraceStreamWriter::TraceStreamWriter(const std::string &path,
                                     bool withTimestamps)
    : path_(path), os(path, std::ios::binary | std::ios::trunc),
      withTimestamps_(withTimestamps)
{
    if (!os)
        fatal("cannot open '" + path + "' for writing");
    // Placeholder header; close() patches the real count and bound.
    unsigned char h[kHeaderSize];
    encodeHeader(h, withTimestamps_ ? kFlagTimestamps : 0, 0, 0);
    os.write(reinterpret_cast<const char *>(h), kHeaderSize);
    buffer.reserve(kIoBatch * (withTimestamps_ ? 2 : 1));
}

TraceStreamWriter::~TraceStreamWriter()
{
    if (!closed) {
        try {
            close();
        } catch (...) {
            // Destructor must not throw; an explicit close() reports.
        }
    }
}

void
TraceStreamWriter::append(PageId page, bool write,
                          std::uint64_t timestamp)
{
    WSC_ASSERT(page < kWriteBit,
               "streaming trace page ids must be < 2^63");
    std::uint64_t word = page | (write ? kWriteBit : 0);
    buffer.push_back(toLittle64(word));
    if (withTimestamps_)
        buffer.push_back(toLittle64(timestamp));
    ++count_;
    writes_ += write;
    pageBound_ = std::max(pageBound_, page + 1);
    if (buffer.size() >= kIoBatch * (withTimestamps_ ? 2 : 1))
        flushBuffer();
}

void
TraceStreamWriter::flushBuffer()
{
    if (buffer.empty())
        return;
    os.write(reinterpret_cast<const char *>(buffer.data()),
             std::streamsize(buffer.size() * sizeof(std::uint64_t)));
    buffer.clear();
}

void
TraceStreamWriter::close()
{
    if (closed)
        return;
    flushBuffer();
    unsigned char h[kHeaderSize];
    encodeHeader(h, withTimestamps_ ? kFlagTimestamps : 0, count_,
                 pageBound_);
    os.seekp(0);
    os.write(reinterpret_cast<const char *>(h), kHeaderSize);
    os.flush();
    if (!os.good())
        fatal("write to '" + path_ + "' failed");
    os.close();
    closed = true;
}

// --------------------------------------------------------------------
// TraceStream
// --------------------------------------------------------------------

TraceStream::TraceStream(const std::string &path, bool forceBuffered)
    : path_(path)
{
    // Learn the real file size first: every header field is checked
    // against it before any record-sized allocation or read happens.
    std::uint64_t fileSize = 0;

#if WSC_HAVE_MMAP
    if (!forceBuffered) {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            fatal("cannot open '" + path + "'");
        struct stat st;
        if (::fstat(fd, &st) != 0) {
            ::close(fd);
            fatal("cannot stat '" + path + "'");
        }
        fileSize = std::uint64_t(st.st_size);
        if (fileSize >= kHeaderSize) {
            void *m = ::mmap(nullptr, std::size_t(fileSize), PROT_READ,
                             MAP_PRIVATE, fd, 0);
            if (m != MAP_FAILED) {
                base = static_cast<const unsigned char *>(m);
                mapLen = std::size_t(fileSize);
#if defined(MADV_SEQUENTIAL)
                ::madvise(m, mapLen, MADV_SEQUENTIAL);
#endif
            }
        }
        ::close(fd);
    }
#else
    (void)forceBuffered;
#endif

    unsigned char h[kHeaderSize];
    if (base) {
        std::memcpy(h, base, kHeaderSize);
    } else {
        is.open(path, std::ios::binary);
        if (!is)
            fatal("cannot open '" + path + "'");
        is.seekg(0, std::ios::end);
        fileSize = std::uint64_t(is.tellg());
        is.seekg(0);
        if (fileSize < kHeaderSize)
            fatal("'" + path + "': truncated streaming trace header");
        is.read(reinterpret_cast<char *>(h), kHeaderSize);
        if (!is.good())
            fatal("'" + path + "': truncated streaming trace header");
    }
    if (fileSize < kHeaderSize)
        fatal("'" + path + "': truncated streaming trace header");

    if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0)
        fatal("'" + path + "': not a wsc streaming trace (bad magic)");
    if (h[4] != kVersion)
        fatal("'" + path + "': unsupported streaming trace version " +
              std::to_string(unsigned(h[4])) + " (expected " +
              std::to_string(unsigned(kVersion)) + ")");
    if (h[5] & ~kFlagTimestamps)
        fatal("'" + path + "': unknown streaming trace flags");
    info_.hasTimestamps = (h[5] & kFlagTimestamps) != 0;
    info_.count = loadLe64(h + 8);
    info_.pageBound = loadLe64(h + 16);

    // The count is untrusted until proven consistent with the file
    // size; an oversized value must fatal(), never drive allocation.
    std::uint64_t body = fileSize - kHeaderSize;
    std::uint64_t recStride = stride();
    if (info_.count > body / recStride)
        fatal("'" + path + "': streaming trace count " +
              std::to_string(info_.count) +
              " exceeds the file's record capacity (" +
              std::to_string(body / recStride) + ")");
    if (info_.count * recStride != body)
        fatal("'" + path + "': streaming trace body is " +
              std::to_string(body) + " bytes; header count " +
              std::to_string(info_.count) + " needs " +
              std::to_string(info_.count * recStride));

    if (!base)
        ioBuf.resize(kIoBatch * (info_.hasTimestamps ? 2 : 1));
}

TraceStream::~TraceStream()
{
#if WSC_HAVE_MMAP
    if (base)
        ::munmap(const_cast<unsigned char *>(base), mapLen);
#endif
}

void
TraceStream::rewind()
{
    consumed = 0;
    if (!base) {
        is.clear();
        is.seekg(std::streamoff(kHeaderSize));
    }
}

void
TraceStream::fetchWords(std::uint64_t *dst, std::size_t n)
{
    // Raw record words for n records into dst (ifstream path only).
    std::size_t bytes = n * stride();
    is.read(reinterpret_cast<char *>(dst), std::streamsize(bytes));
    if (std::size_t(is.gcount()) != bytes)
        fatal("'" + path_ + "': short read in streaming trace body");
}

std::size_t
TraceStream::fillPages(PageId *out, std::size_t maxN)
{
    auto n = std::size_t(
        std::min<std::uint64_t>(maxN, info_.count - consumed));
    if (n == 0)
        return 0;
    std::size_t st = stride();
    std::uint64_t batchMax = 0;
    if (base) {
        const unsigned char *src = base + kHeaderSize + consumed * st;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t word = loadLe64(src + i * st);
            PageId page = word & ~kWriteBit;
            out[i] = page;
            batchMax = std::max(batchMax, page);
        }
    } else {
        std::size_t done = 0;
        while (done < n) {
            std::size_t chunk =
                std::min(n - done, ioBuf.size() / (st / 8));
            fetchWords(ioBuf.data(), chunk);
            const auto *src =
                reinterpret_cast<const unsigned char *>(ioBuf.data());
            for (std::size_t i = 0; i < chunk; ++i) {
                std::uint64_t word = loadLe64(src + i * st);
                PageId page = word & ~kWriteBit;
                out[done + i] = page;
                batchMax = std::max(batchMax, page);
            }
            done += chunk;
        }
    }
    if (batchMax >= info_.pageBound)
        fatal("'" + path_ + "': record page id " +
              std::to_string(batchMax) +
              " breaks the header page bound " +
              std::to_string(info_.pageBound));
    consumed += n;
    return n;
}

std::size_t
TraceStream::fillRecords(TraceRecord *out, std::size_t maxN)
{
    auto n = std::size_t(
        std::min<std::uint64_t>(maxN, info_.count - consumed));
    if (n == 0)
        return 0;
    std::size_t st = stride();
    std::uint64_t batchMax = 0;
    auto decode = [&](const unsigned char *src, std::size_t i,
                      TraceRecord &r) {
        std::uint64_t word = loadLe64(src + i * st);
        r.page = word & ~kWriteBit;
        r.write = (word & kWriteBit) != 0;
        r.timestamp =
            info_.hasTimestamps ? loadLe64(src + i * st + 8) : 0;
        batchMax = std::max(batchMax, r.page);
    };
    if (base) {
        const unsigned char *src = base + kHeaderSize + consumed * st;
        for (std::size_t i = 0; i < n; ++i)
            decode(src, i, out[i]);
    } else {
        std::size_t done = 0;
        while (done < n) {
            std::size_t chunk =
                std::min(n - done, ioBuf.size() / (st / 8));
            fetchWords(ioBuf.data(), chunk);
            const auto *src =
                reinterpret_cast<const unsigned char *>(ioBuf.data());
            for (std::size_t i = 0; i < chunk; ++i)
                decode(src, i, out[done + i]);
            done += chunk;
        }
    }
    if (n > 0 && batchMax >= info_.pageBound)
        fatal("'" + path_ + "': record page id " +
              std::to_string(batchMax) +
              " breaks the header page bound " +
              std::to_string(info_.pageBound));
    consumed += n;
    return n;
}

// --------------------------------------------------------------------
// Convenience entry points
// --------------------------------------------------------------------

TraceStreamInfo
traceStreamInfo(const std::string &path)
{
    TraceStream ts(path);
    return ts.info();
}

TraceStreamInfo
traceStreamStats(const std::string &path)
{
    TraceStream ts(path);
    TraceStreamInfo info = ts.info();
    std::vector<TraceRecord> buf(4096);
    for (;;) {
        std::size_t n = ts.fillRecords(buf.data(), buf.size());
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i)
            info.writes += buf[i].write;
    }
    return info;
}

void
writeTraceStream(const std::string &path,
                 const std::vector<PageId> &trace)
{
    TraceStreamWriter w(path);
    for (PageId p : trace)
        w.append(p);
    w.close();
}

std::vector<PageId>
readTraceStreamPages(const std::string &path)
{
    TraceStream ts(path);
    // The constructor proved count * stride bytes really exist, so
    // this allocation is bounded by the actual file size.
    std::vector<PageId> out(std::size_t(ts.count()));
    std::size_t done = 0;
    while (done < out.size())
        done += ts.fillPages(out.data() + done, out.size() - done);
    return out;
}

// --------------------------------------------------------------------
// Streaming replay
// --------------------------------------------------------------------

namespace {

/** Same chunk/prefetch geometry as replay.cc's materialized loops. */
constexpr std::size_t kChunk = 4096;
constexpr std::size_t kPrefetch = 16;

template <typename Kernel>
WindowedReplay
streamLoop(Kernel &kernel, TraceStream &ts, std::uint64_t warmup,
           ColdTracker &cold)
{
    WindowedReplay w;
    std::vector<PageId> buf(kChunk);
    std::uint64_t done = 0;
    for (;;) {
        std::size_t n = ts.fillPages(buf.data(), kChunk);
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            if (i + kPrefetch < n)
                kernel.prefetch(buf[i + kPrefetch]);
            PageId page = buf[i];
            bool measured = done + i >= warmup;
            ++w.total.accesses;
            w.measured.accesses += measured;
            if (kernel.access(page)) {
                ++w.total.hits;
                w.measured.hits += measured;
                continue;
            }
            ++w.total.misses;
            w.measured.misses += measured;
            if (cold.firstTouch(page)) {
                ++w.total.coldMisses;
                w.measured.coldMisses += measured;
            }
        }
        done += n;
    }
    return w;
}

/** Flat (no warmup window) variant: the same accounting as replay.cc's
 * replayPagesLoop, so streaming carries no per-access bookkeeping the
 * materialized path does not — the throughput race in
 * bench_trace_replay compares like with like. */
template <typename Kernel>
ReplayStats
streamFlatLoop(Kernel &kernel, TraceStream &ts, ColdTracker &cold)
{
    ReplayStats st;
    std::vector<PageId> buf(kChunk);
    for (;;) {
        std::size_t n = ts.fillPages(buf.data(), kChunk);
        if (n == 0)
            break;
        st.accesses += n;
        for (std::size_t i = 0; i < n; ++i) {
            if (i + kPrefetch < n)
                kernel.prefetch(buf[i + kPrefetch]);
            PageId page = buf[i];
            if (kernel.access(page)) {
                ++st.hits;
                continue;
            }
            ++st.misses;
            if (cold.firstTouch(page))
                ++st.coldMisses;
        }
    }
    return st;
}

} // namespace

WindowedReplay
replayStreamWindowed(TraceStream &ts, PolicyKind kind,
                     std::size_t frames, std::uint64_t warmup,
                     Rng kernelRng)
{
    WSC_ASSERT(frames > 0, "need at least one frame");
    std::uint64_t bound = ts.pageBound();
    ColdTracker cold(bound);
    return withPolicyKernel(kind, frames, bound, kernelRng,
                            [&](auto &k) {
                                return streamLoop(k, ts, warmup, cold);
                            });
}

ReplayStats
replayStream(TraceStream &ts, PolicyKind kind, std::size_t frames,
             Rng kernelRng)
{
    WSC_ASSERT(frames > 0, "need at least one frame");
    std::uint64_t bound = ts.pageBound();
    ColdTracker cold(bound);
    return withPolicyKernel(kind, frames, bound, kernelRng,
                            [&](auto &k) {
                                return streamFlatLoop(k, ts, cold);
                            });
}

StackDistanceCurve
lruCurveFromStream(TraceStream &ts)
{
    if (ts.count() >= std::numeric_limits<std::uint32_t>::max())
        fatal("stack-distance sweep supports traces below 2^32 "
              "accesses; replay directly instead");
    StackDistanceEngine eng(ts.pageBound(), ts.count());
    std::vector<PageId> buf(kChunk);
    for (;;) {
        std::size_t n = ts.fillPages(buf.data(), kChunk);
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            if (i + 16 < n)
                eng.prefetchPage(buf[i + 16]);
            if (i + 6 < n)
                eng.prefetchPaths(buf[i + 6]);
            eng.access(buf[i]);
        }
    }
    return eng.finish();
}

} // namespace memblade
} // namespace wsc
