/**
 * @file
 * Streaming trace ingestion: the "WSCS" binary record format and an
 * mmap-backed reader that feeds the allocation-free replay kernels in
 * batched windows, so multi-GB real traces replay at memory bandwidth
 * without ever materializing the access sequence in RAM.
 *
 * Format (version 1, all integers little-endian on disk):
 *
 *   offset  size  field
 *   ------  ----  -----------------------------------------------
 *        0     4  magic "WSCS"
 *        4     1  version (1)
 *        5     1  flags (bit 0: records carry a timestamp word)
 *        6     2  reserved (0)
 *        8     8  u64 record count
 *       16     8  u64 page-id bound (every page id < bound)
 *       24     8  reserved (0)
 *
 * followed by `count` fixed-width records, drcachesim memref-style:
 * one u64 word encoding the page id in bits 0..62 and a read/write
 * flag in bit 63, then (iff flags bit 0) a u64 timestamp. Page ids
 * must therefore be < 2^63 — far beyond the reserved PageSlotMap
 * empty marker, which the writer rejects anyway.
 *
 * Carrying the page-id bound in the header is what makes streaming
 * replay single-pass: the replay kernels size their direct-mapped
 * slot maps and cold-miss bitsets from the bound, which the legacy
 * `.trace`/`.btrace` path could only learn by pre-scanning the whole
 * trace (satellite: trace_io.cc replayTrace O(n) bound pass).
 *
 * The reader mmaps the file read-only (MADV_SEQUENTIAL) and serves
 * batches straight out of the mapping; when mmap is unavailable (or
 * the platform lacks it) it falls back to buffered ifstream reads of
 * the same batch size. Both paths validate the header against the
 * actual file size before touching a record, so a corrupt count can
 * never drive an allocation.
 */

#ifndef WSC_MEMBLADE_TRACE_STREAM_HH
#define WSC_MEMBLADE_TRACE_STREAM_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "memblade/replay.hh"
#include "memblade/stack_distance.hh"
#include "memblade/trace.hh"
#include "memblade/two_level.hh"

namespace wsc {
namespace memblade {

/** One decoded streaming-trace record. */
struct TraceRecord {
    PageId page = 0;
    bool write = false;
    std::uint64_t timestamp = 0; //!< 0 when the file has none
};

/** Header fields of a streaming trace file. */
struct TraceStreamInfo {
    std::uint64_t count = 0;     //!< records in the file
    std::uint64_t pageBound = 0; //!< every page id < pageBound
    std::uint64_t writes = 0;    //!< records with the write flag set
    bool hasTimestamps = false;
};

/**
 * Incremental writer for the streaming format. Records are buffered
 * and flushed in large blocks; close() (or the destructor) patches
 * the final count and page-id bound into the header, so callers never
 * pre-compute either.
 */
class TraceStreamWriter
{
  public:
    /**
     * @param path Output file (created/truncated).
     * @param withTimestamps Write 16-byte records carrying the
     *        timestamp argument of append().
     */
    explicit TraceStreamWriter(const std::string &path,
                               bool withTimestamps = false);

    /** Flushes and finalizes the header if close() was not called. */
    ~TraceStreamWriter();

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    /** Append one record. @p page must be < 2^63. */
    void append(PageId page, bool write = false,
                std::uint64_t timestamp = 0);

    /** Flush buffered records and patch the header. Idempotent. */
    void close();

    std::uint64_t count() const { return count_; }

  private:
    void flushBuffer();

    std::string path_;
    std::ofstream os;
    bool withTimestamps_;
    bool closed = false;
    std::uint64_t count_ = 0;
    std::uint64_t pageBound_ = 0;
    std::uint64_t writes_ = 0;
    std::vector<std::uint64_t> buffer; //!< encoded on-disk words
};

/**
 * Streaming reader. Construction validates the header against the
 * real file size (fatal() on any mismatch — bad magic, unknown
 * version, truncated body, oversized count); fillPages()/fillRecords()
 * then decode sequential batches.
 */
class TraceStream
{
  public:
    /**
     * @param forceBuffered Skip the mmap attempt and serve batches
     *        through the buffered-ifstream fallback. A test hook: the
     *        fallback otherwise only runs on platforms without mmap
     *        (or when mapping fails), so its identity with the mapped
     *        path would go unexercised by CI.
     */
    explicit TraceStream(const std::string &path,
                         bool forceBuffered = false);
    ~TraceStream();

    TraceStream(const TraceStream &) = delete;
    TraceStream &operator=(const TraceStream &) = delete;

    std::uint64_t count() const { return info_.count; }
    std::uint64_t pageBound() const { return info_.pageBound; }
    bool hasTimestamps() const { return info_.hasTimestamps; }
    const TraceStreamInfo &info() const { return info_; }

    /** Records not yet consumed. */
    std::uint64_t remaining() const { return info_.count - consumed; }

    /**
     * Decode up to @p maxN page ids (write flags stripped) into
     * @p out; returns the number decoded, 0 at end of trace. Batches
     * are validated against the header page bound (fatal on a record
     * breaking the bound — the file is corrupt, and the replay
     * kernels' direct-mapped tables would index out of range).
     */
    std::size_t fillPages(PageId *out, std::size_t maxN);

    /** Decode up to @p maxN full records. */
    std::size_t fillRecords(TraceRecord *out, std::size_t maxN);

    /** Restart from the first record. */
    void rewind();

    /** True when the reader serves batches from an mmap'd view. */
    bool mapped() const { return base != nullptr; }

  private:
    std::size_t stride() const { return info_.hasTimestamps ? 16 : 8; }
    /** Raw bytes of records [consumed, consumed + n) into @p dst. */
    void fetchWords(std::uint64_t *dst, std::size_t n);

    std::string path_;
    TraceStreamInfo info_;
    std::uint64_t consumed = 0;

    // mmap path
    const unsigned char *base = nullptr; //!< whole-file mapping
    std::size_t mapLen = 0;

    // ifstream fallback
    std::ifstream is;
    std::vector<std::uint64_t> ioBuf;
};

/** Read just the header of a streaming trace (validated). */
TraceStreamInfo traceStreamInfo(const std::string &path);

/**
 * Full-file header + body scan: header info with `writes` filled in
 * (the header does not store the write count).
 */
TraceStreamInfo traceStreamStats(const std::string &path);

/** Write @p trace (reads, no timestamps) as a streaming file. */
void writeTraceStream(const std::string &path,
                      const std::vector<PageId> &trace);

/** Materialize every page id of a streaming file (tests, small
 * conversions; defeats the point for multi-GB traces). */
std::vector<PageId> readTraceStreamPages(const std::string &path);

/**
 * Replay the whole stream through one kernel of @p kind with
 * @p frames frames, batched straight off the mapping. The kernel and
 * cold tracker are sized from the header page bound — no pre-scan.
 *
 * @param kernelRng Consumed only by PolicyKind::Random.
 */
ReplayStats replayStream(TraceStream &ts, PolicyKind kind,
                         std::size_t frames, Rng kernelRng);

/** replayStream with a warmup window (see replayWindowed). */
WindowedReplay replayStreamWindowed(TraceStream &ts, PolicyKind kind,
                                    std::size_t frames,
                                    std::uint64_t warmup,
                                    Rng kernelRng);

/**
 * Single-pass Mattson stack-distance curve over a streaming trace
 * (exact LRU hit counts at every capacity). Only LRU admits the
 * sweep; other policies replay directly. Fatal on traces with 2^32 or
 * more accesses (the engine's timestamp width).
 */
StackDistanceCurve lruCurveFromStream(TraceStream &ts);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_TRACE_STREAM_HH
