#include "memblade/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wsc {
namespace memblade {

TraceProfile
profileFor(workloads::Benchmark b)
{
    using workloads::Benchmark;
    TraceProfile p;
    switch (b) {
      case Benchmark::Websearch:
        // Large index footprint scanned with modest locality: the
        // workload with the largest memory usage and slowdown (4.7%
        // at 25% local in the paper).
        p.name = "websearch";
        p.footprintPages = 480000; // ~1.9 GB of 4 KB pages
        p.hotSetFraction = 0.12;
        p.hotProb = 0.62;
        p.zipfS = 0.7;
        p.seqRunMean = 6.0;
        p.touchesPerSecond = 7.0e4;
        break;
      case Benchmark::Webmail:
        // Small per-request state, highly reused PHP/runtime pages:
        // near-zero slowdown in the paper (0.2%).
        p.name = "webmail";
        p.footprintPages = 300000;
        p.hotSetFraction = 0.08;
        p.hotProb = 0.93;
        p.zipfS = 1.1;
        p.seqRunMean = 2.0;
        p.touchesPerSecond = 6.0e4;
        break;
      case Benchmark::Ytube:
        // Media in page cache with Zipf popularity; moderate reuse,
        // big streamed objects (1.4% slowdown).
        p.name = "ytube";
        p.footprintPages = 460000;
        p.hotSetFraction = 0.15;
        p.hotProb = 0.80;
        p.zipfS = 0.9;
        p.seqRunMean = 24.0;
        p.touchesPerSecond = 8.3e4;
        break;
      case Benchmark::MapredWc:
        // Streaming splits: sequential runs over a large footprint,
        // but a compact hot heap (0.7% slowdown).
        p.name = "mapred-wc";
        p.footprintPages = 420000;
        p.hotSetFraction = 0.10;
        p.hotProb = 0.88;
        p.zipfS = 0.6;
        p.seqRunMean = 32.0;
        p.touchesPerSecond = 4.6e4;
        break;
      case Benchmark::MapredWr:
        p.name = "mapred-wr";
        p.footprintPages = 380000;
        p.hotSetFraction = 0.10;
        p.hotProb = 0.88;
        p.zipfS = 0.6;
        p.seqRunMean = 32.0;
        p.touchesPerSecond = 4.2e4;
        break;
    }
    return p;
}

TraceGenerator::TraceGenerator(TraceProfile profile, Rng rng_in)
    : p(std::move(profile)), rng(rng_in),
      hotDist(std::max<std::uint64_t>(
                  1, std::uint64_t(double(p.footprintPages) *
                                   p.hotSetFraction)),
              p.zipfS),
      coldDist(std::max<std::uint64_t>(
                   1, p.footprintPages -
                          std::uint64_t(double(p.footprintPages) *
                                        p.hotSetFraction)),
               p.zipfS)
{
    WSC_ASSERT(p.footprintPages > 0, "empty footprint");
    WSC_ASSERT(p.hotSetFraction > 0.0 && p.hotSetFraction < 1.0,
               "hot-set fraction out of (0,1)");
    hotPages = std::uint64_t(double(p.footprintPages) * p.hotSetFraction);
}

PageId
TraceGenerator::drawStart()
{
    if (rng.bernoulli(p.hotProb)) {
        // Hot pages occupy the low ids; Zipf rank 1 is hottest.
        return hotDist.sampleRank(rng) - 1;
    }
    return hotPages + (coldDist.sampleRank(rng) - 1);
}

PageId
TraceGenerator::next()
{
    if (runLeft > 0) {
        --runLeft;
        runPage = (runPage + 1) % p.footprintPages;
        return runPage;
    }
    runPage = drawStart();
    if (p.seqRunMean > 1.0) {
        // Geometric run length with the configured mean.
        double continue_prob = 1.0 - 1.0 / p.seqRunMean;
        std::uint64_t len = 0;
        while (rng.bernoulli(continue_prob) && len < 4096)
            ++len;
        runLeft = len;
    }
    return runPage;
}

void
TraceGenerator::nextBatch(PageId *out, std::size_t n)
{
    std::size_t i = 0;
    while (i < n) {
        if (runLeft > 0) {
            // Drain the pending run in one block. Runs draw no RNG,
            // so this is where batching wins without perturbing the
            // draw order.
            auto take = std::size_t(
                std::min<std::uint64_t>(runLeft, n - i));
            if (runPage + take < p.footprintPages) {
                PageId page = runPage;
                for (std::size_t j = 0; j < take; ++j)
                    out[i + j] = ++page;
                runPage = page;
            } else {
                for (std::size_t j = 0; j < take; ++j) {
                    runPage = (runPage + 1) % p.footprintPages;
                    out[i + j] = runPage;
                }
            }
            runLeft -= take;
            i += take;
            continue;
        }
        runPage = drawStart();
        if (p.seqRunMean > 1.0) {
            double continue_prob = 1.0 - 1.0 / p.seqRunMean;
            std::uint64_t len = 0;
            while (rng.bernoulli(continue_prob) && len < 4096)
                ++len;
            runLeft = len;
        }
        out[i++] = runPage;
    }
}

std::vector<PageId>
generateTrace(const TraceProfile &profile, std::uint64_t n, Rng rng)
{
    TraceGenerator gen(profile, rng);
    std::vector<PageId> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(gen.next());
    return out;
}

} // namespace memblade
} // namespace wsc
