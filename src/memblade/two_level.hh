/**
 * @file
 * Two-level (local DRAM + remote memory blade) trace simulator.
 *
 * Replays a page-access trace against a local memory of configurable
 * size; misses are remote-blade accesses. Mirrors the paper's
 * trace-driven methodology (Section 3.4): exclusive hierarchy, the
 * victim writeback decoupled from the critical-path fetch.
 */

#ifndef WSC_MEMBLADE_TWO_LEVEL_HH
#define WSC_MEMBLADE_TWO_LEVEL_HH

#include <cstdint>

#include "memblade/replacement.hh"
#include "memblade/trace.hh"

namespace wsc {
namespace memblade {

/** Aggregate statistics of one trace replay. */
struct ReplayStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0; //!< remote-blade page fetches
    std::uint64_t coldMisses = 0; //!< first-touch (not remote fetches)

    double
    missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }

    /** Miss rate excluding cold (first-touch) misses. */
    double
    warmMissRate() const
    {
        return accesses
                   ? double(misses - coldMisses) / double(accesses)
                   : 0.0;
    }
};

/**
 * Two-level memory simulator over one replacement policy.
 */
class TwoLevelMemory
{
  public:
    /**
     * @param localFrames Local DRAM size in pages.
     * @param kind Replacement policy for the local level.
     * @param rng Used by randomized policies.
     */
    TwoLevelMemory(std::size_t localFrames, PolicyKind kind, Rng rng);

    /** Touch one page, updating statistics. */
    void access(PageId page);

    const ReplayStats &stats() const { return stats_; }

    /** Replay @p n accesses from @p gen. */
    void replay(TraceGenerator &gen, std::uint64_t n);

  private:
    std::unique_ptr<ReplacementPolicy> policy;
    ReplayStats stats_;
    std::unordered_map<PageId, bool> seen; //!< for cold-miss accounting
};

/**
 * Convenience: miss rate of a profile at a given local fraction.
 *
 * @param profile Trace profile.
 * @param localFraction Local memory as a fraction of the footprint.
 * @param kind Replacement policy.
 * @param accesses Trace length.
 * @param seed RNG seed.
 */
ReplayStats replayProfile(const TraceProfile &profile,
                          double localFraction, PolicyKind kind,
                          std::uint64_t accesses, std::uint64_t seed);

} // namespace memblade
} // namespace wsc

#endif // WSC_MEMBLADE_TWO_LEVEL_HH
