#include "memblade/hybrid.hh"

#include <cmath>

#include "memblade/policy_zoo.hh"
#include "memblade/replay.hh"
#include "util/logging.hh"

namespace wsc {
namespace memblade {

namespace {

constexpr std::size_t kChunk = 4096;

template <typename LocalKernel, typename DramKernel>
HybridStats
hybridLoop(LocalKernel &local, DramKernel &dram_tier,
           TraceGenerator &gen, std::uint64_t accesses,
           std::uint64_t pageBound)
{
    HybridStats out;
    ColdTracker seen(pageBound);
    std::vector<PageId> buf(kChunk);
    std::uint64_t done = 0;
    while (done < accesses) {
        auto n = std::size_t(
            std::min<std::uint64_t>(kChunk, accesses - done));
        gen.nextBatch(buf.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            PageId page = buf[i];
            ++out.local.accesses;
            if (local.access(page)) {
                ++out.local.hits;
                continue;
            }
            ++out.local.misses;
            if (seen.firstTouch(page)) {
                ++out.local.coldMisses;
                // First touch populates the hierarchy; it is not a
                // blade swap, but the page enters the DRAM tier's
                // history.
                dram_tier.access(page);
                continue;
            }
            // Exclusive swap with the blade: DRAM tier first, flash
            // tail.
            if (dram_tier.access(page))
                ++out.dramHits;
            else
                ++out.flashHits;
        }
        done += n;
    }
    return out;
}

} // namespace

HybridStats
replayHybrid(const TraceProfile &profile, double localFraction,
             const HybridParams &params, PolicyKind kind,
             std::uint64_t accesses, std::uint64_t seed)
{
    WSC_ASSERT(localFraction > 0.0 && localFraction < 1.0,
               "local fraction out of (0, 1)");
    WSC_ASSERT(params.dramTierFraction > 0.0 &&
                   params.dramTierFraction <= 1.0,
               "DRAM tier fraction out of (0, 1]");

    auto local_frames = std::size_t(
        std::ceil(double(profile.footprintPages) * localFraction));
    double remote_pages =
        double(profile.footprintPages) * (1.0 - localFraction);
    auto dram_frames = std::size_t(
        std::ceil(remote_pages * params.dramTierFraction));

    // Same split order as the original policy-based implementation
    // (local, DRAM tier, generator) keeps results bit-identical.
    Rng rng(seed);
    Rng local_rng = rng.split();
    Rng dram_rng = rng.split();
    TraceGenerator gen(profile, rng.split());

    std::uint64_t bound = profile.footprintPages;
    // Both tiers run the same policy kind; the nested dispatch keeps
    // the kernel construction order (local, then DRAM tier) identical
    // to the original switch so Random stays bit-identical.
    return withPolicyKernel(
        kind, local_frames, bound, local_rng, [&](auto &local) {
            return withPolicyKernel(
                kind, dram_frames, bound, dram_rng,
                [&](auto &dram_tier) {
                    return hybridLoop(local, dram_tier, gen, accesses,
                                      bound);
                });
        });
}

double
hybridSlowdown(const HybridStats &stats, const TraceProfile &profile,
               const HybridParams &params)
{
    double warm = double(stats.dramHits + stats.flashHits);
    if (stats.local.accesses == 0 || warm == 0.0)
        return 0.0;
    double per_access_warm = warm / double(stats.local.accesses);
    double mean_stall =
        (double(stats.dramHits) *
             params.dramLink.stallSecondsPerMiss +
         double(stats.flashHits) * params.flashStallSeconds) /
        warm;
    return per_access_warm * profile.touchesPerSecond * mean_stall;
}

SharedMemoryOutcome
applyHybridSharing(const platform::ServerConfig &server,
                   const BladeParams &blade, Provisioning scheme,
                   const HybridParams &params)
{
    auto base = applyMemorySharing(server, blade, scheme);

    double base_cost = server.memory.dollars;
    double base_watts = server.memory.watts;
    double remote_fraction = (scheme == Provisioning::Static)
                                 ? 1.0 - blade.localFraction
                                 : 0.85 - blade.localFraction;
    double remote_cost =
        base_cost * remote_fraction * (1.0 - blade.remoteCostDiscount);
    double remote_watts =
        base_watts * remote_fraction * (1.0 - blade.remotePowerSaving);

    // Keep dramTierFraction of the remote tier as DRAM; the rest
    // becomes flash at the configured cost/power ratios.
    double flash_share = 1.0 - params.dramTierFraction;
    SharedMemoryOutcome out = base;
    out.memoryDollars -=
        remote_cost * flash_share * (1.0 - params.flashCostRatio);
    out.memoryWatts -=
        remote_watts * flash_share * (1.0 - params.flashPowerRatio);
    return out;
}

} // namespace memblade
} // namespace wsc
