#include "memblade/page_sharing.hh"

#include "util/logging.hh"

namespace wsc {
namespace memblade {

double
physicalPerLogical(const ContentParams &p)
{
    double dup = p.enableSharing ? p.dupFraction : 0.0;
    WSC_ASSERT(dup >= 0.0 && dup < 1.0, "dup fraction out of [0, 1)");
    WSC_ASSERT(p.dupClassSize >= 1.0, "dup class below one page");
    double uniq = 1.0 - dup;
    double dup_phys = p.enableSharing ? dup / p.dupClassSize : 0.0;
    double uniq_phys = uniq;
    if (p.enableCompression) {
        WSC_ASSERT(p.compressionRatio >= 1.0,
                   "compression ratio below one");
        WSC_ASSERT(p.compressibleFraction >= 0.0 &&
                       p.compressibleFraction <= 1.0,
                   "compressible fraction out of [0, 1]");
        uniq_phys = uniq * (p.compressibleFraction / p.compressionRatio +
                            (1.0 - p.compressibleFraction));
    }
    return dup_phys + uniq_phys;
}

RemoteLink
linkWith(const ContentParams &params, const RemoteLink &base)
{
    RemoteLink out = base;
    if (params.enableCompression) {
        out.name = base.name + " + decompress";
        out.stallSecondsPerMiss += params.decompressSeconds;
    }
    return out;
}

SharedMemoryOutcome
applyMemorySharingWithContent(const platform::ServerConfig &server,
                              const BladeParams &params,
                              Provisioning scheme,
                              const ContentParams &content)
{
    // Start from the plain sharing outcome, then shrink the remote
    // tier's contribution by the physical/logical factor.
    auto base = applyMemorySharing(server, params, scheme);
    double factor = physicalPerLogical(content);

    double base_cost = server.memory.dollars;
    double base_watts = server.memory.watts;
    double remote_fraction = (scheme == Provisioning::Static)
                                 ? 1.0 - params.localFraction
                                 : 0.85 - params.localFraction;

    double remote_cost =
        base_cost * remote_fraction * (1.0 - params.remoteCostDiscount);
    double remote_watts =
        base_watts * remote_fraction * (1.0 - params.remotePowerSaving);

    SharedMemoryOutcome out = base;
    out.memoryDollars -= remote_cost * (1.0 - factor);
    out.memoryWatts -= remote_watts * (1.0 - factor);
    return out;
}

} // namespace memblade
} // namespace wsc
