/**
 * @file
 * User-facing fault-injection specification.
 *
 * A FaultSpec names which component classes fail and how aggressively
 * time is compressed. The CLI form (wsc_eval --faults <spec>) is a
 * comma-separated list of component names, or "all" / "none":
 *
 *   --faults all
 *   --faults disk,fan,memory-blade --mttf-scale 1e-5
 *
 * mttfScale multiplies every component's mean time to failure;
 * values << 1 compress years of fault exposure into a simulable
 * horizon (accelerated-life testing). Repair times are NOT scaled:
 * compressing failures while keeping repairs real-length is what makes
 * the availability price of wide blast radii visible in short runs.
 */

#ifndef WSC_FAULTS_FAULT_SPEC_HH
#define WSC_FAULTS_FAULT_SPEC_HH

#include <array>
#include <string>

#include "faults/failure_model.hh"

namespace wsc {
namespace faults {

/** Which components fail, and the time-compression factor. */
struct FaultSpec {
    std::array<bool, componentCount> enable{};
    double mttfScale = 1.0;
    /** Per-class models; defaults from defaultModel(). */
    std::array<FailureModel, componentCount> models;

    FaultSpec();

    /** No faults at all (the default spec). */
    static FaultSpec none();

    /** Every component class enabled. */
    static FaultSpec all();

    /**
     * Parse a CLI spec: "all", "none", or a comma-separated list of
     * component names (see to_string(Component)).
     * @throws FatalError naming the offending token on bad input.
     */
    static FaultSpec parse(const std::string &text);

    bool enabled(Component c) const
    {
        return enable[std::size_t(c)];
    }

    const FailureModel &model(Component c) const
    {
        return models[std::size_t(c)];
    }

    /** True when at least one component class is enabled. */
    bool any() const;

    /** Canonical text form ("none", "all", or the sorted name list). */
    std::string summary() const;
};

} // namespace faults
} // namespace wsc

#endif // WSC_FAULTS_FAULT_SPEC_HH
