#include "faults/availability_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "perfsim/calibration.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace wsc {
namespace faults {

namespace {

/** One server's stations plus routing state. */
struct Node {
    std::unique_ptr<sim::PsResource> cpu;
    std::unique_ptr<sim::FifoResource> disk;
    std::unique_ptr<sim::PsResource> nic;
    std::size_t inFlight = 0;
    bool up = true;
};

/** Client-side state of one logical request across its attempts. */
struct Req {
    double firstIssue = 0.0;
    unsigned attempts = 0;
    bool resolved = false; //!< completed or given up
    sim::EventId timeoutEv = 0;
    // Demands drawn once at first issue; retries resend the same work
    // (no extra RNG draws, so fault timing never perturbs the stream).
    double cpuWork = 0.0;
    double diskService = 0.0;
    double netMb = 0.0;
};

} // namespace

AvailabilityResult
simulateAvailability(workloads::InteractiveWorkload &workload,
                     const perfsim::StationConfig &st,
                     const AvailabilityParams &params)
{
    WSC_ASSERT(params.servers >= 1, "empty cluster");
    WSC_ASSERT(params.offeredRps > 0.0, "offered load must be positive");
    WSC_ASSERT(params.epochSeconds > 0.0, "epoch must be positive");

    AvailabilityResult result;
    std::uint64_t epochs = std::uint64_t(
        std::floor(params.horizonSeconds / params.epochSeconds + 1e-9));
    WSC_ASSERT(epochs >= 1, "horizon shorter than one epoch");
    double horizon = double(epochs) * params.epochSeconds;
    result.offeredRps = params.offeredRps;
    result.horizonSeconds = horizon;
    result.epochsTotal = epochs;

    sim::EventQueue eq;
    FaultInjector injector(eq, params.injector, params.servers);

    std::vector<Node> nodes(params.servers);
    for (unsigned i = 0; i < params.servers; ++i) {
        // Owner-tag each server's events with its (1-based) id so a
        // crash can retire them in bulk; client timers stay untagged
        // and survive the crash to drive retries.
        std::uint64_t tag = i + 1;
        auto suffix = std::to_string(i);
        nodes[i].cpu = std::make_unique<sim::PsResource>(
            eq, "cpu" + suffix, st.cpuCapacityGHz, st.cpuSlots, tag);
        nodes[i].disk = std::make_unique<sim::FifoResource>(
            eq, "disk" + suffix, 1, tag);
        nodes[i].nic = std::make_unique<sim::PsResource>(
            eq, "nic" + suffix, st.nicMBs, 1, tag);
    }

    injector.onServerDown([&](unsigned s, Component) {
        Node &n = nodes[s];
        n.up = false;
        // Crash semantics: all held work is lost.
        n.cpu->purge();
        n.disk->purge();
        n.nic->purge();
        n.inFlight = 0;
    });
    injector.onServerUp([&](unsigned s) { nodes[s].up = true; });
    injector.onServerThrottle([&](unsigned s, double factor) {
        nodes[s].cpu->setCapacity(st.cpuCapacityGHz * factor);
    });

    auto qos = workload.qos();
    double timeout = qos.latencyLimit * params.timeoutFactor;
    Rng loadRng(seedFor(params.seed, "avail-load"));

    // Per-epoch QoS accounting.
    std::uint64_t epochOffered = 0, epochResolved = 0, epochBad = 0;
    std::uint64_t okRunEpochs = 0;
    bool inViolation = false;
    double okTimeSum = 0.0;
    std::uint64_t violationEpisodes = 0;

    auto pick = [&]() -> Node * {
        Node *best = nullptr;
        for (Node &n : nodes) {
            if (!n.up)
                continue;
            if (!best || n.inFlight < best->inFlight)
                best = &n; // ties keep the lowest index: deterministic
        }
        return best;
    };

    // issue() sends one attempt; timeout/retry feed back into it.
    std::function<void(std::shared_ptr<Req>)> issue;

    auto abandon = [&](const std::shared_ptr<Req> &req) {
        if (req->attempts <= params.maxRetries) {
            ++result.retries;
            double backoff = params.backoffSeconds *
                             std::pow(2.0, double(req->attempts - 1));
            eq.scheduleAfter(backoff, [&issue, req] { issue(req); });
        } else {
            ++result.giveups;
            req->resolved = true;
            ++epochResolved;
            ++epochBad;
        }
    };

    issue = [&](std::shared_ptr<Req> req) {
        Node *node = pick();
        if (!node) {
            // Whole cluster down: connection refused, client retries.
            ++req->attempts;
            ++result.timeouts;
            abandon(req);
            return;
        }
        ++req->attempts;
        ++node->inFlight;
        unsigned attempt = req->attempts;

        auto finish = [&, req, attempt, node] {
            --node->inFlight;
            if (req->resolved || attempt != req->attempts) {
                // Client already gave up or moved to another attempt.
                ++result.lateCompletions;
                return;
            }
            req->resolved = true;
            if (req->timeoutEv) {
                eq.cancel(req->timeoutEv);
                req->timeoutEv = 0;
            }
            double latency = eq.now() - req->firstIssue;
            ++result.completions;
            ++epochResolved;
            if (latency >= qos.latencyLimit) {
                ++result.qosViolations;
                ++epochBad;
            }
        };
        auto netStage = [&, req, finish, node] {
            if (req->netMb > 0.0)
                node->nic->submit(req->netMb, finish);
            else
                finish();
        };
        auto diskStage = [&, req, netStage, node] {
            if (req->diskService > 0.0)
                node->disk->submit(req->diskService, netStage);
            else
                netStage();
        };
        node->cpu->submit(req->cpuWork, diskStage);

        req->timeoutEv = eq.scheduleAfter(timeout, [&, req] {
            req->timeoutEv = 0;
            if (req->resolved)
                return;
            ++result.timeouts;
            abandon(req);
        });
    };

    std::function<void()> arrive = [&] {
        double now = eq.now();
        if (now >= horizon)
            return;
        ++result.offered;
        ++epochOffered;
        auto req = std::make_shared<Req>();
        req->firstIssue = now;
        auto demand = workload.nextRequest(loadRng);
        req->cpuWork = demand.cpuWork * st.serviceSlowdown;
        if (demand.diskReadBytes > 0.0 &&
            !loadRng.bernoulli(st.diskCacheHitRate))
            req->diskService +=
                st.diskAccessMs * 1e-3 +
                demand.diskReadBytes / (st.diskReadMBs * 1e6);
        if (demand.diskWriteBytes > 0.0)
            req->diskService +=
                st.diskAccessMs * 1e-3 * perfsim::writeAccessFactor +
                demand.diskWriteBytes / (st.diskWriteMBs * 1e6);
        req->netMb = demand.netBytes / 1e6;
        issue(req);
        eq.scheduleAfter(loadRng.exponential(1.0 / params.offeredRps),
                         arrive);
    };
    eq.scheduleAfter(loadRng.exponential(1.0 / params.offeredRps), arrive);

    auto epochPasses = [&]() -> bool {
        if (epochResolved == 0)
            return epochOffered == 0; // vacuous only with no demand
        return double(epochBad) <=
               (1.0 - qos.quantile) * double(epochResolved);
    };
    std::function<void()> epochBoundary = [&] {
        if (epochPasses()) {
            ++result.epochsPassed;
            ++okRunEpochs;
            inViolation = false;
        } else {
            if (!inViolation) {
                ++violationEpisodes;
                okTimeSum += double(okRunEpochs) * params.epochSeconds;
                okRunEpochs = 0;
            }
            inViolation = true;
        }
        epochOffered = epochResolved = epochBad = 0;
        if (eq.now() + params.epochSeconds <= horizon + 1e-9)
            eq.scheduleAfter(params.epochSeconds, epochBoundary);
    };
    eq.scheduleAfter(params.epochSeconds, epochBoundary);

    injector.start();
    eq.run(horizon);
    injector.finalize();

    result.availability =
        double(result.epochsPassed) / double(result.epochsTotal);
    std::uint64_t good = result.completions - result.qosViolations;
    result.goodputRps = double(good) / horizon;
    result.goodputFraction =
        result.offered ? double(good) / double(result.offered) : 0.0;
    result.meanTimeToQosViolationSeconds =
        violationEpisodes ? okTimeSum / double(violationEpisodes)
                          : horizon;
    result.serverDownFraction = injector.stats().serverDownSeconds /
                                (horizon * double(params.servers));
    result.serverDegradedFraction =
        injector.stats().serverDegradedSeconds /
        (horizon * double(params.servers));
    result.faults = injector.stats();
    result.kernel = eq.counters();
    return result;
}

} // namespace faults
} // namespace wsc
