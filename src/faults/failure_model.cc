#include "faults/failure_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace faults {

namespace {

constexpr double secondsPerYear = 365.25 * 24.0 * 3600.0;
constexpr double secondsPerHour = 3600.0;

} // namespace

std::string
to_string(Component c)
{
    switch (c) {
      case Component::Server:
        return "server";
      case Component::Disk:
        return "disk";
      case Component::Dimm:
        return "dimm";
      case Component::Fan:
        return "fan";
      case Component::Psu:
        return "psu";
      case Component::Nic:
        return "nic";
      case Component::MemoryBlade:
        return "memory-blade";
    }
    panic("unknown component class");
}

double
FailureModel::mttfSeconds() const
{
    WSC_ASSERT(afr > 0.0, "failure model needs a positive AFR");
    return secondsPerYear / afr;
}

double
FailureModel::drawLifetimeSeconds(Rng &rng, double mttfScale) const
{
    WSC_ASSERT(mttfScale > 0.0, "mttf scale must be positive");
    WSC_ASSERT(weibullShape > 0.0, "Weibull shape must be positive");
    double mean = mttfSeconds() * mttfScale;
    // Weibull mean = eta * Gamma(1 + 1/k); pick eta to hit the mean.
    double eta = mean / std::tgamma(1.0 + 1.0 / weibullShape);
    // Inverse CDF over a single uniform draw. Clamp away from 0 so
    // log() stays finite; uniform() already excludes 1.0.
    double u = rng.uniform();
    if (u <= 0.0)
        u = 1e-300;
    return eta * std::pow(-std::log(u), 1.0 / weibullShape);
}

double
FailureModel::drawRepairSeconds(Rng &rng) const
{
    WSC_ASSERT(repairMeanHours > 0.0, "repair mean must be positive");
    return rng.exponential(repairMeanHours * secondsPerHour);
}

FailureModel
defaultModel(Component c)
{
    switch (c) {
      case Component::Server:
        // Residual whole-server rate: board, firmware, kernel crashes.
        return {0.02, 1.0, 6.0};
      case Component::Disk:
        // Field AFR ~3-4% with infant mortality (shape < 1);
        // hot-swap + RAID rebuild keeps repair short.
        return {0.04, 0.8, 8.0};
      case Component::Dimm:
        // Uncorrectable-error rate per module; board-down repair.
        return {0.01, 1.0, 24.0};
      case Component::Fan:
        // Mechanical wear-out (shape > 1); hot-swap repair.
        return {0.05, 1.5, 2.0};
      case Component::Psu:
        return {0.03, 1.0, 4.0};
      case Component::Nic:
        return {0.01, 1.0, 12.0};
      case Component::MemoryBlade:
        // One blade serves the whole ensemble: engineered for
        // reliability (redundant power, ECC) but repaired under
        // priority escalation because everything leases from it.
        return {0.015, 1.0, 3.0};
    }
    panic("unknown component class");
}

} // namespace faults
} // namespace wsc
