/**
 * @file
 * Per-component failure and repair models.
 *
 * Each hardware component class carries an annualized failure rate
 * (AFR) and a Weibull lifetime shape. Shape 1.0 is the memoryless
 * exponential model; shape < 1 models infant mortality (disks), and
 * shape > 1 models wear-out. Repair times are exponential around a
 * mean sourced from datacenter operations practice: hot-swappable
 * parts (disks, fans, PSUs) turn around in hours, board-down repairs
 * (DIMMs, NICs) take longer, and the shared memory blade is modeled
 * as a priority repair because its blast radius spans the ensemble.
 *
 * AFRs follow the component-reliability literature of the paper's era
 * (disk field studies reporting 2-4% AFR with burn-in failures
 * dominating; DRAM/NIC/PSU in the ~1-3% band). They are inputs, not
 * conclusions: the availability experiments scale them with
 * --mttf-scale to compress years of fault exposure into a simulable
 * horizon (accelerated-life framing), and the *relative* ranking of
 * designs is what the study reads off.
 */

#ifndef WSC_FAULTS_FAILURE_MODEL_HH
#define WSC_FAULTS_FAILURE_MODEL_HH

#include <cstdint>
#include <string>

#include "util/random.hh"

namespace wsc {
namespace faults {

/** Component classes with distinct failure behavior. */
enum class Component {
    Server,      //!< whole-server residual (board, firmware, OS)
    Disk,        //!< spindle (local or the remote laptop tier)
    Dimm,        //!< memory module; failure crashes the server
    Fan,         //!< cooling fan; failure degrades via thermal model
    Psu,         //!< power supply; failure crashes the server
    Nic,         //!< network interface; failure isolates the server
    MemoryBlade, //!< shared PCIe memory blade (ensemble-wide)
};

/** Number of component classes (array sizing). */
inline constexpr std::size_t componentCount = 7;

/** All component classes, in enum order. */
inline constexpr Component allComponents[componentCount] = {
    Component::Server, Component::Disk,        Component::Dimm,
    Component::Fan,    Component::Psu,         Component::Nic,
    Component::MemoryBlade,
};

std::string to_string(Component c);

/** Lifetime + repair distribution for one component class. */
struct FailureModel {
    /** Annualized failure rate: expected failures per device-year. */
    double afr = 0.02;
    /** Weibull lifetime shape; 1.0 = exponential (memoryless). */
    double weibullShape = 1.0;
    /** Mean repair turnaround, hours (exponential). */
    double repairMeanHours = 4.0;

    /** Mean time to failure implied by the AFR, seconds. */
    double mttfSeconds() const;

    /**
     * Draw one lifetime in seconds via the Weibull inverse CDF, with
     * the scale parameter chosen so the mean equals
     * mttfSeconds() * @p mttfScale. Exactly one uniform draw per call,
     * so streams stay aligned across model variants.
     */
    double drawLifetimeSeconds(Rng &rng, double mttfScale = 1.0) const;

    /** Draw one repair duration in seconds (exponential; one draw). */
    double drawRepairSeconds(Rng &rng) const;
};

/**
 * Default model for a component class (the catalog the availability
 * experiments run with; override per-spec for sensitivity studies).
 */
FailureModel defaultModel(Component c);

} // namespace faults
} // namespace wsc

#endif // WSC_FAULTS_FAILURE_MODEL_HH
