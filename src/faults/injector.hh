/**
 * @file
 * Fault injector: schedules component failures and repairs on the DES
 * kernel and drives per-server health state machines.
 *
 * Every physical component instance (each disk, DIMM, fan, PSU, NIC,
 * server board, and the shared memory blade) owns a private RNG stream
 * derived by identity hashing (util/hash.hh) from the injector seed
 * and the component's identity — never from draw order — so a
 * fault-injected sweep is bit-identical whether evaluated serially or
 * across any number of worker threads.
 *
 * State machine per server:
 *
 *   Healthy -> Degraded   fan failure heats the server past the
 *                         throttle threshold (thermal_coupling.hh);
 *                         capacity callback clocks the CPU down
 *   Healthy -> Failed     crash-class component failure (server board,
 *                         PSU, DIMM, NIC, serving disk, memory blade)
 *   Failed  -> Repairing  after the detection lag
 *   Repairing -> Healthy  when the last failed component affecting the
 *                         server finishes repair
 *
 * Correlated failures: the memory blade takes down every server
 * leasing remote capacity from it at once; a remote disk target takes
 * down its whole storage-fanout group; a fan failure on a single-fan
 * (aggregated-cooling) server marches to protective shutdown.
 */

#ifndef WSC_FAULTS_INJECTOR_HH
#define WSC_FAULTS_INJECTOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_spec.hh"
#include "faults/thermal_coupling.hh"
#include "sim/event_queue.hh"
#include "util/random.hh"

namespace wsc {
namespace faults {

/** Server health as exposed to the hosted simulation. */
enum class Health { Healthy, Degraded, Failed, Repairing };

std::string to_string(Health h);

/** Static description of the cluster the injector operates on. */
struct InjectorConfig {
    FaultSpec spec;
    /** Base seed; each component stream is identity-hashed off it. */
    std::uint64_t seed = 0;

    // Component population per server.
    unsigned disksPerServer = 1;
    unsigned dimmsPerServer = 4;
    unsigned fansPerServer = 4;
    unsigned psusPerServer = 1;
    unsigned nicsPerServer = 1;

    /**
     * Servers sharing one disk target. 1 models local disks; > 1
     * models the remote laptop-disk tier where a target's failure
     * takes down every server in its group (correlated blast radius).
     */
    unsigned storageFanout = 1;

    /** True when the ensemble leases capacity from a shared memory
     * blade; its failure cascades to every server at once. */
    bool memoryBlade = false;

    /** Lag between a crash and repair start (detection + dispatch). */
    double detectionSeconds = 60.0;

    // Thermal coupling for fan failures.
    thermal::PackagingDesign packaging =
        thermal::PackagingDesign::Conventional1U;
    double serverWatts = 250.0;
    double thermalTimeConstantSeconds = 120.0;
    /** CPU capacity multiplier applied while thermally throttled. */
    double throttleCapacityFactor = 0.5;
    double throttleDeltaTFraction = 1.1;
    double shutdownDeltaTFraction = 1.6;
};

/** Aggregate fault activity over one run. */
struct InjectorStats {
    std::array<std::uint64_t, componentCount> failures{};
    std::array<std::uint64_t, componentCount> repairs{};
    std::uint64_t serverCrashes = 0;   //!< up -> down transitions
    std::uint64_t thermalThrottles = 0;
    std::uint64_t thermalShutdowns = 0;
    double serverDownSeconds = 0.0;     //!< integrated over servers
    double serverDegradedSeconds = 0.0; //!< integrated throttled time
    /** Blast radius: servers newly downed per crash-class failure. */
    std::uint64_t blastEvents = 0;
    std::uint64_t blastServerSum = 0;
    std::size_t blastMax = 0;

    double blastMean() const
    {
        return blastEvents ? double(blastServerSum) / double(blastEvents)
                           : 0.0;
    }
    std::uint64_t totalFailures() const;
    std::uint64_t totalRepairs() const;
};

/**
 * Schedules failure/repair events on a hosted EventQueue and reports
 * server up/down/throttle transitions through callbacks.
 *
 * With an empty FaultSpec no component instances are registered and
 * start() schedules nothing: a zero-fault run pays only the injector's
 * construction (bench_faults bounds this).
 */
class FaultInjector
{
  public:
    /** Server crashed; the hosted sim should purge its resources. */
    using DownFn = std::function<void(unsigned server, Component cause)>;
    /** Server repaired; the hosted sim may route to it again. */
    using UpFn = std::function<void(unsigned server)>;
    /** Thermal throttle state changed; @p capacityFactor is 1.0 when
     * the throttle lifts. */
    using ThrottleFn =
        std::function<void(unsigned server, double capacityFactor)>;

    FaultInjector(sim::EventQueue &eq, const InjectorConfig &cfg,
                  unsigned servers);

    void onServerDown(DownFn fn) { downFn = std::move(fn); }
    void onServerUp(UpFn fn) { upFn = std::move(fn); }
    void onServerThrottle(ThrottleFn fn) { throttleFn = std::move(fn); }

    /** Draw initial lifetimes and schedule the first failures. */
    void start();

    /** Close the down/degraded time integrals at the current clock.
     * Call once after the hosted simulation's final run(). */
    void finalize();

    bool serverUp(unsigned server) const;
    Health serverHealth(unsigned server) const;
    unsigned upCount() const { return upCount_; }
    unsigned serverCount() const { return unsigned(servers_.size()); }

    const InjectorStats &stats() const { return stats_; }
    const InjectorConfig &config() const { return cfg_; }

    /** Thermal response applied on fan failures (for tests). */
    const ThermalCoupling &thermalResponse() const { return thermal_; }

  private:
    struct Unit {
        Component type;
        /** Server index; storage-group index for fanout disks;
         * 0 for the memory blade. */
        unsigned group = 0;
        unsigned instance = 0;
        Rng rng;
        bool failed = false;
        double failedAt = 0.0;
        // Fan-failure thermal escalation bookkeeping.
        sim::EventId pendingThrottle = 0;
        sim::EventId pendingShutdown = 0;
        bool throttleApplied = false;
        bool shutdownApplied = false;

        Unit(Component t, unsigned g, unsigned i, Rng r)
            : type(t), group(g), instance(i), rng(std::move(r))
        {
        }
    };

    struct ServerState {
        unsigned crashCauses = 0; //!< failed crash-class units affecting it
        unsigned throttles = 0;   //!< active thermal throttles
        bool down = false;
        double downSince = 0.0;
        double degradedSince = 0.0;
        double lastFailAt = 0.0;
    };

    sim::EventQueue &eq;
    InjectorConfig cfg_;
    std::vector<Unit> units;
    std::vector<ServerState> servers_;
    unsigned upCount_ = 0;
    InjectorStats stats_;
    ThermalCoupling thermal_;
    DownFn downFn;
    UpFn upFn;
    ThrottleFn throttleFn;

    void registerUnits(Component c, unsigned groups, unsigned perGroup);
    void scheduleFailure(std::size_t u);
    void fail(std::size_t u);
    void repair(std::size_t u);
    void crashServer(unsigned server, std::size_t *newlyDown);
    void restoreServer(unsigned server);
    void applyThrottle(std::size_t u);
    void applyShutdown(std::size_t u);
    void liftThermal(Unit &unit);
    /** Servers a crash-class unit failure affects: [first, last). */
    void affectedRange(const Unit &unit, unsigned *first,
                       unsigned *last) const;
};

} // namespace faults
} // namespace wsc

#endif // WSC_FAULTS_INJECTOR_HH
