/**
 * @file
 * Cluster availability simulation under fault injection.
 *
 * Runs an open-loop (Poisson) request stream against a cluster of
 * identical servers while a FaultInjector crashes, degrades, and
 * repairs components on the same event queue. Clients implement the
 * degraded-mode protocol: per-request timeout, bounded retries with
 * exponential backoff, and failover routing (least-outstanding among
 * surviving servers). Work a crashed server held is lost (resource
 * purge); work an overloaded server finishes after its client timed
 * out counts only as a late completion.
 *
 * QoS is accounted per epoch: an epoch passes when the fraction of bad
 * outcomes (late completions + give-ups) among resolved requests stays
 * within the workload's QoS quantile. Availability is the fraction of
 * epochs that pass — "the cluster sustains QoS at target load" — and
 * mean time to QoS violation is the average length of passing runs
 * preceding each violation episode.
 *
 * Determinism: one event queue per run; the load stream and every
 * fault stream are identity-seeded (util/hash.hh), so results are
 * bit-identical for any evaluation thread count.
 */

#ifndef WSC_FAULTS_AVAILABILITY_SIM_HH
#define WSC_FAULTS_AVAILABILITY_SIM_HH

#include <cstdint>

#include "faults/injector.hh"
#include "perfsim/server_sim.hh"
#include "workloads/workload.hh"

namespace wsc {
namespace faults {

/** One availability run's knobs. */
struct AvailabilityParams {
    unsigned servers = 8;
    /** Normalized down to a whole number of epochs. */
    double horizonSeconds = 600.0;
    double epochSeconds = 10.0;
    /** Aggregate offered load across the cluster. */
    double offeredRps = 100.0;
    /** Client timeout as a multiple of the QoS latency limit. */
    double timeoutFactor = 4.0;
    unsigned maxRetries = 2;
    /** First retry backoff; doubles per subsequent attempt. */
    double backoffSeconds = 0.1;
    std::uint64_t seed = 0;
    /** Fault population and models (spec may be empty: no faults). */
    InjectorConfig injector;
};

/** Outcome of one availability run. */
struct AvailabilityResult {
    double offeredRps = 0.0;
    double horizonSeconds = 0.0;

    std::uint64_t epochsTotal = 0;
    std::uint64_t epochsPassed = 0;
    /** Fraction of epochs sustaining QoS at the offered load. */
    double availability = 0.0;
    /** QoS-meeting completions per second over the horizon. */
    double goodputRps = 0.0;
    /** QoS-meeting completions / offered requests. */
    double goodputFraction = 0.0;
    /** Mean passing-run length before a violation episode; equals the
     * horizon when no epoch ever fails. */
    double meanTimeToQosViolationSeconds = 0.0;

    std::uint64_t offered = 0;
    std::uint64_t completions = 0;     //!< client-visible successes
    std::uint64_t qosViolations = 0;   //!< completions at/over the limit
    std::uint64_t timeouts = 0;        //!< attempts abandoned by timer
    std::uint64_t retries = 0;
    std::uint64_t giveups = 0;         //!< requests out of retries
    std::uint64_t lateCompletions = 0; //!< finished after abandonment

    /** Fraction of server-seconds spent down / thermally throttled. */
    double serverDownFraction = 0.0;
    double serverDegradedFraction = 0.0;

    InjectorStats faults;
    sim::EventQueue::Counters kernel;
};

/**
 * Run one availability simulation of @p workload on @p params.servers
 * identical servers with stations @p st.
 */
AvailabilityResult
simulateAvailability(workloads::InteractiveWorkload &workload,
                     const perfsim::StationConfig &st,
                     const AvailabilityParams &params);

} // namespace faults
} // namespace wsc

#endif // WSC_FAULTS_AVAILABILITY_SIM_HH
