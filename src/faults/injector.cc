#include "faults/injector.hh"

#include <algorithm>
#include <cmath>

#include "util/hash.hh"
#include "util/logging.hh"

namespace wsc {
namespace faults {

namespace {

/** Crash-class components take servers down outright; fans degrade
 * first and only crash via protective shutdown. */
bool
crashClass(Component c)
{
    return c != Component::Fan;
}

} // namespace

std::string
to_string(Health h)
{
    switch (h) {
      case Health::Healthy:
        return "healthy";
      case Health::Degraded:
        return "degraded";
      case Health::Failed:
        return "failed";
      case Health::Repairing:
        return "repairing";
    }
    panic("unknown health state");
}

std::uint64_t
InjectorStats::totalFailures() const
{
    std::uint64_t n = 0;
    for (auto f : failures)
        n += f;
    return n;
}

std::uint64_t
InjectorStats::totalRepairs() const
{
    std::uint64_t n = 0;
    for (auto r : repairs)
        n += r;
    return n;
}

FaultInjector::FaultInjector(sim::EventQueue &eq_, const InjectorConfig &cfg,
                             unsigned servers)
    : eq(eq_), cfg_(cfg)
{
    WSC_ASSERT(servers > 0, "fault injector needs at least one server");
    servers_.resize(servers);
    upCount_ = servers;

    const FaultSpec &spec = cfg_.spec;
    if (spec.enabled(Component::Fan) && cfg_.fansPerServer > 0)
        thermal_ = fanFailureCoupling(
            cfg_.packaging, cfg_.serverWatts, cfg_.fansPerServer,
            cfg_.thermalTimeConstantSeconds, cfg_.throttleDeltaTFraction,
            cfg_.shutdownDeltaTFraction);

    if (spec.enabled(Component::Server))
        registerUnits(Component::Server, servers, 1);
    if (spec.enabled(Component::Disk)) {
        if (cfg_.storageFanout <= 1) {
            registerUnits(Component::Disk, servers, cfg_.disksPerServer);
        } else {
            // Shared remote targets: one group per fanout-sized slice.
            unsigned groups =
                (servers + cfg_.storageFanout - 1) / cfg_.storageFanout;
            registerUnits(Component::Disk, groups, cfg_.disksPerServer);
        }
    }
    if (spec.enabled(Component::Dimm))
        registerUnits(Component::Dimm, servers, cfg_.dimmsPerServer);
    if (spec.enabled(Component::Fan))
        registerUnits(Component::Fan, servers, cfg_.fansPerServer);
    if (spec.enabled(Component::Psu))
        registerUnits(Component::Psu, servers, cfg_.psusPerServer);
    if (spec.enabled(Component::Nic))
        registerUnits(Component::Nic, servers, cfg_.nicsPerServer);
    if (spec.enabled(Component::MemoryBlade) && cfg_.memoryBlade)
        registerUnits(Component::MemoryBlade, 1, 1);
}

void
FaultInjector::registerUnits(Component c, unsigned groups, unsigned perGroup)
{
    for (unsigned g = 0; g < groups; ++g) {
        for (unsigned i = 0; i < perGroup; ++i) {
            // Stream identity is (component class, position), never
            // draw order: sweeps stay bit-identical under threading.
            Rng rng(seedFor(cfg_.seed, "fault", to_string(c), g, i));
            units.emplace_back(c, g, i, std::move(rng));
        }
    }
}

void
FaultInjector::start()
{
    for (std::size_t u = 0; u < units.size(); ++u)
        scheduleFailure(u);
}

void
FaultInjector::scheduleFailure(std::size_t u)
{
    Unit &unit = units[u];
    const FailureModel &model = cfg_.spec.model(unit.type);
    double dt = model.drawLifetimeSeconds(unit.rng, cfg_.spec.mttfScale);
    eq.scheduleAfter(dt, [this, u] { fail(u); });
}

void
FaultInjector::affectedRange(const Unit &unit, unsigned *first,
                             unsigned *last) const
{
    unsigned n = unsigned(servers_.size());
    switch (unit.type) {
      case Component::MemoryBlade:
        *first = 0;
        *last = n;
        return;
      case Component::Disk:
        if (cfg_.storageFanout > 1) {
            *first = unit.group * cfg_.storageFanout;
            *last = std::min(n, (unit.group + 1) * cfg_.storageFanout);
            return;
        }
        [[fallthrough]];
      default:
        *first = unit.group;
        *last = unit.group + 1;
        return;
    }
}

void
FaultInjector::fail(std::size_t u)
{
    Unit &unit = units[u];
    unit.failed = true;
    unit.failedAt = eq.now();
    ++stats_.failures[std::size_t(unit.type)];

    if (crashClass(unit.type)) {
        unsigned first = 0, last = 0;
        affectedRange(unit, &first, &last);
        std::size_t newlyDown = 0;
        for (unsigned s = first; s < last; ++s)
            crashServer(s, &newlyDown);
        ++stats_.blastEvents;
        stats_.blastServerSum += newlyDown;
        stats_.blastMax = std::max(stats_.blastMax, newlyDown);
        for (unsigned s = first; s < last; ++s)
            servers_[s].lastFailAt = eq.now();
        if (downFn)
            for (unsigned s = first; s < last; ++s)
                downFn(s, unit.type);
    } else {
        // Fan: escalate thermally toward throttle, then shutdown.
        if (std::isfinite(thermal_.timeToThrottleSeconds))
            unit.pendingThrottle = eq.scheduleAfter(
                thermal_.timeToThrottleSeconds,
                [this, u] { applyThrottle(u); });
        if (std::isfinite(thermal_.timeToShutdownSeconds))
            unit.pendingShutdown = eq.scheduleAfter(
                thermal_.timeToShutdownSeconds,
                [this, u] { applyShutdown(u); });
    }

    const FailureModel &model = cfg_.spec.model(unit.type);
    double repairDt =
        cfg_.detectionSeconds + model.drawRepairSeconds(unit.rng);
    eq.scheduleAfter(repairDt, [this, u] { repair(u); });
}

void
FaultInjector::repair(std::size_t u)
{
    Unit &unit = units[u];
    WSC_ASSERT(unit.failed, "repair of a unit that is not failed");
    unit.failed = false;
    ++stats_.repairs[std::size_t(unit.type)];

    if (crashClass(unit.type)) {
        unsigned first = 0, last = 0;
        affectedRange(unit, &first, &last);
        for (unsigned s = first; s < last; ++s)
            restoreServer(s);
    } else {
        liftThermal(unit);
    }

    scheduleFailure(u);
}

void
FaultInjector::crashServer(unsigned server, std::size_t *newlyDown)
{
    ServerState &st = servers_[server];
    ++st.crashCauses;
    if (st.down)
        return;
    st.down = true;
    st.downSince = eq.now();
    ++stats_.serverCrashes;
    WSC_ASSERT(upCount_ > 0, "crash with no servers up");
    --upCount_;
    if (newlyDown)
        ++*newlyDown;
}

void
FaultInjector::restoreServer(unsigned server)
{
    ServerState &st = servers_[server];
    WSC_ASSERT(st.crashCauses > 0, "restore of a server that is not down");
    --st.crashCauses;
    if (st.crashCauses > 0)
        return;
    st.down = false;
    stats_.serverDownSeconds += eq.now() - st.downSince;
    ++upCount_;
    if (upFn)
        upFn(server);
}

void
FaultInjector::applyThrottle(std::size_t u)
{
    Unit &unit = units[u];
    unit.pendingThrottle = 0;
    unit.throttleApplied = true;
    ++stats_.thermalThrottles;
    ServerState &st = servers_[unit.group];
    ++st.throttles;
    if (st.throttles == 1) {
        st.degradedSince = eq.now();
        if (throttleFn)
            throttleFn(unit.group, cfg_.throttleCapacityFactor);
    }
}

void
FaultInjector::applyShutdown(std::size_t u)
{
    Unit &unit = units[u];
    unit.pendingShutdown = 0;
    unit.shutdownApplied = true;
    ++stats_.thermalShutdowns;
    std::size_t newlyDown = 0;
    crashServer(unit.group, &newlyDown);
    ++stats_.blastEvents;
    stats_.blastServerSum += newlyDown;
    stats_.blastMax = std::max(stats_.blastMax, newlyDown);
    servers_[unit.group].lastFailAt = eq.now();
    if (downFn)
        downFn(unit.group, Component::Fan);
}

void
FaultInjector::liftThermal(Unit &unit)
{
    if (unit.pendingThrottle) {
        eq.cancel(unit.pendingThrottle);
        unit.pendingThrottle = 0;
    }
    if (unit.pendingShutdown) {
        eq.cancel(unit.pendingShutdown);
        unit.pendingShutdown = 0;
    }
    if (unit.throttleApplied) {
        unit.throttleApplied = false;
        ServerState &st = servers_[unit.group];
        WSC_ASSERT(st.throttles > 0, "throttle lift without throttle");
        --st.throttles;
        if (st.throttles == 0) {
            stats_.serverDegradedSeconds += eq.now() - st.degradedSince;
            if (throttleFn)
                throttleFn(unit.group, 1.0);
        }
    }
    if (unit.shutdownApplied) {
        unit.shutdownApplied = false;
        restoreServer(unit.group);
    }
}

void
FaultInjector::finalize()
{
    for (ServerState &st : servers_) {
        if (st.down) {
            stats_.serverDownSeconds += eq.now() - st.downSince;
            st.downSince = eq.now();
        }
        if (st.throttles > 0) {
            stats_.serverDegradedSeconds += eq.now() - st.degradedSince;
            st.degradedSince = eq.now();
        }
    }
}

bool
FaultInjector::serverUp(unsigned server) const
{
    return !servers_[server].down;
}

Health
FaultInjector::serverHealth(unsigned server) const
{
    const ServerState &st = servers_[server];
    if (st.down)
        return eq.now() < st.lastFailAt + cfg_.detectionSeconds
                   ? Health::Failed
                   : Health::Repairing;
    if (st.throttles > 0)
        return Health::Degraded;
    return Health::Healthy;
}

} // namespace faults
} // namespace wsc
