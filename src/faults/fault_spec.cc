#include "faults/fault_spec.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace wsc {
namespace faults {

FaultSpec::FaultSpec()
{
    for (auto c : allComponents)
        models[std::size_t(c)] = defaultModel(c);
}

FaultSpec
FaultSpec::none()
{
    return FaultSpec{};
}

FaultSpec
FaultSpec::all()
{
    FaultSpec s;
    s.enable.fill(true);
    return s;
}

FaultSpec
FaultSpec::parse(const std::string &text)
{
    std::string spec = toLower(trim(text));
    if (spec.empty() || spec == "none")
        return none();
    if (spec == "all")
        return all();

    FaultSpec s;
    for (const auto &raw : split(spec, ',')) {
        std::string token = trim(raw);
        bool matched = false;
        for (auto c : allComponents) {
            if (token == to_string(c)) {
                s.enable[std::size_t(c)] = true;
                matched = true;
                break;
            }
        }
        if (!matched) {
            std::string known;
            for (auto c : allComponents) {
                if (!known.empty())
                    known += "|";
                known += to_string(c);
            }
            fatal("unknown fault component '" + token +
                  "' (all|none|" + known + ")");
        }
    }
    return s;
}

bool
FaultSpec::any() const
{
    for (bool b : enable)
        if (b)
            return true;
    return false;
}

std::string
FaultSpec::summary() const
{
    if (!any())
        return "none";
    std::string out;
    bool allOn = true;
    for (auto c : allComponents) {
        if (!enabled(c)) {
            allOn = false;
            continue;
        }
        if (!out.empty())
            out += ",";
        out += to_string(c);
    }
    return allOn ? "all" : out;
}

} // namespace faults
} // namespace wsc
