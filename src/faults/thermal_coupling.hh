/**
 * @file
 * Fan-failure thermal coupling.
 *
 * Losing a fan cuts the volumetric airflow through a server's cooling
 * path; by the sensible-heat equation (thermal/airflow.hh) the
 * steady-state inlet-to-exhaust temperature rise scales inversely with
 * flow. The component heats toward that new steady state with a
 * first-order lag set by its thermal mass:
 *
 *   dT(t) = dTss + (dT0 - dTss) * exp(-t / tau)
 *
 * Crossing the throttle threshold clocks down the CPU (capacity
 * factor < 1); crossing the shutdown threshold trips thermal
 * protection and the server drops. Both crossing times are closed-form
 * and deterministic — the thermal-coupling test asserts the injector
 * throttles at exactly the modeled time.
 */

#ifndef WSC_FAULTS_THERMAL_COUPLING_HH
#define WSC_FAULTS_THERMAL_COUPLING_HH

#include "thermal/enclosure.hh"

namespace wsc {
namespace faults {

/** Closed-form thermal response to one failed fan. */
struct ThermalCoupling {
    double baseDeltaT = 0.0;     //!< steady rise with all fans, K
    double degradedDeltaT = 0.0; //!< steady rise with one fan out, K
    double throttleDeltaT = 0.0; //!< throttle threshold, K
    double shutdownDeltaT = 0.0; //!< protective-shutdown threshold, K
    /** Seconds after the failure until each threshold is crossed;
     * infinity when the degraded steady state stays below it. */
    double timeToThrottleSeconds = 0.0;
    double timeToShutdownSeconds = 0.0;
};

/**
 * Thermal response of a server in @p packaging dissipating
 * @p serverWatts when one of @p fansPerServer fans fails.
 *
 * @param timeConstantSeconds First-order thermal lag (mass / hA).
 * @param throttleFraction Throttle threshold as a multiple of the
 *     enclosure's allowable delta-T budget.
 * @param shutdownFraction Shutdown threshold, same units.
 *
 * A single-fan server falls back to natural convection (a small
 * residual flow fraction) when its only fan dies, which in practice
 * means a fast march to shutdown — exactly the aggregated-cooling
 * exposure the paper's N2 design trades against.
 */
ThermalCoupling fanFailureCoupling(thermal::PackagingDesign packaging,
                                   double serverWatts,
                                   unsigned fansPerServer,
                                   double timeConstantSeconds = 120.0,
                                   double throttleFraction = 1.1,
                                   double shutdownFraction = 1.6);

/**
 * Default fan count per server for a packaging design: discrete fans
 * in a 1U chassis, shared plenum fans in the dual-entry enclosure, and
 * one large shared mover for aggregated micro-blades.
 */
unsigned defaultFansPerServer(thermal::PackagingDesign packaging);

} // namespace faults
} // namespace wsc

#endif // WSC_FAULTS_THERMAL_COUPLING_HH
