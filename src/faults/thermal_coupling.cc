#include "faults/thermal_coupling.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace wsc {
namespace faults {

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/** Residual flow fraction from natural convection / leakage when a
 * server's only fan dies. */
constexpr double naturalConvectionFraction = 0.08;

/** Time for dT(t) = dTss + (dT0 - dTss) e^(-t/tau) to reach dTc. */
double
crossingTime(double dT0, double dTss, double dTc, double tau)
{
    if (dT0 >= dTc)
        return 0.0; // already past the threshold when the fan dies
    if (dTss <= dTc)
        return inf; // degraded steady state never reaches it
    return -tau * std::log((dTss - dTc) / (dTss - dT0));
}

} // namespace

ThermalCoupling
fanFailureCoupling(thermal::PackagingDesign packaging, double serverWatts,
                   unsigned fansPerServer, double timeConstantSeconds,
                   double throttleFraction, double shutdownFraction)
{
    WSC_ASSERT(serverWatts > 0.0, "thermal coupling needs positive power");
    WSC_ASSERT(fansPerServer > 0, "thermal coupling needs at least one fan");
    WSC_ASSERT(timeConstantSeconds > 0.0,
               "thermal time constant must be positive");
    WSC_ASSERT(throttleFraction > 0.0 && shutdownFraction >= throttleFraction,
               "shutdown threshold must sit at or above throttle");

    thermal::EnclosureModel enc = thermal::makeEnclosure(packaging);

    ThermalCoupling tc;
    // The enclosure's fans are sized to hold allowableDeltaT at the
    // per-server power budget; at the actual dissipation the steady
    // rise scales linearly (sensible-heat equation, fixed flow).
    tc.baseDeltaT =
        enc.allowableDeltaT * serverWatts / enc.serverPowerBudgetW;
    // Losing one of n fans leaves (n-1)/n of the flow; delta-T scales
    // inversely with flow. A single-fan server falls back to residual
    // natural convection.
    double flowFraction = fansPerServer > 1
        ? double(fansPerServer - 1) / double(fansPerServer)
        : naturalConvectionFraction;
    tc.degradedDeltaT = tc.baseDeltaT / flowFraction;
    tc.throttleDeltaT = enc.allowableDeltaT * throttleFraction;
    tc.shutdownDeltaT = enc.allowableDeltaT * shutdownFraction;
    tc.timeToThrottleSeconds =
        crossingTime(tc.baseDeltaT, tc.degradedDeltaT, tc.throttleDeltaT,
                     timeConstantSeconds);
    tc.timeToShutdownSeconds =
        crossingTime(tc.baseDeltaT, tc.degradedDeltaT, tc.shutdownDeltaT,
                     timeConstantSeconds);
    return tc;
}

unsigned
defaultFansPerServer(thermal::PackagingDesign packaging)
{
    switch (packaging) {
      case thermal::PackagingDesign::Conventional1U:
        return 4; // discrete chassis fans
      case thermal::PackagingDesign::DualEntry:
        return 2; // shared inlet/exhaust plenum movers per blade column
      case thermal::PackagingDesign::AggregatedMicroblade:
        return 1; // one large shared mover for the aggregated sink
    }
    panic("unknown packaging design");
}

} // namespace faults
} // namespace wsc
