/**
 * @file
 * Per-server component power specification.
 *
 * Mirrors the line items of the paper's Figure 1(a): CPU, memory, disk,
 * board + management, and power-conversion + fans, in maximum
 * operational watts. De-rating to sustained consumption is applied via
 * the activity factor (paper Section 2.2).
 */

#ifndef WSC_POWER_COMPONENT_POWER_HH
#define WSC_POWER_COMPONENT_POWER_HH

namespace wsc {
namespace power {

/**
 * Maximum operational power per server component, in watts.
 *
 * "boardMgmt" covers the motherboard, chipset, and management
 * controller; "powerFans" covers power-supply conversion losses and
 * server-internal fans, matching the paper's cost-model categories.
 */
struct ComponentPower {
    double cpu = 0.0;       //!< all sockets/cores
    double memory = 0.0;    //!< all DIMMs
    double disk = 0.0;      //!< all spindles (or remote-share)
    double boardMgmt = 0.0; //!< board + management controller
    double powerFans = 0.0; //!< PSU losses + fans

    /** Sum over all components (max operational watts per server). */
    double
    total() const
    {
        return cpu + memory + disk + boardMgmt + powerFans;
    }

    /** Component-wise sum. */
    ComponentPower
    operator+(const ComponentPower &o) const
    {
        return {cpu + o.cpu, memory + o.memory, disk + o.disk,
                boardMgmt + o.boardMgmt, powerFans + o.powerFans};
    }

    /** Uniform scaling (e.g. applying an activity factor). */
    ComponentPower
    scaled(double f) const
    {
        return {cpu * f, memory * f, disk * f, boardMgmt * f,
                powerFans * f};
    }
};

} // namespace power
} // namespace wsc

#endif // WSC_POWER_COMPONENT_POWER_HH
