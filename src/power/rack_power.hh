/**
 * @file
 * Rack-level power aggregation.
 *
 * The paper accounts power at the per-server level plus a rack switch
 * shared by all servers in the rack (Figure 1a: 40 W switch across 40
 * servers).
 */

#ifndef WSC_POWER_RACK_POWER_HH
#define WSC_POWER_RACK_POWER_HH

#include "power/component_power.hh"

namespace wsc {
namespace power {

/** Rack-level power parameters. */
struct RackPowerParams {
    unsigned serversPerRack = 40; //!< systems sharing one rack/switch
    double switchWatts = 40.0;    //!< top-of-rack switch power
};

/**
 * Rack power aggregation over identical servers.
 */
class RackPower
{
  public:
    RackPower(ComponentPower server, RackPowerParams params);

    /** Max operational watts for one server excluding the switch. */
    double serverWatts() const { return server.total(); }

    /** Per-server watts including the amortized switch share. */
    double perServerWithSwitch() const;

    /** Whole-rack max operational watts. */
    double rackWatts() const;

    /** Sustained per-server watts (incl. switch share) after de-rating. */
    double sustainedPerServer(double activity_factor) const;

    const ComponentPower &components() const { return server; }
    const RackPowerParams &params() const { return rack; }

  private:
    ComponentPower server;
    RackPowerParams rack;
};

} // namespace power
} // namespace wsc

#endif // WSC_POWER_RACK_POWER_HH
