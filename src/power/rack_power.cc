#include "power/rack_power.hh"

#include "util/logging.hh"

namespace wsc {
namespace power {

RackPower::RackPower(ComponentPower server, RackPowerParams params)
    : server(server), rack(params)
{
    WSC_ASSERT(rack.serversPerRack >= 1, "rack needs at least one server");
    WSC_ASSERT(rack.switchWatts >= 0.0, "negative switch power");
}

double
RackPower::perServerWithSwitch() const
{
    return server.total() + rack.switchWatts / double(rack.serversPerRack);
}

double
RackPower::rackWatts() const
{
    return server.total() * double(rack.serversPerRack) + rack.switchWatts;
}

double
RackPower::sustainedPerServer(double activity_factor) const
{
    WSC_ASSERT(activity_factor > 0.0 && activity_factor <= 1.0,
               "activity factor out of (0, 1]: " << activity_factor);
    return perServerWithSwitch() * activity_factor;
}

} // namespace power
} // namespace wsc
