/**
 * @file
 * Server sleep-state power catalog.
 *
 * The paper's power model (component_power.hh, proportional.hh) knows
 * two operating points: busy (activity-factor de-rated max) and idle
 * (the Fan et al. ~60%-of-busy floor of 2008-era hardware). The
 * ensemble simulator needs the rest of the ladder — a suspended state
 * a consolidation policy can park servers in, a powered-off state an
 * autoscaler can shut them down to, and the latencies to climb back
 * up — because wake-up time is exactly what the analytical diurnal
 * model cannot price and the measured policy ranking must.
 *
 * Defaults describe the paper's srvr-class machine: 52 W max
 * operational, 0.75 activity factor, 0.6 idle fraction (so 39 W busy
 * / 23.4 W idle), an ACPI-S3-style suspend holding DRAM refresh plus
 * the management controller, and a powered-off state where only the
 * management controller draws. Wake from suspend is seconds; a full
 * boot is tens of seconds — the asymmetry that makes PowerOff risky
 * under flash crowds and ConsolidateIdle the conservative middle.
 */

#ifndef WSC_POWER_SLEEP_STATES_HH
#define WSC_POWER_SLEEP_STATES_HH

namespace wsc {
namespace power {

/** Power draw and transition latencies of one server's sleep ladder. */
struct SleepStateCatalog {
    double busyWatts = 39.0;   //!< serving at the activity factor
    double idleWatts = 23.4;   //!< awake, nothing to serve
    double sleepWatts = 3.0;   //!< suspended (DRAM refresh + BMC)
    double offWatts = 0.5;     //!< powered off (BMC only)
    /** Draw while waking or booting; transitions burn near-busy
     * power without serving anything. */
    double transitionWatts = 39.0;

    double sleepWakeSeconds = 1.0; //!< suspend -> serving
    double bootSeconds = 30.0;     //!< off -> serving
    /** Governor timer: how long a server idles before suspending
     * (policies that use sleep states). */
    double idleToSleepSeconds = 2.0;

    /** Catalog scaled to a server of @p maxWatts max operational
     * power, keeping the default's activity factor, idle fraction,
     * and sleep/off floors proportional. */
    static SleepStateCatalog
    forServerWatts(double maxWatts)
    {
        SleepStateCatalog c;
        double f = maxWatts / 52.0;
        c.busyWatts *= f;
        c.idleWatts *= f;
        c.sleepWatts *= f;
        c.offWatts *= f;
        c.transitionWatts *= f;
        return c;
    }
};

} // namespace power
} // namespace wsc

#endif // WSC_POWER_SLEEP_STATES_HH
