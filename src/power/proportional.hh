/**
 * @file
 * Utilization-dependent server power (after Fan et al., which the
 * paper cites for its power-provisioning data).
 *
 * The paper de-rates nameplate power with a flat activity factor of
 * 0.75. Fan et al.'s measurements say more: a busy-era server draws
 *
 *   P(u) = P_idle + (P_peak - P_idle) * u        (linear model)
 *   P(u) = P_idle + (P_peak - P_idle) * (2u - u^r) (calibrated model)
 *
 * with idle power around 60% of peak. This module provides both
 * curves and the equivalent "activity factor" a given operating
 * utilization implies, letting the TCO pipeline account energy at the
 * measured operating point instead of a flat constant.
 */

#ifndef WSC_POWER_PROPORTIONAL_HH
#define WSC_POWER_PROPORTIONAL_HH

namespace wsc {
namespace power {

/** Utilization-to-power curve parameters. */
struct PowerCurve {
    double idleFraction = 0.6; //!< P_idle / P_peak (2008-era servers)
    /** Exponent of Fan et al.'s calibrated empirical model. */
    double calibrationExponent = 1.4;
    bool useCalibrated = true; //!< false = plain linear model
};

/**
 * Power at utilization @p u as a fraction of peak power, in [idle, 1].
 * @param u Utilization in [0, 1].
 */
double powerFractionAt(double u, const PowerCurve &curve);

/**
 * The activity factor equivalent to operating at utilization @p u:
 * feeding this into the flat-factor TCO model reproduces the curve's
 * energy.
 */
double equivalentActivityFactor(double u, const PowerCurve &curve);

/**
 * Utilization at which the curve draws the paper's flat 0.75 activity
 * factor (bisection; shows what operating point the paper's constant
 * implicitly assumes).
 */
double utilizationForActivityFactor(double factor,
                                    const PowerCurve &curve);

/**
 * Energy proportionality index: 1 - idleFraction. 0 for a server that
 * burns peak power at idle; 1 for a perfectly proportional one.
 */
double proportionalityIndex(const PowerCurve &curve);

} // namespace power
} // namespace wsc

#endif // WSC_POWER_PROPORTIONAL_HH
