#include "power/proportional.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsc {
namespace power {

double
powerFractionAt(double u, const PowerCurve &curve)
{
    WSC_ASSERT(u >= 0.0 && u <= 1.0, "utilization out of [0, 1]: " << u);
    WSC_ASSERT(curve.idleFraction >= 0.0 && curve.idleFraction <= 1.0,
               "idle fraction out of [0, 1]");
    double dynamic_range = 1.0 - curve.idleFraction;
    double shape;
    if (curve.useCalibrated) {
        WSC_ASSERT(curve.calibrationExponent > 1.0,
                   "calibration exponent must exceed 1");
        shape = 2.0 * u - std::pow(u, curve.calibrationExponent);
        // The calibrated form can slightly exceed 1 inside (0,1);
        // clamp to the physical range.
        shape = std::min(1.0, std::max(0.0, shape));
    } else {
        shape = u;
    }
    return curve.idleFraction + dynamic_range * shape;
}

double
equivalentActivityFactor(double u, const PowerCurve &curve)
{
    return powerFractionAt(u, curve);
}

double
utilizationForActivityFactor(double factor, const PowerCurve &curve)
{
    WSC_ASSERT(factor >= curve.idleFraction && factor <= 1.0,
               "activity factor " << factor
                                  << " unreachable by the curve");
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (powerFractionAt(mid, curve) < factor)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
proportionalityIndex(const PowerCurve &curve)
{
    WSC_ASSERT(curve.idleFraction >= 0.0 && curve.idleFraction <= 1.0,
               "idle fraction out of [0, 1]");
    return 1.0 - curve.idleFraction;
}

} // namespace power
} // namespace wsc
