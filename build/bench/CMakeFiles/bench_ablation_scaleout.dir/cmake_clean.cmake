file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scaleout.dir/bench_ablation_scaleout.cc.o"
  "CMakeFiles/bench_ablation_scaleout.dir/bench_ablation_scaleout.cc.o.d"
  "bench_ablation_scaleout"
  "bench_ablation_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
