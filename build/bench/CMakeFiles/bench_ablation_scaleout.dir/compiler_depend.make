# Empty compiler generated dependencies file for bench_ablation_scaleout.
# This may be replaced when dependencies are built.
