file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_facility.dir/bench_ablation_facility.cc.o"
  "CMakeFiles/bench_ablation_facility.dir/bench_ablation_facility.cc.o.d"
  "bench_ablation_facility"
  "bench_ablation_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
