# Empty compiler generated dependencies file for bench_ablation_facility.
# This may be replaced when dependencies are built.
