file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3.dir/bench_fig3.cc.o"
  "CMakeFiles/bench_fig3.dir/bench_fig3.cc.o.d"
  "bench_fig3"
  "bench_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
