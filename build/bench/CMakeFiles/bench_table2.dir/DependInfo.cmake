
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/wsc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
