file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tariff.dir/bench_ablation_tariff.cc.o"
  "CMakeFiles/bench_ablation_tariff.dir/bench_ablation_tariff.cc.o.d"
  "bench_ablation_tariff"
  "bench_ablation_tariff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tariff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
