# Empty compiler generated dependencies file for bench_ablation_tariff.
# This may be replaced when dependencies are built.
