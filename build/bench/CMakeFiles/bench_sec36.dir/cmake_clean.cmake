file(REMOVE_RECURSE
  "CMakeFiles/bench_sec36.dir/bench_sec36.cc.o"
  "CMakeFiles/bench_sec36.dir/bench_sec36.cc.o.d"
  "bench_sec36"
  "bench_sec36.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec36.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
