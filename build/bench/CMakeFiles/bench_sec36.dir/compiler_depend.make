# Empty compiler generated dependencies file for bench_sec36.
# This may be replaced when dependencies are built.
