# Empty compiler generated dependencies file for bench_ablation_diurnal.
# This may be replaced when dependencies are built.
