file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_diurnal.dir/bench_ablation_diurnal.cc.o"
  "CMakeFiles/bench_ablation_diurnal.dir/bench_ablation_diurnal.cc.o.d"
  "bench_ablation_diurnal"
  "bench_ablation_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
