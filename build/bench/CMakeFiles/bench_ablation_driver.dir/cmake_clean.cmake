file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_driver.dir/bench_ablation_driver.cc.o"
  "CMakeFiles/bench_ablation_driver.dir/bench_ablation_driver.cc.o.d"
  "bench_ablation_driver"
  "bench_ablation_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
