# Empty dependencies file for bench_ablation_driver.
# This may be replaced when dependencies are built.
