file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flash.dir/bench_ablation_flash.cc.o"
  "CMakeFiles/bench_ablation_flash.dir/bench_ablation_flash.cc.o.d"
  "bench_ablation_flash"
  "bench_ablation_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
