# Empty compiler generated dependencies file for bench_ablation_flash.
# This may be replaced when dependencies are built.
