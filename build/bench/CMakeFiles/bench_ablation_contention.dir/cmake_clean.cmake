file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_contention.dir/bench_ablation_contention.cc.o"
  "CMakeFiles/bench_ablation_contention.dir/bench_ablation_contention.cc.o.d"
  "bench_ablation_contention"
  "bench_ablation_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
