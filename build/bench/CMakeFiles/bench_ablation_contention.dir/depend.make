# Empty dependencies file for bench_ablation_contention.
# This may be replaced when dependencies are built.
