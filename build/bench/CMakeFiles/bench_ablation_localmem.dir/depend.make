# Empty dependencies file for bench_ablation_localmem.
# This may be replaced when dependencies are built.
