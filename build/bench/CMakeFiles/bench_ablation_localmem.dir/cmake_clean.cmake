file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localmem.dir/bench_ablation_localmem.cc.o"
  "CMakeFiles/bench_ablation_localmem.dir/bench_ablation_localmem.cc.o.d"
  "bench_ablation_localmem"
  "bench_ablation_localmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
