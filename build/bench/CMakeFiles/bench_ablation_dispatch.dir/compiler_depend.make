# Empty compiler generated dependencies file for bench_ablation_dispatch.
# This may be replaced when dependencies are built.
