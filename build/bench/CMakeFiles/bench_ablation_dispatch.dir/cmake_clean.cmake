file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dispatch.dir/bench_ablation_dispatch.cc.o"
  "CMakeFiles/bench_ablation_dispatch.dir/bench_ablation_dispatch.cc.o.d"
  "bench_ablation_dispatch"
  "bench_ablation_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
