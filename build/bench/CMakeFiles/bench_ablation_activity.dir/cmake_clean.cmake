file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_activity.dir/bench_ablation_activity.cc.o"
  "CMakeFiles/bench_ablation_activity.dir/bench_ablation_activity.cc.o.d"
  "bench_ablation_activity"
  "bench_ablation_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
