# Empty dependencies file for bench_ablation_activity.
# This may be replaced when dependencies are built.
