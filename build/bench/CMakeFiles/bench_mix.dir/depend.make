# Empty dependencies file for bench_mix.
# This may be replaced when dependencies are built.
