file(REMOVE_RECURSE
  "CMakeFiles/bench_mix.dir/bench_mix.cc.o"
  "CMakeFiles/bench_mix.dir/bench_mix.cc.o.d"
  "bench_mix"
  "bench_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
