# Empty dependencies file for bench_ablation_content.
# This may be replaced when dependencies are built.
