file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_content.dir/bench_ablation_content.cc.o"
  "CMakeFiles/bench_ablation_content.dir/bench_ablation_content.cc.o.d"
  "bench_ablation_content"
  "bench_ablation_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
