file(REMOVE_RECURSE
  "CMakeFiles/bench_design_space.dir/bench_design_space.cc.o"
  "CMakeFiles/bench_design_space.dir/bench_design_space.cc.o.d"
  "bench_design_space"
  "bench_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
