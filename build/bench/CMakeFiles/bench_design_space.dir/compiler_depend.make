# Empty compiler generated dependencies file for bench_design_space.
# This may be replaced when dependencies are built.
