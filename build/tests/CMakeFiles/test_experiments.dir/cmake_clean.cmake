file(REMOVE_RECURSE
  "CMakeFiles/test_experiments.dir/test_experiments.cc.o"
  "CMakeFiles/test_experiments.dir/test_experiments.cc.o.d"
  "test_experiments"
  "test_experiments.pdb"
  "test_experiments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
