# Empty compiler generated dependencies file for test_cluster_scaleout.
# This may be replaced when dependencies are built.
