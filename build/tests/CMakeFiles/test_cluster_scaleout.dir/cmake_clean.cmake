file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_scaleout.dir/test_cluster_scaleout.cc.o"
  "CMakeFiles/test_cluster_scaleout.dir/test_cluster_scaleout.cc.o.d"
  "test_cluster_scaleout"
  "test_cluster_scaleout.pdb"
  "test_cluster_scaleout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
