file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid.dir/test_hybrid.cc.o"
  "CMakeFiles/test_hybrid.dir/test_hybrid.cc.o.d"
  "test_hybrid"
  "test_hybrid.pdb"
  "test_hybrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
