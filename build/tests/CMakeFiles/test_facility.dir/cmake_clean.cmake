file(REMOVE_RECURSE
  "CMakeFiles/test_facility.dir/test_facility.cc.o"
  "CMakeFiles/test_facility.dir/test_facility.cc.o.d"
  "test_facility"
  "test_facility.pdb"
  "test_facility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
