# Empty compiler generated dependencies file for test_facility.
# This may be replaced when dependencies are built.
