file(REMOVE_RECURSE
  "CMakeFiles/test_flashcache.dir/test_flashcache.cc.o"
  "CMakeFiles/test_flashcache.dir/test_flashcache.cc.o.d"
  "test_flashcache"
  "test_flashcache.pdb"
  "test_flashcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flashcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
