# Empty dependencies file for test_flashcache.
# This may be replaced when dependencies are built.
