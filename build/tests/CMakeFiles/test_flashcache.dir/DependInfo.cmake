
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_flashcache.cc" "tests/CMakeFiles/test_flashcache.dir/test_flashcache.cc.o" "gcc" "tests/CMakeFiles/test_flashcache.dir/test_flashcache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flashcache/CMakeFiles/wsc_flashcache.dir/DependInfo.cmake"
  "/root/repo/build/src/memblade/CMakeFiles/wsc_memblade.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/wsc_perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/wsc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
