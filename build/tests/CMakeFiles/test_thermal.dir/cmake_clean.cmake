file(REMOVE_RECURSE
  "CMakeFiles/test_thermal.dir/test_thermal.cc.o"
  "CMakeFiles/test_thermal.dir/test_thermal.cc.o.d"
  "test_thermal"
  "test_thermal.pdb"
  "test_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
