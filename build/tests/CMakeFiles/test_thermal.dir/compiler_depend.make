# Empty compiler generated dependencies file for test_thermal.
# This may be replaced when dependencies are built.
