file(REMOVE_RECURSE
  "CMakeFiles/test_perfsim.dir/test_perfsim.cc.o"
  "CMakeFiles/test_perfsim.dir/test_perfsim.cc.o.d"
  "test_perfsim"
  "test_perfsim.pdb"
  "test_perfsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
