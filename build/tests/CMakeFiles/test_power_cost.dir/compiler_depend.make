# Empty compiler generated dependencies file for test_power_cost.
# This may be replaced when dependencies are built.
