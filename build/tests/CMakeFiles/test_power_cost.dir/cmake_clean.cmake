file(REMOVE_RECURSE
  "CMakeFiles/test_power_cost.dir/test_power_cost.cc.o"
  "CMakeFiles/test_power_cost.dir/test_power_cost.cc.o.d"
  "test_power_cost"
  "test_power_cost.pdb"
  "test_power_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
