file(REMOVE_RECURSE
  "CMakeFiles/test_proportional.dir/test_proportional.cc.o"
  "CMakeFiles/test_proportional.dir/test_proportional.cc.o.d"
  "test_proportional"
  "test_proportional.pdb"
  "test_proportional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proportional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
