# Empty dependencies file for test_proportional.
# This may be replaced when dependencies are built.
