# Empty compiler generated dependencies file for test_memblade.
# This may be replaced when dependencies are built.
