file(REMOVE_RECURSE
  "CMakeFiles/test_memblade.dir/test_memblade.cc.o"
  "CMakeFiles/test_memblade.dir/test_memblade.cc.o.d"
  "test_memblade"
  "test_memblade.pdb"
  "test_memblade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memblade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
