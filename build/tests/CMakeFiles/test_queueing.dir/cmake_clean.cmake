file(REMOVE_RECURSE
  "CMakeFiles/test_queueing.dir/test_queueing.cc.o"
  "CMakeFiles/test_queueing.dir/test_queueing.cc.o.d"
  "test_queueing"
  "test_queueing.pdb"
  "test_queueing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
