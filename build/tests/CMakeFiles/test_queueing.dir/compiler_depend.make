# Empty compiler generated dependencies file for test_queueing.
# This may be replaced when dependencies are built.
