file(REMOVE_RECURSE
  "CMakeFiles/test_closed_loop.dir/test_closed_loop.cc.o"
  "CMakeFiles/test_closed_loop.dir/test_closed_loop.cc.o.d"
  "test_closed_loop"
  "test_closed_loop.pdb"
  "test_closed_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
