# Empty compiler generated dependencies file for test_closed_loop.
# This may be replaced when dependencies are built.
