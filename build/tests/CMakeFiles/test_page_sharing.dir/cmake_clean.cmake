file(REMOVE_RECURSE
  "CMakeFiles/test_page_sharing.dir/test_page_sharing.cc.o"
  "CMakeFiles/test_page_sharing.dir/test_page_sharing.cc.o.d"
  "test_page_sharing"
  "test_page_sharing.pdb"
  "test_page_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
