# Empty dependencies file for test_page_sharing.
# This may be replaced when dependencies are built.
