file(REMOVE_RECURSE
  "CMakeFiles/test_contention.dir/test_contention.cc.o"
  "CMakeFiles/test_contention.dir/test_contention.cc.o.d"
  "test_contention"
  "test_contention.pdb"
  "test_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
