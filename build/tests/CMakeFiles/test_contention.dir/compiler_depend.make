# Empty compiler generated dependencies file for test_contention.
# This may be replaced when dependencies are built.
