file(REMOVE_RECURSE
  "CMakeFiles/workload_characterization.dir/workload_characterization.cpp.o"
  "CMakeFiles/workload_characterization.dir/workload_characterization.cpp.o.d"
  "workload_characterization"
  "workload_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
