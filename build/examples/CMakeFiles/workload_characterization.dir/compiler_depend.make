# Empty compiler generated dependencies file for workload_characterization.
# This may be replaced when dependencies are built.
