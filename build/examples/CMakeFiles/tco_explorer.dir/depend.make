# Empty dependencies file for tco_explorer.
# This may be replaced when dependencies are built.
