file(REMOVE_RECURSE
  "CMakeFiles/tco_explorer.dir/tco_explorer.cpp.o"
  "CMakeFiles/tco_explorer.dir/tco_explorer.cpp.o.d"
  "tco_explorer"
  "tco_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
