# Empty dependencies file for datacenter_designer.
# This may be replaced when dependencies are built.
