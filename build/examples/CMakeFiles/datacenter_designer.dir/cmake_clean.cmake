file(REMOVE_RECURSE
  "CMakeFiles/datacenter_designer.dir/datacenter_designer.cpp.o"
  "CMakeFiles/datacenter_designer.dir/datacenter_designer.cpp.o.d"
  "datacenter_designer"
  "datacenter_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
