# Empty dependencies file for memory_blade_walkthrough.
# This may be replaced when dependencies are built.
