file(REMOVE_RECURSE
  "CMakeFiles/memory_blade_walkthrough.dir/memory_blade_walkthrough.cpp.o"
  "CMakeFiles/memory_blade_walkthrough.dir/memory_blade_walkthrough.cpp.o.d"
  "memory_blade_walkthrough"
  "memory_blade_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_blade_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
