
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/args.cc" "src/util/CMakeFiles/wsc_util.dir/args.cc.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/args.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/wsc_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/logging.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/util/CMakeFiles/wsc_util.dir/strings.cc.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/wsc_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/wsc_util.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
