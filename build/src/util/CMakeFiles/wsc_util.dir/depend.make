# Empty dependencies file for wsc_util.
# This may be replaced when dependencies are built.
