file(REMOVE_RECURSE
  "libwsc_util.a"
)
