# Empty compiler generated dependencies file for wsc_util.
# This may be replaced when dependencies are built.
