file(REMOVE_RECURSE
  "CMakeFiles/wsc_util.dir/args.cc.o"
  "CMakeFiles/wsc_util.dir/args.cc.o.d"
  "CMakeFiles/wsc_util.dir/logging.cc.o"
  "CMakeFiles/wsc_util.dir/logging.cc.o.d"
  "CMakeFiles/wsc_util.dir/strings.cc.o"
  "CMakeFiles/wsc_util.dir/strings.cc.o.d"
  "CMakeFiles/wsc_util.dir/table.cc.o"
  "CMakeFiles/wsc_util.dir/table.cc.o.d"
  "libwsc_util.a"
  "libwsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
