# Empty dependencies file for wsc_power.
# This may be replaced when dependencies are built.
