# Empty compiler generated dependencies file for wsc_power.
# This may be replaced when dependencies are built.
