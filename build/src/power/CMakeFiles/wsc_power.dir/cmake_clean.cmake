file(REMOVE_RECURSE
  "CMakeFiles/wsc_power.dir/proportional.cc.o"
  "CMakeFiles/wsc_power.dir/proportional.cc.o.d"
  "CMakeFiles/wsc_power.dir/rack_power.cc.o"
  "CMakeFiles/wsc_power.dir/rack_power.cc.o.d"
  "libwsc_power.a"
  "libwsc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
