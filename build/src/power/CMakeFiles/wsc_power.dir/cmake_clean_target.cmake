file(REMOVE_RECURSE
  "libwsc_power.a"
)
