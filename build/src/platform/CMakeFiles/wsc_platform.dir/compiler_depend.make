# Empty compiler generated dependencies file for wsc_platform.
# This may be replaced when dependencies are built.
