file(REMOVE_RECURSE
  "CMakeFiles/wsc_platform.dir/catalog.cc.o"
  "CMakeFiles/wsc_platform.dir/catalog.cc.o.d"
  "CMakeFiles/wsc_platform.dir/components.cc.o"
  "CMakeFiles/wsc_platform.dir/components.cc.o.d"
  "CMakeFiles/wsc_platform.dir/server_config.cc.o"
  "CMakeFiles/wsc_platform.dir/server_config.cc.o.d"
  "libwsc_platform.a"
  "libwsc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
