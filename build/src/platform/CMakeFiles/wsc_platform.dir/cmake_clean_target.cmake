file(REMOVE_RECURSE
  "libwsc_platform.a"
)
