# Empty compiler generated dependencies file for wsc_thermal.
# This may be replaced when dependencies are built.
