file(REMOVE_RECURSE
  "CMakeFiles/wsc_thermal.dir/airflow.cc.o"
  "CMakeFiles/wsc_thermal.dir/airflow.cc.o.d"
  "CMakeFiles/wsc_thermal.dir/conduction.cc.o"
  "CMakeFiles/wsc_thermal.dir/conduction.cc.o.d"
  "CMakeFiles/wsc_thermal.dir/cooling_cost.cc.o"
  "CMakeFiles/wsc_thermal.dir/cooling_cost.cc.o.d"
  "CMakeFiles/wsc_thermal.dir/enclosure.cc.o"
  "CMakeFiles/wsc_thermal.dir/enclosure.cc.o.d"
  "libwsc_thermal.a"
  "libwsc_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
