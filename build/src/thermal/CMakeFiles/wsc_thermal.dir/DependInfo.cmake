
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/airflow.cc" "src/thermal/CMakeFiles/wsc_thermal.dir/airflow.cc.o" "gcc" "src/thermal/CMakeFiles/wsc_thermal.dir/airflow.cc.o.d"
  "/root/repo/src/thermal/conduction.cc" "src/thermal/CMakeFiles/wsc_thermal.dir/conduction.cc.o" "gcc" "src/thermal/CMakeFiles/wsc_thermal.dir/conduction.cc.o.d"
  "/root/repo/src/thermal/cooling_cost.cc" "src/thermal/CMakeFiles/wsc_thermal.dir/cooling_cost.cc.o" "gcc" "src/thermal/CMakeFiles/wsc_thermal.dir/cooling_cost.cc.o.d"
  "/root/repo/src/thermal/enclosure.cc" "src/thermal/CMakeFiles/wsc_thermal.dir/enclosure.cc.o" "gcc" "src/thermal/CMakeFiles/wsc_thermal.dir/enclosure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
