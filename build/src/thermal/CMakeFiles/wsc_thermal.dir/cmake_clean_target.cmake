file(REMOVE_RECURSE
  "libwsc_thermal.a"
)
