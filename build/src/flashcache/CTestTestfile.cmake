# CMake generated Testfile for 
# Source directory: /root/repo/src/flashcache
# Build directory: /root/repo/build/src/flashcache
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
