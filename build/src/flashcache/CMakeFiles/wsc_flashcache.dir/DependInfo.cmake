
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flashcache/devices.cc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/devices.cc.o" "gcc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/devices.cc.o.d"
  "/root/repo/src/flashcache/flash_cache.cc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/flash_cache.cc.o" "gcc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/flash_cache.cc.o.d"
  "/root/repo/src/flashcache/io_trace.cc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/io_trace.cc.o" "gcc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/io_trace.cc.o.d"
  "/root/repo/src/flashcache/storage.cc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/storage.cc.o" "gcc" "src/flashcache/CMakeFiles/wsc_flashcache.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/wsc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/memblade/CMakeFiles/wsc_memblade.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/wsc_perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
