file(REMOVE_RECURSE
  "libwsc_flashcache.a"
)
