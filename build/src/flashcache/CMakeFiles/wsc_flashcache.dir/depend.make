# Empty dependencies file for wsc_flashcache.
# This may be replaced when dependencies are built.
