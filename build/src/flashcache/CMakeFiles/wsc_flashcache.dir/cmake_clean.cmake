file(REMOVE_RECURSE
  "CMakeFiles/wsc_flashcache.dir/devices.cc.o"
  "CMakeFiles/wsc_flashcache.dir/devices.cc.o.d"
  "CMakeFiles/wsc_flashcache.dir/flash_cache.cc.o"
  "CMakeFiles/wsc_flashcache.dir/flash_cache.cc.o.d"
  "CMakeFiles/wsc_flashcache.dir/io_trace.cc.o"
  "CMakeFiles/wsc_flashcache.dir/io_trace.cc.o.d"
  "CMakeFiles/wsc_flashcache.dir/storage.cc.o"
  "CMakeFiles/wsc_flashcache.dir/storage.cc.o.d"
  "libwsc_flashcache.a"
  "libwsc_flashcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_flashcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
