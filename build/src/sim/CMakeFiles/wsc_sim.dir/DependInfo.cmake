
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/distributions.cc" "src/sim/CMakeFiles/wsc_sim.dir/distributions.cc.o" "gcc" "src/sim/CMakeFiles/wsc_sim.dir/distributions.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/wsc_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/wsc_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/queueing.cc" "src/sim/CMakeFiles/wsc_sim.dir/queueing.cc.o" "gcc" "src/sim/CMakeFiles/wsc_sim.dir/queueing.cc.o.d"
  "/root/repo/src/sim/resources.cc" "src/sim/CMakeFiles/wsc_sim.dir/resources.cc.o" "gcc" "src/sim/CMakeFiles/wsc_sim.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
