# Empty compiler generated dependencies file for wsc_sim.
# This may be replaced when dependencies are built.
