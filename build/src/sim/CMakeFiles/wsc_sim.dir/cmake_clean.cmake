file(REMOVE_RECURSE
  "CMakeFiles/wsc_sim.dir/distributions.cc.o"
  "CMakeFiles/wsc_sim.dir/distributions.cc.o.d"
  "CMakeFiles/wsc_sim.dir/event_queue.cc.o"
  "CMakeFiles/wsc_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/wsc_sim.dir/queueing.cc.o"
  "CMakeFiles/wsc_sim.dir/queueing.cc.o.d"
  "CMakeFiles/wsc_sim.dir/resources.cc.o"
  "CMakeFiles/wsc_sim.dir/resources.cc.o.d"
  "libwsc_sim.a"
  "libwsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
