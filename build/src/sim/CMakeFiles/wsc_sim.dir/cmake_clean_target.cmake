file(REMOVE_RECURSE
  "libwsc_sim.a"
)
