file(REMOVE_RECURSE
  "libwsc_workloads.a"
)
