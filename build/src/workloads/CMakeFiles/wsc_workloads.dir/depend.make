# Empty dependencies file for wsc_workloads.
# This may be replaced when dependencies are built.
