file(REMOVE_RECURSE
  "CMakeFiles/wsc_workloads.dir/mapreduce.cc.o"
  "CMakeFiles/wsc_workloads.dir/mapreduce.cc.o.d"
  "CMakeFiles/wsc_workloads.dir/suite.cc.o"
  "CMakeFiles/wsc_workloads.dir/suite.cc.o.d"
  "CMakeFiles/wsc_workloads.dir/webmail.cc.o"
  "CMakeFiles/wsc_workloads.dir/webmail.cc.o.d"
  "CMakeFiles/wsc_workloads.dir/websearch.cc.o"
  "CMakeFiles/wsc_workloads.dir/websearch.cc.o.d"
  "CMakeFiles/wsc_workloads.dir/ytube.cc.o"
  "CMakeFiles/wsc_workloads.dir/ytube.cc.o.d"
  "libwsc_workloads.a"
  "libwsc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
