
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/mapreduce.cc" "src/workloads/CMakeFiles/wsc_workloads.dir/mapreduce.cc.o" "gcc" "src/workloads/CMakeFiles/wsc_workloads.dir/mapreduce.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/wsc_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/wsc_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/webmail.cc" "src/workloads/CMakeFiles/wsc_workloads.dir/webmail.cc.o" "gcc" "src/workloads/CMakeFiles/wsc_workloads.dir/webmail.cc.o.d"
  "/root/repo/src/workloads/websearch.cc" "src/workloads/CMakeFiles/wsc_workloads.dir/websearch.cc.o" "gcc" "src/workloads/CMakeFiles/wsc_workloads.dir/websearch.cc.o.d"
  "/root/repo/src/workloads/ytube.cc" "src/workloads/CMakeFiles/wsc_workloads.dir/ytube.cc.o" "gcc" "src/workloads/CMakeFiles/wsc_workloads.dir/ytube.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
