
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfsim/batch_runner.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/batch_runner.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/batch_runner.cc.o.d"
  "/root/repo/src/perfsim/calibration.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/calibration.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/calibration.cc.o.d"
  "/root/repo/src/perfsim/closed_loop.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/closed_loop.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/closed_loop.cc.o.d"
  "/root/repo/src/perfsim/cluster_sim.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/cluster_sim.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/cluster_sim.cc.o.d"
  "/root/repo/src/perfsim/perf_eval.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/perf_eval.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/perf_eval.cc.o.d"
  "/root/repo/src/perfsim/server_sim.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/server_sim.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/server_sim.cc.o.d"
  "/root/repo/src/perfsim/throughput.cc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/throughput.cc.o" "gcc" "src/perfsim/CMakeFiles/wsc_perfsim.dir/throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/wsc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
