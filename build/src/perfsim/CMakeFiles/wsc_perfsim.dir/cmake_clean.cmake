file(REMOVE_RECURSE
  "CMakeFiles/wsc_perfsim.dir/batch_runner.cc.o"
  "CMakeFiles/wsc_perfsim.dir/batch_runner.cc.o.d"
  "CMakeFiles/wsc_perfsim.dir/calibration.cc.o"
  "CMakeFiles/wsc_perfsim.dir/calibration.cc.o.d"
  "CMakeFiles/wsc_perfsim.dir/closed_loop.cc.o"
  "CMakeFiles/wsc_perfsim.dir/closed_loop.cc.o.d"
  "CMakeFiles/wsc_perfsim.dir/cluster_sim.cc.o"
  "CMakeFiles/wsc_perfsim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/wsc_perfsim.dir/perf_eval.cc.o"
  "CMakeFiles/wsc_perfsim.dir/perf_eval.cc.o.d"
  "CMakeFiles/wsc_perfsim.dir/server_sim.cc.o"
  "CMakeFiles/wsc_perfsim.dir/server_sim.cc.o.d"
  "CMakeFiles/wsc_perfsim.dir/throughput.cc.o"
  "CMakeFiles/wsc_perfsim.dir/throughput.cc.o.d"
  "libwsc_perfsim.a"
  "libwsc_perfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_perfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
