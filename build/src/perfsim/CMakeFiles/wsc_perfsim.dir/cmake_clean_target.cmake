file(REMOVE_RECURSE
  "libwsc_perfsim.a"
)
