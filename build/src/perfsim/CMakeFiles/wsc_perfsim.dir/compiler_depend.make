# Empty compiler generated dependencies file for wsc_perfsim.
# This may be replaced when dependencies are built.
