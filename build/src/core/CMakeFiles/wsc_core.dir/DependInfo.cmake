
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/wsc_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/design.cc" "src/core/CMakeFiles/wsc_core.dir/design.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/design.cc.o.d"
  "/root/repo/src/core/design_space.cc" "src/core/CMakeFiles/wsc_core.dir/design_space.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/design_space.cc.o.d"
  "/root/repo/src/core/diurnal.cc" "src/core/CMakeFiles/wsc_core.dir/diurnal.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/diurnal.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/wsc_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/core/CMakeFiles/wsc_core.dir/experiments.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/experiments.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/wsc_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/mix.cc" "src/core/CMakeFiles/wsc_core.dir/mix.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/mix.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/wsc_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/report.cc.o.d"
  "/root/repo/src/core/scaleout.cc" "src/core/CMakeFiles/wsc_core.dir/scaleout.cc.o" "gcc" "src/core/CMakeFiles/wsc_core.dir/scaleout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/wsc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/wsc_perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/memblade/CMakeFiles/wsc_memblade.dir/DependInfo.cmake"
  "/root/repo/build/src/flashcache/CMakeFiles/wsc_flashcache.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/wsc_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
