# Empty dependencies file for wsc_core.
# This may be replaced when dependencies are built.
