file(REMOVE_RECURSE
  "libwsc_core.a"
)
