file(REMOVE_RECURSE
  "CMakeFiles/wsc_core.dir/cluster.cc.o"
  "CMakeFiles/wsc_core.dir/cluster.cc.o.d"
  "CMakeFiles/wsc_core.dir/design.cc.o"
  "CMakeFiles/wsc_core.dir/design.cc.o.d"
  "CMakeFiles/wsc_core.dir/design_space.cc.o"
  "CMakeFiles/wsc_core.dir/design_space.cc.o.d"
  "CMakeFiles/wsc_core.dir/diurnal.cc.o"
  "CMakeFiles/wsc_core.dir/diurnal.cc.o.d"
  "CMakeFiles/wsc_core.dir/evaluator.cc.o"
  "CMakeFiles/wsc_core.dir/evaluator.cc.o.d"
  "CMakeFiles/wsc_core.dir/experiments.cc.o"
  "CMakeFiles/wsc_core.dir/experiments.cc.o.d"
  "CMakeFiles/wsc_core.dir/metrics.cc.o"
  "CMakeFiles/wsc_core.dir/metrics.cc.o.d"
  "CMakeFiles/wsc_core.dir/mix.cc.o"
  "CMakeFiles/wsc_core.dir/mix.cc.o.d"
  "CMakeFiles/wsc_core.dir/report.cc.o"
  "CMakeFiles/wsc_core.dir/report.cc.o.d"
  "CMakeFiles/wsc_core.dir/scaleout.cc.o"
  "CMakeFiles/wsc_core.dir/scaleout.cc.o.d"
  "libwsc_core.a"
  "libwsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
