file(REMOVE_RECURSE
  "CMakeFiles/wsc_stats.dir/histogram.cc.o"
  "CMakeFiles/wsc_stats.dir/histogram.cc.o.d"
  "CMakeFiles/wsc_stats.dir/means.cc.o"
  "CMakeFiles/wsc_stats.dir/means.cc.o.d"
  "CMakeFiles/wsc_stats.dir/percentile.cc.o"
  "CMakeFiles/wsc_stats.dir/percentile.cc.o.d"
  "libwsc_stats.a"
  "libwsc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
