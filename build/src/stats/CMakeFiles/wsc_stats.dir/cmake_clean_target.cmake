file(REMOVE_RECURSE
  "libwsc_stats.a"
)
