# Empty compiler generated dependencies file for wsc_stats.
# This may be replaced when dependencies are built.
