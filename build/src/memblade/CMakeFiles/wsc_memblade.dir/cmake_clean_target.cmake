file(REMOVE_RECURSE
  "libwsc_memblade.a"
)
