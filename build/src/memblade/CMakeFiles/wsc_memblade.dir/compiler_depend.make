# Empty compiler generated dependencies file for wsc_memblade.
# This may be replaced when dependencies are built.
