
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memblade/blade.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/blade.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/blade.cc.o.d"
  "/root/repo/src/memblade/contention.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/contention.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/contention.cc.o.d"
  "/root/repo/src/memblade/hybrid.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/hybrid.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/hybrid.cc.o.d"
  "/root/repo/src/memblade/latency.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/latency.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/latency.cc.o.d"
  "/root/repo/src/memblade/page_sharing.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/page_sharing.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/page_sharing.cc.o.d"
  "/root/repo/src/memblade/replacement.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/replacement.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/replacement.cc.o.d"
  "/root/repo/src/memblade/trace.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/trace.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/trace.cc.o.d"
  "/root/repo/src/memblade/trace_io.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/trace_io.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/trace_io.cc.o.d"
  "/root/repo/src/memblade/two_level.cc" "src/memblade/CMakeFiles/wsc_memblade.dir/two_level.cc.o" "gcc" "src/memblade/CMakeFiles/wsc_memblade.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/wsc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/wsc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
