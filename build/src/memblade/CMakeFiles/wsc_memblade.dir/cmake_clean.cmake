file(REMOVE_RECURSE
  "CMakeFiles/wsc_memblade.dir/blade.cc.o"
  "CMakeFiles/wsc_memblade.dir/blade.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/contention.cc.o"
  "CMakeFiles/wsc_memblade.dir/contention.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/hybrid.cc.o"
  "CMakeFiles/wsc_memblade.dir/hybrid.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/latency.cc.o"
  "CMakeFiles/wsc_memblade.dir/latency.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/page_sharing.cc.o"
  "CMakeFiles/wsc_memblade.dir/page_sharing.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/replacement.cc.o"
  "CMakeFiles/wsc_memblade.dir/replacement.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/trace.cc.o"
  "CMakeFiles/wsc_memblade.dir/trace.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/trace_io.cc.o"
  "CMakeFiles/wsc_memblade.dir/trace_io.cc.o.d"
  "CMakeFiles/wsc_memblade.dir/two_level.cc.o"
  "CMakeFiles/wsc_memblade.dir/two_level.cc.o.d"
  "libwsc_memblade.a"
  "libwsc_memblade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_memblade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
