# Empty dependencies file for wsc_cost.
# This may be replaced when dependencies are built.
