file(REMOVE_RECURSE
  "CMakeFiles/wsc_cost.dir/burdened_power.cc.o"
  "CMakeFiles/wsc_cost.dir/burdened_power.cc.o.d"
  "CMakeFiles/wsc_cost.dir/facility.cc.o"
  "CMakeFiles/wsc_cost.dir/facility.cc.o.d"
  "CMakeFiles/wsc_cost.dir/tco.cc.o"
  "CMakeFiles/wsc_cost.dir/tco.cc.o.d"
  "libwsc_cost.a"
  "libwsc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
