
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/burdened_power.cc" "src/cost/CMakeFiles/wsc_cost.dir/burdened_power.cc.o" "gcc" "src/cost/CMakeFiles/wsc_cost.dir/burdened_power.cc.o.d"
  "/root/repo/src/cost/facility.cc" "src/cost/CMakeFiles/wsc_cost.dir/facility.cc.o" "gcc" "src/cost/CMakeFiles/wsc_cost.dir/facility.cc.o.d"
  "/root/repo/src/cost/tco.cc" "src/cost/CMakeFiles/wsc_cost.dir/tco.cc.o" "gcc" "src/cost/CMakeFiles/wsc_cost.dir/tco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wsc_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
