file(REMOVE_RECURSE
  "libwsc_cost.a"
)
