file(REMOVE_RECURSE
  "CMakeFiles/wsc_experiments.dir/wsc_experiments.cc.o"
  "CMakeFiles/wsc_experiments.dir/wsc_experiments.cc.o.d"
  "wsc_experiments"
  "wsc_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
