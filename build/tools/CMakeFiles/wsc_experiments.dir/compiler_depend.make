# Empty compiler generated dependencies file for wsc_experiments.
# This may be replaced when dependencies are built.
