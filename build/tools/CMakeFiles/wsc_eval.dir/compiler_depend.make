# Empty compiler generated dependencies file for wsc_eval.
# This may be replaced when dependencies are built.
