file(REMOVE_RECURSE
  "CMakeFiles/wsc_eval.dir/wsc_eval.cc.o"
  "CMakeFiles/wsc_eval.dir/wsc_eval.cc.o.d"
  "wsc_eval"
  "wsc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
