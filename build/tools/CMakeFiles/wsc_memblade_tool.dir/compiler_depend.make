# Empty compiler generated dependencies file for wsc_memblade_tool.
# This may be replaced when dependencies are built.
