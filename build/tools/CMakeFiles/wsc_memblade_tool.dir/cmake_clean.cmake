file(REMOVE_RECURSE
  "CMakeFiles/wsc_memblade_tool.dir/wsc_memblade.cc.o"
  "CMakeFiles/wsc_memblade_tool.dir/wsc_memblade.cc.o.d"
  "wsc_memblade"
  "wsc_memblade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_memblade_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
