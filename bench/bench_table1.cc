/**
 * @file
 * Reproduces paper Table 1: the warehouse-computing benchmark suite.
 *
 * Prints each benchmark's realized operational parameters: what it
 * emphasizes, its QoS constraint, its performance metric, and the
 * measured mean request demands the generators produce.
 */

#include <iostream>

#include "util/table.hh"
#include "workloads/mapreduce.hh"
#include "workloads/suite.hh"

using namespace wsc;
using namespace wsc::workloads;

namespace {

std::string
emphasis(Benchmark b)
{
    switch (b) {
      case Benchmark::Websearch:
        return "unstructured data";
      case Benchmark::Webmail:
        return "interactive internet services";
      case Benchmark::Ytube:
        return "rich media";
      case Benchmark::MapredWc:
      case Benchmark::MapredWr:
        return "web as a platform";
    }
    return "?";
}

} // namespace

int
main()
{
    std::cout << "=== Table 1: benchmark suite for the internet sector "
                 "===\n\n";

    Table t({"Workload", "Emphasizes", "QoS", "Perf metric",
             "Mean CPU (GHz-ms)", "Mean net (KB)"});
    for (auto b : allBenchmarks) {
        auto w = makeBenchmark(b);
        std::string qos = "-";
        std::string metric = "exec time";
        std::string cpu = "-", net = "-";
        if (w->kind() == WorkloadKind::Interactive) {
            auto &iw = dynamic_cast<InteractiveWorkload &>(*w);
            auto q = iw.qos();
            qos = ">" + fmtPct(q.quantile) + " < " +
                  fmtF(q.latencyLimit, 1) + "s";
            metric = "RPS w/ QoS";
            auto mean = iw.meanDemand();
            cpu = fmtF(mean.cpuWork * 1e3, 1);
            net = fmtF(mean.netBytes / 1024.0, 1);
        }
        t.addRow({to_string(b), emphasis(b), qos, metric, cpu, net});
    }
    t.print(std::cout);

    std::cout << "\nBatch job structure (Hadoop, 4 threads per CPU):\n";
    Table jobs({"Job", "Map tasks", "Input/output", "CPU per map "
                                                    "(GHz-s)"});
    MapReduce wc(MapReduceApp::WordCount);
    MapReduce wr(MapReduceApp::FileWrite);
    jobs.addRow({"mapred-wc", std::to_string(wc.mapTaskCount()),
                 fmtF(wc.params().wcCorpusGB, 0) + " GB corpus read",
                 fmtF(wc.params().wcCpuPerTask, 1)});
    jobs.addRow({"mapred-wr", std::to_string(wr.mapTaskCount()),
                 fmtF(wr.params().wrOutputGB, 0) + " GB written",
                 fmtF(wr.params().wrCpuPerTask, 1)});
    jobs.print(std::cout);
    return 0;
}
