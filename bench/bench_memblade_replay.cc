/**
 * @file
 * Replay-engine throughput: seed kernels vs allocation-free kernels,
 * N-replay sweeps vs the single-pass stack-distance curve, and the
 * sharded parallel replay.
 *
 * Every comparison is gated on bit-identical statistics — the bench
 * exits nonzero on any mismatch, so CI catches a kernel that got fast
 * by getting wrong. Timings and speedups land in
 * BENCH_memblade_replay.json for the perf trajectory.
 */

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "memblade/replay.hh"
#include "memblade/stack_distance.hh"
#include "memblade/two_level.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace wsc;
using namespace wsc::memblade;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameStats(const ReplayStats &a, const ReplayStats &b)
{
    return a.accesses == b.accesses && a.hits == b.hits &&
           a.misses == b.misses && a.coldMisses == b.coldMisses;
}

struct KernelResult {
    std::string policy;
    double oldPagesPerSec = 0.0;
    double newPagesPerSec = 0.0;
    bool identical = false;

    double
    speedup() const
    {
        return oldPagesPerSec > 0.0 ? newPagesPerSec / oldPagesPerSec
                                    : 0.0;
    }
};

/**
 * Pure-kernel comparison: the same pregenerated page sequence through
 * the seed TwoLevelMemory (virtual dispatch, std::list LRU,
 * unordered_map cold tracking) and through replayPages. Each side is
 * timed kTimedReps times and the fastest run is reported — the
 * minimum discards interference from a noisy shared host, which the
 * mean does not.
 */
constexpr int kTimedReps = 3;

KernelResult
compareKernels(const std::vector<PageId> &trace, PolicyKind kind,
               std::size_t frames, std::uint64_t pageBound)
{
    KernelResult r;
    r.policy = to_string(kind);

    double oldSec = 0.0;
    ReplayStats oldStats;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        TwoLevelMemory mem(frames, kind, Rng(4));
        auto t0 = std::chrono::steady_clock::now();
        for (PageId p : trace)
            mem.access(p);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < oldSec)
            oldSec = sec;
        oldStats = mem.stats();
    }

    double newSec = 0.0;
    ReplayStats newStats;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto st = replayPages(trace.data(), trace.size(), kind, frames,
                              pageBound, Rng(4));
        double sec = secondsSince(t0);
        if (rep == 0 || sec < newSec)
            newSec = sec;
        newStats = st;
    }

    r.oldPagesPerSec = double(trace.size()) / oldSec;
    r.newPagesPerSec = double(trace.size()) / newSec;
    r.identical = sameStats(oldStats, newStats);
    return r;
}

} // namespace

int
run(int argc, char **argv)
{
    ArgParser args("bench_memblade_replay",
                   "seed vs fast replay kernels, sweep vs "
                   "stack-distance curve, sharded replay");
    args.addOption("accesses", "trace length per comparison", "2000000")
        .addOption("out", "JSON output path",
                   "BENCH_memblade_replay.json");
    if (!args.parse(argc, argv))
        return 0;

    double accessesArg = args.getDouble("accesses");
    if (accessesArg < 1.0 || accessesArg > 1e9)
        fatal("--accesses must be in [1, 1e9]");
    const auto accesses = std::uint64_t(accessesArg);
    const std::uint64_t seed = 42;
    auto profile = profileFor(workloads::Benchmark::Websearch);
    auto frames =
        std::size_t(std::ceil(double(profile.footprintPages) * 0.25));
    bool allIdentical = true;

    std::cout << "=== Replay-engine throughput (websearch, "
              << accesses << " accesses, 25% local) ===\n\n";

    // --- Kernel throughput, old vs new, same pregenerated trace. ---
    auto trace = generateTrace(profile, accesses, Rng(3));
    std::vector<KernelResult> kernels;
    for (auto kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Clock}) {
        kernels.push_back(compareKernels(trace, kind, frames,
                                         profile.footprintPages));
        allIdentical = allIdentical && kernels.back().identical;
    }

    Table t({"Policy", "Seed Mpages/s", "Fast Mpages/s", "Speedup",
             "Stats"});
    for (const auto &k : kernels) {
        t.addRow({k.policy, fmtF(k.oldPagesPerSec / 1e6, 2),
                  fmtF(k.newPagesPerSec / 1e6, 2),
                  fmtF(k.speedup(), 2) + "x",
                  k.identical ? "bit-identical" : "MISMATCH"});
    }
    t.print(std::cout);

    // --- 5-fraction LRU sweep: N direct replays vs one pass. ---
    const std::vector<double> fractions{0.05, 0.1, 0.25, 0.5, 0.75};
    std::vector<ReplayStats> direct;
    double directSec = 0.0;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        direct.clear();
        auto t0 = std::chrono::steady_clock::now();
        for (double f : fractions)
            direct.push_back(replayProfile(profile, f, PolicyKind::Lru,
                                           accesses, seed));
        double sec = secondsSince(t0);
        if (rep == 0 || sec < directSec)
            directSec = sec;
    }

    std::vector<ReplayStats> swept;
    double sweepSec = 0.0;
    for (int rep = 0; rep < kTimedReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        swept = replayProfileSweep(profile, fractions, accesses, seed);
        double sec = secondsSince(t0);
        if (rep == 0 || sec < sweepSec)
            sweepSec = sec;
    }

    bool sweepIdentical = direct.size() == swept.size();
    for (std::size_t i = 0; sweepIdentical && i < direct.size(); ++i)
        sweepIdentical = sameStats(direct[i], swept[i]);
    allIdentical = allIdentical && sweepIdentical;
    double sweepSpeedup = directSec / sweepSec;

    std::cout << "\n" << fractions.size()
              << "-point LRU local-fraction sweep: "
              << fmtF(directSec, 3) << "s direct replays vs "
              << fmtF(sweepSec, 3) << "s single pass ("
              << fmtF(sweepSpeedup, 2) << "x, "
              << (sweepIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";

    // --- Sharded replay: serial pool vs default-width pool. ---
    const unsigned shards = 8;
    ThreadPool serialPool(1);
    auto t0 = std::chrono::steady_clock::now();
    auto serialSharded =
        shardedReplayProfile(profile, 0.25, PolicyKind::Lru, accesses,
                             seed, shards, &serialPool);
    double shardSerialSec = secondsSince(t0);

    ThreadPool widePool(ThreadPool::defaultThreads());
    t0 = std::chrono::steady_clock::now();
    auto wideSharded =
        shardedReplayProfile(profile, 0.25, PolicyKind::Lru, accesses,
                             seed, shards, &widePool);
    double shardWideSec = secondsSince(t0);

    bool shardIdentical = sameStats(serialSharded, wideSharded);
    allIdentical = allIdentical && shardIdentical;
    double shardSpeedup = shardSerialSec / shardWideSec;

    std::cout << shards << "-shard replay: " << fmtF(shardSerialSec, 3)
              << "s serial vs " << fmtF(shardWideSec, 3) << "s on "
              << ThreadPool::defaultThreads() << " threads ("
              << fmtF(shardSpeedup, 2) << "x, "
              << (shardIdentical ? "bit-identical" : "MISMATCH")
              << ")\n";

    bool lruTarget = false;
    for (const auto &k : kernels)
        if (k.policy == "lru")
            lruTarget = k.speedup() >= 5.0;
    bool sweepTarget = sweepSpeedup >= 3.0;
    std::cout << "\nTargets: LRU kernel >= 5x "
              << (lruTarget ? "met" : "NOT MET")
              << "; sweep >= 3x over 5 replays "
              << (sweepTarget ? "met" : "NOT MET") << "\n";

    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"bench\": \"memblade_replay\",\n"
         << "  \"schema_version\": 1,\n"
         << "  \"config\": {\n"
         << "    \"profile\": \"" << profile.name << "\",\n"
         << "    \"accesses\": " << accesses << ",\n"
         << "    \"local_fraction\": 0.25,\n"
         << "    \"seed\": " << seed << ",\n"
         << "    \"hardware_threads\": "
         << std::thread::hardware_concurrency() << "\n"
         << "  },\n"
         << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto &k = kernels[i];
        json << "    {\"policy\": \"" << k.policy
             << "\", \"old_pages_per_sec\": " << k.oldPagesPerSec
             << ", \"new_pages_per_sec\": " << k.newPagesPerSec
             << ", \"speedup\": " << k.speedup()
             << ", \"bit_identical\": "
             << (k.identical ? "true" : "false") << "}"
             << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"sweep\": {\n"
         << "    \"points\": " << fractions.size() << ",\n"
         << "    \"direct_seconds\": " << directSec << ",\n"
         << "    \"single_pass_seconds\": " << sweepSec << ",\n"
         << "    \"speedup\": " << sweepSpeedup << ",\n"
         << "    \"bit_identical\": "
         << (sweepIdentical ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"sharded\": {\n"
         << "    \"shards\": " << shards << ",\n"
         << "    \"serial_seconds\": " << shardSerialSec << ",\n"
         << "    \"parallel_seconds\": " << shardWideSec << ",\n"
         << "    \"speedup\": " << shardSpeedup << ",\n"
         << "    \"bit_identical\": "
         << (shardIdentical ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"targets\": {\n"
         << "    \"lru_kernel_5x\": " << (lruTarget ? "true" : "false")
         << ",\n"
         << "    \"sweep_3x\": " << (sweepTarget ? "true" : "false")
         << "\n"
         << "  }\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    out << json.str();
    std::cout << "\nWrote " << args.get("out") << "\n";

    return allIdentical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
